//! Per-thread reorder buffer.
//!
//! The paper replicates a 256-entry ROB per thread (Table 1, §3: "we have
//! assumed a per-thread 256-entry ROB in all configurations"). Commits pop
//! the head in order; squashes pop the tail (walk-back recovery).

use crate::inst::InstId;

/// Fixed-capacity FIFO of in-flight instruction ids, program-ordered.
pub struct Rob {
    buf: Vec<InstId>,
    head: usize,
    len: usize,
}

impl Rob {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Rob { buf: vec![InstId(u32::MAX); capacity], head: 0, len: 0 }
    }

    /// Paper configuration: 256 entries.
    pub fn paper_config() -> Self {
        Self::new(256)
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// Append at the tail (dispatch order). Returns `false` when full.
    pub fn push_tail(&mut self, id: InstId) -> bool {
        if self.is_full() {
            return false;
        }
        let pos = (self.head + self.len) % self.buf.len();
        self.buf[pos] = id;
        self.len += 1;
        true
    }

    /// Oldest instruction (commit candidate).
    #[inline]
    pub fn head(&self) -> Option<InstId> {
        if self.len == 0 {
            None
        } else {
            Some(self.buf[self.head])
        }
    }

    /// Commit the oldest instruction.
    pub fn pop_head(&mut self) -> Option<InstId> {
        if self.len == 0 {
            return None;
        }
        let id = self.buf[self.head];
        self.head = (self.head + 1) % self.buf.len();
        self.len -= 1;
        Some(id)
    }

    /// Youngest instruction (squash candidate).
    #[inline]
    pub fn tail(&self) -> Option<InstId> {
        if self.len == 0 {
            None
        } else {
            Some(self.buf[(self.head + self.len - 1) % self.buf.len()])
        }
    }

    /// Squash the youngest instruction.
    pub fn pop_tail(&mut self) -> Option<InstId> {
        if self.len == 0 {
            return None;
        }
        let pos = (self.head + self.len - 1) % self.buf.len();
        self.len -= 1;
        Some(self.buf[pos])
    }

    /// Iterate head → tail (program order).
    pub fn iter(&self) -> impl Iterator<Item = InstId> + '_ {
        (0..self.len).map(move |i| self.buf[(self.head + i) % self.buf.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = Rob::new(4);
        for i in 0..4 {
            assert!(r.push_tail(InstId(i)));
        }
        assert!(!r.push_tail(InstId(99)), "full ROB rejects");
        assert_eq!(r.pop_head(), Some(InstId(0)));
        assert_eq!(r.pop_head(), Some(InstId(1)));
        assert!(r.push_tail(InstId(4)));
        let order: Vec<u32> = r.iter().map(|i| i.0).collect();
        assert_eq!(order, [2, 3, 4]);
    }

    #[test]
    fn tail_squash() {
        let mut r = Rob::new(8);
        for i in 0..5 {
            r.push_tail(InstId(i));
        }
        assert_eq!(r.tail(), Some(InstId(4)));
        assert_eq!(r.pop_tail(), Some(InstId(4)));
        assert_eq!(r.pop_tail(), Some(InstId(3)));
        assert_eq!(r.len(), 3);
        assert_eq!(r.head(), Some(InstId(0)));
        // Push after squash reuses the space.
        assert!(r.push_tail(InstId(10)));
        let order: Vec<u32> = r.iter().map(|i| i.0).collect();
        assert_eq!(order, [0, 1, 2, 10]);
    }

    #[test]
    fn wraparound_stress() {
        let mut r = Rob::new(3);
        let mut next = 0u32;
        let mut expect_head = 0u32;
        #[allow(clippy::explicit_counter_loop)] // head lags tail; not a plain index
        for _ in 0..100 {
            while r.push_tail(InstId(next)) {
                next += 1;
            }
            assert!(r.is_full());
            assert_eq!(r.pop_head(), Some(InstId(expect_head)));
            expect_head += 1;
        }
    }

    #[test]
    fn empty_behaviour() {
        let mut r = Rob::new(2);
        assert!(r.is_empty());
        assert_eq!(r.head(), None);
        assert_eq!(r.pop_head(), None);
        assert_eq!(r.pop_tail(), None);
    }
}
