//! In-flight instruction records: the hot/cold split slab pool.
//!
//! Every dynamic instruction travelling the pipeline is one slot in an
//! [`InstPool`], addressed by a 32-bit [`InstId`]. All cross-structure
//! references (ROB, queues, buffers, wheels) are `InstId`s.
//!
//! # Hot/cold layout
//!
//! The pool stores each instruction across **three** dense parallel
//! arrays, sized and segregated by *access frequency*, not by meaning —
//! the same partition-the-big-centralised-structure argument the source
//! paper makes for SMT hardware, applied to the simulator's own data
//! layout:
//!
//! * [`HotInst`] (exactly 32 bytes, `#[repr(C, align(32))]`,
//!   size-asserted below) carries everything the per-cycle stages
//!   stream: the packed state+flag bitfield byte, `seq`, `ready_cycle`,
//!   `pending_srcs`, the thread/pipe nibble pair — plus the opcode, both
//!   packed destination mappings (`dst`/`old`) and the slot generation,
//!   which fit the record's padding and let writeback, commit's retire
//!   poll, wakeup delivery and issue classification run hot-only. Two
//!   records tile every 64-byte line, and none straddles.
//! * [`ColdInst`] (exactly one 64-byte line, `#[repr(align(64))]`)
//!   carries the bulk read at *per-instruction* events: the fetched
//!   [`DynInst`] and the source mappings `src_phys`. It is touched at
//!   rename, issue (one read per *memory* op for the effective address),
//!   branch resolution, store commit and squash walk-back — never by the
//!   per-cycle scans.
//! * The predictor snapshot (`DirSnapshot`) lives in a third array
//!   written at fetch and read at resolution for *conditional branches
//!   only*; every other instruction leaves its slot stale and unread.
//!
//! # Stage → accessor contract
//!
//! Raw `get`/`get_mut` no longer exist; callers declare which slice of
//! the record they touch, so the type system documents the traffic of
//! every stage:
//!
//! | accessor | who uses it |
//! |---|---|
//! | [`InstPool::hot`] / [`InstPool::hot_mut`] | every per-cycle stage: dispatch, wakeup drain, issue, writeback, commit's retire poll, squash marking, invariants |
//! | [`InstPool::cold`] | issue's address capture (memory ops), wakeup re-entry of memory ops, branch resolution, store commit, load-ordering invariants |
//! | [`InstPool::pair_mut`] | rename and squash walk-back, which legitimately rewrite both halves |
//! | [`InstPool::snap`] / [`InstPool::snap_mut`] | conditional-branch fetch and resolution only |
//!
//! # Generations
//!
//! Each slot carries a generation counter, bumped on release: stale
//! references held by lazily-maintained structures (wakeup lists, the
//! completion/flush wheels) pair the id with the generation they captured
//! and are dropped when the two no longer match. The free list is LIFO and
//! the release schedule is owned by the processor, so slot-reuse timing —
//! and therefore every downstream statistic — is independent of the
//! layout.

use hdsmt_bpred::DirSnapshot;
use hdsmt_isa::{Op, SeqNum, ThreadId};
use hdsmt_trace::DynInst;

use crate::regfile::PhysReg;

/// Index of an in-flight instruction in the [`InstPool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl core::fmt::Debug for InstId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Where in the pipeline an instruction currently is. Packed into the low
/// bits of [`HotInst`]'s flag byte.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum InstState {
    /// Sitting in the per-pipeline decoupling buffer or the decode
    /// latch (the decode stage moves ids without touching the pool).
    InBuffer = 0,
    /// In the rename stage latch.
    Rename = 1,
    /// Dispatched: waiting in an issue queue for operands/FU.
    Waiting = 2,
    /// Issued to a functional unit; executing.
    Executing = 3,
    /// Result produced; waiting for in-order commit.
    Done = 4,
}

/// Bit layout of [`HotInst::bits`]: state in the low 3 bits, one flag per
/// remaining bit.
const STATE_MASK: u8 = 0b0000_0111;
const F_WRONG_PATH: u8 = 1 << 3;
const F_FORWARDED: u8 = 1 << 4;
const F_SQUASHED: u8 = 1 << 5;
const F_MISPREDICTED: u8 = 1 << 6;

/// `HotInst::dst` sentinel: no destination register.
const NO_DST: u16 = u16::MAX;

/// The per-cycle half of an in-flight instruction: everything the hot
/// stage loops stream, packed so two records share a cache line.
///
/// Fields mutated by the scheduler (`ready_cycle`, `pending_srcs`, state
/// and flags) live here, and so do the two single-word facts the
/// per-cycle stages keep asking for — the opcode and the destination
/// register — because they fit the record's padding for free. Everything
/// bulky (the fetched instruction, source mappings, predictor snapshot)
/// lives in [`ColdInst`].
#[repr(C, align(32))]
#[derive(Clone, Debug)]
pub struct HotInst {
    /// Per-thread program-order sequence number.
    pub seq: SeqNum,
    /// Cycle the result becomes available (valid once `Executing`).
    pub ready_cycle: u64,
    /// Destination physical register, `NO_DST`-packed (set at rename).
    /// Writeback marks it ready without opening the cold record.
    dst: u16,
    /// Previous mapping of the destination architectural register,
    /// `NO_DST`-packed (set at rename, freed at commit). Keeping it here
    /// means an ALU/branch retirement never opens its cold record.
    old: u16,
    /// Packed [`InstState`] (low 3 bits) + flags; see the `F_*` constants.
    bits: u8,
    /// Thread index (low nibble) and pipeline (high nibble): the paper's
    /// machines top out at 8 contexts and 5 pipelines.
    tp: u8,
    /// While `Waiting`: source operands still outstanding. Counted down by
    /// register-file wakeups; the instruction enters its queue's ready set
    /// when it hits zero.
    pub pending_srcs: u8,
    /// Opcode copy: classification (`is_load`/`is_control`/FU routing) on
    /// the per-cycle paths without touching the cold record.
    pub op: Op,
    /// Slot generation, owned by the pool (bumped on release). Folded into
    /// the hot record so validating an `(id, gen)` reference and acting on
    /// the record are one cache access, not two.
    gen: u32,
}

/// The hot record must stay within half a cache line: the whole point of
/// the split. `align(32)` keeps exactly two records per line — none ever
/// straddles. (Compile-time; the `hot_record_fits_budget` test pins the
/// exact size so growth is a conscious decision.)
const _: () = assert!(core::mem::size_of::<HotInst>() <= 32);

impl HotInst {
    /// Fresh hot half for a newly fetched instruction.
    pub fn new(thread: ThreadId, pipe: u8, seq: SeqNum, op: Op, wrong_path: bool) -> Self {
        debug_assert!(thread.0 < 16 && pipe < 16, "thread/pipe exceed their packed nibbles");
        HotInst {
            seq,
            ready_cycle: 0,
            dst: NO_DST,
            old: NO_DST,
            bits: InstState::InBuffer as u8 | if wrong_path { F_WRONG_PATH } else { 0 },
            tp: thread.0 | (pipe << 4),
            pending_srcs: 0,
            op,
            gen: 0,
        }
    }

    /// Slot generation (see [`InstPool::gen`]); captured alongside other
    /// hot fields so schedulers filing `(id, gen)` references do one
    /// access, not two.
    #[inline]
    pub fn gen(&self) -> u32 {
        self.gen
    }

    /// Hardware thread this instruction belongs to.
    #[inline]
    pub fn thread(&self) -> ThreadId {
        ThreadId(self.tp & 0xf)
    }

    /// Pipeline this instruction was steered to.
    #[inline]
    pub fn pipe(&self) -> u8 {
        self.tp >> 4
    }

    /// Destination physical register, if the instruction has one (set at
    /// rename).
    #[inline]
    pub fn dst_phys(&self) -> Option<PhysReg> {
        if self.dst == NO_DST {
            None
        } else {
            Some(PhysReg(self.dst))
        }
    }

    #[inline]
    pub fn set_dst_phys(&mut self, dst: Option<PhysReg>) {
        self.dst = match dst {
            Some(p) => {
                debug_assert_ne!(p.0, NO_DST, "PhysReg collides with the sentinel");
                p.0
            }
            None => NO_DST,
        };
    }

    /// Previous physical mapping of the destination architectural register
    /// (walk-back squash recovery; freed at commit).
    #[inline]
    pub fn old_phys(&self) -> Option<PhysReg> {
        if self.old == NO_DST {
            None
        } else {
            Some(PhysReg(self.old))
        }
    }

    #[inline]
    pub fn set_old_phys(&mut self, old: Option<PhysReg>) {
        self.old = match old {
            Some(p) => {
                debug_assert_ne!(p.0, NO_DST, "PhysReg collides with the sentinel");
                p.0
            }
            None => NO_DST,
        };
    }

    /// Current pipeline stage.
    #[inline]
    pub fn state(&self) -> InstState {
        match self.bits & STATE_MASK {
            0 => InstState::InBuffer,
            1 => InstState::Rename,
            2 => InstState::Waiting,
            3 => InstState::Executing,
            _ => InstState::Done,
        }
    }

    #[inline]
    pub fn set_state(&mut self, s: InstState) {
        self.bits = (self.bits & !STATE_MASK) | s as u8;
    }

    /// Fabricated down a mispredicted path?
    #[inline]
    pub fn is_wrong_path(&self) -> bool {
        self.bits & F_WRONG_PATH != 0
    }

    /// Load was satisfied by store-to-load forwarding.
    #[inline]
    pub fn is_forwarded(&self) -> bool {
        self.bits & F_FORWARDED != 0
    }

    #[inline]
    pub fn set_forwarded(&mut self) {
        self.bits |= F_FORWARDED;
    }

    /// Squashed while in flight; skipped and reclaimed on the processor's
    /// release schedule.
    #[inline]
    pub fn is_squashed(&self) -> bool {
        self.bits & F_SQUASHED != 0
    }

    #[inline]
    pub fn set_squashed(&mut self) {
        self.bits |= F_SQUASHED;
    }

    /// Direction/target misprediction detected at fetch against the oracle
    /// stream; acted upon when the branch resolves.
    #[inline]
    pub fn is_mispredicted(&self) -> bool {
        self.bits & F_MISPREDICTED != 0
    }

    #[inline]
    pub fn set_mispredicted(&mut self) {
        self.bits |= F_MISPREDICTED;
    }
}

/// The per-instruction half: read a handful of times over an instruction's
/// whole life (rename, issue's address capture for memory ops, branch
/// resolution, squash walk-back, commit), so it stays out of the per-cycle
/// stages' cache footprint. Line-aligned and exactly one 64-byte line, so
/// every cold access costs one cache line, never two. (The predictor
/// snapshot — conditional branches only — lives in the pool's third,
/// rarely-touched array to keep it that way.)
#[derive(Clone, Debug)]
#[repr(align(64))]
pub struct ColdInst {
    pub d: DynInst,

    // ---- rename ----
    /// Source physical registers. (Both destination mappings live in
    /// [`HotInst`], packed into its padding, so writeback and commit skip
    /// the cold record.)
    pub src_phys: [Option<PhysReg>; 2],
}

/// One line per cold access is part of the layout contract.
const _: () = assert!(core::mem::size_of::<ColdInst>() == 64);

impl ColdInst {
    /// Fresh cold half for a newly fetched instruction.
    pub fn new(d: DynInst) -> Self {
        ColdInst { d, src_phys: [None, None] }
    }
}

/// Slab of in-flight instructions, hot/cold split, with an intrusive free
/// list. Allocation-free at steady state; slot-reuse order (LIFO) and
/// generation bumping are layout-independent so statistics cannot drift.
pub struct InstPool {
    hot: Vec<HotInst>,
    cold: Vec<ColdInst>,
    /// Predictor snapshots, parallel to the other halves. Written at fetch
    /// and read at resolution for *conditional branches only*; every other
    /// instruction leaves its slot stale, so this array stays out of every
    /// non-branch path's cache footprint.
    snap: Vec<DirSnapshot>,
    free: Vec<u32>,
    live: usize,
}

impl InstPool {
    /// `capacity` should cover the worst-case in-flight population
    /// (ROBs + decoupling buffers + stage latches).
    pub fn new(capacity: usize) -> Self {
        InstPool {
            hot: Vec::with_capacity(capacity),
            cold: Vec::with_capacity(capacity),
            snap: Vec::with_capacity(capacity),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Insert a record, returning its id. Amortised O(1), allocation-free
    /// once the pool has grown to its steady-state size.
    pub fn alloc(&mut self, mut hot: HotInst, cold: ColdInst) -> InstId {
        self.live += 1;
        match self.free.pop() {
            Some(i) => {
                // The generation survives the slot's reuse: references to
                // the previous occupant must keep failing validation.
                hot.gen = self.hot[i as usize].gen;
                self.hot[i as usize] = hot;
                self.cold[i as usize] = cold;
                InstId(i)
            }
            None => {
                self.hot.push(hot);
                self.cold.push(cold);
                self.snap.push(DirSnapshot::default());
                InstId((self.hot.len() - 1) as u32)
            }
        }
    }

    /// Release a record for reuse, invalidating outstanding `(id, gen)`
    /// references.
    pub fn release(&mut self, id: InstId) {
        debug_assert!(self.live > 0);
        self.live -= 1;
        let g = &mut self.hot[id.0 as usize].gen;
        *g = g.wrapping_add(1);
        self.free.push(id.0);
    }

    /// Current generation of a slot. References captured before the slot's
    /// last release carry an older generation and must be ignored.
    #[inline]
    pub fn gen(&self, id: InstId) -> u32 {
        self.hot[id.0 as usize].gen
    }

    /// Per-cycle half: what the stage loops stream.
    #[inline]
    pub fn hot(&self, id: InstId) -> &HotInst {
        &self.hot[id.0 as usize]
    }

    #[inline]
    pub fn hot_mut(&mut self, id: InstId) -> &mut HotInst {
        &mut self.hot[id.0 as usize]
    }

    /// Per-instruction half: rename data, the fetched instruction, the
    /// predictor snapshot.
    #[inline]
    pub fn cold(&self, id: InstId) -> &ColdInst {
        &self.cold[id.0 as usize]
    }

    #[inline]
    pub fn cold_mut(&mut self, id: InstId) -> &mut ColdInst {
        &mut self.cold[id.0 as usize]
    }

    /// Both halves mutably, for the stages that legitimately rewrite both
    /// (rename, squash walk-back).
    #[inline]
    pub fn pair_mut(&mut self, id: InstId) -> (&mut HotInst, &mut ColdInst) {
        (&mut self.hot[id.0 as usize], &mut self.cold[id.0 as usize])
    }

    /// Predictor snapshot: conditional branches only (fetch writes it,
    /// resolution reads it; all other slots hold stale values).
    #[inline]
    pub fn snap(&self, id: InstId) -> &DirSnapshot {
        &self.snap[id.0 as usize]
    }

    #[inline]
    pub fn snap_mut(&mut self, id: InstId) -> &mut DirSnapshot {
        &mut self.snap[id.0 as usize]
    }

    /// Currently live records.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsmt_isa::{ArchReg, Op, Pc, StaticInst};

    fn mk(seq: u64) -> (HotInst, ColdInst) {
        let d = DynInst {
            pc: Pc(0x1000),
            sinst: StaticInst::alu(Op::IntAlu, ArchReg::int(1), [None, None]),
            addr: 0,
            ctrl: None,
        };
        (HotInst::new(ThreadId(0), 0, SeqNum(seq), Op::IntAlu, false), ColdInst::new(d))
    }

    fn alloc(p: &mut InstPool, seq: u64) -> InstId {
        let (h, c) = mk(seq);
        p.alloc(h, c)
    }

    #[test]
    fn hot_record_fits_budget() {
        // The split's contract: the streamed record stays within half a
        // 64-byte cache line. Growing it is a layout decision — revisit
        // the field set before bumping this bound.
        assert!(
            core::mem::size_of::<HotInst>() <= 32,
            "HotInst grew to {} bytes",
            core::mem::size_of::<HotInst>()
        );
        // Pin the exact size too, so incidental growth inside the budget
        // is also a conscious decision: exactly half a 64-byte line, and
        // 32-aligned so two records tile every line.
        assert_eq!(core::mem::size_of::<HotInst>(), 32);
        assert_eq!(core::mem::align_of::<HotInst>(), 32);
    }

    #[test]
    fn state_and_flags_pack_and_round_trip() {
        let (mut h, _) = mk(1);
        assert_eq!(h.state(), InstState::InBuffer);
        assert!(!h.is_wrong_path() && !h.is_forwarded() && !h.is_squashed());
        for s in [InstState::Rename, InstState::Waiting, InstState::Executing, InstState::Done] {
            h.set_state(s);
            assert_eq!(h.state(), s);
        }
        h.set_forwarded();
        h.set_squashed();
        h.set_mispredicted();
        assert!(h.is_forwarded() && h.is_squashed() && h.is_mispredicted());
        assert_eq!(h.state(), InstState::Done, "flags do not clobber the state");
        h.set_state(InstState::Waiting);
        assert!(h.is_forwarded() && h.is_squashed(), "state writes keep the flags");
        let wrong = HotInst::new(ThreadId(2), 1, SeqNum(9), Op::Load, true);
        assert!(wrong.is_wrong_path());
        assert_eq!(wrong.thread(), ThreadId(2));
        assert_eq!(wrong.op, Op::Load);
        assert_eq!(wrong.dst_phys(), None, "fresh record has no destination");
    }

    #[test]
    fn alloc_get_release_cycle() {
        let mut p = InstPool::new(8);
        let a = alloc(&mut p, 1);
        let b = alloc(&mut p, 2);
        assert_eq!(p.hot(a).seq, SeqNum(1));
        assert_eq!(p.hot(b).seq, SeqNum(2));
        assert_eq!(p.cold(a).d.pc, Pc(0x1000));
        assert_eq!(p.live(), 2);
        p.release(a);
        assert_eq!(p.live(), 1);
        // Slot reuse.
        let c = alloc(&mut p, 3);
        assert_eq!(c, a, "freed slot must be reused");
        assert_eq!(p.hot(c).seq, SeqNum(3));
    }

    #[test]
    fn no_growth_after_steady_state() {
        let mut p = InstPool::new(4);
        let ids: Vec<InstId> = (0..4).map(|i| alloc(&mut p, i)).collect();
        let cap = (p.hot.capacity(), p.cold.capacity());
        for &id in &ids {
            p.release(id);
        }
        for i in 0..100 {
            let id = alloc(&mut p, i);
            p.release(id);
        }
        assert_eq!(
            (p.hot.capacity(), p.cold.capacity()),
            cap,
            "steady-state reuse must not grow either slab"
        );
    }

    #[test]
    fn generations_invalidate_released_slots() {
        let mut p = InstPool::new(2);
        let a = alloc(&mut p, 1);
        let g0 = p.gen(a);
        p.release(a);
        assert_ne!(p.gen(a), g0, "release bumps the generation");
        let b = alloc(&mut p, 2);
        assert_eq!(b, a, "slot reused");
        assert_ne!(p.gen(b), g0, "reused slot keeps the bumped generation");
    }

    #[test]
    fn halves_stay_paired_through_reuse() {
        let mut p = InstPool::new(2);
        let a = alloc(&mut p, 1);
        p.hot_mut(a).set_state(InstState::Done);
        p.hot_mut(a).set_dst_phys(Some(PhysReg(7)));
        p.hot_mut(a).set_old_phys(Some(PhysReg(3)));
        p.cold_mut(a).src_phys = [Some(PhysReg(5)), None];
        let (h, c) = p.pair_mut(a);
        assert_eq!(h.state(), InstState::Done);
        assert_eq!(h.dst_phys(), Some(PhysReg(7)));
        assert_eq!(h.old_phys(), Some(PhysReg(3)));
        assert_eq!(c.src_phys[0], Some(PhysReg(5)));
        p.release(a);
        let b = alloc(&mut p, 2);
        assert_eq!(b, a);
        assert_eq!(p.hot(b).state(), InstState::InBuffer, "reused hot half is fresh");
        assert_eq!(p.hot(b).dst_phys(), None, "reused hot half has no destination");
        assert_eq!(p.hot(b).old_phys(), None, "reused hot half has no old mapping");
        assert_eq!(p.cold(b).src_phys, [None, None], "reused cold half is fresh");
    }

    #[test]
    fn dst_phys_round_trips_through_the_sentinel() {
        let (mut h, _) = mk(1);
        assert_eq!(h.dst_phys(), None);
        h.set_dst_phys(Some(PhysReg(0)));
        assert_eq!(h.dst_phys(), Some(PhysReg(0)));
        h.set_dst_phys(Some(PhysReg(511)));
        assert_eq!(h.dst_phys(), Some(PhysReg(511)));
        h.set_dst_phys(None);
        assert_eq!(h.dst_phys(), None);
    }
}
