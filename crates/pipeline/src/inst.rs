//! In-flight instruction records and the slab pool that owns them.
//!
//! Every dynamic instruction travelling the pipeline is one slot in an
//! [`InstPool`] (slab + free list — no per-instruction heap allocation),
//! addressed by a 32-bit [`InstId`]. All cross-structure references (ROB,
//! queues, buffers, FU writeback lists) are `InstId`s.

use hdsmt_bpred::DirSnapshot;
use hdsmt_isa::{SeqNum, ThreadId};
use hdsmt_trace::DynInst;

use crate::regfile::PhysReg;

/// Index of an in-flight instruction in the [`InstPool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl core::fmt::Debug for InstId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Where in the pipeline an instruction currently is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstState {
    /// Sitting in the per-pipeline decoupling buffer or the decode
    /// latch (the decode stage moves ids without touching the pool).
    InBuffer,
    /// In the rename stage latch.
    Rename,
    /// Dispatched: waiting in an issue queue for operands/FU.
    Waiting,
    /// Issued to a functional unit; executing.
    Executing,
    /// Result produced; waiting for in-order commit.
    Done,
}

/// One in-flight dynamic instruction.
#[derive(Clone, Debug)]
pub struct InFlight {
    pub thread: ThreadId,
    /// Pipeline this instruction was steered to.
    pub pipe: u8,
    /// Per-thread program-order sequence number.
    pub seq: SeqNum,
    pub d: DynInst,
    pub state: InstState,
    /// Fabricated down a mispredicted path?
    pub wrong_path: bool,

    // ---- rename ----
    pub dst_phys: Option<PhysReg>,
    /// Previous physical mapping of the destination architectural register
    /// (for walk-back squash recovery; freed at commit).
    pub old_phys: Option<PhysReg>,
    pub src_phys: [Option<PhysReg>; 2],

    // ---- execution ----
    /// Cycle the result becomes available (valid once `Executing`).
    pub ready_cycle: u64,
    /// While `Waiting`: source operands still outstanding. Counted down by
    /// register-file wakeups; the instruction enters its queue's ready set
    /// when it hits zero.
    pub pending_srcs: u8,
    /// Load was satisfied by store-to-load forwarding.
    pub forwarded: bool,
    /// Squashed while executing; skipped and reclaimed at drain.
    pub squashed: bool,

    // ---- control speculation ----
    /// Direction/target misprediction detected at fetch against the oracle
    /// stream; acted upon when the branch resolves.
    pub mispredicted: bool,
    /// Predictor state at prediction time (training/recovery input).
    pub dir_snap: DirSnapshot,
}

impl InFlight {
    /// Fresh record for a newly fetched instruction.
    pub fn new(thread: ThreadId, pipe: u8, seq: SeqNum, d: DynInst, wrong_path: bool) -> Self {
        InFlight {
            thread,
            pipe,
            seq,
            d,
            state: InstState::InBuffer,
            wrong_path,
            dst_phys: None,
            old_phys: None,
            src_phys: [None, None],
            ready_cycle: 0,
            pending_srcs: 0,
            forwarded: false,
            squashed: false,
            mispredicted: false,
            dir_snap: DirSnapshot::default(),
        }
    }
}

/// Slab of in-flight instructions with an intrusive free list.
///
/// Each slot carries a generation counter, bumped on release: stale
/// references held by lazily-maintained structures (wakeup lists, ready
/// sets, the completion wheel) pair the id with the generation they
/// captured and are dropped when the two no longer match.
pub struct InstPool {
    slots: Vec<InFlight>,
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl InstPool {
    /// `capacity` should cover the worst-case in-flight population
    /// (ROBs + decoupling buffers + stage latches).
    pub fn new(capacity: usize) -> Self {
        InstPool {
            slots: Vec::with_capacity(capacity),
            gens: Vec::with_capacity(capacity),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Insert a record, returning its id. Amortised O(1), allocation-free
    /// once the pool has grown to its steady-state size.
    pub fn alloc(&mut self, inst: InFlight) -> InstId {
        self.live += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = inst;
                InstId(i)
            }
            None => {
                self.slots.push(inst);
                self.gens.push(0);
                InstId((self.slots.len() - 1) as u32)
            }
        }
    }

    /// Release a record for reuse, invalidating outstanding `(id, gen)`
    /// references.
    pub fn release(&mut self, id: InstId) {
        debug_assert!(self.live > 0);
        self.live -= 1;
        self.gens[id.0 as usize] = self.gens[id.0 as usize].wrapping_add(1);
        self.free.push(id.0);
    }

    /// Current generation of a slot. References captured before the slot's
    /// last release carry an older generation and must be ignored.
    #[inline]
    pub fn gen(&self, id: InstId) -> u32 {
        self.gens[id.0 as usize]
    }

    #[inline]
    pub fn get(&self, id: InstId) -> &InFlight {
        &self.slots[id.0 as usize]
    }

    #[inline]
    pub fn get_mut(&mut self, id: InstId) -> &mut InFlight {
        &mut self.slots[id.0 as usize]
    }

    /// Currently live records.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsmt_isa::{ArchReg, Op, Pc, StaticInst};

    fn mk(seq: u64) -> InFlight {
        let d = DynInst {
            pc: Pc(0x1000),
            sinst: StaticInst::alu(Op::IntAlu, ArchReg::int(1), [None, None]),
            addr: 0,
            ctrl: None,
        };
        InFlight::new(ThreadId(0), 0, SeqNum(seq), d, false)
    }

    #[test]
    fn alloc_get_release_cycle() {
        let mut p = InstPool::new(8);
        let a = p.alloc(mk(1));
        let b = p.alloc(mk(2));
        assert_eq!(p.get(a).seq, SeqNum(1));
        assert_eq!(p.get(b).seq, SeqNum(2));
        assert_eq!(p.live(), 2);
        p.release(a);
        assert_eq!(p.live(), 1);
        // Slot reuse.
        let c = p.alloc(mk(3));
        assert_eq!(c, a, "freed slot must be reused");
        assert_eq!(p.get(c).seq, SeqNum(3));
    }

    #[test]
    fn no_growth_after_steady_state() {
        let mut p = InstPool::new(4);
        let ids: Vec<InstId> = (0..4).map(|i| p.alloc(mk(i))).collect();
        let cap = p.slots.capacity();
        for &id in &ids {
            p.release(id);
        }
        for i in 0..100 {
            let id = p.alloc(mk(i));
            p.release(id);
        }
        assert_eq!(p.slots.capacity(), cap, "steady-state reuse must not grow the slab");
    }

    #[test]
    fn generations_invalidate_released_slots() {
        let mut p = InstPool::new(2);
        let a = p.alloc(mk(1));
        let g0 = p.gen(a);
        p.release(a);
        assert_ne!(p.gen(a), g0, "release bumps the generation");
        let b = p.alloc(mk(2));
        assert_eq!(b, a, "slot reused");
        assert_ne!(p.gen(b), g0, "reused slot keeps the bumped generation");
    }

    #[test]
    fn mutation_through_get_mut() {
        let mut p = InstPool::new(2);
        let a = p.alloc(mk(1));
        p.get_mut(a).state = InstState::Done;
        assert_eq!(p.get(a).state, InstState::Done);
    }
}
