//! The shared physical register file and per-thread rename maps.
//!
//! hdSMT's defining resource-sharing decision: the register file is shared
//! by *all* pipelines ("we can still use the whole budget of physical
//! registers … to improve the performance of the running applications,
//! since they are shared by all pipelines", §2). The pool is therefore one
//! chip-wide structure here, while each thread owns a private rename map
//! inside whichever pipeline it is assigned to.
//!
//! The pool holds `32 × threads` permanently-allocated architectural
//! registers per class plus the 256 rename registers of Table 1 per class;
//! only the rename registers are contended.

use hdsmt_isa::{ArchReg, NUM_ARCH_REGS, NUM_INT_ARCH_REGS};

use crate::inst::InstId;

/// A physical register. Integer and floating-point registers live in one
/// numbering space; the class split is fixed at construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PhysReg(pub u16);

/// A consumer waiting on a register, recorded with the generation of its
/// pool slot so wakeups for since-recycled instructions can be discarded.
/// Deliberately just eight bytes: everything delivery needs beyond the
/// identity (sequence, thread, opcode, pending count) sits in the
/// consumer's *hot* pool record, so subscription stays cheap and the
/// wakeup drain never opens a cold record for non-memory instructions.
#[derive(Clone, Copy, Debug)]
pub struct Waiter {
    pub id: InstId,
    pub gen: u32,
}

/// Shared physical register file: free lists, ready bits, and
/// producer-indexed wakeup lists.
///
/// The wakeup lists make issue event-driven: instead of every issue-queue
/// entry polling its operands' ready bits each cycle, a consumer with an
/// unready source subscribes to that register at dispatch, and
/// [`RegFile::set_ready`] (writeback) moves the register's subscribers to
/// an internal woken buffer the processor drains into the per-queue ready
/// sets. Lists are cleared on [`RegFile::alloc`], so entries never leak
/// across a register's reuse.
pub struct RegFile {
    /// Ready bit per physical register.
    ready: Vec<bool>,
    /// Wakeup list per physical register: consumers to notify on ready.
    waiters: Vec<Vec<Waiter>>,
    /// Subscribers of registers that became ready, awaiting a drain.
    woken: Vec<Waiter>,
    free_int: Vec<u16>,
    free_fp: Vec<u16>,
    n_int_total: u16,
    rename_int: u16,
    rename_fp: u16,
}

impl RegFile {
    /// A file for `threads` contexts with `rename_int`/`rename_fp` shared
    /// rename registers (Table 1: 256 each).
    pub fn new(threads: usize, rename_int: u16, rename_fp: u16) -> Self {
        let arch_int = NUM_INT_ARCH_REGS * threads as u16;
        let arch_fp = NUM_INT_ARCH_REGS * threads as u16;
        let n_int_total = arch_int + rename_int;
        let n_fp_total = arch_fp + rename_fp;
        let total = (n_int_total + n_fp_total) as usize;
        // Architectural registers are always ready; rename registers become
        // ready on writeback.
        let mut ready = vec![false; total];
        for r in ready.iter_mut().take(arch_int as usize) {
            *r = true;
        }
        for r in ready.iter_mut().skip(n_int_total as usize).take(arch_fp as usize) {
            *r = true;
        }
        let free_int = (arch_int..n_int_total).rev().collect();
        let free_fp = (n_int_total + arch_fp..n_int_total + n_fp_total).rev().collect();
        let waiters = vec![Vec::new(); total];
        RegFile {
            ready,
            waiters,
            woken: Vec::new(),
            free_int,
            free_fp,
            n_int_total,
            rename_int,
            rename_fp,
        }
    }

    /// Paper configuration for `threads` contexts.
    pub fn paper_config(threads: usize) -> Self {
        Self::new(threads, 256, 256)
    }

    /// The always-ready architectural home of `(thread, arch reg)` used to
    /// seed rename maps.
    pub fn arch_home(&self, thread: usize, reg: ArchReg) -> PhysReg {
        if reg.is_fp() {
            let fp_idx = reg.0 as u16 - NUM_INT_ARCH_REGS;
            PhysReg(self.n_int_total + thread as u16 * NUM_INT_ARCH_REGS + fp_idx)
        } else {
            PhysReg(thread as u16 * NUM_INT_ARCH_REGS + reg.0 as u16)
        }
    }

    /// Allocate a rename register of the class of `reg`; `None` when the
    /// shared pool is exhausted (rename stalls).
    pub fn alloc(&mut self, reg: ArchReg) -> Option<PhysReg> {
        let list = if reg.is_fp() { &mut self.free_fp } else { &mut self.free_int };
        let p = list.pop()?;
        self.ready[p as usize] = false;
        // Any leftover subscribers belong to the previous (squashed)
        // incarnation of this register.
        self.waiters[p as usize].clear();
        Some(PhysReg(p))
    }

    /// Return a rename register to the pool. Architectural homes are never
    /// freed; passing one is a logic error.
    pub fn free(&mut self, p: PhysReg) {
        debug_assert!(self.is_rename_reg(p), "freeing an architectural register");
        self.ready[p.0 as usize] = false;
        if p.0 < self.n_int_total {
            self.free_int.push(p.0);
        } else {
            self.free_fp.push(p.0);
        }
    }

    /// Is `p` from the contended rename pool (as opposed to an
    /// architectural home)?
    pub fn is_rename_reg(&self, p: PhysReg) -> bool {
        let arch_int = self.n_int_total - self.rename_int;
        if p.0 < self.n_int_total {
            p.0 >= arch_int
        } else {
            let fp_off = p.0 - self.n_int_total;
            let arch_fp = (self.ready.len() as u16 - self.n_int_total) - self.rename_fp;
            fp_off >= arch_fp
        }
    }

    /// Mark `p` ready and queue its subscribers for a wakeup drain.
    #[inline]
    pub fn set_ready(&mut self, p: PhysReg) {
        self.ready[p.0 as usize] = true;
        let w = &mut self.waiters[p.0 as usize];
        if !w.is_empty() {
            self.woken.append(w);
        }
    }

    #[inline]
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.ready[p.0 as usize]
    }

    /// Subscribe a waiting consumer to `p`'s wakeup list. Call only while
    /// `p` is not ready; the subscription fires exactly once.
    #[inline]
    pub fn subscribe(&mut self, p: PhysReg, id: InstId, gen: u32) {
        debug_assert!(!self.ready[p.0 as usize], "subscribing to a ready register");
        self.waiters[p.0 as usize].push(Waiter { id, gen });
    }

    /// Move every subscriber woken since the last drain into `out`
    /// (appended; `out` is not cleared).
    pub fn drain_woken(&mut self, out: &mut Vec<Waiter>) {
        out.append(&mut self.woken);
    }

    /// Subscribers woken but not yet drained (debug/invariant support).
    pub fn pending_wakeups(&self) -> usize {
        self.woken.len()
    }

    /// Free rename registers remaining (int, fp).
    pub fn free_counts(&self) -> (usize, usize) {
        (self.free_int.len(), self.free_fp.len())
    }
}

/// Per-thread architectural → physical map.
#[derive(Clone)]
pub struct RenameMap {
    map: [PhysReg; NUM_ARCH_REGS as usize],
}

impl RenameMap {
    /// Initial map: every architectural register points at its permanent
    /// home in the file.
    pub fn new(thread: usize, rf: &RegFile) -> Self {
        let mut map = [PhysReg(0); NUM_ARCH_REGS as usize];
        for (i, m) in map.iter_mut().enumerate() {
            *m = rf.arch_home(thread, ArchReg(i as u8));
        }
        RenameMap { map }
    }

    #[inline]
    pub fn lookup(&self, reg: ArchReg) -> PhysReg {
        self.map[reg.index()]
    }

    /// Point `reg` at `phys`, returning the previous mapping (kept by the
    /// instruction for walk-back recovery and commit-time freeing).
    #[inline]
    pub fn rename(&mut self, reg: ArchReg, phys: PhysReg) -> PhysReg {
        std::mem::replace(&mut self.map[reg.index()], phys)
    }

    /// Walk-back restore: undo one rename.
    #[inline]
    pub fn restore(&mut self, reg: ArchReg, old: PhysReg) {
        self.map[reg.index()] = old;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_homes_are_ready_and_distinct() {
        let rf = RegFile::new(4, 256, 256);
        let mut seen = std::collections::HashSet::new();
        for t in 0..4 {
            for r in 0..64u8 {
                let p = rf.arch_home(t, ArchReg(r));
                assert!(rf.is_ready(p), "arch home must be ready");
                assert!(!rf.is_rename_reg(p));
                assert!(seen.insert(p), "duplicate home {p:?}");
            }
        }
    }

    #[test]
    fn alloc_free_conservation() {
        let mut rf = RegFile::new(2, 8, 8);
        assert_eq!(rf.free_counts(), (8, 8));
        let a = rf.alloc(ArchReg::int(0)).unwrap();
        let b = rf.alloc(ArchReg::fp(0)).unwrap();
        assert!(rf.is_rename_reg(a));
        assert!(rf.is_rename_reg(b));
        assert_eq!(rf.free_counts(), (7, 7));
        rf.free(a);
        rf.free(b);
        assert_eq!(rf.free_counts(), (8, 8));
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut rf = RegFile::new(1, 2, 1);
        assert!(rf.alloc(ArchReg::int(0)).is_some());
        assert!(rf.alloc(ArchReg::int(1)).is_some());
        assert!(rf.alloc(ArchReg::int(2)).is_none(), "int pool exhausted");
        assert!(rf.alloc(ArchReg::fp(0)).is_some());
        assert!(rf.alloc(ArchReg::fp(1)).is_none(), "fp pool exhausted");
    }

    #[test]
    fn ready_protocol() {
        let mut rf = RegFile::new(1, 4, 4);
        let p = rf.alloc(ArchReg::int(5)).unwrap();
        assert!(!rf.is_ready(p), "fresh rename reg starts not-ready");
        rf.set_ready(p);
        assert!(rf.is_ready(p));
        rf.free(p);
        let q = rf.alloc(ArchReg::int(5)).unwrap();
        assert_eq!(q, p, "LIFO free list reuses the register");
        assert!(!rf.is_ready(q), "reuse must clear readiness");
    }

    #[test]
    fn wakeup_lists_fire_once_and_clear_on_reuse() {
        let mut rf = RegFile::new(1, 4, 4);
        let p = rf.alloc(ArchReg::int(1)).unwrap();
        rf.subscribe(p, InstId(7), 3);
        rf.subscribe(p, InstId(9), 0);
        let mut woken = Vec::new();
        rf.drain_woken(&mut woken);
        assert!(woken.is_empty(), "nothing woken before set_ready");

        rf.set_ready(p);
        rf.drain_woken(&mut woken);
        assert_eq!(woken.len(), 2);
        assert_eq!((woken[0].id, woken[0].gen), (InstId(7), 3));
        assert_eq!((woken[1].id, woken[1].gen), (InstId(9), 0));

        // A second drain yields nothing: subscriptions fire exactly once.
        woken.clear();
        rf.drain_woken(&mut woken);
        assert!(woken.is_empty());

        // Stale subscribers left behind by a squash are dropped when the
        // register is reallocated.
        let mut rf = RegFile::new(1, 4, 4);
        let p = rf.alloc(ArchReg::int(1)).unwrap();
        rf.subscribe(p, InstId(7), 3);
        rf.free(p);
        let q = rf.alloc(ArchReg::int(2)).unwrap();
        assert_eq!(q, p, "LIFO reuse");
        rf.set_ready(q);
        rf.drain_woken(&mut woken);
        assert!(woken.is_empty(), "previous incarnation's subscribers are gone");
    }

    #[test]
    fn rename_map_rename_restore() {
        let rf = RegFile::new(2, 16, 16);
        let mut m = RenameMap::new(1, &rf);
        let r5 = ArchReg::int(5);
        let home = m.lookup(r5);
        assert_eq!(home, rf.arch_home(1, r5));
        let old = m.rename(r5, PhysReg(999));
        assert_eq!(old, home);
        assert_eq!(m.lookup(r5), PhysReg(999));
        m.restore(r5, old);
        assert_eq!(m.lookup(r5), home);
    }

    #[test]
    fn classes_do_not_mix() {
        let mut rf = RegFile::new(1, 4, 4);
        let pi = rf.alloc(ArchReg::int(0)).unwrap();
        let pf = rf.alloc(ArchReg::fp(0)).unwrap();
        assert!(pi.0 < pf.0, "int registers number below fp registers");
    }
}
