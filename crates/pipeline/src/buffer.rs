//! Per-pipeline decoupling buffers.
//!
//! "In order to decouple the fetch engine from the characteristics of each
//! specific pipeline it feeds, some small buffers are added before each
//! pipeline … the fetch engine inserts in-order the fetched instructions at
//! its own rate while each pipeline extracts in-order instructions
//! according to its width." (§2)
//!
//! A squash must also be able to delete a thread's instructions that are
//! still sitting in the buffer, hence `retain`.

use std::collections::VecDeque;

/// Fixed-capacity FIFO. Backed by a pre-sized `VecDeque`; never grows past
/// its capacity, so steady-state operation is allocation-free.
pub struct RingBuf<T> {
    q: VecDeque<T>,
    capacity: usize,
}

impl<T> RingBuf<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        RingBuf { q: VecDeque::with_capacity(capacity), capacity }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.q.len() >= self.capacity
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    pub fn free_slots(&self) -> usize {
        self.capacity - self.q.len()
    }

    /// Append; `false` when full (fetch back-pressure).
    pub fn push_back(&mut self, v: T) -> bool {
        if self.is_full() {
            return false;
        }
        self.q.push_back(v);
        true
    }

    /// In-order extraction by the pipeline's decode stage.
    #[inline]
    pub fn pop_front(&mut self) -> Option<T> {
        self.q.pop_front()
    }

    #[inline]
    pub fn front(&self) -> Option<&T> {
        self.q.front()
    }

    /// Squash support: drop entries failing the predicate, preserving order.
    pub fn retain(&mut self, f: impl FnMut(&T) -> bool) {
        self.q.retain(f);
    }

    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.q.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_with_capacity() {
        let mut b = RingBuf::new(2);
        assert!(b.push_back(1));
        assert!(b.push_back(2));
        assert!(!b.push_back(3), "full buffer applies back-pressure");
        assert_eq!(b.pop_front(), Some(1));
        assert!(b.push_back(3));
        assert_eq!(b.pop_front(), Some(2));
        assert_eq!(b.pop_front(), Some(3));
        assert_eq!(b.pop_front(), None);
    }

    #[test]
    fn retain_preserves_order() {
        let mut b = RingBuf::new(8);
        for i in 0..6 {
            b.push_back(i);
        }
        b.retain(|&v| v != 2 && v != 4);
        let left: Vec<i32> = std::iter::from_fn(|| b.pop_front()).collect();
        assert_eq!(left, [0, 1, 3, 5]);
    }

    #[test]
    fn free_slots_accounting() {
        let mut b = RingBuf::new(4);
        assert_eq!(b.free_slots(), 4);
        b.push_back(1);
        b.push_back(2);
        assert_eq!(b.free_slots(), 2);
        b.pop_front();
        assert_eq!(b.free_slots(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = RingBuf::<u32>::new(0);
    }
}
