//! The completion wheel: time-indexed buckets of executing instructions.
//!
//! Writeback used to scan a linear execution list every cycle, touching
//! every in-flight instruction to find the few whose `ready_cycle` is
//! *now*. The wheel replaces that with a classic timing wheel: an
//! instruction is filed under `ready_cycle % capacity` at issue, and
//! writeback drains exactly the bucket for the current cycle — O(due)
//! instead of O(in-flight).
//!
//! The wheel is two-tier: a small near ring (cache-resident — the vast
//! majority of completions are ALU/FP/L1/L2 latencies within a few dozen
//! cycles) and an unbounded far list for memory misses, swept into the
//! ring once per lap.
//!
//! Entries are deliberately just `(cycle, id, generation)` — twelve
//! bytes of payload: everything writeback needs beyond the identity
//! (state, destination register, opcode classification) sits in the
//! instruction's *hot* pool record, so the drain runs without opening a
//! single cold record. Squashed instructions are *not* removed from their
//! bucket; the processor releases their pool slot (bumping the generation)
//! and the stale entry is discarded when its bucket comes up.

use crate::inst::InstId;

/// Near-ring size: covers every non-memory-miss completion latency.
const NEAR_SLOTS: usize = 64;

/// One scheduled completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    pub id: InstId,
    /// Pool generation at scheduling time; mismatch marks a stale entry.
    pub gen: u32,
}

/// One wheel slot: a completion plus its absolute due cycle.
#[derive(Clone, Copy, Debug)]
pub struct WheelEntry {
    /// Absolute cycle the instruction completes.
    pub at: u64,
    pub c: Completion,
}

/// Time-indexed completion buckets (near ring + far overflow).
pub struct CompletionWheel {
    /// One lap of buckets; an entry due within `NEAR_SLOTS` cycles lives
    /// in bucket `at % NEAR_SLOTS`.
    near: Vec<Vec<WheelEntry>>,
    /// Completions beyond the ring horizon (memory misses), migrated into
    /// the ring at lap boundaries.
    far: Vec<WheelEntry>,
    /// Entries filed and not yet drained (stale entries included).
    scheduled: usize,
}

impl Default for CompletionWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl CompletionWheel {
    /// A wheel. The two-tier design handles any completion distance: the
    /// near ring covers one lap, the far list everything beyond it.
    pub fn new() -> Self {
        CompletionWheel {
            near: (0..NEAR_SLOTS).map(|_| Vec::new()).collect(),
            far: Vec::new(),
            scheduled: 0,
        }
    }

    #[inline]
    fn index(at: u64) -> usize {
        (at as usize) & (NEAR_SLOTS - 1)
    }

    /// File a completion for cycle `at` (strictly in the future of `now`).
    pub fn schedule(&mut self, at: u64, c: Completion, now: u64) {
        debug_assert!(at > now, "completions are always at least one cycle out");
        let e = WheelEntry { at, c };
        if ((at - now) as usize) < NEAR_SLOTS {
            self.near[Self::index(at)].push(e);
        } else {
            self.far.push(e);
        }
        self.scheduled += 1;
    }

    /// Remove and append to `out` every completion due exactly at `now`.
    /// Must be called every cycle (buckets hold one lap only).
    pub fn drain_due(&mut self, now: u64, out: &mut Vec<Completion>) {
        // Lap boundary: pull the next lap's far entries into the ring.
        if (now as usize) & (NEAR_SLOTS - 1) == 0 && !self.far.is_empty() {
            let near = &mut self.near;
            self.far.retain(|&e| {
                if ((e.at - now) as usize) < NEAR_SLOTS {
                    near[Self::index(e.at)].push(e);
                    false
                } else {
                    true
                }
            });
        }
        let bucket = &mut self.near[Self::index(now)];
        debug_assert!(bucket.iter().all(|e| e.at == now), "bucket holds another lap's entry");
        self.scheduled -= bucket.len();
        out.extend(bucket.drain(..).map(|e| e.c));
    }

    /// Entries currently filed (stale ones included).
    #[inline]
    pub fn len(&self) -> usize {
        self.scheduled
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.scheduled == 0
    }

    /// Every filed entry, for invariant checking.
    pub fn iter(&self) -> impl Iterator<Item = &WheelEntry> {
        self.near.iter().flatten().chain(self.far.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u32, gen: u32) -> Completion {
        Completion { id: InstId(id), gen }
    }

    #[test]
    fn drains_exactly_the_due_cycle() {
        let mut w = CompletionWheel::new();
        w.schedule(3, c(1, 0), 0);
        w.schedule(5, c(2, 0), 0);
        w.schedule(3, c(3, 0), 0);
        assert_eq!(w.len(), 3);
        let mut out = Vec::new();
        for cycle in 1..=5 {
            out.clear();
            w.drain_due(cycle, &mut out);
            match cycle {
                3 => assert_eq!(out, vec![c(1, 0), c(3, 0)]),
                5 => assert_eq!(out, vec![c(2, 0)]),
                _ => assert!(out.is_empty(), "cycle {cycle}"),
            }
        }
        assert!(w.is_empty());
    }

    #[test]
    fn far_completions_survive_the_ring_horizon() {
        let mut w = CompletionWheel::new();
        w.schedule(2, c(1, 0), 0);
        // 1000 cycles out: far beyond the near ring — rides the far list.
        w.schedule(1000, c(2, 7), 0);
        let mut out = Vec::new();
        w.drain_due(2, &mut out);
        assert_eq!(out, vec![c(1, 0)]);
        out.clear();
        for cycle in 3..1000 {
            w.drain_due(cycle, &mut out);
            assert!(out.is_empty(), "cycle {cycle}");
        }
        w.drain_due(1000, &mut out);
        assert_eq!(out, vec![c(2, 7)]);
        assert!(w.is_empty());
    }

    #[test]
    fn stale_entries_survive_until_their_cycle() {
        // The wheel itself never validates generations — it reports what
        // was filed; the drainer filters. This pins that contract.
        let mut w = CompletionWheel::new();
        w.schedule(4, c(9, 3), 1);
        assert_eq!(w.iter().count(), 1);
        let mut out = Vec::new();
        w.drain_due(4, &mut out);
        assert_eq!(out, vec![c(9, 3)]);
    }
}
