//! The completion wheel: time-indexed buckets of executing instructions.
//!
//! Writeback used to scan a linear execution list every cycle, touching
//! every in-flight instruction to find the few whose `ready_cycle` is
//! *now*. The wheel replaces that with a classic timing wheel: an
//! instruction is filed under `ready_cycle % capacity` at issue, and
//! writeback drains exactly the bucket for the current cycle — O(due)
//! instead of O(in-flight).
//!
//! The wheel is two-tier: a small near ring (cache-resident — the vast
//! majority of completions are ALU/FP/L1/L2 latencies within a few dozen
//! cycles) and an unbounded far list for memory misses, swept into the
//! ring once per lap.
//!
//! Entries are deliberately just `(cycle, id, generation)` — twelve
//! bytes of payload: everything writeback needs beyond the identity
//! (state, destination register, opcode classification) sits in the
//! instruction's *hot* pool record, so the drain runs without opening a
//! single cold record. Squashed instructions are *not* removed from their
//! bucket; the processor releases their pool slot (bumping the generation)
//! and the stale entry is discarded when its bucket comes up.

use crate::inst::InstId;

/// Near-ring size: covers every non-memory-miss completion latency.
const NEAR_SLOTS: usize = 64;

/// One scheduled completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    pub id: InstId,
    /// Pool generation at scheduling time; mismatch marks a stale entry.
    pub gen: u32,
}

/// One wheel slot: a completion plus its absolute due cycle.
#[derive(Clone, Copy, Debug)]
pub struct WheelEntry {
    /// Absolute cycle the instruction completes.
    pub at: u64,
    pub c: Completion,
}

/// Time-indexed completion buckets (near ring + far overflow).
pub struct CompletionWheel {
    /// One lap of buckets; an entry due within `NEAR_SLOTS` cycles lives
    /// in bucket `at % NEAR_SLOTS`.
    near: Vec<Vec<WheelEntry>>,
    /// Bit `b` set ⇔ `near[b]` is non-empty. Because a bucket only ever
    /// holds entries of one due cycle at a time (it is drained at that
    /// cycle before the index can recur), the mask plus the current cycle
    /// determine the earliest near completion in O(1) — which is what
    /// keeps [`Self::next_due`] cheap enough to consult on every
    /// quiescence check.
    occupied: u64,
    /// Completions beyond the ring horizon (memory misses), migrated into
    /// the ring at lap boundaries.
    far: Vec<WheelEntry>,
    /// Exact earliest `at` on the far list (`u64::MAX` when empty);
    /// maintained on push and recomputed during the migration pass that
    /// removes entries.
    far_min: u64,
    /// Entries filed and not yet drained (stale entries included).
    scheduled: usize,
}

impl Default for CompletionWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl CompletionWheel {
    /// A wheel. The two-tier design handles any completion distance: the
    /// near ring covers one lap, the far list everything beyond it.
    pub fn new() -> Self {
        CompletionWheel {
            near: (0..NEAR_SLOTS).map(|_| Vec::new()).collect(),
            occupied: 0,
            far: Vec::new(),
            far_min: u64::MAX,
            scheduled: 0,
        }
    }

    #[inline]
    fn index(at: u64) -> usize {
        (at as usize) & (NEAR_SLOTS - 1)
    }

    /// File a completion for cycle `at` (strictly in the future of `now`).
    pub fn schedule(&mut self, at: u64, c: Completion, now: u64) {
        debug_assert!(at > now, "completions are always at least one cycle out");
        let e = WheelEntry { at, c };
        if ((at - now) as usize) < NEAR_SLOTS {
            self.near[Self::index(at)].push(e);
            self.occupied |= 1 << Self::index(at);
        } else {
            self.far.push(e);
            self.far_min = self.far_min.min(at);
        }
        self.scheduled += 1;
    }

    /// Remove and append to `out` every completion due exactly at `now`.
    /// Must be called every cycle (buckets hold one lap only).
    pub fn drain_due(&mut self, now: u64, out: &mut Vec<Completion>) {
        // Lap boundary: pull the next lap's far entries into the ring.
        if (now as usize) & (NEAR_SLOTS - 1) == 0 && !self.far.is_empty() {
            self.migrate_far(now);
        }
        let bucket = &mut self.near[Self::index(now)];
        debug_assert!(bucket.iter().all(|e| e.at == now), "bucket holds another lap's entry");
        self.scheduled -= bucket.len();
        self.occupied &= !(1 << Self::index(now));
        out.extend(bucket.drain(..).map(|e| e.c));
    }

    /// Move far entries due within one lap of `from` into the near ring,
    /// recomputing the far minimum over what stays.
    fn migrate_far(&mut self, from: u64) {
        let near = &mut self.near;
        let occupied = &mut self.occupied;
        let mut far_min = u64::MAX;
        self.far.retain(|&e| {
            if ((e.at - from) as usize) < NEAR_SLOTS {
                near[Self::index(e.at)].push(e);
                *occupied |= 1 << Self::index(e.at);
                false
            } else {
                far_min = far_min.min(e.at);
                true
            }
        });
        self.far_min = far_min;
    }

    /// Earliest cycle (`>= now`, the cycle about to be stepped) any filed
    /// entry — stale ones included — comes due, or `u64::MAX` when the
    /// wheel is empty: the wheel's next-activity report into the
    /// processor's `Timeline`. O(1): one rotation of the near-ring
    /// occupancy mask plus the maintained far minimum, so the quiescence
    /// engine can consult it on every quiescent cycle without touching
    /// the population.
    ///
    /// Stale (squashed) entries are deliberately included: they make the
    /// report *conservative* (the warp lands on a cycle whose drain
    /// discards them and does nothing, and the next quiescence check warps
    /// onward), never wrong.
    pub fn next_due(&self, now: u64) -> u64 {
        let mut best = self.far_min;
        if self.occupied != 0 {
            // Every near entry is due within [now, now + NEAR_SLOTS): one
            // rotation of the occupancy mask finds the earliest occupied
            // bucket's unique due cycle.
            let rot = self.occupied.rotate_right((now as u32) & (NEAR_SLOTS as u32 - 1));
            best = best.min(now + rot.trailing_zeros() as u64);
        }
        debug_assert_eq!(
            best,
            self.iter().map(|e| e.at).min().unwrap_or(u64::MAX),
            "incremental next-due out of step with the population"
        );
        best
    }

    /// Jump the wheel's notion of time from wherever it was to `to`
    /// without draining the skipped cycles. Callers must guarantee no
    /// entry is due *before* `to` (the processor warps to the minimum
    /// next-activity cycle, so none is); the only bookkeeping the skipped
    /// cycles would have done is the lap-boundary migration of far
    /// entries into the near ring, which this performs explicitly.
    pub fn warp_to(&mut self, to: u64) {
        debug_assert!(self.iter().all(|e| e.at >= to), "warp must not jump over a completion");
        if !self.far.is_empty() {
            self.migrate_far(to);
        }
    }

    /// Entries currently filed (stale ones included).
    #[inline]
    pub fn len(&self) -> usize {
        self.scheduled
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.scheduled == 0
    }

    /// Every filed entry, for invariant checking.
    pub fn iter(&self) -> impl Iterator<Item = &WheelEntry> {
        self.near.iter().flatten().chain(self.far.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u32, gen: u32) -> Completion {
        Completion { id: InstId(id), gen }
    }

    #[test]
    fn drains_exactly_the_due_cycle() {
        let mut w = CompletionWheel::new();
        w.schedule(3, c(1, 0), 0);
        w.schedule(5, c(2, 0), 0);
        w.schedule(3, c(3, 0), 0);
        assert_eq!(w.len(), 3);
        let mut out = Vec::new();
        for cycle in 1..=5 {
            out.clear();
            w.drain_due(cycle, &mut out);
            match cycle {
                3 => assert_eq!(out, vec![c(1, 0), c(3, 0)]),
                5 => assert_eq!(out, vec![c(2, 0)]),
                _ => assert!(out.is_empty(), "cycle {cycle}"),
            }
        }
        assert!(w.is_empty());
    }

    #[test]
    fn far_completions_survive_the_ring_horizon() {
        let mut w = CompletionWheel::new();
        w.schedule(2, c(1, 0), 0);
        // 1000 cycles out: far beyond the near ring — rides the far list.
        w.schedule(1000, c(2, 7), 0);
        let mut out = Vec::new();
        w.drain_due(2, &mut out);
        assert_eq!(out, vec![c(1, 0)]);
        out.clear();
        for cycle in 3..1000 {
            w.drain_due(cycle, &mut out);
            assert!(out.is_empty(), "cycle {cycle}");
        }
        w.drain_due(1000, &mut out);
        assert_eq!(out, vec![c(2, 7)]);
        assert!(w.is_empty());
    }

    #[test]
    fn next_due_reports_the_earliest_entry_across_both_tiers() {
        let mut w = CompletionWheel::new();
        assert_eq!(w.next_due(1), u64::MAX, "empty wheel has no activity");
        w.schedule(500, c(1, 0), 0); // far
        assert_eq!(w.next_due(1), 500);
        w.schedule(7, c(2, 0), 0); // near
        assert_eq!(w.next_due(1), 7);
        let mut out = Vec::new();
        for cycle in 1..=7 {
            assert_eq!(w.next_due(cycle), 7, "query cycle {cycle}");
            w.drain_due(cycle, &mut out);
        }
        assert_eq!(out, vec![c(2, 0)]);
        assert_eq!(w.next_due(8), 500, "drained entries stop reporting");
        // After migration at a lap boundary the near mask takes over.
        for cycle in 8..=500 {
            w.drain_due(cycle, &mut out);
        }
        assert_eq!(out, vec![c(2, 0), c(1, 0)]);
        assert_eq!(w.next_due(501), u64::MAX);
    }

    #[test]
    fn warp_skips_lap_boundaries_without_stranding_far_entries() {
        // A far entry due at 100; warping from cycle 10 to 100 skips the
        // lap boundary at 64 where drain_due would have migrated it into
        // the near ring. warp_to must perform that migration itself.
        let mut w = CompletionWheel::new();
        w.schedule(100, c(3, 1), 10);
        w.warp_to(100);
        let mut out = Vec::new();
        w.drain_due(100, &mut out);
        assert_eq!(out, vec![c(3, 1)]);
        assert!(w.is_empty());

        // An entry still beyond the ring horizon after the warp stays far
        // and is migrated by the next ordinary lap boundary.
        let mut w = CompletionWheel::new();
        w.schedule(400, c(4, 0), 10);
        w.warp_to(200);
        out.clear();
        for cycle in 200..400 {
            w.drain_due(cycle, &mut out);
            assert!(out.is_empty(), "cycle {cycle}");
        }
        w.drain_due(400, &mut out);
        assert_eq!(out, vec![c(4, 0)]);
    }

    #[test]
    fn warp_to_an_entrys_own_cycle_is_exact() {
        let mut w = CompletionWheel::new();
        w.schedule(1000, c(5, 2), 0);
        w.warp_to(1000);
        assert_eq!(w.next_due(1000), 1000);
        let mut out = Vec::new();
        w.drain_due(1000, &mut out);
        assert_eq!(out, vec![c(5, 2)]);
    }

    #[test]
    fn stale_entries_survive_until_their_cycle() {
        // The wheel itself never validates generations — it reports what
        // was filed; the drainer filters. This pins that contract.
        let mut w = CompletionWheel::new();
        w.schedule(4, c(9, 3), 1);
        assert_eq!(w.iter().count(), 1);
        let mut out = Vec::new();
        w.drain_due(4, &mut out);
        assert_eq!(out, vec![c(9, 3)]);
    }
}
