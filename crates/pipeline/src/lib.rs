//! # hdsmt-pipeline — the out-of-order execution backend
//!
//! An hdSMT processor "comprises all the pipeline stages of the conventional
//! processor but the fetch stage" in each cluster (§2): decode, register
//! rename, the instruction queues (IQ/FQ/LQ), the functional units, and
//! instruction completion, all private per pipeline; the physical register
//! file is shared chip-wide. This crate provides those structures plus the
//! four pipeline models of Fig 2(a):
//!
//! | | M8 | M6 | M4 | M2 |
//! |---|---|---|---|---|
//! | Hardware contexts | 4 | 2 | 2 | 1 |
//! | Max. instr./cycle | 8 | 6 | 4 | 2 |
//! | Max. threads/cycle | 2 | 2 | 2 | 1 |
//! | Queues (IQ/FQ/LQ) | 64 | 32 | 32 | 16 |
//! | Integer FUs | 6 | 4 | 3 | 1 |
//! | FP FUs | 3 | 2 | 2 | 1 |
//! | LD/ST units | 4 | 2 | 2 | 1 |
//!
//! The cycle-by-cycle *orchestration* of these structures (fetch policies,
//! the stage loop, squash/recovery) lives in `hdsmt-core`; everything here
//! is independently testable state machinery, designed for zero per-cycle
//! heap allocation (slab + free list, fixed rings, index-based links).
//!
//! The scheduler-facing structures are *event-driven*: the register file
//! keeps producer-indexed wakeup lists, each issue queue keeps an eagerly
//! maintained ready set plus a timed park for replayed/blocked entries,
//! and the completion wheel files executing instructions by completion
//! cycle so writeback drains O(due) work. Stale cross-references are
//! impossible by construction: the instruction pool gives every slot a
//! generation, and consumers validate `(id, generation)` pairs on use.

pub mod buffer;
pub mod fu;
pub mod inst;
pub mod model;
pub mod queue;
pub mod regfile;
pub mod rob;
pub mod wheel;

pub use buffer::RingBuf;
pub use fu::FuPool;
pub use inst::{InFlight, InstId, InstPool, InstState};
pub use model::{MicroArch, PipeModel, M2, M4, M6, M8};
pub use queue::{IssueQueue, ReadyEntry};
pub use regfile::{PhysReg, RegFile, RenameMap, Waiter};
pub use rob::Rob;
pub use wheel::{CompletionWheel, WheelEntry};
