//! # hdsmt-pipeline — the out-of-order execution backend
//!
//! An hdSMT processor "comprises all the pipeline stages of the conventional
//! processor but the fetch stage" in each cluster (§2): decode, register
//! rename, the instruction queues (IQ/FQ/LQ), the functional units, and
//! instruction completion, all private per pipeline; the physical register
//! file is shared chip-wide. This crate provides those structures plus the
//! four pipeline models of Fig 2(a):
//!
//! | | M8 | M6 | M4 | M2 |
//! |---|---|---|---|---|
//! | Hardware contexts | 4 | 2 | 2 | 1 |
//! | Max. instr./cycle | 8 | 6 | 4 | 2 |
//! | Max. threads/cycle | 2 | 2 | 2 | 1 |
//! | Queues (IQ/FQ/LQ) | 64 | 32 | 32 | 16 |
//! | Integer FUs | 6 | 4 | 3 | 1 |
//! | FP FUs | 3 | 2 | 2 | 1 |
//! | LD/ST units | 4 | 2 | 2 | 1 |
//!
//! The cycle-by-cycle *orchestration* of these structures (fetch policies,
//! the stage loop, squash/recovery) lives in `hdsmt-core`; everything here
//! is independently testable state machinery, designed for zero per-cycle
//! heap allocation (slab + free list, fixed rings, index-based links).
//!
//! The scheduler-facing structures are *event-driven*: the register file
//! keeps producer-indexed wakeup lists, each issue queue keeps an eagerly
//! maintained ready set plus a timed park for replayed/blocked entries,
//! and the completion wheel files executing instructions by completion
//! cycle so writeback drains O(due) work. Stale cross-references are
//! impossible by construction: the instruction pool gives every slot a
//! generation, and consumers validate `(id, generation)` pairs on use.
//!
//! The time-bearing structures also *report their horizon* for the
//! processor's quiescence-skipping cycle engine: the completion wheel's
//! [`CompletionWheel::next_due`] (O(1) — near-ring occupancy bitmask plus
//! a maintained far-list minimum) and each queue's
//! [`IssueQueue::park_next_due`] tell the core `Timeline` the earliest
//! cycle they could act, and [`CompletionWheel::warp_to`] performs the
//! far-entry migrations that skipped lap boundaries would have done. See
//! `hdsmt_core::proc` for the full contract.
//!
//! # Cache-conscious data layout
//!
//! The same partitioning argument the paper applies to SMT hardware is
//! applied to the simulator's own records: in-flight instructions live in
//! a **hot/cold split** [`InstPool`] ([`inst`] module). The 32-byte
//! [`HotInst`] (packed state+flag byte, `seq`, thread/pipe, opcode, both
//! destination mappings, generation, `ready_cycle`, `pending_srcs`) sits
//! in its own line-tiled dense array the per-cycle stages stream; the
//! one-line [`ColdInst`] (the fetched instruction, source mappings) is
//! touched only at per-instruction events, and predictor snapshots sit
//! in a third array that only conditional branches ever reach. The
//! event-carrying structures stay lean to match: each queue's
//! [`ReadyEntry`] set makes issue selection pool-free, while register-
//! file [`Waiter`]s and wheel [`Completion`]s are bare `(id, generation)`
//! pairs — wakeup delivery and writeback resolve everything else from
//! the hot record. Stage-scoped accessors (`hot`/`hot_mut`/`cold`/
//! `cold_mut`/`pair_mut`/`snap`) replace raw record access, so each
//! stage's cache traffic is visible in the types it touches.

#![forbid(unsafe_code)]

pub mod buffer;
pub mod fu;
pub mod inst;
pub mod model;
pub mod queue;
pub mod regfile;
pub mod rob;
pub mod wheel;

pub use buffer::RingBuf;
pub use fu::FuPool;
pub use inst::{ColdInst, HotInst, InstId, InstPool, InstState};
pub use model::{MicroArch, PipeModel, M2, M4, M6, M8};
pub use queue::{IssueQueue, ReadyEntry};
pub use regfile::{PhysReg, RegFile, RenameMap, Waiter};
pub use rob::Rob;
pub use wheel::{Completion, CompletionWheel, WheelEntry};
