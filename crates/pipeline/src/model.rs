//! Pipeline models (Fig 2(a)) and microarchitecture compositions (§4.1).

/// Static resource budget of one pipeline (cluster).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct PipeModel {
    pub name: &'static str,
    /// Hardware thread contexts this pipeline supports.
    pub contexts: u8,
    /// Maximum instructions per cycle through every width-limited stage
    /// (decode, rename, dispatch, issue, commit).
    pub width: u8,
    /// Maximum threads contributing fetched instructions per cycle.
    pub fetch_threads: u8,
    /// Integer / floating-point / load-store issue-queue entries.
    pub iq: u16,
    pub fq: u16,
    pub lq: u16,
    pub int_units: u8,
    pub fp_units: u8,
    pub ldst_units: u8,
    /// Decoupling-buffer entries between the shared fetch engine and this
    /// pipeline's decode stage (§4: 32 for M6/M4, 16 for M2; the monolithic
    /// baseline's fetch feeds decode through a width-sized latch).
    pub buffer: u16,
}

/// The monolithic SMT baseline pipeline.
pub const M8: PipeModel = PipeModel {
    name: "M8",
    contexts: 4,
    width: 8,
    fetch_threads: 2,
    iq: 64,
    fq: 64,
    lq: 64,
    int_units: 6,
    fp_units: 3,
    ldst_units: 4,
    buffer: 8,
};

pub const M6: PipeModel = PipeModel {
    name: "M6",
    contexts: 2,
    width: 6,
    fetch_threads: 2,
    iq: 32,
    fq: 32,
    lq: 32,
    int_units: 4,
    fp_units: 2,
    ldst_units: 2,
    buffer: 32,
};

pub const M4: PipeModel = PipeModel {
    name: "M4",
    contexts: 2,
    width: 4,
    fetch_threads: 2,
    iq: 32,
    fq: 32,
    lq: 32,
    int_units: 3,
    fp_units: 2,
    ldst_units: 2,
    buffer: 32,
};

pub const M2: PipeModel = PipeModel {
    name: "M2",
    contexts: 1,
    width: 2,
    fetch_threads: 1,
    iq: 16,
    fq: 16,
    lq: 16,
    int_units: 1,
    fp_units: 1,
    ldst_units: 1,
    buffer: 16,
};

impl PipeModel {
    /// Look up a model by name.
    pub fn by_name(name: &str) -> Option<PipeModel> {
        match name {
            "M8" => Some(M8),
            "M6" => Some(M6),
            "M4" => Some(M4),
            "M2" => Some(M2),
            _ => None,
        }
    }
}

/// A full microarchitecture: an ordered collection of pipelines.
///
/// Names follow the paper's convention: `2M4+2M2` = two M4 pipelines plus
/// two M2 pipelines. The monolithic baseline is plain `M8`.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct MicroArch {
    pub name: String,
    pub pipes: Vec<PipeModel>,
    /// Scheduling contexts of the whole chip. Normally the sum of pipeline
    /// contexts, but the paper's §3 assumption grants the 4-context M8
    /// baseline six schedulable contexts (at no modelled area cost) so
    /// 6-thread workloads can run on it.
    pub max_threads: u8,
}

impl MicroArch {
    /// Compose a microarchitecture from pipeline models.
    pub fn new(pipes: Vec<PipeModel>) -> Self {
        assert!(!pipes.is_empty(), "a microarchitecture needs at least one pipeline");
        let name = Self::canonical_name(&pipes);
        let max_threads = pipes.iter().map(|p| p.contexts as u16).sum::<u16>().min(255) as u8;
        MicroArch { name, pipes, max_threads }
    }

    /// `2M4+2M2`-style canonical name (run-length over consecutive equal
    /// models, widest first as the paper lists them).
    fn canonical_name(pipes: &[PipeModel]) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut i = 0;
        while i < pipes.len() {
            let mut j = i;
            while j < pipes.len() && pipes[j].name == pipes[i].name {
                j += 1;
            }
            let n = j - i;
            if n == 1 && pipes.len() == 1 {
                parts.push(pipes[i].name.to_string());
            } else {
                parts.push(format!("{}{}", n, pipes[i].name));
            }
            i = j;
        }
        parts.join("+")
    }

    /// Parse a paper-style name (`M8`, `3M4`, `2M4+2M2`, `1M6+2M4+2M2`).
    pub fn parse(name: &str) -> Result<Self, String> {
        let mut pipes = Vec::new();
        for part in name.split('+') {
            let part = part.trim();
            let split = part.find('M').ok_or_else(|| format!("bad component: {part}"))?;
            let (count_s, model_s) = part.split_at(split);
            let count: usize = if count_s.is_empty() {
                1
            } else {
                count_s.parse().map_err(|_| format!("bad count in {part}"))?
            };
            if count == 0 {
                return Err(format!("zero count in {part}"));
            }
            let model =
                PipeModel::by_name(model_s).ok_or_else(|| format!("unknown model {model_s}"))?;
            pipes.extend(std::iter::repeat_n(model, count));
        }
        if pipes.is_empty() {
            return Err("empty microarchitecture".into());
        }
        let mut arch = Self::new(pipes);
        if arch.is_monolithic() {
            // §3 assumption: the baseline runs up to six threads.
            arch.max_threads = 6;
        }
        Ok(arch)
    }

    /// The monolithic SMT baseline (M8, with the §3 six-thread assumption).
    pub fn baseline() -> Self {
        Self::parse("M8").unwrap()
    }

    /// The six microarchitectures of Fig 3, in paper order.
    pub fn paper_set() -> Vec<Self> {
        ["M8", "3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"]
            .iter()
            .map(|n| Self::parse(n).unwrap())
            .collect()
    }

    /// Single-pipeline (conventional SMT) configuration?
    pub fn is_monolithic(&self) -> bool {
        self.pipes.len() == 1
    }

    /// Homogeneous (all pipelines the same model)?
    pub fn is_homogeneous(&self) -> bool {
        self.pipes.windows(2).all(|w| w[0].name == w[1].name)
    }

    /// Total issue width across pipelines.
    pub fn total_width(&self) -> u32 {
        self.pipes.iter().map(|p| p.width as u32).sum()
    }

    /// Total hardware contexts (pipeline capacity, ignoring the baseline
    /// scheduling assumption).
    pub fn total_contexts(&self) -> u32 {
        self.pipes.iter().map(|p| p.contexts as u32).sum()
    }
}

impl std::fmt::Display for MicroArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_resource_table() {
        for (m, ctx, w, thr, q, int, fp, ld) in [
            (M8, 4, 8, 2, 64, 6, 3, 4),
            (M6, 2, 6, 2, 32, 4, 2, 2),
            (M4, 2, 4, 2, 32, 3, 2, 2),
            (M2, 1, 2, 1, 16, 1, 1, 1),
        ] {
            assert_eq!(m.contexts, ctx, "{}", m.name);
            assert_eq!(m.width, w, "{}", m.name);
            assert_eq!(m.fetch_threads, thr, "{}", m.name);
            assert_eq!(m.iq, q, "{}", m.name);
            assert_eq!(m.int_units, int, "{}", m.name);
            assert_eq!(m.fp_units, fp, "{}", m.name);
            assert_eq!(m.ldst_units, ld, "{}", m.name);
        }
    }

    #[test]
    fn decoupling_buffer_sizes_match_section4() {
        assert_eq!(M6.buffer, 32);
        assert_eq!(M4.buffer, 32);
        assert_eq!(M2.buffer, 16);
    }

    #[test]
    fn parse_paper_names() {
        let a = MicroArch::parse("2M4+2M2").unwrap();
        assert_eq!(a.pipes.len(), 4);
        assert_eq!(a.name, "2M4+2M2");
        assert_eq!(a.total_contexts(), 6);
        assert_eq!(a.total_width(), 12);

        let a = MicroArch::parse("1M6+2M4+2M2").unwrap();
        assert_eq!(a.pipes.len(), 5);
        assert_eq!(a.total_contexts(), 8);
        assert_eq!(a.total_width(), 18);

        let a = MicroArch::parse("M8").unwrap();
        assert!(a.is_monolithic());
        assert_eq!(a.max_threads, 6, "§3 six-thread baseline assumption");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MicroArch::parse("").is_err());
        assert!(MicroArch::parse("2X4").is_err());
        assert!(MicroArch::parse("0M4").is_err());
        assert!(MicroArch::parse("M9").is_err());
    }

    #[test]
    fn canonical_names_roundtrip() {
        for name in ["M8", "3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"] {
            let a = MicroArch::parse(name).unwrap();
            let b = MicroArch::parse(&a.name).unwrap();
            assert_eq!(a.pipes, b.pipes, "{name} vs {}", a.name);
        }
    }

    #[test]
    fn homogeneity_classification() {
        assert!(MicroArch::parse("3M4").unwrap().is_homogeneous());
        assert!(MicroArch::parse("4M4").unwrap().is_homogeneous());
        assert!(!MicroArch::parse("2M4+2M2").unwrap().is_homogeneous());
        assert!(MicroArch::parse("M8").unwrap().is_homogeneous());
    }

    #[test]
    fn paper_set_order_and_contexts() {
        let set = MicroArch::paper_set();
        assert_eq!(set.len(), 6);
        let names: Vec<&str> = set.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, ["M8", "3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"]);
        // Context capacity per §4.1: all hdSMT configs can hold ≥ 6 threads.
        for a in &set[1..] {
            assert!(a.max_threads >= 6, "{}", a.name);
        }
    }
}
