//! Functional-unit pools.
//!
//! Each pipeline owns private pools of integer, floating-point and
//! load/store units (Fig 2(a)). Pipelined ops occupy their unit for one
//! cycle; unpipelined ops (divides) hold it for their full latency.

/// A pool of identical functional units.
///
/// `try_issue` keeps a per-cycle free count: the `busy_until` vector is
/// scanned once per (pool, cycle) to seed the count, after which a
/// saturated pool rejects further issue attempts in O(1) — the common
/// case under contention, where the old code re-scanned every unit for
/// every rejected candidate.
pub struct FuPool {
    /// Cycle each unit becomes free.
    busy_until: Vec<u64>,
    /// Cycle `cached_free` is valid for (`u64::MAX` = never computed).
    cached_cycle: u64,
    /// Units free at `cached_cycle`, kept in step by `try_issue`.
    cached_free: usize,
}

impl FuPool {
    pub fn new(count: usize) -> Self {
        FuPool { busy_until: vec![0; count], cached_cycle: u64::MAX, cached_free: 0 }
    }

    #[inline]
    pub fn count(&self) -> usize {
        self.busy_until.len()
    }

    /// Units free at `now`.
    pub fn available(&self, now: u64) -> usize {
        if self.cached_cycle == now {
            return self.cached_free;
        }
        self.busy_until.iter().filter(|&&b| b <= now).count()
    }

    /// Try to claim a unit at `now`, holding it for `occupy` cycles
    /// (1 for pipelined ops, the full latency for unpipelined ones).
    pub fn try_issue(&mut self, now: u64, occupy: u32) -> bool {
        debug_assert!(occupy >= 1);
        if self.cached_cycle != now {
            self.cached_cycle = now;
            self.cached_free = self.busy_until.iter().filter(|&&b| b <= now).count();
        }
        if self.cached_free == 0 {
            return false;
        }
        let u = self
            .busy_until
            .iter_mut()
            .find(|b| **b <= now)
            .expect("free count says a unit is available");
        *u = now + occupy as u64;
        self.cached_free -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_units_accept_one_per_cycle() {
        let mut p = FuPool::new(2);
        assert!(p.try_issue(10, 1));
        assert!(p.try_issue(10, 1));
        assert!(!p.try_issue(10, 1), "both units claimed this cycle");
        assert_eq!(p.available(10), 0);
        assert!(p.try_issue(11, 1), "pipelined units free next cycle");
    }

    #[test]
    fn unpipelined_op_blocks_unit() {
        let mut p = FuPool::new(1);
        assert!(p.try_issue(0, 20)); // a divide
        for cyc in 1..20 {
            assert!(!p.try_issue(cyc, 1), "unit busy at {cyc}");
        }
        assert!(p.try_issue(20, 1));
    }

    #[test]
    fn availability_tracks_time() {
        let mut p = FuPool::new(3);
        p.try_issue(0, 5);
        p.try_issue(0, 1);
        assert_eq!(p.available(0), 1);
        assert_eq!(p.available(1), 2);
        assert_eq!(p.available(5), 3);
    }

    #[test]
    fn saturation_fast_path_resets_each_cycle() {
        let mut p = FuPool::new(2);
        assert!(p.try_issue(7, 1));
        assert!(p.try_issue(7, 1));
        // Saturated: many rejected attempts in the same cycle (the O(1)
        // path) must not disturb the units' state.
        for _ in 0..100 {
            assert!(!p.try_issue(7, 1));
        }
        assert_eq!(p.available(7), 0);
        // A new cycle reseeds the count.
        assert!(p.try_issue(8, 3));
        assert!(p.try_issue(8, 1));
        assert!(!p.try_issue(8, 1));
        assert_eq!(p.available(9), 1, "only the occupy=3 unit is still busy");
    }
}
