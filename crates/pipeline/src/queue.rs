//! Issue queues (IQ / FQ / LQ).
//!
//! A queue is an unordered membership set with a capacity bound —
//! load/store ordering walks the per-thread store lists, so nothing
//! depends on queue iteration order. That makes membership removal O(1):
//! a per-id position index plus `swap_remove`. Capacities come from the
//! pipeline model (Fig 2(a)).
//!
//! Each queue also carries a **ready set**: the entries whose operands
//! are all available, fed by register-file wakeups. The issue stage
//! visits only the ready sets — a handful of entries — instead of
//! polling every queue member each cycle, sorting its candidates on the
//! pool-independent `(seq, thread)` age key. (The sets stay unordered on
//! purpose: with the wakeup-fed population this small, a per-cycle sort
//! of the genuine candidates is cheaper than keeping every insertion in
//! age position.) The set is maintained eagerly — the scheduler removes
//! an entry the moment its instruction issues or is squashed — so every
//! entry is live, and each [`ReadyEntry`] is self-contained (sequence,
//! thread, opcode, address): candidate selection touches no
//! instruction-pool memory at all, which is what lets the scheduler's
//! per-cycle paths run on the hot half of the instruction pool alone
//! (see `inst`).

use hdsmt_isa::Op;

use crate::inst::InstId;

/// Position sentinel: not in this queue.
const ABSENT: u32 = u32::MAX;

/// Park-wheel size: must exceed the longest park distance (MSHR back-off
/// of 2, store address-generation of 1 + register-file latency ≤ 8).
const PARK_SLOTS: usize = 16;

/// One operand-ready instruction, with the metadata issue selection sorts
/// and filters on. Self-contained: age ordering, FU routing and the
/// load-ordering check all run without touching the instruction pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadyEntry {
    /// Per-thread program-order sequence number (issue age priority).
    pub seq: u64,
    /// Full effective address (loads/stores; 0 otherwise). The
    /// load-ordering walk masks it to 8-byte granularity; issue passes it
    /// straight to the memory hierarchy, so issuing a memory op touches
    /// no cold pool record at all.
    pub addr: u64,
    pub id: InstId,
    /// Thread index (the deterministic cross-thread age tie-break).
    pub thread: u8,
    pub op: Op,
}

/// One issue queue: a capacity-bounded membership set with O(1)
/// insert/remove, a wakeup-fed ready set, and a retry park for
/// structurally-replayed entries (MSHR back-pressure).
pub struct IssueQueue {
    entries: Vec<InstId>,
    /// `pos[id] == i` ⇔ `entries[i] == id`; `ABSENT` when not a member.
    pos: Vec<u32>,
    /// Operand-ready members, every entry live (eagerly maintained).
    ready: Vec<ReadyEntry>,
    /// Near-future re-admissions (MSHR back-off, store-agen waits), a
    /// small timing wheel: bucket `cycle % PARK_SLOTS`.
    parked: [Vec<(u64, ReadyEntry)>; PARK_SLOTS],
    parked_count: usize,
    capacity: usize,
}

impl IssueQueue {
    pub fn new(capacity: usize) -> Self {
        IssueQueue {
            entries: Vec::with_capacity(capacity),
            pos: Vec::new(),
            ready: Vec::new(),
            parked: std::array::from_fn(|_| Vec::new()),
            parked_count: 0,
            capacity,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Insert. Returns `false` when full (dispatch stalls).
    pub fn push(&mut self, id: InstId) -> bool {
        if !self.has_space() {
            return false;
        }
        let i = id.0 as usize;
        if i >= self.pos.len() {
            self.pos.resize(i + 1, ABSENT);
        }
        debug_assert_eq!(self.pos[i], ABSENT, "double insert");
        self.pos[i] = self.entries.len() as u32;
        self.entries.push(id);
        true
    }

    /// Remove a specific instruction (after issue / store commit). O(1).
    pub fn remove(&mut self, id: InstId) -> bool {
        let Some(&p) = self.pos.get(id.0 as usize) else { return false };
        if p == ABSENT {
            return false;
        }
        self.entries.swap_remove(p as usize);
        self.pos[id.0 as usize] = ABSENT;
        if let Some(&moved) = self.entries.get(p as usize) {
            self.pos[moved.0 as usize] = p;
        }
        true
    }

    /// Membership iteration (no meaningful order).
    pub fn iter(&self) -> impl Iterator<Item = InstId> + '_ {
        self.entries.iter().copied()
    }

    /// Is `id` currently in this queue?
    pub fn contains(&self, id: InstId) -> bool {
        self.pos.get(id.0 as usize).is_some_and(|&p| p != ABSENT)
    }

    /// Keep only entries satisfying `f` (squash support). This does NOT
    /// touch the ready set or the timed park: callers removing members
    /// must also evict their ready/parked entries (the scheduler does so
    /// eagerly — see `squash_younger`), since every ready entry is
    /// required to be live.
    pub fn retain(&mut self, mut f: impl FnMut(&InstId) -> bool) {
        let mut w = 0;
        for r in 0..self.entries.len() {
            let id = self.entries[r];
            if f(&id) {
                self.entries[w] = id;
                self.pos[id.0 as usize] = w as u32;
                w += 1;
            } else {
                self.pos[id.0 as usize] = ABSENT;
            }
        }
        self.entries.truncate(w);
    }

    /// Record that a member's operands are all available. Callers mark
    /// each instruction at most once (at dispatch when nothing is
    /// outstanding, or when its last wakeup fires), so the set holds no
    /// duplicates.
    #[inline]
    pub fn mark_ready(&mut self, e: ReadyEntry) {
        debug_assert!(self.contains(e.id));
        self.ready.push(e);
    }

    /// The operand-ready members (unordered; issue sorts its candidates).
    #[inline]
    pub fn ready_entries(&self) -> &[ReadyEntry] {
        &self.ready
    }

    /// Drop `id`'s ready entry (it issued or was squashed). Returns
    /// `false` when it had none (operands still outstanding). O(ready).
    pub fn remove_ready(&mut self, id: InstId) -> bool {
        if let Some(i) = self.ready.iter().position(|e| e.id == id) {
            self.ready.swap_remove(i);
            true
        } else {
            false
        }
    }

    /// Park an entry until cycle `at` (MSHR back-off, or a blocking
    /// store's pending address generation). `at` must be within
    /// `PARK_SLOTS` cycles of the current cycle, and [`IssueQueue::
    /// unpark_due`] must run every cycle so buckets hold one lap only.
    pub fn park_at(&mut self, at: u64, e: ReadyEntry) {
        self.parked[(at as usize) % PARK_SLOTS].push((at, e));
        self.parked_count += 1;
    }

    /// Move every parked entry due exactly at `now` back onto the ready
    /// set, in park order, returning how many moved. O(due).
    pub fn unpark_due(&mut self, now: u64) -> usize {
        if self.parked_count == 0 {
            return 0;
        }
        let bucket = &mut self.parked[(now as usize) % PARK_SLOTS];
        debug_assert!(bucket.iter().all(|&(at, _)| at == now), "park beyond the wheel horizon");
        let n = bucket.len();
        self.parked_count -= n;
        self.ready.extend(bucket.drain(..).map(|(_, e)| e));
        n
    }

    /// Earliest cycle any parked entry comes due, or `u64::MAX` when the
    /// park is empty — the queue's next-activity report into the
    /// processor's `Timeline`. Every parked entry is within `PARK_SLOTS`
    /// cycles of now, so this scan is tiny and only runs when the machine
    /// already looks quiescent.
    pub fn park_next_due(&self) -> u64 {
        if self.parked_count == 0 {
            return u64::MAX;
        }
        self.parked.iter().flatten().map(|&(at, _)| at).min().unwrap_or(u64::MAX)
    }

    /// Drop parked entries rejected by `keep` (squash support).
    pub fn purge_parked(&mut self, mut keep: impl FnMut(&ReadyEntry) -> bool) {
        for b in &mut self.parked {
            let before = b.len();
            b.retain(|(_, e)| keep(e));
            self.parked_count -= before - b.len();
        }
    }

    /// Parked entries (debug/invariant support).
    pub fn parked_entries(&self) -> impl Iterator<Item = &ReadyEntry> {
        self.parked.iter().flatten().map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_enforced() {
        let mut q = IssueQueue::new(2);
        assert!(q.push(InstId(1)));
        assert!(q.push(InstId(2)));
        assert!(!q.push(InstId(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn iteration_covers_members() {
        let mut q = IssueQueue::new(4);
        for i in [5, 1, 9] {
            q.push(InstId(i));
        }
        let mut members: Vec<u32> = q.iter().map(|i| i.0).collect();
        members.sort_unstable();
        assert_eq!(members, [1, 5, 9]);
        assert!(q.contains(InstId(5)));
        assert!(!q.contains(InstId(2)));
    }

    #[test]
    fn remove_is_constant_time_membership_update() {
        let mut q = IssueQueue::new(4);
        for i in 0..4 {
            q.push(InstId(i));
        }
        assert!(q.remove(InstId(1)));
        assert!(!q.remove(InstId(1)), "already gone");
        assert!(!q.remove(InstId(99)));
        let mut members: Vec<u32> = q.iter().map(|i| i.0).collect();
        members.sort_unstable();
        assert_eq!(members, [0, 2, 3]);
        assert!(!q.contains(InstId(1)));
        assert!(q.has_space());
        // The vacated slot is reusable and consistent.
        assert!(q.push(InstId(7)));
        assert!(q.contains(InstId(7)));
        assert!(q.remove(InstId(0)) && q.remove(InstId(2)) && q.remove(InstId(3)));
        let members: Vec<u32> = q.iter().map(|i| i.0).collect();
        assert_eq!(members, [7]);
    }

    fn re(id: u32, seq: u64) -> ReadyEntry {
        ReadyEntry { seq, addr: 0, id: InstId(id), thread: 0, op: Op::IntAlu }
    }

    #[test]
    fn ready_set_marks_and_removes() {
        let mut q = IssueQueue::new(8);
        for i in 0..4 {
            q.push(InstId(i));
        }
        q.mark_ready(re(2, 20));
        q.mark_ready(re(0, 10));
        q.mark_ready(re(3, 30));
        let mut seqs: Vec<u64> = q.ready_entries().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, [10, 20, 30]);
        assert!(q.remove_ready(InstId(0)), "issued: eagerly removed");
        assert!(!q.remove_ready(InstId(0)), "already gone");
        assert!(!q.remove_ready(InstId(1)), "never marked ready");
        let mut seqs: Vec<u64> = q.ready_entries().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, [20, 30]);
    }

    #[test]
    fn parked_entries_rejoin_the_ready_set_when_due() {
        let mut q = IssueQueue::new(8);
        for i in 0..3 {
            q.push(InstId(i));
        }
        q.mark_ready(re(0, 10));
        q.park_at(7, re(1, 20));
        assert_eq!(q.ready_entries().len(), 1, "parked entries are not ready yet");
        q.unpark_due(6);
        assert_eq!(q.ready_entries().len(), 1, "not due yet");
        q.unpark_due(7);
        let mut seqs: Vec<u64> = q.ready_entries().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, [10, 20]);
    }

    #[test]
    fn park_next_due_tracks_the_earliest_parked_entry() {
        let mut q = IssueQueue::new(8);
        for i in 0..3 {
            q.push(InstId(i));
        }
        assert_eq!(q.park_next_due(), u64::MAX, "empty park reports no activity");
        q.park_at(9, re(0, 10));
        q.park_at(4, re(1, 20));
        assert_eq!(q.park_next_due(), 4);
        q.unpark_due(4);
        assert_eq!(q.park_next_due(), 9);
        q.unpark_due(9);
        assert_eq!(q.park_next_due(), u64::MAX);
        assert!(!q.ready_entries().is_empty());
    }

    #[test]
    fn retain_squashes() {
        let mut q = IssueQueue::new(8);
        for i in 0..6 {
            q.push(InstId(i));
        }
        q.retain(|id| id.0 % 2 == 0);
        let order: Vec<u32> = q.iter().map(|i| i.0).collect();
        assert_eq!(order, [0, 2, 4]);
        assert!(q.contains(InstId(4)));
        assert!(!q.contains(InstId(3)));
        assert!(q.remove(InstId(4)), "position index survives a retain");
    }
}
