//! Issue queues (IQ / FQ / LQ).
//!
//! Entries stay insertion-ordered, which is program order per thread and
//! dispatch order globally — the issue stage scans oldest-first, the
//! standard heuristic. Capacities come from the pipeline model (Fig 2(a)).

use crate::inst::InstId;

/// One issue queue: an insertion-ordered, capacity-bounded list.
pub struct IssueQueue {
    entries: Vec<InstId>,
    capacity: usize,
}

impl IssueQueue {
    pub fn new(capacity: usize) -> Self {
        IssueQueue { entries: Vec::with_capacity(capacity), capacity }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Insert at the tail. Returns `false` when full (dispatch stalls).
    pub fn push(&mut self, id: InstId) -> bool {
        if !self.has_space() {
            return false;
        }
        self.entries.push(id);
        true
    }

    /// Remove a specific instruction (after issue). O(n), preserving order.
    pub fn remove(&mut self, id: InstId) -> bool {
        if let Some(pos) = self.entries.iter().position(|&e| e == id) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Oldest-first iteration.
    pub fn iter(&self) -> impl Iterator<Item = InstId> + '_ {
        self.entries.iter().copied()
    }

    /// Keep only entries satisfying `f` (squash support).
    pub fn retain(&mut self, f: impl FnMut(&InstId) -> bool) {
        self.entries.retain(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_enforced() {
        let mut q = IssueQueue::new(2);
        assert!(q.push(InstId(1)));
        assert!(q.push(InstId(2)));
        assert!(!q.push(InstId(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn oldest_first_iteration() {
        let mut q = IssueQueue::new(4);
        for i in [5, 1, 9] {
            q.push(InstId(i));
        }
        let order: Vec<u32> = q.iter().map(|i| i.0).collect();
        assert_eq!(order, [5, 1, 9], "insertion order preserved");
    }

    #[test]
    fn remove_preserves_order() {
        let mut q = IssueQueue::new(4);
        for i in 0..4 {
            q.push(InstId(i));
        }
        assert!(q.remove(InstId(1)));
        assert!(!q.remove(InstId(99)));
        let order: Vec<u32> = q.iter().map(|i| i.0).collect();
        assert_eq!(order, [0, 2, 3]);
        assert!(q.has_space());
    }

    #[test]
    fn retain_squashes() {
        let mut q = IssueQueue::new(8);
        for i in 0..6 {
            q.push(InstId(i));
        }
        q.retain(|id| id.0 % 2 == 0);
        let order: Vec<u32> = q.iter().map(|i| i.0).collect();
        assert_eq!(order, [0, 2, 4]);
    }
}
