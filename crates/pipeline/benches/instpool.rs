//! Microbenchmarks for the hot/cold [`InstPool`] layout.
//!
//! These make instruction-record layout regressions visible without a full
//! simulator run: the `churn` group exercises alloc/release slot reuse
//! (fetch/commit traffic), and the `sweep` group streams hot records the
//! way the per-cycle stages do — commit's retire-check poll, writeback's
//! flag reads, dispatch's pending-source countdowns. If `HotInst` grows or
//! the halves get re-merged, the sweep numbers degrade long before a
//! KIPS-level benchmark notices.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use hdsmt_isa::{ArchReg, Op, Pc, SeqNum, StaticInst, ThreadId};
use hdsmt_pipeline::{ColdInst, HotInst, InstId, InstPool, InstState};
use hdsmt_trace::DynInst;

/// An M8-scale in-flight population: 4 threads × 256 ROB entries plus
/// front-end slack, matching the processor's worst-case pool sizing.
const POOL_CAP: usize = 4 * 256 + 128;

fn record(seq: u64) -> (HotInst, ColdInst) {
    let d = DynInst {
        pc: Pc(0x1000 + 4 * seq),
        sinst: StaticInst::alu(Op::IntAlu, ArchReg::int((seq % 31) as u8 + 1), [None, None]),
        addr: 0,
        ctrl: None,
    };
    (HotInst::new(ThreadId((seq % 4) as u8), 0, SeqNum(seq), Op::IntAlu, false), ColdInst::new(d))
}

/// A pool filled to its steady-state population.
fn full_pool() -> (InstPool, Vec<InstId>) {
    let mut pool = InstPool::new(POOL_CAP);
    let ids = (0..POOL_CAP as u64)
        .map(|s| {
            let (h, c) = record(s);
            pool.alloc(h, c)
        })
        .collect();
    (pool, ids)
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("instpool_churn");
    g.throughput(Throughput::Elements(1));
    // Fetch/commit traffic at steady state: release the oldest slot, then
    // allocate a fresh record into it (LIFO reuse, no slab growth).
    g.bench_function("alloc_release_reuse", |b| {
        let (mut pool, ids) = full_pool();
        let mut next = ids[0];
        let mut seq = POOL_CAP as u64;
        b.iter(|| {
            pool.release(next);
            let (h, c) = record(seq);
            seq += 1;
            next = pool.alloc(h, c);
            black_box(next)
        })
    });
    g.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("instpool_sweep");
    let (mut pool, ids) = full_pool();
    for (i, &id) in ids.iter().enumerate() {
        let h = pool.hot_mut(id);
        h.set_state(if i % 3 == 0 { InstState::Done } else { InstState::Executing });
        h.ready_cycle = (i % 7) as u64;
    }
    g.throughput(Throughput::Elements(ids.len() as u64));
    // Commit-style poll: state + ready_cycle of every in-flight record.
    // This is the access pattern the hot/cold split exists for — the whole
    // population's hot halves fit in a fraction of the cache the unified
    // records needed.
    g.bench_function("hot_retire_check", |b| {
        let now = 3u64;
        b.iter(|| {
            let mut retirable = 0u32;
            for &id in &ids {
                let h = pool.hot(id);
                if h.state() == InstState::Done && h.ready_cycle <= now {
                    retirable += 1;
                }
            }
            black_box(retirable)
        })
    });
    // Writeback/squash-style flag scan over the packed bitfield byte.
    g.bench_function("hot_flag_scan", |b| {
        b.iter(|| {
            let mut live = 0u32;
            for &id in &ids {
                let h = pool.hot(id);
                if !h.is_squashed() && !h.is_wrong_path() {
                    live += 1;
                }
            }
            black_box(live)
        })
    });
    // The contrast case: a sweep that insists on the cold half too,
    // modelling what every stage paid before the split.
    g.bench_function("hot_plus_cold", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &id in &ids {
                let h = pool.hot(id);
                let c = pool.cold(id);
                acc = acc.wrapping_add(h.seq.0).wrapping_add(c.d.addr);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_churn, bench_sweep);
criterion_main!(benches);
