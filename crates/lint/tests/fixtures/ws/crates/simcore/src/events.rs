//! Fixture: clean counterpart for the `timeline` rule — the module
//! declares time-bearing fields but routes them through the timeline.

use crate::clock::Pending;

/// Scheduled wakeup tracked on the timeline (the word `timeline` in
/// code text exempts the file, matching the ROADMAP contract).
pub struct Wakeup {
    pub due_cycle: u64,
    pub slot: usize,
}

/// Pretend hand-off to the timeline subsystem.
pub fn schedule(timeline: &mut Vec<Wakeup>, p: &Pending) {
    timeline.push(Wakeup {
        due_cycle: p.ready_cycle,
        slot: p.payload as usize,
    });
}
