//! Fixture: seeded `determinism` and `timeline` violations.

use std::collections::HashMap;
use std::time::Instant;

/// Event record with a time-bearing field and no Timeline reference.
pub struct Pending {
    pub ready_cycle: u64,
    pub payload: u32,
}

/// Wall-clock read inside simulator-core code.
pub fn stamp() -> Instant {
    Instant::now()
}

/// Nondeterministic iteration order: the seeded hash-container violation.
pub fn tally(keys: &[u32]) -> HashMap<u32, usize> {
    let mut m = HashMap::new();
    for k in keys {
        *m.entry(*k).or_insert(0) += 1;
    }
    m
}
