//! Fixture: clean simulator-core crate root. No wall-clock reads, no
//! hash containers, no undocumented time-bearing state — the negative
//! control for the `determinism` and `timeline` rules.

#![forbid(unsafe_code)]

pub mod clock;

use std::collections::BTreeMap;

/// Deterministic by construction: ordered map, no wall clock.
pub fn histogram(samples: &[u64]) -> BTreeMap<u64, usize> {
    let mut h = BTreeMap::new();
    for s in samples {
        *h.entry(*s).or_insert(0) += 1;
    }
    h
}
