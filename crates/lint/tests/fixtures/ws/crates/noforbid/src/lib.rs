//! Fixture: crate with zero `unsafe` that fails to declare
//! `#![forbid(unsafe_code)]`, plus a bare `#[allow]` with no
//! justification comment.

#[allow(dead_code)]
fn unused() -> u8 {
    42
}

pub fn answer() -> u8 {
    41
}
