//! Fixture: `unsafe-audit` positive and negative cases — one
//! undocumented `unsafe` block (violation) and one carrying a
//! `// SAFETY:` comment (clean).

/// Seeded: `unsafe` with no SAFETY comment anywhere nearby.
pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

/// Clean: the invariant is documented on the preceding line.
pub fn documented(slice: &[u8]) -> u8 {
    // SAFETY: the caller guarantees `slice` is non-empty.
    unsafe { *slice.get_unchecked(0) }
}
