//! Fixture: seeded `panic-safety` violations on a durability path,
//! plus one live inline allow, one stale inline allow, and one line
//! suppressed via the fixture `lint.toml`.

#![forbid(unsafe_code)]

/// Seeded: `unwrap()` on a durability path.
pub fn first(bytes: &[u8]) -> u8 {
    bytes.first().copied().unwrap()
}

/// Seeded: `panic!` and `expect()` on a durability path.
pub fn header(bytes: &[u8]) -> &[u8] {
    if bytes.is_empty() {
        panic!("empty record");
    }
    bytes.get(..4).expect("short record")
}

/// Seeded: range slice-index that can panic on malformed input.
pub fn body(bytes: &[u8]) -> &[u8] {
    &bytes[4..]
}

/// Live inline allow: same-line annotation suppresses the finding.
pub fn digest_prefix(digest: &str) -> &str {
    &digest[..8] // LINT-ALLOW(panic-safety): fixture digest is always 64 hex chars
}

// LINT-ALLOW(panic-safety): stale annotation that suppresses nothing
pub fn harmless() -> u8 {
    7
}

/// Suppressed via the fixture `lint.toml` (its `contains` filter
/// matches the marker comment on the offending line).
pub fn toml_allowed(bytes: &[u8]) -> u8 {
    bytes.first().copied().unwrap() // toml-allowed record tail
}
