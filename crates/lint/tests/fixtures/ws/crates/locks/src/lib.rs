//! Fixture: seeded two-lock order inversion — `transfer_ab` acquires
//! `alpha` then `beta`, `transfer_ba` acquires them in the opposite
//! order, so the lock graph contains the cycle `alpha -> beta -> alpha`.

#![forbid(unsafe_code)]

pub mod consistent;

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn transfer_ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop((a, b));
    }

    pub fn transfer_ba(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        drop((a, b));
    }
}
