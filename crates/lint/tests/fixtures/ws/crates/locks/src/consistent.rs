//! Fixture: clean counterpart — every function acquires `alpha` before
//! `beta`, so the lock graph is acyclic.

use std::sync::Mutex;

pub struct Ordered {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Ordered {
    pub fn deposit(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop((a, b));
    }

    pub fn withdraw(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop((a, b));
    }
}
