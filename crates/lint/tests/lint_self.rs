//! Fixture self-tests: run the full rule registry over the seeded
//! workspace in `tests/fixtures/ws` (one violation per rule plus clean
//! counterparts) and over the real repository (which must be clean).

use std::path::{Path, PathBuf};

use hdsmt_lint::{run, LintConfig};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

/// Scopes matching the fixture tree, with an empty allowlist so every
/// seeded violation (except inline-allowed lines) surfaces.
fn fixture_cfg() -> LintConfig {
    LintConfig {
        determinism_paths: vec!["crates/simcore/src".into()],
        panic_safety_paths: vec!["crates/durable/src".into()],
        lock_order_paths: vec!["crates/locks/src".into()],
        timeline_paths: vec!["crates/simcore/src".into()],
        allows: Vec::new(),
    }
}

fn fixture_toml_cfg() -> LintConfig {
    let text = std::fs::read_to_string(fixture_root().join("lint.toml"))
        .expect("fixture lint.toml must exist");
    LintConfig::parse(&text).expect("fixture lint.toml must parse")
}

/// Every seeded violation, and nothing else, is reported — pinned as
/// `(rule, path, line)` tuples in report order.
#[test]
fn fixture_violations_match_golden() {
    let report = run(&fixture_root(), &fixture_cfg()).expect("fixture scan");
    let got: Vec<(&str, &str, usize)> =
        report.violations().map(|f| (f.rule, f.path.as_str(), f.line)).collect();
    let want: Vec<(&str, &str, usize)> = vec![
        ("panic-safety", "crates/durable/src/lib.rs", 9),
        ("panic-safety", "crates/durable/src/lib.rs", 15),
        ("panic-safety", "crates/durable/src/lib.rs", 17),
        ("panic-safety", "crates/durable/src/lib.rs", 22),
        ("allow-justification", "crates/durable/src/lib.rs", 30),
        ("panic-safety", "crates/durable/src/lib.rs", 38),
        ("lock-order", "crates/locks/src/lib.rs", 25),
        ("unsafe-audit", "crates/noforbid/src/lib.rs", 1),
        ("allow-justification", "crates/noforbid/src/lib.rs", 5),
        ("determinism", "crates/simcore/src/clock.rs", 3),
        ("timeline", "crates/simcore/src/clock.rs", 8),
        ("determinism", "crates/simcore/src/clock.rs", 14),
        ("determinism", "crates/simcore/src/clock.rs", 18),
        ("determinism", "crates/simcore/src/clock.rs", 19),
        ("unsafe-audit", "crates/unsound/src/lib.rs", 7),
    ];
    assert_eq!(got, want, "seeded fixture violations drifted");
}

/// Acceptance: the lock-order rule detects the seeded two-lock
/// inversion (`transfer_ab` vs `transfer_ba`) and stays quiet on the
/// consistently-ordered counterpart.
#[test]
fn lock_order_detects_seeded_inversion() {
    let report = run(&fixture_root(), &fixture_cfg()).expect("fixture scan");
    let cycles: Vec<_> = report.findings.iter().filter(|f| f.rule == "lock-order").collect();
    assert_eq!(cycles.len(), 1, "exactly one seeded inversion expected");
    let f = cycles[0];
    assert_eq!(f.path, "crates/locks/src/lib.rs");
    assert!(
        f.message.contains("alpha -> beta -> alpha"),
        "cycle order missing from message: {}",
        f.message
    );
    assert!(
        f.message.contains("transfer_ba"),
        "closing function missing from message: {}",
        f.message
    );
    assert!(
        !report.findings.iter().any(|f| f.path == "crates/locks/src/consistent.rs"),
        "consistently-ordered counterpart must be clean"
    );
}

/// A live `// LINT-ALLOW(rule): reason` suppresses its finding and
/// records the justification; a stale one is itself a violation.
#[test]
fn inline_allow_round_trip() {
    let report = run(&fixture_root(), &fixture_cfg()).expect("fixture scan");
    let allowed = report
        .findings
        .iter()
        .find(|f| f.path == "crates/durable/src/lib.rs" && f.line == 27)
        .expect("range-index finding on the inline-allowed line");
    assert_eq!(
        allowed.allowed.as_deref(),
        Some("fixture digest is always 64 hex chars"),
        "inline allow must suppress with its justification"
    );
    let stale = report
        .violations()
        .find(|f| f.path == "crates/durable/src/lib.rs" && f.line == 30)
        .expect("stale LINT-ALLOW must be reported");
    assert_eq!(stale.rule, "allow-justification");
    assert!(stale.message.contains("suppresses nothing"));
}

/// The fixture `lint.toml` overrides the path scopes and its
/// `[[allow]]` entry suppresses exactly the `toml_allowed` line.
#[test]
fn lint_toml_allowlist_round_trip() {
    let cfg = fixture_toml_cfg();
    assert_eq!(cfg.determinism_paths, vec!["crates/simcore/src"]);
    assert_eq!(cfg.panic_safety_paths, vec!["crates/durable/src"]);
    assert_eq!(cfg.allows.len(), 1);

    let base = run(&fixture_root(), &fixture_cfg()).expect("fixture scan");
    let report = run(&fixture_root(), &cfg).expect("fixture scan");
    assert_eq!(
        report.violations().count() + 1,
        base.violations().count(),
        "the allowlist entry must suppress exactly one violation"
    );
    let suppressed = report
        .findings
        .iter()
        .find(|f| f.path == "crates/durable/src/lib.rs" && f.line == 38)
        .expect("toml_allowed finding present");
    assert_eq!(suppressed.allowed.as_deref(), Some("fixture: caller never passes an empty record"));
    assert!(report.unused_allows.is_empty(), "the entry matched, so it must not be flagged unused");
}

/// An allowlist entry that suppresses nothing is surfaced so stale
/// config rots loudly, not silently.
#[test]
fn unused_allow_entry_is_reported() {
    let mut cfg = fixture_cfg();
    cfg.allows.push(hdsmt_lint::AllowEntry {
        rule: "determinism".into(),
        path: "crates/locks/src".into(),
        contains: None,
        reason: "never matches anything".into(),
    });
    let report = run(&fixture_root(), &cfg).expect("fixture scan");
    assert_eq!(report.unused_allows, vec!["rule=determinism path=crates/locks/src".to_string()]);
}

/// Golden JSON: the machine-readable report for the fixture workspace
/// (scopes + allowlist from the fixture `lint.toml`, exactly what
/// `hdsmt-lint --root tests/fixtures/ws --format json` emits) is pinned
/// byte-for-byte.
#[test]
fn fixture_json_report_matches_golden() {
    let report = run(&fixture_root(), &fixture_toml_cfg()).expect("fixture scan");
    let golden = include_str!("fixtures/golden_report.json");
    assert_eq!(report.render_json(), golden, "golden JSON report drifted");
}

/// The real workspace must lint clean under the default configuration —
/// the same invariant CI's lint-gate enforces.
#[test]
fn repository_is_clean_under_default_config() {
    let repo_root =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root");
    let report = run(&repo_root, &LintConfig::default()).expect("workspace scan");
    let offenders: Vec<String> = report
        .violations()
        .map(|f| format!("{}:{} [{}] {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(offenders.is_empty(), "workspace must be lint-clean:\n{}", offenders.join("\n"));
}
