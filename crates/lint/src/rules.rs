//! The rule registry: determinism, panic-safety, lock-order, timeline
//! contract, unsafe audit, and allow-justification hygiene.
//!
//! Every rule works on the lexed per-line view from [`crate::lexer`]:
//! the `code` channel for token matching (so strings and comments can
//! never trigger a rule) and the `comment` channel for `LINT-ALLOW` /
//! `SAFETY:` annotations. Lines inside `#[cfg(test)]` regions are exempt
//! from every rule — the invariants protect shipped simulator and
//! daemon code, not test scaffolding.

use std::collections::BTreeMap;

use crate::config::LintConfig;
use crate::lexer::FileScan;
use crate::report::Finding;

/// All registered rule ids, in documentation order.
pub const RULE_IDS: &[&str] = &[
    "determinism",
    "panic-safety",
    "lock-order",
    "timeline",
    "unsafe-audit",
    "allow-justification",
];

/// An inline `// LINT-ALLOW(rule): reason` annotation.
#[derive(Debug)]
pub struct InlineAllow {
    pub rule: String,
    pub reason: String,
    /// 1-based line the comment sits on.
    pub comment_line: usize,
    /// 1-based line the allow applies to (same line, or the next code
    /// line when the comment stands alone).
    pub target_line: usize,
    pub used: bool,
}

/// Does `haystack` contain `needle` as a whole word (identifier-boundary
/// on both sides)?
fn contains_word(haystack: &str, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Is `path` (root-relative, `/`-separated) inside any of `scopes`?
/// A scope matches the exact file or any file below the directory.
pub fn in_scope(path: &str, scopes: &[String]) -> bool {
    scopes.iter().any(|s| {
        let s = s.trim_end_matches('/');
        path == s || path.starts_with(&format!("{s}/"))
    })
}

/// Parse inline `LINT-ALLOW` annotations; malformed ones become
/// `allow-justification` findings immediately.
pub fn collect_inline_allows(
    path: &str,
    scan: &FileScan,
    findings: &mut Vec<Finding>,
) -> Vec<InlineAllow> {
    let mut allows = Vec::new();
    for (idx, line) in scan.lines.iter().enumerate() {
        // The annotation must BE the comment (after doc markers), not a
        // mid-sentence mention — otherwise prose documenting the grammar
        // would itself be parsed as an annotation attempt.
        let trimmed = line.comment.trim_start_matches(['/', '!', ' ', '\t']);
        let Some(rest) = trimmed.strip_prefix("LINT-ALLOW") else {
            continue;
        };
        let lineno = idx + 1;
        let malformed = |findings: &mut Vec<Finding>, why: &str| {
            findings.push(Finding {
                rule: "allow-justification",
                path: path.to_string(),
                line: lineno,
                message: format!("malformed LINT-ALLOW: {why}"),
                allowed: None,
            });
        };
        let Some(rest) = rest.strip_prefix('(') else {
            malformed(findings, "expected `LINT-ALLOW(rule): reason`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            malformed(findings, "missing `)` after rule id");
            continue;
        };
        let rule = rest[..close].trim();
        if !RULE_IDS.contains(&rule) {
            malformed(findings, &format!("unknown rule `{rule}`"));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            malformed(findings, "empty justification — explain why");
            continue;
        }
        // A standalone comment line annotates the next code line.
        let mut target = lineno;
        if line.code.trim().is_empty() {
            for (j, later) in scan.lines.iter().enumerate().skip(idx + 1) {
                if !later.code.trim().is_empty() {
                    target = j + 1;
                    break;
                }
            }
        }
        allows.push(InlineAllow {
            rule: rule.to_string(),
            reason: reason.to_string(),
            comment_line: lineno,
            target_line: target,
            used: false,
        });
    }
    allows
}

/// Rule 1 — determinism: simulator-core code must not read wall-clock
/// time, sleep, or touch `HashMap`/`HashSet` (whose iteration order can
/// leak into statistics and break bit-identical reproduction).
pub fn check_determinism(path: &str, scan: &FileScan, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !in_scope(path, &cfg.determinism_paths) {
        return;
    }
    const CLOCK_TOKENS: &[(&str, &str)] = &[
        ("Instant::now", "wall-clock read (`Instant::now`)"),
        ("SystemTime::now", "wall-clock read (`SystemTime::now`)"),
        ("thread::sleep", "wall-clock dependence (`thread::sleep`)"),
    ];
    for (idx, line) in scan.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (token, what) in CLOCK_TOKENS {
            if line.code.contains(token) {
                out.push(Finding {
                    rule: "determinism",
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!("{what} in simulator-core code"),
                    allowed: None,
                });
            }
        }
        for ty in ["HashMap", "HashSet"] {
            if contains_word(&line.code, ty) {
                out.push(Finding {
                    rule: "determinism",
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`{ty}` in simulator-core code — iteration order is \
                         nondeterministic; use `BTree{}` or annotate why order \
                         cannot leak into statistics",
                        &ty[4..]
                    ),
                    allowed: None,
                });
            }
        }
    }
}

/// Rule 2 — panic-safety: durability-path code (journal, cache, fsck,
/// serve) must not be able to panic: no `unwrap`/`expect`, no panic-family
/// macros, no range slice-indexing.
pub fn check_panic_safety(path: &str, scan: &FileScan, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !in_scope(path, &cfg.panic_safety_paths) {
        return;
    }
    const PANIC_TOKENS: &[(&str, &str)] = &[
        (".unwrap()", "`unwrap()`"),
        (".expect(", "`expect()`"),
        ("panic!", "`panic!`"),
        ("unreachable!", "`unreachable!`"),
        ("todo!", "`todo!`"),
        ("unimplemented!", "`unimplemented!`"),
    ];
    for (idx, line) in scan.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (token, what) in PANIC_TOKENS {
            if line.code.contains(token) {
                out.push(Finding {
                    rule: "panic-safety",
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "{what} on a durability path — propagate the error \
                         (PR 8 contract: degrade, don't die)"
                    ),
                    allowed: None,
                });
            }
        }
        if has_range_index(&line.code) {
            out.push(Finding {
                rule: "panic-safety",
                path: path.to_string(),
                line: idx + 1,
                message: "range slice-index on a durability path — use `.get(..)` \
                          so malformed input degrades instead of panicking"
                    .to_string(),
                allowed: None,
            });
        }
    }
}

/// Detect `expr[a..b]`-style range indexing: a `[` immediately preceded
/// by an index-able expression (identifier, `)`, or `]`) whose bracket
/// body contains `..`. Slice *patterns* (`[a, .., b]`) and array types
/// (`[u8; 4]`) don't match because their `[` is not preceded by an
/// expression. `expr[..]` (full range) cannot panic and is exempt.
fn has_range_index(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            let indexable = i > 0
                && (is_ident_byte(bytes[i - 1]) || bytes[i - 1] == b')' || bytes[i - 1] == b']');
            if indexable {
                // Scan the bracket body at depth 0 for `..`.
                let mut depth = 0usize;
                let mut j = i + 1;
                let mut body = String::new();
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' | b'(' => depth += 1,
                        b']' if depth == 0 => break,
                        b']' | b')' => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                    if depth == 0 {
                        body.push(bytes[j] as char);
                    }
                    j += 1;
                }
                let trimmed = body.trim();
                if body.contains("..") && trimmed != ".." {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

/// Rule 3 — lock-order: extract per-function `.lock()` acquisition
/// sequences, build the (file-scoped) lock graph, and flag cycles as
/// deadlock candidates.
///
/// Lock identity is the identifier immediately before `.lock()` (e.g.
/// `self.inner.lock()` → `inner`) — a lexical approximation that matches
/// how the serve modules name their mutexes. Within one function, the
/// first acquisition of `a` before the first acquisition of `b` adds the
/// edge `a -> b`; a cycle in the resulting graph means two call paths
/// can acquire the same pair of locks in opposite orders.
pub fn check_lock_order(path: &str, scan: &FileScan, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !in_scope(path, &cfg.lock_order_paths) {
        return;
    }
    // edges[a][b] = (function, line) where the a-then-b order was seen.
    let mut edges: BTreeMap<String, BTreeMap<String, (String, usize)>> = BTreeMap::new();

    let mut depth: i64 = 0;
    let mut pending_fn: Option<String> = None;
    // Stack of (fn name, depth at its opening brace, first-acquisition order).
    let mut fn_stack: Vec<(String, i64, Vec<String>)> = Vec::new();

    for (idx, line) in scan.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if let Some(name) = fn_decl_name(code) {
            pending_fn = Some(name);
        }
        // Walk the line positionally so braces and `.lock()` calls are
        // seen in source order (a lock on the declaration line must land
        // inside the function that just opened). Edges are added eagerly
        // at acquisition time (first-acquisition order per function).
        let bytes = code.as_bytes();
        let mut k = 0usize;
        while k < bytes.len() {
            if code[k..].starts_with(".lock()") {
                if let Some(lock) = ident_before(code, k) {
                    if let Some((fn_name, _, seq)) = fn_stack.last_mut() {
                        if !seq.contains(&lock) {
                            for held in seq.iter() {
                                edges
                                    .entry(held.clone())
                                    .or_default()
                                    .entry(lock.clone())
                                    .or_insert_with(|| (fn_name.clone(), idx + 1));
                            }
                            seq.push(lock);
                        }
                    }
                }
                k += ".lock()".len();
                continue;
            }
            match bytes[k] {
                b'{' => {
                    if let Some(name) = pending_fn.take() {
                        fn_stack.push((name, depth, Vec::new()));
                    }
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    if fn_stack.last().is_some_and(|(_, d, _)| depth <= *d) {
                        fn_stack.pop();
                    }
                }
                b';' => {
                    // `fn f();` in a trait — no body to track.
                    pending_fn = None;
                }
                _ => {}
            }
            k += 1;
        }
    }

    // Cycle detection: iterative DFS with three colors over the edge map.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white, 1 grey, 2 black
    let mut reported: Vec<String> = Vec::new();
    let nodes: Vec<&str> = edges.keys().map(String::as_str).collect();
    for &start in &nodes {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Stack holds (node, iterator index into its successor list).
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path_stack: Vec<&str> = vec![start];
        color.insert(start, 1);
        while let Some((node, succ_idx)) = stack.last_mut() {
            let succs: Vec<&str> = edges
                .get(*node)
                .map(|m| m.keys().map(String::as_str).collect())
                .unwrap_or_default();
            if *succ_idx >= succs.len() {
                color.insert(*node, 2);
                path_stack.pop();
                stack.pop();
                continue;
            }
            let next = succs[*succ_idx];
            *succ_idx += 1;
            match color.get(next).copied().unwrap_or(0) {
                0 => {
                    color.insert(next, 1);
                    stack.push((next, 0));
                    path_stack.push(next);
                }
                1 => {
                    // Back edge: reconstruct the cycle from path_stack.
                    let cycle_start = path_stack.iter().position(|n| *n == next).unwrap_or(0);
                    let cycle: Vec<&str> = path_stack[cycle_start..].to_vec();
                    let key = canonical_cycle(&cycle);
                    if !reported.contains(&key) {
                        reported.push(key);
                        let closing = path_stack.last().copied().unwrap_or(next);
                        let (fn_name, lineno) = edges
                            .get(closing)
                            .and_then(|m| m.get(next))
                            .cloned()
                            .unwrap_or_else(|| (String::from("?"), 1));
                        let mut order: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
                        order.push(next.to_string());
                        out.push(Finding {
                            rule: "lock-order",
                            path: path.to_string(),
                            line: lineno,
                            message: format!(
                                "lock-order cycle {} (closing edge `{closing}` -> `{next}` \
                                 in fn `{fn_name}`): opposite acquisition orders can deadlock",
                                order.join(" -> ")
                            ),
                            allowed: None,
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

/// Rotate a cycle to start at its lexicographically smallest node so the
/// same cycle discovered from different entry points dedupes.
fn canonical_cycle(cycle: &[&str]) -> String {
    if cycle.is_empty() {
        return String::new();
    }
    let min_idx = cycle.iter().enumerate().min_by_key(|(_, s)| **s).map(|(i, _)| i).unwrap_or(0);
    let mut rotated: Vec<&str> = Vec::with_capacity(cycle.len());
    for k in 0..cycle.len() {
        rotated.push(cycle[(min_idx + k) % cycle.len()]);
    }
    rotated.join("->")
}

/// Extract the declared function name from a code line, if any.
fn fn_decl_name(code: &str) -> Option<String> {
    let mut from = 0usize;
    while let Some(pos) = code[from..].find("fn ") {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(code.as_bytes()[at - 1]);
        if before_ok {
            let rest = &code[at + 3..];
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        from = at + 3;
    }
    None
}

/// The identifier immediately before position `at` (which points at the
/// `.` of `.lock()`), skipping nothing else: `self.inner.lock()` → `inner`.
fn ident_before(code: &str, at: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let end = at;
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    Some(code[start..end].to_string())
}

/// Rule 4 — timeline contract: a `crates/core` module that introduces
/// time-bearing fields (`*_cycle`, `*due*`, `*expiry*`) must reference
/// the `timeline` module / `act::` helpers, so scheduled state stays on
/// the checkpointable Timeline instead of ad-hoc counters.
pub fn check_timeline(path: &str, scan: &FileScan, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !in_scope(path, &cfg.timeline_paths) {
        return;
    }
    let references_timeline = scan.lines.iter().any(|l| {
        contains_word(&l.code, "timeline")
            || contains_word(&l.code, "Timeline")
            || l.code.contains("act::")
    });
    if references_timeline {
        return;
    }
    for (idx, line) in scan.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if let Some(field) = time_bearing_field(&line.code) {
            out.push(Finding {
                rule: "timeline",
                path: path.to_string(),
                line: idx + 1,
                message: format!(
                    "time-bearing field `{field}` in a module that never references \
                     `timeline`/`act::` — scheduled state must live on the Timeline \
                     (ROADMAP contract)"
                ),
                allowed: None,
            });
        }
    }
}

/// Detect `pub? ident: Type,` field declarations whose identifier looks
/// time-bearing: `*_cycle`, contains `due`, or contains `expiry`.
fn time_bearing_field(code: &str) -> Option<String> {
    let trimmed = code.trim();
    if !trimmed.ends_with(',') {
        return None;
    }
    let mut rest = trimmed;
    for prefix in ["pub(crate) ", "pub(super) ", "pub "] {
        if let Some(r) = rest.strip_prefix(prefix) {
            rest = r;
            break;
        }
    }
    let (ident, after) = rest.split_once(':')?;
    let ident = ident.trim();
    if ident.is_empty()
        || !ident.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return None;
    }
    // `match` guard arms like `x if c => ..` never end with `ident: ty,`;
    // struct-literal inits (`field: 0,`) do match — same module, same rule.
    let _ = after;
    if ident.ends_with("_cycle") || ident.contains("due") || ident.contains("expiry") {
        return Some(ident.to_string());
    }
    None
}

/// Rule 5a — unsafe audit: every `unsafe` in non-test code needs a
/// `// SAFETY:` comment on the same line or one of the three preceding
/// lines.
pub fn check_unsafe_audit(path: &str, scan: &FileScan, out: &mut Vec<Finding>) {
    for (idx, line) in scan.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if !contains_word(&line.code, "unsafe") {
            continue;
        }
        let documented =
            (idx.saturating_sub(3)..=idx).any(|j| scan.lines[j].comment.contains("SAFETY:"));
        if !documented {
            out.push(Finding {
                rule: "unsafe-audit",
                path: path.to_string(),
                line: idx + 1,
                message: "`unsafe` without a `// SAFETY:` comment explaining the invariant"
                    .to_string(),
                allowed: None,
            });
        }
    }
}

/// Does this file contain any `unsafe` in non-test code? (Used by the
/// workspace-level `#![forbid(unsafe_code)]` check.)
pub fn file_has_unsafe(scan: &FileScan) -> bool {
    scan.lines.iter().any(|l| !l.in_test && contains_word(&l.code, "unsafe"))
}

/// Does this crate root opt into `#![forbid(unsafe_code)]`?
pub fn has_forbid_unsafe(scan: &FileScan) -> bool {
    scan.lines.iter().any(|l| l.code.contains("#![forbid(unsafe_code)]"))
}

/// Rule 6 — allow-justification: every `#[allow(...)]` attribute in
/// non-test code must carry a comment (same line or the line above)
/// saying why the lint is suppressed.
pub fn check_allow_justification(path: &str, scan: &FileScan, out: &mut Vec<Finding>) {
    for (idx, line) in scan.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if !line.code.contains("#[allow(") {
            continue;
        }
        let justified = !line.comment.trim().is_empty()
            || (idx > 0 && !scan.lines[idx - 1].comment.trim().is_empty());
        if !justified {
            out.push(Finding {
                rule: "allow-justification",
                path: path.to_string(),
                line: idx + 1,
                message: "`#[allow(..)]` without a justification comment".to_string(),
                allowed: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn cfg_all(path: &str) -> LintConfig {
        LintConfig {
            determinism_paths: vec![path.to_string()],
            panic_safety_paths: vec![path.to_string()],
            lock_order_paths: vec![path.to_string()],
            timeline_paths: vec![path.to_string()],
            allows: Vec::new(),
        }
    }

    #[test]
    fn determinism_flags_hashmap_not_hash_derive() {
        let s = scan("#[derive(Hash)]\nstruct S;\nuse std::collections::HashMap;\n");
        let mut out = Vec::new();
        check_determinism("x.rs", &s, &cfg_all("x.rs"), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn panic_safety_ignores_unwrap_or_else() {
        let s = scan("a.lock().unwrap_or_else(|e| e.into_inner());\nb.unwrap();\n");
        let mut out = Vec::new();
        check_panic_safety("x.rs", &s, &cfg_all("x.rs"), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn range_index_detection() {
        assert!(has_range_index("let a = &key[..2];"));
        assert!(has_range_index("let a = &b[i..j + 1];"));
        assert!(!has_range_index("let a = &b[..];"));
        assert!(!has_range_index("let a: [u8; 4] = x;"));
        assert!(!has_range_index("if let [first, .., last] = s {}"));
        assert!(!has_range_index("let v = vec![1, 2];"));
    }

    #[test]
    fn lock_order_detects_inversion() {
        let src = "fn ab(&self) { let _a = self.a.lock(); let _b = self.b.lock(); }\n\
                   fn ba(&self) { let _b = self.b.lock(); let _a = self.a.lock(); }\n";
        let s = scan(src);
        let mut out = Vec::new();
        check_lock_order("x.rs", &s, &cfg_all("x.rs"), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cycle"));
    }

    #[test]
    fn lock_order_accepts_consistent_order() {
        let src = "fn ab(&self) { let _a = self.a.lock(); let _b = self.b.lock(); }\n\
                   fn also_ab(&self) { let _a = self.a.lock(); let _b = self.b.lock(); }\n";
        let s = scan(src);
        let mut out = Vec::new();
        check_lock_order("x.rs", &s, &cfg_all("x.rs"), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn timeline_requires_reference() {
        let bad = scan("struct S {\n    pub ready_cycle: u64,\n}\n");
        let mut out = Vec::new();
        check_timeline("x.rs", &bad, &cfg_all("x.rs"), &mut out);
        assert_eq!(out.len(), 1);
        let good =
            scan("use crate::timeline::Timeline;\nstruct S {\n    pub ready_cycle: u64,\n}\n");
        let mut out2 = Vec::new();
        check_timeline("x.rs", &good, &cfg_all("x.rs"), &mut out2);
        assert!(out2.is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = scan("unsafe { do_it() }\n");
        let mut out = Vec::new();
        check_unsafe_audit("x.rs", &bad, &mut out);
        assert_eq!(out.len(), 1);
        let good = scan("// SAFETY: handler only sets an AtomicBool\nunsafe { do_it() }\n");
        let mut out2 = Vec::new();
        check_unsafe_audit("x.rs", &good, &mut out2);
        assert!(out2.is_empty());
        // forbid(unsafe_code) must not count as an unsafe use.
        let forbid = scan("#![forbid(unsafe_code)]\n");
        assert!(!file_has_unsafe(&forbid));
    }

    #[test]
    fn inline_allow_parsing() {
        let s = scan(
            "x.unwrap(); // LINT-ALLOW(panic-safety): checked two lines up\n\
             // LINT-ALLOW(bogus-rule): nope\n\
             // LINT-ALLOW(determinism):\n",
        );
        let mut findings = Vec::new();
        let allows = collect_inline_allows("x.rs", &s, &mut findings);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "panic-safety");
        assert_eq!(allows[0].target_line, 1);
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let s = scan(
            "// LINT-ALLOW(panic-safety): digest is always 64 hex chars\n\
             let short = &digest[..8];\n",
        );
        let mut findings = Vec::new();
        let allows = collect_inline_allows("x.rs", &s, &mut findings);
        assert_eq!(allows[0].target_line, 2);
    }
}
