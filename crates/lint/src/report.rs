//! Findings and report rendering (human text and `--format json`).
//!
//! JSON is emitted by hand (the lint crate is dependency-free and must
//! not pull in the vendored serde shims: it has to stay buildable even
//! while the rest of the workspace is mid-refactor). The schema is
//! versioned so the CI artifact stays machine-consumable.

use std::fmt::Write as _;

/// A single rule violation (possibly suppressed by an allow).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `determinism`.
    pub rule: &'static str,
    /// Root-relative `/`-separated path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human description of the violation.
    pub message: String,
    /// `Some(reason)` when suppressed by `LINT-ALLOW` or `lint.toml`.
    pub allowed: Option<String>,
}

/// Aggregate result of a lint run.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// `lint.toml` allow entries that matched nothing (kept as warnings
    /// so the allowlist cannot silently rot).
    pub unused_allows: Vec<String>,
}

impl Report {
    /// Findings not suppressed by any allow.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none())
    }

    /// True when the tree passes (`--deny` exits 0).
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
    }

    /// Canonical ordering so output is stable across platforms.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.unused_allows.sort();
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            match &f.allowed {
                None => {
                    let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
                }
                Some(reason) => {
                    let _ = writeln!(
                        out,
                        "{}:{}: [{}] allowed: {} ({})",
                        f.path, f.line, f.rule, f.message, reason
                    );
                }
            }
        }
        for w in &self.unused_allows {
            let _ = writeln!(out, "warning: unused lint.toml allow: {w}");
        }
        let violations = self.violations().count();
        let suppressed = self.findings.len() - violations;
        let _ = writeln!(
            out,
            "{} files scanned, {} violation(s), {} suppressed",
            self.files_scanned, violations, suppressed
        );
        out
    }

    /// Machine-readable report (stable schema, version 1).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violations\": {},", self.violations().count());
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"allowed\": {}",
                json_string(f.rule),
                json_string(&f.path),
                f.line,
                json_string(&f.message),
                match &f.allowed {
                    Some(r) => json_string(r),
                    None => "null".to_string(),
                }
            );
            out.push('}');
        }
        if self.findings.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"unused_allows\": [");
        for (i, w) in self.unused_allows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(w));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escape a string per JSON.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![
                Finding {
                    rule: "determinism",
                    path: "b.rs".into(),
                    line: 3,
                    message: "HashMap in sim core".into(),
                    allowed: None,
                },
                Finding {
                    rule: "panic-safety",
                    path: "a.rs".into(),
                    line: 7,
                    message: "unwrap() on durability path".into(),
                    allowed: Some("checked \"above\"".into()),
                },
            ],
            files_scanned: 2,
            unused_allows: vec![],
        }
    }

    #[test]
    fn sort_orders_by_path_line_rule() {
        let mut r = sample();
        r.sort();
        assert_eq!(r.findings[0].path, "a.rs");
        assert_eq!(r.findings[1].path, "b.rs");
    }

    #[test]
    fn clean_ignores_suppressed() {
        let mut r = sample();
        r.findings.remove(0);
        assert!(r.is_clean());
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn json_escapes_quotes() {
        let r = sample();
        let json = r.render_json();
        assert!(json.contains("checked \\\"above\\\""));
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"clean\": false"));
    }
}
