//! Line-level lexical scanner for Rust sources.
//!
//! `hdsmt-lint` deliberately avoids a full parser (no `syn`, per the
//! vendored-shim policy): every rule it enforces is expressible over a
//! per-line view of the source as long as that view correctly separates
//! *code* from *comments* and *string literals*, and knows which lines
//! belong to `#[cfg(test)]` regions. This module produces that view.
//!
//! For each physical line we keep three projections:
//!
//! * `raw`     — the line exactly as written,
//! * `code`    — the line with comment text removed and string/char
//!   literal *contents* blanked out (delimiters are kept so that, e.g.,
//!   brace counting still sees a balanced file),
//! * `comment` — the comment text of the line (both `//` and `/* */`
//!   bodies), used to find `LINT-ALLOW` and `SAFETY:` annotations.
//!
//! A second pass marks lines inside `#[cfg(test)]` items (the repo
//! convention is a trailing `#[cfg(test)] mod tests { .. }`) so rules can
//! exempt test-only code.

/// One physical source line, decomposed into code and comment channels.
#[derive(Debug, Clone)]
pub struct ScanLine {
    /// The unmodified source line.
    pub raw: String,
    /// Code with comments stripped and literal contents blanked.
    pub code: String,
    /// Comment text (line and block comment bodies) on this line.
    pub comment: String,
    /// True when the line lies inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct FileScan {
    pub lines: Vec<ScanLine>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    CharLit,
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Scan `text` into per-line code/comment channels.
pub fn scan(text: &str) -> FileScan {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<ScanLine> = Vec::new();
    let mut raw = String::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let mut prev_code_char = ' ';

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            lines.push(ScanLine {
                raw: std::mem::take(&mut raw),
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            i += 1;
            continue;
        }
        raw.push(c);
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    raw.push('/');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    raw.push('*');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    mode = Mode::Str;
                    code.push('"');
                    prev_code_char = '"';
                    i += 1;
                    continue;
                }
                // Raw (and raw byte) string literals: r"..", r#".."#, br#".."#.
                if (c == 'r' || c == 'b') && !is_ident_char(prev_code_char) {
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    if c == 'b' && j == i + 1 {
                        // plain b".." byte string
                        if chars.get(j) == Some(&'"') {
                            mode = Mode::Str;
                            code.push('"');
                            prev_code_char = '"';
                            raw.extend(chars[i + 1..=j].iter());
                            i = j + 1;
                            continue;
                        }
                    } else {
                        let mut hashes = 0u8;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') && (c == 'r' || j > i + 1) {
                            mode = Mode::RawStr(hashes);
                            code.push('"');
                            prev_code_char = '"';
                            raw.extend(chars[i + 1..=j].iter());
                            i = j + 1;
                            continue;
                        }
                    }
                    code.push(c);
                    prev_code_char = c;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Distinguish a char literal from a lifetime: a literal
                    // is 'x' or an escape '\..'; a lifetime never closes with
                    // a quote right after its first character.
                    let is_char_lit = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char_lit {
                        mode = Mode::CharLit;
                    }
                    code.push('\'');
                    prev_code_char = '\'';
                    i += 1;
                    continue;
                }
                code.push(c);
                prev_code_char = c;
                i += 1;
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    raw.push('/');
                    if depth == 1 {
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    raw.push('*');
                    comment.push(' ');
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                comment.push(c);
                i += 1;
            }
            Mode::Str => {
                if c == '\\' {
                    if let Some(n) = chars.get(i + 1) {
                        if *n != '\n' {
                            raw.push(*n);
                            i += 2;
                            continue;
                        }
                    }
                    i += 1;
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    prev_code_char = '"';
                    mode = Mode::Code;
                } else {
                    code.push(' ');
                }
                i += 1;
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code.push('"');
                        prev_code_char = '"';
                        for k in 0..hashes as usize {
                            raw.push(chars[i + 1 + k]);
                        }
                        mode = Mode::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
            Mode::CharLit => {
                if c == '\\' {
                    if let Some(n) = chars.get(i + 1) {
                        raw.push(*n);
                        i += 2;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    code.push('\'');
                    prev_code_char = '\'';
                    mode = Mode::Code;
                } else {
                    code.push(' ');
                }
                i += 1;
            }
        }
    }
    if !raw.is_empty() || !code.is_empty() || !comment.is_empty() {
        lines.push(ScanLine { raw, code, comment, in_test: false });
    }

    mark_test_regions(&mut lines);
    FileScan { lines }
}

/// Mark lines that belong to `#[cfg(test)]` (or `#[test]`) items.
///
/// The attribute arms a "pending" flag; the next item that opens a brace
/// starts a test region lasting until the matching close. An item that
/// ends with `;` before opening a brace (e.g. a `use`) consumes the flag
/// for that line only. Brace depth is tracked over the code channel, so
/// braces in strings or comments cannot confuse the bookkeeping.
fn mark_test_regions(lines: &mut [ScanLine]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    // Depth *above which* lines are test code; None when outside a region.
    let mut region_floor: Option<i64> = None;

    for line in lines.iter_mut() {
        let code = line.code.clone();
        let trimmed = code.trim();
        if region_floor.is_some() {
            line.in_test = true;
        }
        if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[test]") {
            pending = true;
            line.in_test = true;
        } else if pending && region_floor.is_none() && !trimmed.is_empty() {
            // Attribute or doc lines between the cfg and the item keep the
            // flag armed; anything else is the item itself.
            line.in_test = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if pending && region_floor.is_none() {
                        region_floor = Some(depth);
                        pending = false;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(floor) = region_floor {
                        if depth <= floor {
                            region_floor = None;
                        }
                    }
                }
                // `#[cfg(test)] use ...;` — flag consumed by one item.
                ';' if pending && region_floor.is_none() && !trimmed.starts_with("#[") => {
                    pending = false;
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments() {
        let s = scan("let x = 1; // HashMap here\n");
        assert_eq!(s.lines[0].code.trim_end(), "let x = 1;");
        assert!(s.lines[0].comment.contains("HashMap"));
    }

    #[test]
    fn blanks_string_contents() {
        let s = scan("let x = \"HashMap // not a comment\";\n");
        assert!(!s.lines[0].code.contains("HashMap"));
        assert!(s.lines[0].code.contains('"'));
        assert!(s.lines[0].comment.is_empty());
    }

    #[test]
    fn handles_raw_strings() {
        let s = scan("let x = r#\"unwrap() \"quoted\" \"#; y.unwrap();\n");
        assert_eq!(s.lines[0].code.matches(".unwrap()").count(), 1);
    }

    #[test]
    fn handles_char_literals_and_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) { let c = '\"'; let d = '{'; }\n");
        // The quote and brace inside char literals must be blanked.
        assert!(!s.lines[0].code.contains("'\"'"));
        let opens = s.lines[0].code.matches('{').count();
        let closes = s.lines[0].code.matches('}').count();
        assert_eq!(opens, closes);
        assert!(s.lines[0].code.contains("<'a>"));
    }

    #[test]
    fn block_comments_span_lines() {
        let s = scan("a();\n/* unwrap()\n still comment */ b();\n");
        assert!(s.lines[1].code.trim().is_empty());
        assert!(s.lines[1].comment.contains("unwrap"));
        assert!(s.lines[2].code.contains("b();"));
    }

    #[test]
    fn marks_cfg_test_regions() {
        let src = "fn real() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { y.unwrap(); }\n\
                   }\n\
                   fn after() {}\n";
        let s = scan(src);
        assert!(!s.lines[0].in_test);
        assert!(s.lines[1].in_test);
        assert!(s.lines[2].in_test);
        assert!(s.lines[3].in_test);
        assert!(s.lines[4].in_test);
        assert!(!s.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_use_item_is_line_scoped() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\nfn real() {}\n";
        let s = scan(src);
        assert!(s.lines[1].in_test);
        assert!(!s.lines[2].in_test);
    }
}
