//! `hdsmt-lint` — enforce the project's uncompilable invariants.
//!
//! ```text
//! hdsmt-lint [--root DIR] [--config FILE] [--format text|json] [--deny]
//! ```
//!
//! Exit codes: `0` clean (or report-only mode), `1` violations under
//! `--deny`, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use hdsmt_lint::{run, LintConfig};

struct Options {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    deny: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> String {
    "usage: hdsmt-lint [--root DIR] [--config FILE] [--format text|json] [--deny]\n\
     \n\
     Walks the workspace sources and enforces the project invariants:\n\
     determinism, panic-safety, lock-order, timeline contract, unsafe\n\
     audit, and allow-justification hygiene. See crate docs for the rule\n\
     registry and the LINT-ALLOW grammar.\n\
     \n\
       --root DIR       workspace root to scan (default: current directory)\n\
       --config FILE    lint.toml path (default: <root>/lint.toml if present)\n\
       --format FMT     report format: text (default) or json\n\
       --deny           exit 1 when any unsuppressed violation remains\n"
        .to_string()
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts =
        Options { root: PathBuf::from("."), config: None, format: Format::Text, deny: false };
    let mut i = 0usize;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg {
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--config" => opts.config = Some(PathBuf::from(value("--config")?)),
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--deny" => opts.deny = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("hdsmt-lint: {msg}");
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let config_path = opts.config.clone().or_else(|| {
        let candidate = opts.root.join("lint.toml");
        candidate.exists().then_some(candidate)
    });
    let cfg = match config_path {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("hdsmt-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match LintConfig::parse(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("hdsmt-lint: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => LintConfig::default(),
    };

    let report = match run(&opts.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hdsmt-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    match opts.format {
        Format::Text => print!("{}", report.render_text()),
        Format::Json => print!("{}", report.render_json()),
    }

    if opts.deny && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
