//! `hdsmt-lint` — project-invariant static analysis for the hdSMT
//! reproduction workspace.
//!
//! The simulator's correctness claims rest on invariants no compiler
//! checks: bit-identical statistics across refactors, crash-consistency
//! in the campaign daemon's durability paths, deadlock-free lock
//! acquisition in the serve modules, and the ROADMAP's Timeline/`act::`
//! contract for time-bearing state. This crate walks the workspace
//! sources with a line-level lexer (no `syn` — consistent with the
//! vendored-shim policy) and enforces a small rule registry:
//!
//! | rule id               | contract |
//! |-----------------------|----------|
//! | `determinism`         | no wall-clock reads / `HashMap`/`HashSet` in simulator-core crates |
//! | `panic-safety`        | no `unwrap`/`expect`/`panic!`/range-index on durability paths |
//! | `lock-order`          | per-function `.lock()` orders form an acyclic lock graph |
//! | `timeline`            | time-bearing fields in `crates/core` reference `timeline`/`act::` |
//! | `unsafe-audit`        | every `unsafe` has `// SAFETY:`; unsafe-free crates forbid unsafe |
//! | `allow-justification` | every `#[allow]`/`LINT-ALLOW` carries a justification |
//!
//! Suppressions are explicit and auditable: inline
//! `// LINT-ALLOW(rule): reason` annotations (same line, or a standalone
//! comment line annotating the next code line) or `[[allow]]` entries in
//! `lint.toml`. A `LINT-ALLOW` that suppresses nothing is itself a
//! violation, so dead annotations cannot accumulate.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

pub use config::{AllowEntry, LintConfig};
pub use report::{Finding, Report};

/// Directory names never descended into. `fixtures` holds the lint
/// crate's own seeded-violation test trees, which must not leak into a
/// workspace scan.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github", "node_modules", "fixtures"];

/// Run the full rule registry over the workspace rooted at `root`.
///
/// Scans `src/` trees only (`src/**/*.rs` and `crates/*/src/**/*.rs`):
/// integration tests, benches, and examples are scaffolding, not shipped
/// simulator/daemon code.
pub fn run(root: &Path, cfg: &LintConfig) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_files(root, root, &mut files)?;
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    let mut scans: Vec<(String, lexer::FileScan)> = Vec::new();
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))?;
        scans.push((rel.clone(), lexer::scan(&text)));
    }

    // Per-file rules.
    for (rel, scan) in &scans {
        let mut raw: Vec<Finding> = Vec::new();
        rules::check_determinism(rel, scan, cfg, &mut raw);
        rules::check_panic_safety(rel, scan, cfg, &mut raw);
        rules::check_lock_order(rel, scan, cfg, &mut raw);
        rules::check_timeline(rel, scan, cfg, &mut raw);
        rules::check_unsafe_audit(rel, scan, &mut raw);
        rules::check_allow_justification(rel, scan, &mut raw);

        // Resolve suppressions: inline LINT-ALLOW first, then lint.toml.
        let mut inline = rules::collect_inline_allows(rel, scan, &mut findings);
        for f in &mut raw {
            let matched_inline =
                inline.iter_mut().find(|a| a.rule == f.rule && a.target_line == f.line);
            if let Some(a) = matched_inline {
                a.used = true;
                f.allowed = Some(a.reason.clone());
                continue;
            }
            let line_raw =
                scan.lines.get(f.line.saturating_sub(1)).map(|l| l.raw.as_str()).unwrap_or("");
            if let Some(entry) = cfg.allows.iter().find(|e| {
                e.rule == f.rule
                    && rules::in_scope(rel, std::slice::from_ref(&e.path))
                    && e.contains.as_deref().map(|c| line_raw.contains(c)).unwrap_or(true)
            }) {
                f.allowed = Some(entry.reason.clone());
            }
        }
        // Dead inline allows are violations: stale suppressions rot fast.
        for a in &inline {
            if !a.used {
                raw.push(Finding {
                    rule: "allow-justification",
                    path: rel.clone(),
                    line: a.comment_line,
                    message: format!(
                        "LINT-ALLOW({}) suppresses nothing — remove the stale annotation",
                        a.rule
                    ),
                    allowed: None,
                });
            }
        }
        findings.append(&mut raw);
    }

    // Workspace-level rule: unsafe-free crates must forbid unsafe code.
    check_forbid_unsafe(&scans, &mut findings);

    // Surface lint.toml entries that matched nothing.
    let unused_allows = cfg
        .allows
        .iter()
        .filter(|e| {
            !findings
                .iter()
                .any(|f| f.allowed.as_deref() == Some(e.reason.as_str()) && f.rule == e.rule)
        })
        .map(|e| format!("rule={} path={}", e.rule, e.path))
        .collect();

    let mut report = Report { findings, files_scanned: scans.len(), unused_allows };
    report.sort();
    Ok(report)
}

/// Group files by crate `src/` root; any crate with zero non-test
/// `unsafe` must carry `#![forbid(unsafe_code)]` in its `lib.rs`.
fn check_forbid_unsafe(scans: &[(String, lexer::FileScan)], findings: &mut Vec<Finding>) {
    // crate src prefix -> (lib.rs path if seen, lib has forbid, any unsafe)
    let mut crates: BTreeMap<String, (Option<String>, bool, bool)> = BTreeMap::new();
    for (rel, scan) in scans {
        let Some(src_root) = crate_src_root(rel) else {
            continue;
        };
        let entry = crates.entry(src_root.clone()).or_insert((None, false, false));
        if rel == &format!("{src_root}/lib.rs") {
            entry.0 = Some(rel.clone());
            entry.1 = rules::has_forbid_unsafe(scan);
        }
        if rules::file_has_unsafe(scan) {
            entry.2 = true;
        }
    }
    for (src_root, (lib, has_forbid, has_unsafe)) in &crates {
        if let Some(lib_path) = lib {
            if !*has_unsafe && !*has_forbid {
                findings.push(Finding {
                    rule: "unsafe-audit",
                    path: lib_path.clone(),
                    line: 1,
                    message: format!(
                        "crate `{src_root}` uses no unsafe code but does not declare \
                         `#![forbid(unsafe_code)]`"
                    ),
                    allowed: None,
                });
            }
        }
    }
}

/// Map `crates/foo/src/bar.rs` -> `crates/foo/src`, `src/lib.rs` -> `src`.
fn crate_src_root(rel: &str) -> Option<String> {
    let mut parts: Vec<&str> = rel.split('/').collect();
    parts.pop()?; // file name
                  // Walk up to the nearest `src` component.
    while let Some(last) = parts.last() {
        if *last == "src" {
            return Some(parts.join("/"));
        }
        parts.pop();
    }
    None
}

/// Recursively collect `src/**/*.rs` files, root-relative with `/`
/// separators, skipping build output and vendored shims.
fn collect_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path: PathBuf = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            // Only shipped sources: anything under a `src/` directory.
            if rel.starts_with("src/") || rel.contains("/src/") {
                out.push(rel);
            }
        }
    }
    Ok(())
}
