//! `lint.toml` configuration: rule path scopes and the allowlist.
//!
//! The config file is parsed with a hand-rolled TOML subset (same policy
//! as `campaign::toml`): a `[paths]` table whose values are single-line
//! string arrays, and repeated `[[allow]]` tables with string values.
//! That is all `hdsmt-lint` needs, and it keeps the crate dependency-free.
//!
//! ```toml
//! [paths]
//! determinism = ["crates/core/src", "crates/pipeline/src"]
//!
//! [[allow]]
//! rule = "panic-safety"
//! path = "crates/campaign/src/serve/supervisor.rs"
//! contains = "sha256_hex"
//! reason = "digest is always 64 hex chars"
//! ```

/// One allowlist entry from `lint.toml`.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (must name a registered rule).
    pub rule: String,
    /// Path prefix (root-relative, `/`-separated) the entry applies to.
    pub path: String,
    /// Optional substring the offending source line must contain.
    pub contains: Option<String>,
    /// Mandatory human justification.
    pub reason: String,
}

/// Resolved lint configuration: rule scopes plus the allowlist.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Directories whose files must be deterministic (simulator core).
    pub determinism_paths: Vec<String>,
    /// Files/directories on the durability path (panic-safety rule).
    pub panic_safety_paths: Vec<String>,
    /// Files participating in lock-order analysis.
    pub lock_order_paths: Vec<String>,
    /// Directories subject to the timeline-contract rule.
    pub timeline_paths: Vec<String>,
    /// Allowlist entries.
    pub allows: Vec<AllowEntry>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            determinism_paths: [
                "crates/core/src",
                "crates/pipeline/src",
                "crates/mem/src",
                "crates/bpred/src",
                "crates/trace/src",
                "crates/isa/src",
                "crates/riscv/src",
            ]
            .map(String::from)
            .to_vec(),
            panic_safety_paths: [
                "crates/campaign/src/journal.rs",
                "crates/campaign/src/cache.rs",
                "crates/campaign/src/fsck.rs",
                "crates/campaign/src/serve",
            ]
            .map(String::from)
            .to_vec(),
            lock_order_paths: ["crates/campaign/src/serve", "crates/campaign/src/sched.rs"]
                .map(String::from)
                .to_vec(),
            timeline_paths: ["crates/core/src"].map(String::from).to_vec(),
            allows: Vec::new(),
        }
    }
}

impl LintConfig {
    /// Parse a `lint.toml` document. Sections that are absent keep their
    /// defaults; a present `[paths]` key replaces the default scope.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut cfg = LintConfig::default();
        #[derive(PartialEq)]
        enum Section {
            None,
            Paths,
            Allow,
        }
        let mut section = Section::None;
        let mut current: Option<PartialAllow> = None;

        for (idx, raw_line) in text.lines().enumerate() {
            let line = strip_toml_comment(raw_line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("lint.toml:{}: {}", idx + 1, msg);
            if line == "[paths]" {
                finish_allow(&mut current, &mut cfg, idx)?;
                section = Section::Paths;
                continue;
            }
            if line == "[[allow]]" {
                finish_allow(&mut current, &mut cfg, idx)?;
                section = Section::Allow;
                current = Some(PartialAllow::default());
                continue;
            }
            if line.starts_with('[') {
                return Err(err("unknown section"));
            }
            let (key, value) = line.split_once('=').ok_or_else(|| err("expected `key = value`"))?;
            let key = key.trim();
            let value = value.trim();
            match section {
                Section::Paths => {
                    let list = parse_string_array(value).ok_or_else(|| {
                        err("expected a single-line string array, e.g. [\"a\", \"b\"]")
                    })?;
                    match key {
                        "determinism" => cfg.determinism_paths = list,
                        "panic_safety" => cfg.panic_safety_paths = list,
                        "lock_order" => cfg.lock_order_paths = list,
                        "timeline" => cfg.timeline_paths = list,
                        _ => return Err(err("unknown [paths] key")),
                    }
                }
                Section::Allow => {
                    let entry = current.as_mut().ok_or_else(|| err("key outside table"))?;
                    let s = parse_string(value).ok_or_else(|| err("expected a string value"))?;
                    match key {
                        "rule" => entry.rule = Some(s),
                        "path" => entry.path = Some(s),
                        "contains" => entry.contains = Some(s),
                        "reason" => entry.reason = Some(s),
                        _ => return Err(err("unknown [[allow]] key")),
                    }
                }
                Section::None => return Err(err("key outside any section")),
            }
        }
        finish_allow(&mut current, &mut cfg, text.lines().count())?;
        Ok(cfg)
    }
}

#[derive(Default)]
struct PartialAllow {
    rule: Option<String>,
    path: Option<String>,
    contains: Option<String>,
    reason: Option<String>,
}

fn finish_allow(
    current: &mut Option<PartialAllow>,
    cfg: &mut LintConfig,
    line_idx: usize,
) -> Result<(), String> {
    let Some(partial) = current.take() else {
        return Ok(());
    };
    let err = |what: &str| format!("lint.toml:{}: [[allow]] {}", line_idx + 1, what);
    let rule = partial.rule.ok_or_else(|| err("is missing `rule`"))?;
    let path = partial.path.ok_or_else(|| err("is missing `path`"))?;
    let reason = partial.reason.ok_or_else(|| err("is missing `reason`"))?;
    if reason.trim().is_empty() {
        return Err(err("has an empty `reason` — justify the suppression"));
    }
    cfg.allows.push(AllowEntry { rule, path, contains: partial.contains, reason });
    Ok(())
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse a basic double-quoted TOML string (supports `\\` and `\"`).
fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else if c == '"' {
            return None; // unescaped quote mid-string
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Parse a single-line array of basic strings: `["a", "b"]`.
fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    for part in split_top_level_commas(inner) {
        out.push(parse_string(part.trim())?);
    }
    Some(out)
}

/// Split on commas outside quoted strings.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paths_and_allows() {
        let cfg = LintConfig::parse(
            "# comment\n\
             [paths]\n\
             determinism = [\"a/src\", \"b/src\"]\n\
             \n\
             [[allow]]\n\
             rule = \"panic-safety\"\n\
             path = \"a/src/x.rs\"\n\
             contains = \"unwrap\"\n\
             reason = \"checked above\"\n",
        )
        .expect("parses");
        assert_eq!(cfg.determinism_paths, vec!["a/src", "b/src"]);
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].rule, "panic-safety");
        assert_eq!(cfg.allows[0].contains.as_deref(), Some("unwrap"));
        // Untouched sections keep defaults.
        assert!(!cfg.lock_order_paths.is_empty());
    }

    #[test]
    fn rejects_allow_without_reason() {
        let err = LintConfig::parse("[[allow]]\nrule = \"x\"\npath = \"y\"\n").unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(LintConfig::parse("[paths]\nbogus = []\n").is_err());
        assert!(LintConfig::parse("[nope]\n").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let cfg = LintConfig::parse(
            "[[allow]]\nrule = \"r\"\npath = \"p\"\nreason = \"say \\\"why\\\"\"\n",
        )
        .expect("parses");
        assert_eq!(cfg.allows[0].reason, "say \"why\"");
    }
}
