//! Architectural correctness of the bundled programs: run each kernel
//! one full lap on the functional machine and compare its published
//! results against straightforward Rust reference implementations.

use hdsmt_riscv::{by_name, Machine};

/// Execute one lap (until control reaches the restart jump) and return
/// the machine state.
fn run_lap(name: &str) -> Machine {
    let img = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
    let mut m = Machine::new();
    for _ in 0..3_000_000 {
        let idx = m.next_idx;
        if idx == img.restart_idx {
            return m;
        }
        m.step(&img.insts, idx);
    }
    panic!("{name}: lap did not complete");
}

fn read_u64(m: &Machine, addr: usize) -> u64 {
    u64::from_le_bytes(m.mem[addr..addr + 8].try_into().unwrap())
}

#[test]
fn sum_publishes_the_reduction() {
    let m = run_lap("sum");
    let expect: u64 = (0..64u64).map(|i| 3 * i).sum();
    assert_eq!(read_u64(&m, 16384), expect);
    // And the a[] array holds b[i] + c[i].
    for i in 0..64u64 {
        assert_eq!(read_u64(&m, 12288 + 8 * i as usize), 3 * i);
    }
}

#[test]
fn matmul_of_identities_is_identity() {
    let m = run_lap("matmul");
    for i in 0..12usize {
        for j in 0..12usize {
            let got = read_u64(&m, 12288 + 8 * (i * 12 + j));
            assert_eq!(got, (i == j) as u64, "c[{i}][{j}]");
        }
    }
}

#[test]
fn fib_16_is_987() {
    let m = run_lap("fib");
    assert_eq!(read_u64(&m, 4096), 987);
    // Balanced recursion: the stack pointer is back at the top.
    assert_eq!(m.regs[2], hdsmt_riscv::MEM_BYTES as u64);
}

#[test]
fn sort_produces_the_sorted_lcg_sequence() {
    let m = run_lap("sort");
    // Reference: same LCG, sorted, same order-sensitive checksum.
    let mut vals: Vec<u64> = Vec::new();
    let mut x: u64 = 12345;
    for _ in 0..96 {
        x = x.wrapping_mul(1103515245).wrapping_add(12345);
        vals.push((x >> 16) & 0x7fff);
    }
    vals.sort();
    for (i, &v) in vals.iter().enumerate() {
        assert_eq!(read_u64(&m, 4096 + 8 * i), v, "a[{i}]");
    }
    let checksum: u64 = vals.iter().enumerate().map(|(i, &v)| v * i as u64).sum();
    assert_eq!(read_u64(&m, 8192), checksum);
}

#[test]
fn prime_counts_pi_of_600() {
    let m = run_lap("prime");
    let reference = (2..=600u64)
        .filter(|&n| {
            n == 2
                || (n % 2 == 1 && (3..n).step_by(2).take_while(|d| d * d <= n).all(|d| n % d != 0))
        })
        .count() as u64;
    assert_eq!(read_u64(&m, 4096), reference);
    assert_eq!(reference, 109, "pi(600)");
}
