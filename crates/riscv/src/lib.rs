//! # hdsmt-riscv — real-program workloads via a compact RV64I(+M) emulator
//!
//! The paper evaluates hdSMT on dynamic instruction streams of real
//! programs. The synthetic front-end (`hdsmt-trace`) reproduces their
//! *statistics*; this crate reproduces the real thing at small scale: it
//! parses RV64I(+M) assembly kernels (the plain-assembler format used by
//! small RISC-V teaching simulators), executes them architecturally, and
//! feeds the processor model their genuine dynamic streams — real PCs,
//! real branch outcomes, real load/store addresses — through the shared
//! [`hdsmt_trace::TraceSource`] abstraction.
//!
//! Pipeline:
//!
//! 1. [`asm`] parses the text into an instruction list + label map;
//! 2. [`translate`] builds the basic-block dictionary
//!    ([`hdsmt_isa::Program`]) the fetch engine needs for wrong-path
//!    decoding, appending a synthetic *restart jump* so finite programs
//!    become the endless streams the simulator consumes;
//! 3. [`emu::Machine`] executes instructions functionally;
//! 4. [`RvTraceSource`] glues them into a deterministic
//!    [`TraceSource`](hdsmt_trace::TraceSource): every lap replays the
//!    identical architectural execution.
//!
//! ## Workload names
//!
//! The bundled kernels register under `rv:<name>` benchmark names
//! (`rv:sum`, `rv:matmul`, …) next to the synthetic SPECint2000 models,
//! so workloads, golden cells, and campaign specs can freely mix
//! synthetic and real threads. Custom programs load through
//! [`image_from_asm`].

#![forbid(unsafe_code)]

pub mod asm;
pub mod emu;
pub mod source;
pub mod translate;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

pub use asm::{AsmProgram, RvInst};
pub use emu::{Machine, MEM_BYTES};
pub use source::RvTraceSource;
pub use translate::{translate, RvImage};

/// The bundled program kernels: (name, assembly source).
const BUILTIN: &[(&str, &str)] = &[
    ("sum", include_str!("../programs/sum.asm")),
    ("matmul", include_str!("../programs/matmul.asm")),
    ("fib", include_str!("../programs/fib.asm")),
    ("sort", include_str!("../programs/sort.asm")),
    ("prime", include_str!("../programs/prime.asm")),
];

/// Names of the bundled programs (usable as `rv:<name>` benchmarks).
pub fn program_names() -> Vec<&'static str> {
    BUILTIN.iter().map(|&(n, _)| n).collect()
}

/// Parse + translate an assembly text into a shareable image.
pub fn image_from_asm(name: &str, text: &str) -> Result<Arc<RvImage>, String> {
    let parsed = asm::parse(text).map_err(|e| format!("{name}: {e}"))?;
    Ok(Arc::new(translate::translate(name, &parsed)?))
}

/// Look up a bundled program by name, translating it on first use (the
/// image is immutable and shared across all simulations of the process,
/// like the synthetic programs' fixed binaries).
pub fn by_name(name: &str) -> Option<Arc<RvImage>> {
    static CACHE: OnceLock<Mutex<BTreeMap<&'static str, Arc<RvImage>>>> = OnceLock::new();
    let (key, text) = BUILTIN.iter().find(|&&(n, _)| n == name).copied()?;
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = cache.lock().unwrap_or_else(|p| p.into_inner());
    Some(
        map.entry(key)
            .or_insert_with(|| {
                image_from_asm(key, text).unwrap_or_else(|e| panic!("bundled program {e}"))
            })
            .clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsmt_trace::TraceSource;

    #[test]
    fn every_bundled_program_parses_translates_and_validates() {
        for name in program_names() {
            let img = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            img.program.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(img.program.len_insts(), img.insts.len() as u64, "{name}");
            assert_eq!(img.restart_idx, img.insts.len() - 1, "{name}");
        }
        assert!(by_name("no-such-program").is_none());
    }

    #[test]
    fn images_are_shared_across_lookups() {
        let a = by_name("sum").unwrap();
        let b = by_name("sum").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn bundled_laps_are_substantial() {
        // Restart resets cost a full memory wipe; keep each lap long
        // enough (≥ 5k dynamic instructions) that the wipe is noise.
        for name in program_names() {
            let mut s = RvTraceSource::new(by_name(name).unwrap(), 1, 0);
            let mut lap_len = 0u64;
            loop {
                let d = s.next_inst();
                lap_len += 1;
                assert!(lap_len < 3_000_000, "{name}: lap too long");
                if d.sinst.op == hdsmt_isa::Op::Jump
                    && d.ctrl.unwrap().target == hdsmt_isa::Program::BASE_PC
                    && s.laps() == 1
                {
                    break;
                }
            }
            assert!(lap_len >= 5_000, "{name}: lap is only {lap_len} instructions");
        }
    }

    #[test]
    fn custom_programs_load_from_text() {
        let img = image_from_asm("mine", "li a0, 1\nloop:\n addi a0, a0, 1\n j loop\n").unwrap();
        assert_eq!(img.name, "mine");
        assert!(image_from_asm("bad", "frob a0\n").is_err());
    }
}
