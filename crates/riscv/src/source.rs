//! [`RvTraceSource`]: the emulator as an endless [`TraceSource`].
//!
//! Each call to [`next_inst`](TraceSource::next_inst) architecturally
//! executes one instruction and reports it in the simulator's dynamic
//! vocabulary: the instruction's laid-out PC, its static classification,
//! the *real* effective address (relocated into this thread's address
//! space), and the *real* branch outcome. When execution reaches the
//! synthetic restart jump the machine resets, so the stream is an endless
//! sequence of identical laps — deterministic by construction, which the
//! campaign result cache requires.
//!
//! Wrong-path addresses come from a dedicated RNG (exactly like the
//! synthetic stream's `wp_rng`), so mis-speculated work can never perturb
//! the architectural lap.

use std::sync::Arc;

use hdsmt_isa::{MemGen, Pc, Program};
use hdsmt_trace::{ChunkBuf, CtrlOutcome, DynInst, TraceSource};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::asm::RvInst;
use crate::emu::{pc_value_of, Machine, MEM_BYTES};
use crate::translate::RvImage;

/// Bytes of the hot stack window used for wrong-path stack-class
/// fabrication (mirrors the synthetic stream's hot-frame size).
const WP_STACK_BYTES: u64 = 2048;

/// A deterministic dynamic-instruction source executing one RV64I(+M)
/// program image.
pub struct RvTraceSource {
    image: Arc<RvImage>,
    machine: Machine,
    wp_rng: SmallRng,
    /// Address-space base of the code image (per-thread, page-colored).
    code_start: u64,
    /// Address-space base of the data memory.
    data_start: u64,
    emitted: u64,
    laps: u64,
}

/// splitmix-style page coloring, deterministic per (asid, salt): spreads
/// co-scheduled threads across cache sets the way an OS page allocator
/// would (same scheme as the synthetic stream).
fn color(asid: u8, salt: u64) -> u64 {
    let mut z = (asid as u64 * 7 + salt).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z % 512) * 8192
}

impl RvTraceSource {
    /// Create a source over `image`. `seed` feeds only the wrong-path
    /// RNG (the architectural lap is seed-independent); `asid`
    /// distinguishes the address spaces of co-scheduled threads.
    pub fn new(image: Arc<RvImage>, seed: u64, asid: u8) -> Self {
        let asid_base = (asid as u64 + 1) << 40;
        RvTraceSource {
            machine: Machine::new(),
            wp_rng: SmallRng::seed_from_u64(seed ^ 0x52_5653_3634), // "RV64"
            code_start: asid_base + color(asid, 997),
            data_start: asid_base + 0x2000_0000 + color(asid, 1),
            emitted: 0,
            laps: 0,
            image,
        }
    }

    /// Completed architectural laps (program runs).
    #[inline]
    pub fn laps(&self) -> u64 {
        self.laps
    }

    /// The machine's architectural state (tests / debugging).
    #[inline]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

impl RvTraceSource {
    /// Architecturally execute one instruction and report it (the body of
    /// both [`TraceSource::next_inst`] and the batched
    /// [`TraceSource::fill`] loop). `image` is the caller's borrow of
    /// `self.image`, hoisted so the chunked loop pays the `Arc`
    /// indirection once per chunk instead of once per instruction.
    #[inline]
    fn emit_with(&mut self, image: &RvImage) -> DynInst {
        let idx = self.machine.next_idx;
        let sinst = image.sinsts[idx];
        let pc = Pc(pc_value_of(idx));
        let step = self.machine.step(&image.insts, idx);

        let ctrl = match image.insts[idx] {
            RvInst::Branch { .. } => {
                let taken = step.taken.expect("branch steps report taken");
                Some(CtrlOutcome {
                    taken,
                    target: if taken { Pc(pc_value_of(step.next)) } else { pc.next() },
                })
            }
            RvInst::Jump { .. } | RvInst::Call { .. } | RvInst::Ret => {
                Some(CtrlOutcome { taken: true, target: Pc(pc_value_of(step.next)) })
            }
            _ => None,
        };
        let addr = match step.vaddr {
            // Relocate into this thread's address space, masked the same
            // way the emulator masks its flat memory.
            Some(v) => self.data_start + (v & (MEM_BYTES as u64 - 1)),
            None => 0,
        };

        if idx == image.restart_idx {
            // The restart jump was just emitted (a real taken control
            // transfer back to the entry): start the next identical lap.
            self.machine.reset();
            self.laps += 1;
        }
        self.emitted += 1;
        DynInst { pc, sinst, addr, ctrl }
    }
}

impl TraceSource for RvTraceSource {
    #[inline]
    fn next_inst(&mut self) -> DynInst {
        let image = Arc::clone(&self.image);
        self.emit_with(&image)
    }

    /// Batched generation: run the emulator loop for a whole chunk per
    /// trait-object crossing. The per-instruction body is identical to
    /// [`Self::next_inst`] (the equivalence test pins this); the win is
    /// the amortized dispatch, the hoisted image borrow, and the emulator
    /// staying hot in one tight loop instead of being re-entered from the
    /// fetch engine per instruction.
    fn fill(&mut self, buf: &mut ChunkBuf) {
        let image = Arc::clone(&self.image);
        for _ in 0..buf.room() {
            buf.push(self.emit_with(&image));
        }
    }

    fn wrong_path_addr(&mut self, g: MemGen) -> u64 {
        let off = match g {
            MemGen::Stack => {
                MEM_BYTES as u64 - WP_STACK_BYTES + self.wp_rng.gen_range(0..WP_STACK_BYTES / 8) * 8
            }
            MemGen::Stride { .. } | MemGen::Random => {
                self.wp_rng.gen_range(0..MEM_BYTES as u64 / 8) * 8
            }
        };
        self.data_start + off
    }

    #[inline]
    fn program(&self) -> &Arc<Program> {
        &self.image.program
    }

    #[inline]
    fn code_base(&self) -> u64 {
        self.code_start
    }

    fn code_range(&self) -> (u64, u64) {
        (self.code_start + Program::BASE_PC.0, self.image.insts.len() as u64 * Pc::INST_BYTES)
    }

    fn region_layout(&self) -> [(u64, u64); 4] {
        [(self.data_start, MEM_BYTES as u64), (0, 0), (0, 0), (0, 0)]
    }

    #[inline]
    fn emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::by_name;

    fn source(name: &str, seed: u64, asid: u8) -> RvTraceSource {
        RvTraceSource::new(by_name(name).unwrap(), seed, asid)
    }

    #[test]
    fn stream_is_deterministic_and_seed_independent_architecturally() {
        let mut a = source("sum", 1, 0);
        let mut b = source("sum", 99, 0); // different seed: same correct path
        for i in 0..30_000 {
            let (x, y) = (a.next_inst(), b.next_inst());
            assert_eq!(x, y, "diverged at {i}");
        }
        assert_eq!(a.emitted(), 30_000);
    }

    #[test]
    fn chunked_fill_matches_per_call_generation_across_laps() {
        // The batched emulator loop must emit exactly the per-call
        // sequence, including across the lap-boundary machine reset, and
        // stay equivalent when the two entry points interleave.
        for cap in [1, 5, 64] {
            let mut a = source("fib", 2, 0);
            let mut b = source("fib", 2, 0);
            let mut buf = ChunkBuf::with_capacity(cap);
            let mut produced = 0u64;
            while produced < 30_000 {
                buf.reset();
                a.fill(&mut buf);
                while let Some(d) = buf.pop() {
                    assert_eq!(d, b.next_inst(), "cap {cap}, inst {produced}");
                    produced += 1;
                }
                if produced.is_multiple_of(320) {
                    assert_eq!(a.next_inst(), b.next_inst());
                    produced += 1;
                }
            }
            assert!(a.laps() > 0, "30k instructions must cross a lap boundary");
            assert_eq!(a.laps(), b.laps());
            assert_eq!(a.emitted(), b.emitted());
        }
    }

    #[test]
    fn wrong_path_does_not_perturb_the_lap() {
        let mut a = source("sort", 5, 0);
        let mut b = source("sort", 5, 0);
        for i in 0..20_000 {
            if i % 7 == 0 {
                for _ in 0..3 {
                    let _ = a.wrong_path_addr(MemGen::Random);
                    let _ = a.wrong_path_addr(MemGen::Stack);
                }
            }
            assert_eq!(a.next_inst(), b.next_inst(), "diverged at {i}");
        }
    }

    #[test]
    fn pc_chain_is_continuous_across_restarts() {
        // The defining stream invariant: each instruction's next_pc is
        // the PC of the next emitted instruction — including across the
        // lap boundary (the restart jump).
        let mut s = source("fib", 3, 0);
        let mut prev = s.next_inst();
        let mut restarts = 0;
        for _ in 0..60_000 {
            let d = s.next_inst();
            assert_eq!(prev.next_pc(), d.pc, "discontinuity after {:?}", prev.pc);
            if d.pc == Program::BASE_PC && prev.sinst.op == hdsmt_isa::Op::Jump {
                restarts += 1;
            }
            prev = d;
        }
        assert!(restarts > 0, "the program must wrap around at least once");
        // The final restart jump may be the last emitted instruction, in
        // which case its landing was not observed.
        assert!(s.laps() == restarts || s.laps() == restarts + 1);
    }

    #[test]
    fn ctrl_outcomes_match_op_classes() {
        let mut s = source("prime", 2, 0);
        for _ in 0..40_000 {
            let d = s.next_inst();
            assert_eq!(d.sinst.op.is_control(), d.ctrl.is_some(), "{:?}", d.sinst.op);
            if let Some(c) = d.ctrl {
                if !c.taken {
                    assert_eq!(c.target, d.pc.next(), "not-taken must fall through");
                }
            }
            if d.sinst.op.is_mem() {
                assert_ne!(d.addr, 0);
            } else {
                assert_eq!(d.addr, 0);
            }
        }
    }

    #[test]
    fn addresses_live_in_the_declared_region_and_asids_differ() {
        let mut a = source("matmul", 1, 0);
        let mut b = source("matmul", 1, 3);
        let [region_a, ..] = a.region_layout();
        for _ in 0..20_000 {
            let (x, y) = (a.next_inst(), b.next_inst());
            if x.sinst.op.is_mem() {
                assert!(
                    (region_a.0..region_a.0 + region_a.1).contains(&x.addr),
                    "address {:#x} outside the data region",
                    x.addr
                );
                assert_ne!(x.addr >> 40, y.addr >> 40, "asids must not share address spaces");
            }
        }
        assert_ne!(a.code_base(), b.code_base());
    }

    #[test]
    fn returns_target_their_call_sites() {
        let mut s = source("fib", 7, 0);
        let mut stack: Vec<Pc> = Vec::new();
        for _ in 0..50_000 {
            let d = s.next_inst();
            match d.sinst.op {
                hdsmt_isa::Op::Call => stack.push(d.pc.next()),
                hdsmt_isa::Op::Return => {
                    let want = stack.pop().expect("return without call");
                    assert_eq!(d.ctrl.unwrap().target, want);
                }
                hdsmt_isa::Op::Jump if d.ctrl.unwrap().target == Program::BASE_PC => {
                    // Lap boundary: the call stack must be balanced.
                    assert!(stack.is_empty(), "unbalanced calls at restart");
                }
                _ => {}
            }
        }
    }
}
