//! Assembly-format front end: the textual RV64I(+M) subset.
//!
//! The format follows the plain-assembler style of small RISC-V teaching
//! simulators (labels ending in `:`, `offset(reg)` memory operands,
//! `//`/`#`/`;` comments, ABI register names) so programs written for
//! them port over with at most mnemonic tweaks. Parsing is two-pass:
//! pass one records label positions, pass two resolves every
//! control-transfer target to an *instruction index* — the unit the
//! emulator executes and the CFG translator lays out at 4-byte PCs.

use std::collections::BTreeMap;

/// An architectural register, by x-index (0–31).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Reg(pub u8);

impl Reg {
    pub const ZERO: Reg = Reg(0);
    pub const RA: Reg = Reg(1);
    pub const SP: Reg = Reg(2);

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// ABI names (and raw `xN`) accepted by the parser.
fn parse_reg(s: &str) -> Result<Reg, String> {
    const ABI: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    let s = s.trim();
    if let Some(pos) = ABI.iter().position(|&n| n == s) {
        return Ok(Reg(pos as u8));
    }
    if s == "fp" {
        return Ok(Reg(8)); // s0 alias
    }
    if let Some(n) = s.strip_prefix('x').and_then(|n| n.parse::<u8>().ok()) {
        if n < 32 {
            return Ok(Reg(n));
        }
    }
    Err(format!("unknown register `{s}`"))
}

fn parse_imm(s: &str) -> Result<i64, String> {
    let s = s.trim();
    let (neg, rest) = match s.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, s),
    };
    let v = if let Some(hex) = rest.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        rest.parse::<i64>()
    }
    .map_err(|_| format!("invalid immediate `{s}`"))?;
    Ok(if neg { -v } else { v })
}

/// `offset(reg)` memory operand.
fn parse_memref(s: &str) -> Result<(Reg, i64), String> {
    let s = s.trim();
    let open = s.find('(').ok_or_else(|| format!("invalid memory operand `{s}` (no `(`)"))?;
    let close = s.rfind(')').ok_or_else(|| format!("invalid memory operand `{s}` (no `)`)"))?;
    if close != s.len() - 1 || close <= open {
        return Err(format!("invalid memory operand `{s}`"));
    }
    let off = if s[..open].trim().is_empty() { 0 } else { parse_imm(&s[..open])? };
    let base = parse_reg(&s[open + 1..close])?;
    Ok((base, off))
}

/// ALU operation (register-register and register-immediate forms share
/// the alphabet; `*W` variants are the RV64 32-bit-operand ops).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Mul,
    Mulh,
    Div,
    Divu,
    Rem,
    Remu,
    AddW,
    SubW,
    MulW,
    DivW,
    RemW,
}

impl AluOp {
    /// True for the M-extension multiply ops.
    pub fn is_mul(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Mulh | AluOp::MulW)
    }

    /// True for the M-extension divide/remainder ops.
    pub fn is_div(self) -> bool {
        matches!(
            self,
            AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu | AluOp::DivW | AluOp::RemW
        )
    }
}

/// Memory access width in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemWidth {
    B,
    H,
    W,
    D,
}

impl MemWidth {
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// Branch condition (the six RV64I conditional branches).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// One decoded instruction. Control-transfer targets are resolved
/// instruction indices into the owning [`AsmProgram`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RvInst {
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    AluImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i64,
    },
    Lui {
        rd: Reg,
        imm: i64,
    },
    Load {
        width: MemWidth,
        signed: bool,
        rd: Reg,
        base: Reg,
        off: i64,
    },
    Store {
        width: MemWidth,
        rs2: Reg,
        base: Reg,
        off: i64,
    },
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: usize,
    },
    /// Unconditional direct jump (`j` / `jal zero`).
    Jump {
        target: usize,
    },
    /// Direct call (`jal` / `jal ra` / `call`): links `ra`.
    Call {
        target: usize,
    },
    /// Return through `ra` (`ret` / `jr ra` / `jalr zero, 0(ra)`).
    Ret,
}

impl RvInst {
    /// True for every control-transfer instruction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            RvInst::Branch { .. } | RvInst::Jump { .. } | RvInst::Call { .. } | RvInst::Ret
        )
    }
}

/// A parsed program: the executable instruction list plus label map
/// (label → instruction index; a label at the very end maps to
/// `insts.len()`, i.e. the wrap-around restart point).
#[derive(Clone, Debug)]
pub struct AsmProgram {
    pub insts: Vec<RvInst>,
    pub labels: BTreeMap<String, usize>,
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for pat in ["//", "#", ";"] {
        if let Some(i) = line.find(pat) {
            end = end.min(i);
        }
    }
    &line[..end]
}

fn is_label_name(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '.')
}

/// Parse an assembly text into an [`AsmProgram`].
pub fn parse(text: &str) -> Result<AsmProgram, String> {
    // Pass 1: split into (lineno, stmt) instruction statements and record
    // label positions.
    let mut stmts: Vec<(usize, &str)> = Vec::new();
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_suffix(':') {
            let name = name.trim();
            if !is_label_name(name) {
                return Err(format!("line {}: invalid label `{name}`", lineno + 1));
            }
            if labels.insert(name.to_string(), stmts.len()).is_some() {
                return Err(format!("line {}: duplicate label `{name}`", lineno + 1));
            }
        } else {
            stmts.push((lineno, line));
        }
    }
    if stmts.is_empty() {
        return Err("program has no instructions".into());
    }

    // Pass 2: decode, resolving branch targets through the label map.
    let mut insts = Vec::with_capacity(stmts.len());
    for &(lineno, stmt) in &stmts {
        let inst = parse_inst(stmt, &labels).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        insts.push(inst);
    }
    Ok(AsmProgram { insts, labels })
}

fn parse_inst(stmt: &str, labels: &BTreeMap<String, usize>) -> Result<RvInst, String> {
    let (op, rest) = stmt.split_once(char::is_whitespace).unwrap_or((stmt, ""));
    let args: Vec<&str> =
        if rest.trim().is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    let argn = |n: usize| -> Result<&str, String> {
        args.get(n)
            .copied()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("`{op}` missing operand {}", n + 1))
    };
    let reg = |n: usize| parse_reg(argn(n)?);
    let imm = |n: usize| parse_imm(argn(n)?);
    let mem = |n: usize| parse_memref(argn(n)?);
    let label = |n: usize| -> Result<usize, String> {
        let name = argn(n)?;
        labels.get(name).copied().ok_or_else(|| format!("unknown label `{name}`"))
    };
    let want = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!("`{op}` takes {n} operands, got {}", args.len()))
        }
    };

    let alu = |o: AluOp, args_reg: bool| -> Result<RvInst, String> {
        want(3)?;
        if args_reg {
            Ok(RvInst::Alu { op: o, rd: reg(0)?, rs1: reg(1)?, rs2: reg(2)? })
        } else {
            Ok(RvInst::AluImm { op: o, rd: reg(0)?, rs1: reg(1)?, imm: imm(2)? })
        }
    };
    let load = |w: MemWidth, signed: bool| -> Result<RvInst, String> {
        want(2)?;
        let (base, off) = mem(1)?;
        Ok(RvInst::Load { width: w, signed, rd: reg(0)?, base, off })
    };
    let store = |w: MemWidth| -> Result<RvInst, String> {
        want(2)?;
        let (base, off) = mem(1)?;
        Ok(RvInst::Store { width: w, rs2: reg(0)?, base, off })
    };
    let branch = |c: BranchCond, swap: bool| -> Result<RvInst, String> {
        want(3)?;
        let (a, b) = (reg(0)?, reg(1)?);
        let (rs1, rs2) = if swap { (b, a) } else { (a, b) };
        Ok(RvInst::Branch { cond: c, rs1, rs2, target: label(2)? })
    };
    // Branch-against-zero pseudo-instructions: `cond(rs1, zero)`.
    let branch_z = |c: BranchCond, swap: bool| -> Result<RvInst, String> {
        want(2)?;
        let r = reg(0)?;
        let (rs1, rs2) = if swap { (Reg::ZERO, r) } else { (r, Reg::ZERO) };
        Ok(RvInst::Branch { cond: c, rs1, rs2, target: label(1)? })
    };

    use AluOp::*;
    use BranchCond::*;
    use MemWidth::*;
    let inst = match op.to_ascii_lowercase().as_str() {
        // -------- loads / stores --------
        "lb" => load(B, true)?,
        "lh" => load(H, true)?,
        "lw" => load(W, true)?,
        "ld" => load(D, true)?,
        "lbu" => load(B, false)?,
        "lhu" => load(H, false)?,
        "lwu" => load(W, false)?,
        "sb" => store(B)?,
        "sh" => store(H)?,
        "sw" => store(W)?,
        "sd" => store(D)?,
        // -------- register-register ALU --------
        "add" => alu(Add, true)?,
        "sub" => alu(Sub, true)?,
        "and" => alu(And, true)?,
        "or" => alu(Or, true)?,
        "xor" => alu(Xor, true)?,
        "sll" => alu(Sll, true)?,
        "srl" => alu(Srl, true)?,
        "sra" => alu(Sra, true)?,
        "slt" => alu(Slt, true)?,
        "sltu" => alu(Sltu, true)?,
        "addw" => alu(AddW, true)?,
        "subw" => alu(SubW, true)?,
        // -------- M extension --------
        "mul" => alu(Mul, true)?,
        "mulh" => alu(Mulh, true)?,
        "mulw" => alu(MulW, true)?,
        "div" => alu(Div, true)?,
        "divu" => alu(Divu, true)?,
        "divw" => alu(DivW, true)?,
        "rem" => alu(Rem, true)?,
        "remu" => alu(Remu, true)?,
        "remw" => alu(RemW, true)?,
        // -------- register-immediate ALU --------
        "addi" => alu(Add, false)?,
        "andi" => alu(And, false)?,
        "ori" => alu(Or, false)?,
        "xori" => alu(Xor, false)?,
        "slli" => alu(Sll, false)?,
        "srli" => alu(Srl, false)?,
        "srai" => alu(Sra, false)?,
        "slti" => alu(Slt, false)?,
        "sltiu" => alu(Sltu, false)?,
        "addiw" => alu(AddW, false)?,
        "lui" => {
            want(2)?;
            let v = imm(1)?;
            // The encoding holds exactly 20 bits (assemblers accept them
            // written unsigned or as a negative upper-immediate).
            if !(-(1 << 19)..(1 << 20)).contains(&v) {
                return Err(format!("`lui` immediate {v} outside the 20-bit encoding"));
            }
            RvInst::Lui { rd: reg(0)?, imm: v & 0xf_ffff }
        }
        // -------- pseudo-instructions --------
        "li" => {
            want(2)?;
            RvInst::AluImm { op: Add, rd: reg(0)?, rs1: Reg::ZERO, imm: imm(1)? }
        }
        "mv" => {
            want(2)?;
            RvInst::AluImm { op: Add, rd: reg(0)?, rs1: reg(1)?, imm: 0 }
        }
        "neg" => {
            want(2)?;
            RvInst::Alu { op: Sub, rd: reg(0)?, rs1: Reg::ZERO, rs2: reg(1)? }
        }
        "not" => {
            want(2)?;
            RvInst::AluImm { op: Xor, rd: reg(0)?, rs1: reg(1)?, imm: -1 }
        }
        "seqz" => {
            want(2)?;
            RvInst::AluImm { op: Sltu, rd: reg(0)?, rs1: reg(1)?, imm: 1 }
        }
        "snez" => {
            want(2)?;
            RvInst::Alu { op: Sltu, rd: reg(0)?, rs1: Reg::ZERO, rs2: reg(1)? }
        }
        "nop" => {
            want(0)?;
            RvInst::AluImm { op: Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 }
        }
        // -------- branches --------
        "beq" => branch(Eq, false)?,
        "bne" => branch(Ne, false)?,
        "blt" => branch(Lt, false)?,
        "bge" => branch(Ge, false)?,
        "bltu" => branch(Ltu, false)?,
        "bgeu" => branch(Geu, false)?,
        "bgt" => branch(Lt, true)?,
        "ble" => branch(Ge, true)?,
        "bgtu" => branch(Ltu, true)?,
        "bleu" => branch(Geu, true)?,
        "beqz" => branch_z(Eq, false)?,
        "bnez" => branch_z(Ne, false)?,
        "bltz" => branch_z(Lt, false)?,
        "bgez" => branch_z(Ge, false)?,
        "bgtz" => branch_z(Lt, true)?,
        "blez" => branch_z(Ge, true)?,
        // -------- jumps / calls --------
        "j" => {
            want(1)?;
            RvInst::Jump { target: label(0)? }
        }
        "call" => {
            want(1)?;
            RvInst::Call { target: label(0)? }
        }
        "jal" => match args.len() {
            // `jal label` links ra implicitly.
            1 => RvInst::Call { target: label(0)? },
            2 => {
                let rd = reg(0)?;
                let target = label(1)?;
                match rd {
                    Reg::ZERO => RvInst::Jump { target },
                    Reg::RA => RvInst::Call { target },
                    _ => return Err("`jal` link register must be `zero` or `ra`".into()),
                }
            }
            n => return Err(format!("`jal` takes 1 or 2 operands, got {n}")),
        },
        "ret" => {
            want(0)?;
            RvInst::Ret
        }
        "jr" => {
            want(1)?;
            if reg(0)? != Reg::RA {
                return Err("`jr` is only supported through `ra`".into());
            }
            RvInst::Ret
        }
        "jalr" => {
            // Only the return idiom `jalr zero, 0(ra)` / `jalr ra`.
            let ret_ok = match args.len() {
                1 => reg(0)? == Reg::RA,
                2 => reg(0)? == Reg::ZERO && mem(1)? == (Reg::RA, 0),
                _ => false,
            };
            if !ret_ok {
                return Err("`jalr` is only supported as a return through `ra`".into());
            }
            RvInst::Ret
        }
        other => return Err(format!("unknown instruction `{other}`")),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_parse_by_abi_and_index() {
        assert_eq!(parse_reg("zero").unwrap(), Reg(0));
        assert_eq!(parse_reg("ra").unwrap(), Reg(1));
        assert_eq!(parse_reg("sp").unwrap(), Reg(2));
        assert_eq!(parse_reg("a0").unwrap(), Reg(10));
        assert_eq!(parse_reg("t6").unwrap(), Reg(31));
        assert_eq!(parse_reg("s11").unwrap(), Reg(27));
        assert_eq!(parse_reg("fp").unwrap(), Reg(8));
        assert_eq!(parse_reg("x17").unwrap(), Reg(17));
        assert!(parse_reg("x32").is_err());
        assert!(parse_reg("q1").is_err());
    }

    #[test]
    fn memrefs_and_immediates() {
        assert_eq!(parse_memref("8(sp)").unwrap(), (Reg::SP, 8));
        assert_eq!(parse_memref("-16(a0)").unwrap(), (Reg(10), -16));
        assert_eq!(parse_memref("0x40(t0)").unwrap(), (Reg(5), 0x40));
        assert_eq!(parse_memref("(a1)").unwrap(), (Reg(11), 0));
        assert!(parse_memref("a1").is_err());
        assert_eq!(parse_imm("-0x10").unwrap(), -16);
        assert_eq!(parse_imm("1024").unwrap(), 1024);
        assert!(parse_imm("ten").is_err());
    }

    #[test]
    fn parses_a_small_program_with_labels() {
        let p = parse(
            "// add the numbers 1..=3\n\
             \tli t0, 0          // acc\n\
             \tli t1, 3\n\
             loop:\n\
             \tadd t0, t0, t1\n\
             \taddi t1, t1, -1\n\
             \tbnez t1, loop\n\
             end:\n",
        )
        .unwrap();
        assert_eq!(p.insts.len(), 5);
        assert_eq!(p.labels["loop"], 2);
        assert_eq!(p.labels["end"], 5, "trailing label maps one past the end");
        assert_eq!(
            p.insts[4],
            RvInst::Branch { cond: BranchCond::Ne, rs1: Reg(6), rs2: Reg::ZERO, target: 2 }
        );
    }

    #[test]
    fn pseudo_instructions_expand() {
        let p = parse("a:\n mv a0, a1\n neg a2, a3\n seqz a4, a5\n nop\n j a\n").unwrap();
        assert_eq!(
            p.insts[0],
            RvInst::AluImm { op: AluOp::Add, rd: Reg(10), rs1: Reg(11), imm: 0 }
        );
        assert_eq!(
            p.insts[1],
            RvInst::Alu { op: AluOp::Sub, rd: Reg(12), rs1: Reg::ZERO, rs2: Reg(13) }
        );
        assert_eq!(
            p.insts[2],
            RvInst::AluImm { op: AluOp::Sltu, rd: Reg(14), rs1: Reg(15), imm: 1 }
        );
        assert_eq!(p.insts[4], RvInst::Jump { target: 0 });
    }

    #[test]
    fn swapped_branch_pseudos() {
        let p = parse("top:\n ble a0, a1, top\n bgt a2, a3, top\n").unwrap();
        assert_eq!(
            p.insts[0],
            RvInst::Branch { cond: BranchCond::Ge, rs1: Reg(11), rs2: Reg(10), target: 0 }
        );
        assert_eq!(
            p.insts[1],
            RvInst::Branch { cond: BranchCond::Lt, rs1: Reg(13), rs2: Reg(12), target: 0 }
        );
    }

    #[test]
    fn rejects_malformed_programs() {
        assert!(parse("").is_err(), "empty program");
        assert!(parse("frobnicate a0, a1\n").is_err(), "unknown mnemonic");
        assert!(parse("beq a0, a1, nowhere\n").is_err(), "dangling label");
        assert!(parse("add a0, a1\n").is_err(), "missing operand");
        assert!(parse("l: \n nop\n l:\n nop\n").is_err(), "duplicate label");
        assert!(parse("jalr t0\n").is_err(), "indirect jumps beyond `ret` unsupported");
        assert!(parse("jal t3, somewhere\n").is_err(), "non-standard link register");
    }

    #[test]
    fn rejects_extra_operands() {
        // A typo'd extra operand must fail loudly, not silently drop.
        assert!(parse("add a0, a1, a2, a3\n").is_err());
        assert!(parse("l:\n beq t0, t1, l, l\n").is_err());
        assert!(parse("lw a0, 0(a1), 8\n").is_err());
        assert!(parse("sd a0, 0(a1), a2\n").is_err());
        assert!(parse("addi a0, a1, 1, 2\n").is_err());
    }

    #[test]
    fn lui_range_is_enforced() {
        assert!(parse("lui t0, 0x100000\n").is_err(), "21 bits must not encode");
        assert!(parse("lui t0, -524289\n").is_err());
        let p = parse("lui t0, 0x80000\n lui t1, -1\n").unwrap();
        // Negative upper-immediates normalize into the 20-bit field.
        assert_eq!(p.insts[1], RvInst::Lui { rd: Reg(6), imm: 0xf_ffff });
    }

    #[test]
    fn comment_styles_are_stripped() {
        let p = parse("nop // c++ style\n nop # shell style\n nop ; asm style\n").unwrap();
        assert_eq!(p.insts.len(), 3);
    }
}
