//! The functional RV64I(+M) machine: registers, flat data memory, and
//! single-instruction architectural execution.
//!
//! This is a *functional* emulator — it computes what the program does,
//! not how long it takes. Timing belongs to the cycle-level processor
//! model; the emulator's job is to hand it an architecturally-true
//! dynamic stream (which instruction executes next, whether each branch
//! is taken, which address each load/store touches).

use hdsmt_isa::Program;

use crate::asm::{AluOp, BranchCond, Reg, RvInst};

/// Bytes of flat data memory per program instance (power of two). Small
/// enough that one lap's reset is cheap, large enough for the bundled
/// kernels' data plus stack.
pub const MEM_BYTES: usize = 256 * 1024;

/// Result of executing one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Step {
    /// Instruction index executing next.
    pub next: usize,
    /// `Some(taken)` for conditional branches.
    pub taken: Option<bool>,
    /// Effective virtual address for loads/stores (masked into the data
    /// memory).
    pub vaddr: Option<u64>,
}

/// Architectural state of one program instance.
pub struct Machine {
    pub regs: [u64; 32],
    pub mem: Vec<u8>,
    /// Index of the next instruction to execute.
    pub next_idx: usize,
}

/// Global PC value of instruction index `idx` (the CFG translator lays
/// every instruction out at consecutive 4-byte PCs from
/// [`Program::BASE_PC`]).
#[inline]
pub fn pc_value_of(idx: usize) -> u64 {
    Program::BASE_PC.0 + 4 * idx as u64
}

/// Inverse of [`pc_value_of`]: `None` for values outside the image or
/// misaligned (a clobbered `ra`).
#[inline]
pub fn idx_of_pc_value(v: u64, n_insts: usize) -> Option<usize> {
    if v < Program::BASE_PC.0 || !(v - Program::BASE_PC.0).is_multiple_of(4) {
        return None;
    }
    let idx = ((v - Program::BASE_PC.0) / 4) as usize;
    (idx < n_insts).then_some(idx)
}

impl Machine {
    pub fn new() -> Self {
        let mut m = Machine { regs: [0; 32], mem: vec![0; MEM_BYTES], next_idx: 0 };
        m.reset();
        m
    }

    /// Restore the pristine start-of-program state (registers cleared,
    /// stack pointer at the top of memory, memory zeroed). Called between
    /// laps so every lap replays the identical architectural execution.
    pub fn reset(&mut self) {
        self.regs = [0; 32];
        self.regs[Reg::SP.0 as usize] = MEM_BYTES as u64;
        self.mem.fill(0);
        self.next_idx = 0;
    }

    #[inline]
    fn reg(&self, r: Reg) -> u64 {
        self.regs[r.0 as usize]
    }

    #[inline]
    fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.0 as usize] = v;
        }
    }

    /// Little-endian read of `bytes` at `vaddr`, each byte masked into
    /// the memory (out-of-range programs wrap rather than fault — the
    /// simulator must never crash on a wild pointer).
    fn read(&self, vaddr: u64, bytes: usize) -> u64 {
        let mut v = 0u64;
        for i in 0..bytes {
            let b = self.mem[(vaddr.wrapping_add(i as u64) as usize) & (MEM_BYTES - 1)];
            v |= (b as u64) << (8 * i);
        }
        v
    }

    fn write(&mut self, vaddr: u64, bytes: usize, v: u64) {
        for i in 0..bytes {
            self.mem[(vaddr.wrapping_add(i as u64) as usize) & (MEM_BYTES - 1)] =
                (v >> (8 * i)) as u8;
        }
    }

    fn alu(op: AluOp, a: u64, b: u64) -> u64 {
        let (sa, sb) = (a as i64, b as i64);
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => a.wrapping_shr((b & 63) as u32),
            AluOp::Sra => (sa >> (b & 63)) as u64,
            AluOp::Slt => (sa < sb) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => (((sa as i128) * (sb as i128)) >> 64) as u64,
            // RV64M: division by zero yields all-ones / the dividend
            // (no trap), overflow (MIN / -1) yields MIN / 0.
            AluOp::Div => {
                if sb == 0 {
                    u64::MAX
                } else {
                    sa.wrapping_div(sb) as u64
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if sb == 0 {
                    a
                } else {
                    sa.wrapping_rem(sb) as u64
                }
            }
            AluOp::Remu => a.checked_rem(b).unwrap_or(a),
            AluOp::AddW => (a as i32).wrapping_add(b as i32) as i64 as u64,
            AluOp::SubW => (a as i32).wrapping_sub(b as i32) as i64 as u64,
            AluOp::MulW => (a as i32).wrapping_mul(b as i32) as i64 as u64,
            AluOp::DivW => {
                let (wa, wb) = (a as i32, b as i32);
                if wb == 0 {
                    u64::MAX
                } else {
                    wa.wrapping_div(wb) as i64 as u64
                }
            }
            AluOp::RemW => {
                let (wa, wb) = (a as i32, b as i32);
                if wb == 0 {
                    wa as i64 as u64
                } else {
                    wa.wrapping_rem(wb) as i64 as u64
                }
            }
        }
    }

    /// Execute the instruction at index `idx` of `insts`, updating the
    /// architectural state and returning where control goes.
    pub fn step(&mut self, insts: &[RvInst], idx: usize) -> Step {
        let fall = idx + 1;
        let step = match insts[idx] {
            RvInst::Alu { op, rd, rs1, rs2 } => {
                let v = Self::alu(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                Step { next: fall, taken: None, vaddr: None }
            }
            RvInst::AluImm { op, rd, rs1, imm } => {
                let v = Self::alu(op, self.reg(rs1), imm as u64);
                self.set_reg(rd, v);
                Step { next: fall, taken: None, vaddr: None }
            }
            RvInst::Lui { rd, imm } => {
                // RV64: the 32-bit upper-immediate result sign-extends
                // (bit 31 of `imm << 12` propagates through bits 63:32).
                self.set_reg(rd, ((imm << 12) as i32) as i64 as u64);
                Step { next: fall, taken: None, vaddr: None }
            }
            RvInst::Load { width, signed, rd, base, off } => {
                let vaddr = self.reg(base).wrapping_add(off as u64);
                let bytes = width.bytes();
                let raw = self.read(vaddr, bytes);
                let v = if signed && bytes < 8 {
                    let shift = 64 - 8 * bytes as u32;
                    (((raw << shift) as i64) >> shift) as u64
                } else {
                    raw
                };
                self.set_reg(rd, v);
                Step { next: fall, taken: None, vaddr: Some(vaddr) }
            }
            RvInst::Store { width, rs2, base, off } => {
                let vaddr = self.reg(base).wrapping_add(off as u64);
                self.write(vaddr, width.bytes(), self.reg(rs2));
                Step { next: fall, taken: None, vaddr: Some(vaddr) }
            }
            RvInst::Branch { cond, rs1, rs2, target } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let (sa, sb) = (a as i64, b as i64);
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => sa < sb,
                    BranchCond::Ge => sa >= sb,
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                Step { next: if taken { target } else { fall }, taken: Some(taken), vaddr: None }
            }
            RvInst::Jump { target } => Step { next: target, taken: None, vaddr: None },
            RvInst::Call { target } => {
                self.set_reg(Reg::RA, pc_value_of(fall));
                Step { next: target, taken: None, vaddr: None }
            }
            // A clobbered return address falls back to the end of the
            // image — the wrap-around restart point — instead of faulting.
            RvInst::Ret => {
                let next =
                    idx_of_pc_value(self.reg(Reg::RA), insts.len()).unwrap_or(insts.len() - 1);
                Step { next, taken: None, vaddr: None }
            }
        };
        self.next_idx = step.next;
        step
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse;

    /// Run `text` until control reaches the end of the instruction list
    /// (the fall-off-the-end restart point), with a step bound.
    fn run(text: &str) -> Machine {
        let p = parse(text).unwrap();
        let mut m = Machine::new();
        for _ in 0..1_000_000 {
            if m.next_idx >= p.insts.len() {
                return m;
            }
            let idx = m.next_idx;
            m.step(&p.insts, idx);
        }
        panic!("program did not terminate");
    }

    #[test]
    fn arithmetic_and_branches() {
        // Sum 1..=10 by loop.
        let m =
            run("li t0, 0\n li t1, 10\nloop:\n add t0, t0, t1\n addi t1, t1, -1\n bnez t1, loop\n");
        assert_eq!(m.regs[5], 55);
    }

    #[test]
    fn loads_sign_and_zero_extend() {
        let m = run("li t0, 4096\n\
             li t1, -2\n\
             sw t1, 0(t0)\n\
             lw t2, 0(t0)\n\
             lwu t3, 0(t0)\n\
             lb t4, 0(t0)\n\
             lbu t5, 0(t0)\n");
        assert_eq!(m.regs[7] as i64, -2, "lw sign-extends");
        assert_eq!(m.regs[28], 0xffff_fffe, "lwu zero-extends");
        assert_eq!(m.regs[29] as i64, -2, "lb sign-extends");
        assert_eq!(m.regs[30], 0xfe, "lbu zero-extends");
    }

    #[test]
    fn division_semantics_follow_rv64m() {
        let m = run("li t0, 7\n li t1, 0\n\
             div t2, t0, t1\n\
             rem t3, t0, t1\n\
             li t4, -9\n li t5, 4\n\
             div t6, t4, t5\n");
        assert_eq!(m.regs[7], u64::MAX, "divide by zero → all ones");
        assert_eq!(m.regs[28], 7, "remainder by zero → dividend");
        assert_eq!(m.regs[31] as i64, -2, "signed division truncates toward zero");
    }

    #[test]
    fn lui_sign_extends_like_rv64() {
        let m = run("lui t0, 0x80000\n lui t1, 0x7ffff\n lui t2, 1\n");
        assert_eq!(m.regs[5], 0xffff_ffff_8000_0000, "bit 31 propagates to 63:32");
        assert_eq!(m.regs[6], 0x7fff_f000);
        assert_eq!(m.regs[7], 0x1000);
    }

    #[test]
    fn call_and_ret_link_through_ra() {
        let m = run("li a0, 5\n\
             call double\n\
             mv a1, a0\n\
             j end\n\
             double:\n\
             add a0, a0, a0\n\
             ret\n\
             end:\n");
        assert_eq!(m.regs[11], 10);
    }

    #[test]
    fn writes_to_zero_are_discarded_and_memory_wraps() {
        let m = run("li t0, 7\n add zero, t0, t0\n");
        assert_eq!(m.regs[0], 0);
        // A wild store must wrap into the data memory, not crash.
        let m = run("li t0, 0x7fffffff0\n sd t0, 0(t0)\n ld t1, 0(t0)\n");
        assert_eq!(m.regs[6], m.regs[5], "wrapped store reads back");
    }

    #[test]
    fn stack_starts_at_top_and_reset_restores() {
        let p = parse("addi sp, sp, -16\n sd ra, 8(sp)\n").unwrap();
        let mut m = Machine::new();
        assert_eq!(m.regs[2], MEM_BYTES as u64);
        m.step(&p.insts, 0);
        m.step(&p.insts, 1);
        assert_eq!(m.regs[2], MEM_BYTES as u64 - 16);
        m.mem[0] = 99;
        m.reset();
        assert_eq!(m.regs[2], MEM_BYTES as u64);
        assert_eq!(m.mem[0], 0);
        assert_eq!(m.next_idx, 0);
    }
}
