//! CFG translation: a parsed [`AsmProgram`] becomes an
//! [`hdsmt_isa::Program`] — the basic-block dictionary the shared fetch
//! engine needs for wrong-path decoding and static taken-targets.
//!
//! Layout invariant: instruction index `i` sits at PC
//! `Program::BASE_PC + 4*i` (blocks are created in index order and the
//! program builder lays them out contiguously), so the emulator and the
//! dictionary agree on every PC without a mapping table.
//!
//! Because real programs are finite while the simulator's streams must be
//! endless, translation appends one synthetic **restart block** — a
//! single `Jump` back to the entry — at the end of the image. Execution
//! that falls off the end (or returns through a clobbered `ra`) flows
//! into it, the trace source emits it as a real taken jump, and the
//! machine resets for the next identical lap.

use std::collections::BTreeSet;
use std::sync::Arc;

use hdsmt_isa::{ArchReg, BasicBlock, BlockId, MemGen, Op, Program, StaticInst, Terminator};

use crate::asm::{AsmProgram, Reg, RvInst};

/// A translated, executable program image: the emulator-facing
/// instruction list and the pipeline-facing basic-block dictionary, index
/// aligned (entry `i` of [`insts`](Self::insts) sits at PC
/// `BASE_PC + 4*i`; the last entry is the synthetic restart jump).
#[derive(Debug)]
pub struct RvImage {
    pub name: String,
    pub program: Arc<Program>,
    pub insts: Vec<RvInst>,
    /// Flat copy of each instruction's [`StaticInst`] (same indexing), so
    /// the trace source never searches the dictionary on the hot path.
    pub sinsts: Vec<StaticInst>,
    /// Index of the synthetic restart jump (`== insts.len() - 1`).
    pub restart_idx: usize,
}

fn reg_opt(r: Reg) -> Option<ArchReg> {
    if r.is_zero() {
        None
    } else {
        Some(ArchReg::int(r.0))
    }
}

/// Address-behaviour annotation for one memory instruction. The
/// annotation only steers *wrong-path* address fabrication (correct-path
/// addresses come from the emulator); stack-pointer-relative accesses
/// fabricate near the stack, everything else anywhere in the data image.
fn mem_gen(base: Reg) -> MemGen {
    if base == Reg::SP {
        MemGen::Stack
    } else {
        MemGen::Random
    }
}

/// The pipeline-facing classification of one instruction.
fn static_of(inst: &RvInst) -> StaticInst {
    match *inst {
        RvInst::Alu { op, rd, rs1, rs2 } => StaticInst {
            op: if op.is_mul() {
                Op::IntMul
            } else if op.is_div() {
                Op::IntDiv
            } else {
                Op::IntAlu
            },
            dst: reg_opt(rd),
            srcs: [reg_opt(rs1), reg_opt(rs2)],
            mem: None,
        },
        RvInst::AluImm { op, rd, rs1, .. } => StaticInst {
            op: if op.is_mul() {
                Op::IntMul
            } else if op.is_div() {
                Op::IntDiv
            } else {
                Op::IntAlu
            },
            dst: reg_opt(rd),
            srcs: [reg_opt(rs1), None],
            mem: None,
        },
        RvInst::Lui { rd, .. } => {
            StaticInst { op: Op::IntAlu, dst: reg_opt(rd), srcs: [None, None], mem: None }
        }
        RvInst::Load { rd, base, .. } => StaticInst {
            op: Op::Load,
            dst: reg_opt(rd),
            srcs: [reg_opt(base), None],
            mem: Some(mem_gen(base)),
        },
        RvInst::Store { rs2, base, .. } => StaticInst {
            op: Op::Store,
            dst: None,
            srcs: [reg_opt(base), reg_opt(rs2)],
            mem: Some(mem_gen(base)),
        },
        RvInst::Branch { rs1, rs2, .. } => StaticInst {
            op: Op::CondBranch,
            dst: None,
            srcs: [reg_opt(rs1), reg_opt(rs2)],
            mem: None,
        },
        RvInst::Jump { .. } => {
            StaticInst { op: Op::Jump, dst: None, srcs: [None, None], mem: None }
        }
        RvInst::Call { .. } => StaticInst {
            op: Op::Call,
            dst: Some(ArchReg::int(Reg::RA.0)),
            srcs: [None, None],
            mem: None,
        },
        RvInst::Ret => StaticInst {
            op: Op::Return,
            dst: None,
            srcs: [Some(ArchReg::int(Reg::RA.0)), None],
            mem: None,
        },
    }
}

/// Translate a parsed program into an executable [`RvImage`].
pub fn translate(name: &str, asm: &AsmProgram) -> Result<RvImage, String> {
    // The executable image: every parsed instruction plus the synthetic
    // restart jump at the end.
    let mut insts = asm.insts.clone();
    let restart_idx = insts.len();
    insts.push(RvInst::Jump { target: 0 });
    let n = insts.len();

    // Block boundaries: entry, the restart jump, every label, every
    // branch target, and every control-transfer fall-through.
    let mut bounds: BTreeSet<usize> = BTreeSet::new();
    bounds.insert(0);
    bounds.insert(restart_idx);
    for &idx in asm.labels.values() {
        bounds.insert(idx.min(restart_idx));
    }
    for (i, inst) in insts.iter().enumerate() {
        match *inst {
            RvInst::Branch { target, .. } | RvInst::Jump { target } | RvInst::Call { target } => {
                if target > restart_idx {
                    return Err(format!("{name}: branch target {target} outside the image"));
                }
                bounds.insert(target.min(restart_idx));
                if i < restart_idx {
                    bounds.insert(i + 1);
                }
            }
            RvInst::Ret => {
                bounds.insert((i + 1).min(restart_idx));
            }
            _ => {}
        }
    }
    bounds.remove(&n); // the restart jump never falls through

    let starts: Vec<usize> = bounds.into_iter().collect();
    let block_of = |idx: usize| -> BlockId {
        // Last boundary ≤ idx (targets are always boundaries, so this is
        // exact for them).
        let pos = starts.partition_point(|&s| s <= idx) - 1;
        BlockId(pos as u32)
    };

    let mut blocks = Vec::with_capacity(starts.len());
    for (bi, &start) in starts.iter().enumerate() {
        let end = starts.get(bi + 1).copied().unwrap_or(n);
        debug_assert!(start < end, "empty block at {start}");
        let body: Vec<StaticInst> = insts[start..end].iter().map(static_of).collect();
        let last = &insts[end - 1];
        let term = match *last {
            RvInst::Branch { target, .. } => Terminator::Cond {
                taken: block_of(target),
                not_taken: block_of(end.min(restart_idx)),
                // Outcomes come from the emulator; the probability is a
                // structural placeholder (validators require [0, 1]).
                p_taken: 0.5,
            },
            RvInst::Jump { target } => Terminator::Jump { target: block_of(target) },
            RvInst::Call { target } => Terminator::Call {
                callee: block_of(target),
                ret_to: block_of(end.min(restart_idx)),
            },
            RvInst::Ret => Terminator::Return,
            _ => Terminator::FallThrough { next: block_of(end.min(restart_idx)) },
        };
        blocks.push(BasicBlock {
            id: BlockId(bi as u32),
            start: hdsmt_isa::Pc(0), // assigned by Program::build
            insts: body,
            term,
        });
    }

    let program =
        Program::build(blocks, BlockId(0)).map_err(|e| format!("{name}: invalid CFG: {e}"))?;
    debug_assert_eq!(program.len_insts(), n as u64);
    let sinsts: Vec<StaticInst> = insts.iter().map(static_of).collect();
    Ok(RvImage { name: name.to_string(), program: Arc::new(program), insts, sinsts, restart_idx })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse;
    use hdsmt_isa::Pc;

    fn image(text: &str) -> RvImage {
        translate("test", &parse(text).unwrap()).unwrap()
    }

    #[test]
    fn instruction_index_matches_pc_layout() {
        let img = image("li t0, 1\nloop:\n addi t0, t0, 1\n bne t0, t1, loop\n");
        for (i, s) in img.sinsts.iter().enumerate() {
            let pc = Pc(Program::BASE_PC.0 + 4 * i as u64);
            assert_eq!(img.program.inst_at(pc), Some(s), "inst {i} not at its PC");
        }
        assert_eq!(img.program.len_insts(), img.insts.len() as u64);
    }

    #[test]
    fn restart_block_jumps_to_entry() {
        let img = image("nop\n nop\n");
        assert_eq!(img.restart_idx, 2);
        assert_eq!(img.insts[2], RvInst::Jump { target: 0 });
        let restart_pc = Pc(Program::BASE_PC.0 + 4 * img.restart_idx as u64);
        let (b, off) = img.program.lookup(restart_pc).unwrap();
        assert_eq!(off, 0, "restart jump opens its own block");
        assert_eq!(b.term, Terminator::Jump { target: BlockId(0) });
        assert_eq!(b.insts[0].op, Op::Jump);
    }

    #[test]
    fn branch_terminators_carry_taken_and_fallthrough() {
        let img = image("top:\n addi t0, t0, 1\n blt t0, t1, top\n sub t2, t0, t1\n");
        let (b, _) = img.program.lookup(Program::BASE_PC).unwrap();
        match b.term {
            Terminator::Cond { taken, not_taken, .. } => {
                assert_eq!(img.program.block(taken).start, Program::BASE_PC);
                // Fall-through block starts right after the branch.
                assert_eq!(img.program.block(not_taken).start, Pc(Program::BASE_PC.0 + 8));
            }
            ref t => panic!("expected Cond, got {t:?}"),
        }
    }

    #[test]
    fn calls_and_returns_translate() {
        let img = image("call f\n j done\n f:\n ret\n done:\n nop\n");
        let (b, _) = img.program.lookup(Program::BASE_PC).unwrap();
        match b.term {
            Terminator::Call { callee, ret_to } => {
                assert_eq!(img.program.block(callee).insts[0].op, Op::Return);
                assert_eq!(img.program.block(ret_to).insts[0].op, Op::Jump);
            }
            ref t => panic!("expected Call, got {t:?}"),
        }
        // `ra` is the architectural link register in the static image.
        assert_eq!(img.sinsts[0].dst, Some(ArchReg::int(1)));
        assert_eq!(img.sinsts[2].srcs[0], Some(ArchReg::int(1)));
    }

    #[test]
    fn trailing_label_branch_reaches_the_restart_block() {
        // `bne … end` with `end:` at the very end must resolve to the
        // restart block, wrapping execution around.
        let img = image("loop:\n addi t0, t0, 1\n bne t0, t1, end\n j loop\n end:\n");
        let (b, _) = img.program.lookup(Pc(Program::BASE_PC.0 + 4)).unwrap();
        match b.term {
            Terminator::Cond { taken, .. } => {
                assert_eq!(img.program.block(taken).term, Terminator::Jump { target: BlockId(0) });
            }
            ref t => panic!("expected Cond, got {t:?}"),
        }
    }

    #[test]
    fn memory_annotations_split_stack_from_heap() {
        let img = image("lw t0, 8(sp)\n sw t0, 16(a0)\n");
        assert_eq!(img.sinsts[0].mem, Some(MemGen::Stack));
        assert_eq!(img.sinsts[1].mem, Some(MemGen::Random));
        assert_eq!(img.sinsts[1].srcs, [Some(ArchReg::int(10)), Some(ArchReg::int(5))]);
    }

    #[test]
    fn every_builtin_asm_shape_validates() {
        // The program builder re-validates structure (mid-block control,
        // terminator mismatches, dangling successors) — translating any
        // parseable program must yield a valid CFG.
        let img = image(
            "li a0, 3\n\
             start:\n call f\n addi a0, a0, -1\n bnez a0, start\n j out\n\
             f:\n addi a1, a1, 1\n ret\n\
             out:\n nop\n",
        );
        img.program.validate().unwrap();
    }
}
