// fib — naive recursive Fibonacci: deep call/return traffic for the
// RAS, plus stack loads/stores. Publishes fib(16) = 987 at 4096.

	li a0, 16
	call fib
	li t0, 4096
	sd a0, 0(t0)        // publish the result
	j done

fib:
	li t0, 2
	bge t0, a0, base    // n <= 2 -> 1
	addi sp, sp, -24
	sd ra, 0(sp)
	sd a0, 8(sp)
	addi a0, a0, -1
	call fib
	sd a0, 16(sp)       // fib(n-1)
	ld a0, 8(sp)
	addi a0, a0, -2
	call fib
	ld t1, 16(sp)
	add a0, a0, t1      // fib(n-1) + fib(n-2)
	ld ra, 0(sp)
	addi sp, sp, 24
	ret
base:
	li a0, 1
	ret

done:
