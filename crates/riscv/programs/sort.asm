// sort — fill 96 elements from an LCG, insertion-sort them, checksum.
// Data-dependent branches (the predictor's worst case) plus shifting
// store traffic. Publishes sum(a[i] * i) at 8192.

	li s0, 96           // n
	li s1, 4096         // array base
	li t0, 12345       // LCG state
	li s2, 1103515245
	li t1, 0            // i
fill:
	mul t0, t0, s2
	addi t0, t0, 12345
	srli t2, t0, 16
	li t3, 0x7fff
	and t2, t2, t3      // 15-bit key
	slli t4, t1, 3
	add t4, s1, t4
	sd t2, 0(t4)
	addi t1, t1, 1
	blt t1, s0, fill

// ---- insertion sort ----
	li t1, 1            // i
outer:
	slli t2, t1, 3
	add t2, s1, t2
	ld a0, 0(t2)        // key = a[i]
	addi t3, t1, -1     // j
inner:
	bltz t3, place
	slli t4, t3, 3
	add t4, s1, t4
	ld a1, 0(t4)
	ble a1, a0, place   // a[j] <= key -> insert here
	sd a1, 8(t4)        // shift a[j] up
	addi t3, t3, -1
	j inner
place:
	addi t5, t3, 1
	slli t5, t5, 3
	add t5, s1, t5
	sd a0, 0(t5)
	addi t1, t1, 1
	blt t1, s0, outer

// ---- order-sensitive checksum ----
	li t1, 0
	li a2, 0
check:
	slli t2, t1, 3
	add t2, s1, t2
	ld a3, 0(t2)
	mul a4, a3, t1
	add a2, a2, a4
	addi t1, t1, 1
	blt t1, s0, check
	li t6, 8192
	sd a2, 0(t6)        // publish the checksum
