// matmul — 12x12 integer matrix multiply.
// Generates a = b = I (and c = 0), computes c = a*b, so the result is
// the identity again: c[0] = 1, c[1] = 0, trace checkable.

	li s0, 12           // dim
	li s1, 4096         // a base
	li s2, 8192         // b base
	li s3, 12288        // c base

// ---- generate: a = b = identity, c = 0 ----
	li t0, 0            // i
gen_i:
	li t1, 0            // j
gen_j:
	mul t2, t0, s0
	add t2, t2, t1      // i*dim + j
	slli t2, t2, 3
	sub t3, t0, t1
	seqz t3, t3         // 1 iff i == j
	add t4, s1, t2
	sd t3, 0(t4)
	add t4, s2, t2
	sd t3, 0(t4)
	add t4, s3, t2
	sd zero, 0(t4)
	addi t1, t1, 1
	blt t1, s0, gen_j
	addi t0, t0, 1
	blt t0, s0, gen_i

// ---- c[i][j] = sum_k a[i][k] * b[k][j] ----
	li t0, 0            // i
mm_i:
	li t1, 0            // j
mm_j:
	li t2, 0            // k
	li a0, 0            // acc
mm_k:
	mul t3, t0, s0
	add t3, t3, t2      // i*dim + k
	slli t3, t3, 3
	add t3, s1, t3
	ld a1, 0(t3)
	mul t4, t2, s0
	add t4, t4, t1      // k*dim + j
	slli t4, t4, 3
	add t4, s2, t4
	ld a2, 0(t4)
	mul a3, a1, a2
	add a0, a0, a3
	addi t2, t2, 1
	blt t2, s0, mm_k
	mul t5, t0, s0
	add t5, t5, t1
	slli t5, t5, 3
	add t5, s3, t5
	sd a0, 0(t5)
	addi t1, t1, 1
	blt t1, s0, mm_j
	addi t0, t0, 1
	blt t0, s0, mm_i
