// prime — trial-division prime counting up to 600: long-latency
// divides and data-dependent loop exits. Publishes pi(600) = 109
// at 4096.

	li s0, 600          // limit
	li s1, 1            // count (2 is prime)
	li t0, 3            // candidate (odd numbers only)
cand:
	li t1, 3            // divisor
trial:
	mul t2, t1, t1
	bgt t2, t0, isprime // d*d > n -> no divisor found
	rem t3, t0, t1
	beqz t3, next       // divisible -> composite
	addi t1, t1, 2
	j trial
isprime:
	addi s1, s1, 1
next:
	addi t0, t0, 2
	ble t0, s0, cand

	li t6, 4096
	sd s1, 0(t6)        // publish the count
