// sum — vector add + reduction over 64-element arrays, 40 passes.
// Init: b[i] = i, c[i] = 2*i. Each pass: a[i] = b[i] + c[i], s += a[i].
// Publishes the final sum (sum of 3*i for i in 0..64 = 6048) at 16384.

	li s0, 0            // pass counter
	li s1, 40           // passes
	li s2, 64           // n
	li s3, 4096         // b base
	li s4, 8192         // c base
	li s5, 12288        // a base

	li t0, 0            // i
init:
	slli t1, t0, 3
	add t2, s3, t1
	sd t0, 0(t2)
	slli t3, t0, 1
	add t2, s4, t1
	sd t3, 0(t2)
	addi t0, t0, 1
	blt t0, s2, init

pass:
	li t0, 0            // i
	li a0, 0            // running sum
body:
	slli t1, t0, 3
	add t2, s3, t1
	ld t3, 0(t2)
	add t2, s4, t1
	ld t4, 0(t2)
	add t5, t3, t4
	add t2, s5, t1
	sd t5, 0(t2)
	add a0, a0, t5
	addi t0, t0, 1
	blt t0, s2, body
	addi s0, s0, 1
	blt s0, s1, pass

	li t6, 16384
	sd a0, 0(t6)        // publish the final sum
