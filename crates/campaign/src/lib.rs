//! # hdsmt-campaign — declarative, cached, resumable experiment campaigns
//!
//! The scaling substrate for design-space studies over the hdSMT
//! simulator. A campaign is declared in a TOML/JSON [`spec::CampaignSpec`]
//! (microarchitectures × workloads × mapping policies × budgets), expanded
//! into a deterministic job [`matrix`], and executed by the [`engine`]
//! through a work-stealing [`sched`]uler, with every simulation result
//! written to a content-addressed on-disk [`cache`]. Re-running after an
//! interrupt — or after an incremental spec edit — only simulates the
//! missing cells.
//!
//! ```text
//! spec.toml ──expand──▶ cells ──resolve mappings──▶ jobs ──run──▶ results
//!                                  │  (oracle cells: cached       │
//!                                  ▼   search sub-jobs)           ▼
//!                            .hdsmt-cache/ ◀──── content-addressed hits
//! ```
//!
//! The `hdsmt-campaign` binary (`run` / `status` / `export`) drives this
//! from the command line; `hdsmt-workloads` drives its BEST/HEUR/WORST
//! envelope experiments through [`job::JobRunner`] as well, so the
//! `reproduce` harness shares the same cache and scheduler.

pub mod cache;
pub mod catalog;
pub mod engine;
pub mod export;
pub mod fault;
pub mod fsck;
pub mod hash;
pub mod job;
pub mod journal;
pub mod matrix;
pub mod sched;
pub mod serve;
pub mod spec;
mod toml;

pub use cache::{CacheCounters, EntryLookup, ResultCache, CODE_VERSION, QUARANTINE_DIR};
pub use catalog::{Catalog, CatalogEntry, PAPER_WORKLOADS};
pub use engine::{
    best_worst, run_campaign, run_campaign_observed, run_campaign_with, status, CampaignProgress,
    CampaignResult, CellResult,
};
pub use fsck::{FsckOptions, FsckReport};
pub use job::{
    CampaignError, JobEvent, JobOutcome, JobRunner, JobSpec, JobThread, RunReport, Watchdog,
};
pub use journal::Journal;
pub use matrix::{cell_shard, expand, Cell, Policy, ShardSpec};
pub use sched::{default_workers, parallel_map, parallel_map_indexed};
pub use spec::{Budget, CampaignSpec, ExtraWorkload};

// Re-export the simulator-facing spec types so campaign users need only
// this crate for programmatic job construction.
pub use hdsmt_core::{FetchPolicy, SimConfig, SimResult, ThreadSpec};
pub use hdsmt_pipeline::MicroArch;
