//! The campaign engine: expand → resolve mappings → simulate (cached).
//!
//! Execution is phased so that *every* simulation — oracle mapping-search
//! runs included — goes through the cached, work-stealing [`JobRunner`]:
//!
//! 1. **Expand** the spec into the deterministic cell matrix.
//! 2. **Search** (only for `best`/`worst` cells): every distinct mapping
//!    of every oracle cell, flattened into one global batch.
//! 3. **Measure**: one full-length job per cell, mappings now known.
//!
//! Interrupting a campaign between (or inside) phases loses nothing:
//! completed jobs sit in the content-addressed cache and are not
//! re-simulated on the next run.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use hdsmt_core::{enumerate_mappings, heuristic_mapping, MissProfile};
use hdsmt_pipeline::MicroArch;

use crate::cache::ResultCache;
use crate::catalog::Catalog;
use crate::job::{CampaignError, JobEvent, JobOutcome, JobRunner, JobSpec, RunReport};
use crate::matrix::{expand, Cell, Policy, ShardSpec};
use crate::spec::CampaignSpec;

/// Observer of one campaign run (all methods optional). Callbacks fire
/// from worker threads, so implementations must be `Sync`; the unit
/// implementation `()` observes nothing.
///
/// The serve daemon implements this to maintain the per-cell progress
/// counters behind `GET /campaigns/:id`.
pub trait CampaignProgress: Sync {
    /// The matrix was expanded (and shard-filtered): these are the cells
    /// this run will measure, in order.
    fn cells_expanded(&self, _cells: &[Cell]) {}
    /// The oracle search phase will run `_jobs` reduced-budget jobs.
    fn search_planned(&self, _jobs: usize) {}
    fn search_job_finished(&self, _outcome: JobOutcome) {}
    /// A cell's full-length measure job left the queue (`_cell` indexes
    /// the `cells_expanded` slice). Cancelled cells never start.
    fn cell_started(&self, _cell: usize) {}
    /// One full-length measure job per cell concluded.
    fn cell_finished(&self, _cell: usize, _outcome: JobOutcome) {}
}

impl CampaignProgress for () {}

/// Measured outcome of one cell.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CellResult {
    pub arch: String,
    pub workload: String,
    pub class: Option<String>,
    pub threads: usize,
    pub policy: String,
    pub mapping: Vec<u8>,
    pub ipc: f64,
    pub cycles: u64,
    pub retired: u64,
    /// Architecture area (mm², §3 model) — for IPC/area tables.
    pub area_mm2: f64,
    /// Distinct mappings searched (oracle policies; 1 otherwise).
    pub n_mappings: usize,
    /// Why this cell failed (timeout budget exhausted, simulator panic);
    /// `None` for a measured cell. Failed cells carry zeroed numerics
    /// and are excluded from every aggregate.
    pub error: Option<String>,
}

impl CellResult {
    pub fn ipc_per_mm2(&self) -> f64 {
        self.ipc / self.area_mm2
    }

    /// Did this cell conclude without a measurement?
    pub fn failed(&self) -> bool {
        self.error.is_some()
    }
}

/// Full campaign outcome.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CampaignResult {
    pub name: String,
    pub cells: Vec<CellResult>,
    /// Job counters across both phases (search + measure).
    pub report: RunReport,
}

impl CampaignResult {
    /// Cells of one (arch, policy) slice.
    pub fn slice<'a>(
        &'a self,
        arch: &'a str,
        policy: &'a str,
    ) -> impl Iterator<Item = &'a CellResult> + 'a {
        self.cells.iter().filter(move |c| c.arch == arch && c.policy == policy)
    }

    /// Harmonic-mean IPC over a slice (empty slice → 0). Failed cells
    /// are excluded — a harmonic mean with a zero term would be zero, so
    /// including them would poison the whole slice.
    pub fn hmean_ipc(&self, arch: &str, policy: &str) -> f64 {
        let v: Vec<f64> = self.slice(arch, policy).filter(|c| !c.failed()).map(|c| c.ipc).collect();
        hdsmt_core::stats::harmonic_mean(&v)
    }

    /// Cells that concluded without a measurement (watchdog timeout,
    /// simulator panic).
    pub fn failed_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.failed()).count()
    }
}

/// Per-profile-length memoized miss profiles: `heur` mappings are pure
/// functions of (benchmarks, profile), and profiling all 12 benchmarks is
/// ~100× one cell's simulation time — share it across cells and calls.
/// The bundled `rv:*` programs are profiled only when a campaign's heur
/// cells actually reference one (keyed separately so an rv-free campaign
/// never pays the emulation cost).
fn miss_profile(profile_insts: u64, with_rv: bool) -> Arc<MissProfile> {
    /// Memo key: (profile length, rv programs included).
    type ProfileMemo = HashMap<(u64, bool), Arc<MissProfile>>;
    static PROFILES: OnceLock<Mutex<ProfileMemo>> = OnceLock::new();
    let lock = PROFILES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = lock.lock().unwrap();
    if let Some(hit) = map.get(&(profile_insts, with_rv)) {
        return hit.clone();
    }
    // The rv-extended profile layers on top of the synthetic base, so a
    // process running both rv and rv-free campaigns profiles the twelve
    // synthetic models once, not once per variant.
    let base = map
        .entry((profile_insts, false))
        .or_insert_with(|| Arc::new(MissProfile::build_with_len(profile_insts)))
        .clone();
    if !with_rv {
        return base;
    }
    let extended = Arc::new((*base).clone().with_rv_programs(profile_insts));
    map.insert((profile_insts, true), extended.clone());
    extended
}

/// Do any heur cells contain an `rv:*` thread (whose ranking needs the
/// rv programs profiled)?
fn heur_needs_rv(cells: &[Cell]) -> bool {
    cells.iter().any(|c| {
        c.policy == Policy::Heur
            && c.workload.benchmarks.iter().any(|b| b.starts_with(hdsmt_core::RV_BENCH_PREFIX))
    })
}

fn static_mapping(cell: &Cell, arch: &MicroArch, profile: Option<&MissProfile>) -> Option<Vec<u8>> {
    match &cell.policy {
        Policy::Heur => {
            let benchmarks: Vec<&str> =
                cell.workload.benchmarks.iter().map(String::as_str).collect();
            Some(heuristic_mapping(arch, &benchmarks, profile.expect("profile built")))
        }
        Policy::RoundRobin => {
            Some(hdsmt_core::mapping::round_robin_mapping(arch, cell.workload.threads()))
        }
        Policy::Random(seed) => {
            Some(hdsmt_core::mapping::random_mapping(arch, cell.workload.threads(), *seed))
        }
        Policy::Best | Policy::Worst => None,
    }
}

/// Index of the best and worst mapping by score (ties broken by mapping
/// bytes, so the outcome is independent of enumeration details).
pub fn best_worst(mappings: &[Vec<u8>], scores: &[f64]) -> (usize, usize) {
    let mut bi = 0;
    let mut wi = 0;
    for i in 1..scores.len() {
        if scores[i] > scores[bi] || (scores[i] == scores[bi] && mappings[i] < mappings[bi]) {
            bi = i;
        }
        if scores[i] < scores[wi] || (scores[i] == scores[wi] && mappings[i] < mappings[wi]) {
            wi = i;
        }
    }
    (bi, wi)
}

/// The built-in catalog a spec asks for: the paper's Tables 2–3, plus
/// the program-backed RV64I workloads when `use_rv_workloads = true`.
pub fn catalog_for(spec: &CampaignSpec) -> Catalog {
    if spec.use_rv_workloads() {
        Catalog::paper_with_rv()
    } else {
        Catalog::paper()
    }
}

/// Open the spec's cache (default directory `.hdsmt-cache`).
pub fn open_cache(spec: &CampaignSpec) -> Result<ResultCache, CampaignError> {
    let dir = spec.cache_dir.clone().unwrap_or_else(|| ".hdsmt-cache".to_string());
    ResultCache::open(dir).map_err(|e| CampaignError(format!("cannot open cache: {e}")))
}

/// Build the runner a spec asks for (worker count + cache directory).
pub fn runner_for(spec: &CampaignSpec) -> Result<JobRunner, CampaignError> {
    let cache = open_cache(spec)?;
    Ok(JobRunner::new(spec.workers.unwrap_or(0) as usize, Some(cache)))
}

/// Run a campaign through an explicit runner (tests inject a tmp cache;
/// the CLI uses [`runner_for`]).
pub fn run_campaign_with(
    spec: &CampaignSpec,
    catalog: &Catalog,
    runner: &JobRunner,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_observed(spec, catalog, runner, None, &())
}

/// [`run_campaign_with`] plus the daemon's two hooks: an optional
/// [`ShardSpec`] restricting this run to the cells it owns (the other
/// shards' cells are neither searched nor measured here), and a
/// [`CampaignProgress`] observer fed per-job completion events. Cache
/// keys, phase structure, and panic isolation are identical to the
/// unobserved path.
pub fn run_campaign_observed(
    spec: &CampaignSpec,
    catalog: &Catalog,
    runner: &JobRunner,
    shard: Option<ShardSpec>,
    progress: &dyn CampaignProgress,
) -> Result<CampaignResult, CampaignError> {
    let mut cells = expand(spec, catalog)?;
    if let Some(shard) = shard {
        cells.retain(|c| shard.owns(c));
    }
    progress.cells_expanded(&cells);
    let budget = spec.budget();

    // Pre-parse archs once; expansion already validated them.
    let mut archs: HashMap<&str, MicroArch> = HashMap::new();
    for cell in &cells {
        if !archs.contains_key(cell.arch.as_str()) {
            archs.insert(&cell.arch, MicroArch::parse(&cell.arch).map_err(CampaignError)?);
        }
    }

    let needs_profile = cells.iter().any(|c| c.policy == Policy::Heur);
    let profile = if needs_profile {
        Some(miss_profile(spec.profile_insts.unwrap_or(300_000), heur_needs_rv(&cells)))
    } else {
        None
    };

    // ---- phase 1: oracle mapping search, flattened across cells ----
    // One sweep per distinct (arch, workload): `best` and `worst` cells
    // of the same pair share it rather than enqueueing duplicate jobs.
    struct SearchSweep {
        cell_indices: Vec<usize>,
        mappings: Vec<Vec<u8>>,
        job_range: std::ops::Range<usize>,
    }
    let mut search_jobs: Vec<JobSpec> = Vec::new();
    let mut sweeps: Vec<SearchSweep> = Vec::new();
    let mut sweep_of: HashMap<(String, String), usize> = HashMap::new();
    for (i, cell) in cells.iter().enumerate() {
        if !cell.policy.is_oracle() {
            continue;
        }
        let pair = (cell.arch.clone(), cell.workload.id.clone());
        if let Some(&s) = sweep_of.get(&pair) {
            sweeps[s].cell_indices.push(i);
            continue;
        }
        let arch = &archs[cell.arch.as_str()];
        let mappings = enumerate_mappings(arch, cell.workload.threads());
        let start = search_jobs.len();
        search_jobs.extend(mappings.iter().map(|m| cell.search_job(m.clone(), &budget)));
        sweep_of.insert(pair, sweeps.len());
        sweeps.push(SearchSweep {
            cell_indices: vec![i],
            mappings,
            job_range: start..search_jobs.len(),
        });
    }
    progress.search_planned(search_jobs.len());
    let search_results = runner.run_all_observed(&search_jobs, &|_, event| {
        if let JobEvent::Finished(outcome) = event {
            progress.search_job_finished(outcome);
        }
    })?;

    // ---- reduce: chosen mapping per cell ----
    let mut chosen: Vec<Option<(Vec<u8>, usize)>> = vec![None; cells.len()];
    for sweep in &sweeps {
        let scores: Vec<f64> =
            search_results[sweep.job_range.clone()].iter().map(|r| r.ipc()).collect();
        let (bi, wi) = best_worst(&sweep.mappings, &scores);
        for &ci in &sweep.cell_indices {
            let pick = match cells[ci].policy {
                Policy::Best => bi,
                Policy::Worst => wi,
                _ => unreachable!(),
            };
            chosen[ci] = Some((sweep.mappings[pick].clone(), sweep.mappings.len()));
        }
    }
    for (i, cell) in cells.iter().enumerate() {
        if chosen[i].is_none() {
            let arch = &archs[cell.arch.as_str()];
            let mapping =
                static_mapping(cell, arch, profile.as_deref()).expect("static policy resolves");
            chosen[i] = Some((mapping, 1));
        }
    }

    // ---- phase 2: full-length measurement, one job per cell ----
    let measure_jobs: Vec<JobSpec> = cells
        .iter()
        .zip(&chosen)
        .map(|(cell, m)| cell.job(m.as_ref().unwrap().0.clone(), &budget))
        .collect();
    // Per-cell fault isolation: a timed-out or panicking cell becomes a
    // failed `CellResult` (zeroed numerics, error message attached) and
    // the campaign completes around it — one wedged cell must not wipe
    // out hours of finished, cached cells.
    let measured = runner.try_run_all(&measure_jobs, &|i, event| match event {
        JobEvent::Started => progress.cell_started(i),
        JobEvent::Finished(outcome) => progress.cell_finished(i, outcome),
    })?;

    // Graceful shutdown keeps its all-or-nothing contract: cancelled jobs
    // fail the whole campaign (resumable from the cache on resubmit)
    // instead of quietly producing a result with holes.
    if runner.is_cancelled() {
        if let Some(err) = measured.iter().find_map(|r| r.as_ref().err()) {
            return Err(err.clone());
        }
    }

    let mut results = Vec::with_capacity(cells.len());
    for ((cell, m), sim) in cells.iter().zip(&chosen).zip(&measured) {
        let (mapping, n_mappings) = m.as_ref().unwrap();
        let arch = &archs[cell.arch.as_str()];
        let (ipc, cycles, retired, error) = match sim {
            Ok(sim) => (sim.ipc(), sim.stats.cycles, sim.stats.retired, None),
            Err(e) => (0.0, 0, 0, Some(e.0.clone())),
        };
        results.push(CellResult {
            arch: cell.arch.clone(),
            workload: cell.workload.id.clone(),
            class: cell.workload.class.clone(),
            threads: cell.workload.threads(),
            policy: cell.policy.label(),
            mapping: mapping.clone(),
            ipc,
            cycles,
            retired,
            area_mm2: hdsmt_area::microarch_area(arch).total(),
            n_mappings: *n_mappings,
            error,
        });
    }

    Ok(CampaignResult {
        name: spec.display_name().to_string(),
        cells: results,
        report: runner.report(),
    })
}

/// Run a campaign with the runner the spec describes.
pub fn run_campaign(
    spec: &CampaignSpec,
    catalog: &Catalog,
) -> Result<CampaignResult, CampaignError> {
    let runner = runner_for(spec)?;
    run_campaign_with(spec, catalog, &runner)
}

/// Cache-state preview for `status`: how much of the campaign is already
/// on disk, without simulating anything.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CampaignStatus {
    pub cells: usize,
    /// Search jobs implied by oracle cells.
    pub search_jobs: usize,
    pub search_cached: usize,
    /// Measure jobs whose mapping (and hence cache key) is already
    /// decidable without running the search phase.
    pub measure_known: usize,
    pub measure_cached: usize,
    /// Oracle measure jobs whose key depends on pending search results.
    pub measure_pending_search: usize,
}

pub fn status(
    spec: &CampaignSpec,
    catalog: &Catalog,
    cache: &ResultCache,
) -> Result<CampaignStatus, CampaignError> {
    let cells = expand(spec, catalog)?;
    let budget = spec.budget();
    // `heur` cache keys need the miss profile, which costs real profiling
    // simulations — only worth it if the cache could contain anything.
    // An empty cache trivially has zero coverage; report that without
    // simulating a single instruction.
    let needs_profile = cells.iter().any(|c| c.policy == Policy::Heur) && !cache.is_empty();
    let profile = if needs_profile {
        Some(miss_profile(spec.profile_insts.unwrap_or(300_000), heur_needs_rv(&cells)))
    } else {
        None
    };

    let mut st = CampaignStatus {
        cells: cells.len(),
        search_jobs: 0,
        search_cached: 0,
        measure_known: 0,
        measure_cached: 0,
        measure_pending_search: 0,
    };
    // Oracle cells of the same (arch, workload) share one search sweep in
    // the engine — count it once here too, so status totals match `run`.
    let mut counted_sweeps: std::collections::HashSet<(String, String)> =
        std::collections::HashSet::new();
    for cell in &cells {
        let arch = MicroArch::parse(&cell.arch).map_err(CampaignError)?;
        if cell.policy.is_oracle() {
            st.measure_pending_search += 1;
            if !counted_sweeps.insert((cell.arch.clone(), cell.workload.id.clone())) {
                continue;
            }
            for m in enumerate_mappings(&arch, cell.workload.threads()) {
                st.search_jobs += 1;
                if !cache.is_empty() {
                    let job = cell.search_job(m, &budget);
                    if cache.contains(&job.key()) {
                        st.search_cached += 1;
                    }
                }
            }
        } else {
            st.measure_known += 1;
            if cell.policy == Policy::Heur && profile.is_none() {
                continue; // empty cache: trivially uncached
            }
            let mapping = static_mapping(cell, &arch, profile.as_deref()).expect("static policy");
            if cache.contains(&cell.job(mapping, &budget).key()) {
                st.measure_cached += 1;
            }
        }
    }
    Ok(st)
}
