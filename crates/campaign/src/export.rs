//! Result export: JSON, CSV, and a §5-style text summary.

use std::fmt::Write as _;

use crate::engine::CampaignResult;

/// Full campaign result as pretty JSON.
pub fn to_json(result: &CampaignResult) -> String {
    serde_json::to_string_pretty(result).expect("CampaignResult serializes")
}

/// Cell table as CSV (mappings joined with `|` to stay comma-free).
/// Failed cells keep their row — zeroed numerics, the error in the last
/// column — so a degraded campaign's export still covers the matrix.
pub fn to_csv(result: &CampaignResult) -> String {
    let mut out = String::from(
        "arch,workload,class,threads,policy,mapping,ipc,ipc_per_mm2,area_mm2,cycles,retired,n_mappings,error\n",
    );
    for c in &result.cells {
        let mapping: Vec<String> = c.mapping.iter().map(|p| p.to_string()).collect();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.6},{:.8},{:.2},{},{},{},{}",
            csv_field(&c.arch),
            csv_field(&c.workload),
            csv_field(c.class.as_deref().unwrap_or("")),
            c.threads,
            csv_field(&c.policy),
            mapping.join("|"),
            c.ipc,
            c.ipc_per_mm2(),
            c.area_mm2,
            c.cycles,
            c.retired,
            c.n_mappings,
            csv_field(c.error.as_deref().unwrap_or("")),
        );
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// §5-style text summary: per-(arch, policy) harmonic means, the most
/// complexity-effective machine, and the paper's headline comparisons
/// when the relevant machines are present.
pub fn summary(result: &CampaignResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "campaign `{}`", result.name);
    let _ = writeln!(
        out,
        "jobs: {} total, {} cache hits, {} simulated",
        result.report.total, result.report.cache_hits, result.report.simulated
    );
    let failed = result.failed_cells();
    if failed > 0 {
        let _ = writeln!(
            out,
            "WARNING: {failed} cell(s) failed ({} watchdog timeout(s), {} retry attempt(s)) \
             — excluded from every aggregate below",
            result.report.timeouts, result.report.retries
        );
    }

    let mut archs: Vec<&str> = Vec::new();
    let mut policies: Vec<&str> = Vec::new();
    for c in &result.cells {
        if !archs.contains(&c.arch.as_str()) {
            archs.push(&c.arch);
        }
        if !policies.contains(&c.policy.as_str()) {
            policies.push(&c.policy);
        }
    }

    let _ = writeln!(out);
    let _ = write!(out, "{:<16}{:>10}", "hmean IPC", "area mm2");
    for p in &policies {
        let _ = write!(out, "{p:>14}{:>16}", "IPC/mm2 x1e3");
    }
    let _ = writeln!(out);
    let mut best: Option<(&str, f64)> = None;
    for arch in &archs {
        let area =
            result.cells.iter().find(|c| c.arch == *arch).map(|c| c.area_mm2).unwrap_or(f64::NAN);
        let _ = write!(out, "{arch:<16}{area:>10.1}");
        for p in &policies {
            let ipc = result.hmean_ipc(arch, p);
            let pa = ipc / area * 1e3;
            let _ = write!(out, "{ipc:>14.3}{pa:>16.3}");
            // A row with no usable area (NaN/0) cannot win — and must
            // not block a real winner via NaN-poisoned comparisons.
            if *p == policies[0] && pa.is_finite() && best.as_ref().is_none_or(|(_, b)| pa > *b) {
                best = Some((arch, pa));
            }
        }
        let _ = writeln!(out);
    }

    if let Some((name, _)) = best {
        let _ = writeln!(out, "\nmost complexity-effective machine ({}): {name}", policies[0]);
        // Paper-style comparisons when the reference machines are in the
        // campaign: perf/area vs the monolithic M8 baseline. Degrades to
        // a note (instead of a panic or an `inf%` line) when the M8
        // baseline has no row under the leading policy or no usable
        // area.
        if archs.contains(&"M8") && name != "M8" {
            let p = policies[0];
            // Area of an arch's row *under this policy* (any cell of the
            // slice carries it); must be a positive finite number.
            let area_of = |arch: &str| -> Option<f64> {
                result
                    .slice(arch, p)
                    .map(|c| c.area_mm2)
                    .next()
                    .filter(|a| a.is_finite() && *a > 0.0)
            };
            let m8_raw = result.hmean_ipc("M8", p);
            let them_raw = result.hmean_ipc(name, p);
            match (area_of("M8"), area_of(name)) {
                (Some(m8_area), Some(their_area)) if m8_raw > 0.0 && them_raw > 0.0 => {
                    let m8 = m8_raw / m8_area;
                    let them = them_raw / their_area;
                    let _ = writeln!(
                        out,
                        "perf/area vs monolithic M8: {:+.1}%   (paper's best hdSMT: +13%)",
                        (them / m8 - 1.0) * 100.0
                    );
                    let _ = writeln!(
                        out,
                        "raw IPC vs monolithic M8:   {:+.1}%   (paper: monolithic ahead ~6%)",
                        (them_raw / m8_raw - 1.0) * 100.0
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "perf/area vs monolithic M8: n/a (M8 baseline lacks a usable `{p}` \
                         row — no cells under that policy, zero IPC, or no area)"
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CellResult;
    use crate::job::RunReport;

    fn fake() -> CampaignResult {
        CampaignResult {
            name: "t".into(),
            cells: vec![
                CellResult {
                    arch: "M8".into(),
                    workload: "2W7".into(),
                    class: Some("MIX".into()),
                    threads: 2,
                    policy: "heur".into(),
                    mapping: vec![0, 0],
                    ipc: 3.0,
                    cycles: 100,
                    retired: 300,
                    area_mm2: 170.0,
                    n_mappings: 1,
                    error: None,
                },
                CellResult {
                    arch: "2M4+2M2".into(),
                    workload: "2W7".into(),
                    class: Some("MIX".into()),
                    threads: 2,
                    policy: "heur".into(),
                    mapping: vec![0, 2],
                    ipc: 2.5,
                    cycles: 120,
                    retired: 300,
                    area_mm2: 124.0,
                    n_mappings: 1,
                    error: None,
                },
            ],
            report: RunReport { total: 2, cache_hits: 0, simulated: 2, ..RunReport::default() },
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&fake());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("arch,workload,class"));
        assert!(lines[1].starts_with("M8,2W7,MIX,2,heur,0|0,"));
    }

    #[test]
    fn json_parses_back() {
        let json = to_json(&fake());
        let v = serde_json::from_str_value(&json).unwrap();
        assert_eq!(v.get("name").and_then(|n| n.as_str()), Some("t"));
        assert_eq!(v.get("cells").and_then(|c| c.as_array()).map(|a| a.len()), Some(2));
    }

    #[test]
    fn summary_names_the_per_area_winner() {
        let s = summary(&fake());
        assert!(s.contains("most complexity-effective machine"), "{s}");
        assert!(s.contains("2M4+2M2"), "{s}");
        assert!(s.contains("perf/area vs monolithic M8"), "{s}");
        assert!(!s.contains("n/a"), "complete baseline must compare numerically: {s}");
    }

    #[test]
    fn summary_degrades_when_the_m8_baseline_is_unusable() {
        // M8 appears only under a *different* policy than the leading
        // one: the headline comparison must turn into a note, not a
        // panic or an `inf%`/`NaN%` line.
        let mut r = fake();
        r.cells[0].policy = "rr".into();
        // Leading policy is the first seen in cell order — keep `heur`
        // first by reordering: the 2M4+2M2 heur cell now leads.
        r.cells.swap(0, 1);
        let s = summary(&r);
        assert!(s.contains("n/a"), "{s}");
        assert!(!s.contains("inf"), "{s}");
        assert!(!s.contains("NaN"), "{s}");

        // Same degradation when the baseline's area is not a number.
        let mut r = fake();
        r.cells[0].area_mm2 = f64::NAN;
        let s = summary(&r);
        assert!(s.contains("n/a"), "{s}");
        assert!(!s.contains("inf") && !s.contains("NaN%"), "{s}");
    }
}
