//! Deterministic fault injection for chaos testing.
//!
//! Every failure mode the fault-tolerance layer handles — worker
//! crashes, torn cache writes, cache I/O errors, hung simulations — can
//! be injected on a fixed schedule, so chaos scenarios are reproducible
//! tests instead of flakes. Injection is doubly gated: the crate must be
//! built with the `fault-inject` feature **and** the process must carry
//! a plan in the `HDSMT_FAULT` environment variable. Production builds
//! compile every hook to a no-op.
//!
//! # Plan grammar
//!
//! A plan is `;`-separated directives, each `kind@counter=n[,n...]`:
//!
//! | Directive        | Effect when the counter reaches `n`                  |
//! |------------------|------------------------------------------------------|
//! | `kill@sim=n`     | abort the process as the n-th simulation starts      |
//! | `hang@sim=n`     | the n-th simulation wedges until its watchdog deadline |
//! | `corrupt@put=n`  | the n-th cache write is torn (payload truncated)     |
//! | `err@put=n`      | the n-th cache write fails with an injected I/O error |
//! | `err@get=n`      | the n-th cache lookup fails (served as a miss)       |
//! | `kill@accept=n`  | abort right after the n-th journaled campaign accept |
//! | `err@journal=n`  | the n-th journal append fails with an injected I/O error |
//! | `torn@journal=n` | the n-th journal append persists half a frame, then the process aborts |
//! | `drop@net=n`     | the n-th outbound HTTP request fails with a connection reset |
//! | `delay@net=n:ms` | the n-th outbound HTTP request stalls `ms` milliseconds first |
//! | `partition@net=n:ms` | a network partition opens at the n-th outbound request: it and every request in the next `ms` milliseconds fail |
//!
//! The two timed `net` directives take `count:millis` pairs
//! (comma-separated like plain counts: `partition@net=4:500,20:250`).
//!
//! Counters are per-process and count from 1, so a restarted worker
//! replays the same schedule — which is exactly what makes supervised
//! chaos runs deterministic: with one simulation worker, the k-th
//! simulation of each incarnation is always the same cell.
//!
//! Example: `HDSMT_FAULT='hang@sim=1;corrupt@put=3;kill@sim=5'`.

use std::time::Instant;

/// One parsed `HDSMT_FAULT` plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub kill_sim: Vec<u64>,
    pub hang_sim: Vec<u64>,
    pub corrupt_put: Vec<u64>,
    pub err_put: Vec<u64>,
    pub err_get: Vec<u64>,
    pub kill_accept: Vec<u64>,
    pub err_journal: Vec<u64>,
    pub torn_journal: Vec<u64>,
    pub drop_net: Vec<u64>,
    /// `(count, millis)` pairs: stall the count-th request this long.
    pub delay_net: Vec<(u64, u64)>,
    /// `(count, millis)` pairs: open a partition this long at the
    /// count-th request.
    pub partition_net: Vec<(u64, u64)>,
}

impl FaultPlan {
    pub fn is_empty(&self) -> bool {
        self.kill_sim.is_empty()
            && self.hang_sim.is_empty()
            && self.corrupt_put.is_empty()
            && self.err_put.is_empty()
            && self.err_get.is_empty()
            && self.kill_accept.is_empty()
            && self.err_journal.is_empty()
            && self.torn_journal.is_empty()
            && self.drop_net.is_empty()
            && self.delay_net.is_empty()
            && self.partition_net.is_empty()
    }
}

/// Parse a plan (see the module docs for the grammar).
pub fn parse_plan(text: &str) -> Result<FaultPlan, String> {
    fn count(directive: &str, n: &str) -> Result<u64, String> {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("fault directive `{directive}`: `{n}` is not a count"))?;
        if n == 0 {
            return Err(format!("fault directive `{directive}`: counts start at 1"));
        }
        Ok(n)
    }
    fn timed(directive: &str, pair: &str) -> Result<(u64, u64), String> {
        let (n, ms) = pair.split_once(':').ok_or_else(|| {
            format!("fault directive `{directive}`: `{pair}` needs a `count:millis` pair")
        })?;
        let millis: u64 = ms.trim().parse().map_err(|_| {
            format!("fault directive `{directive}`: `{ms}` is not a duration in millis")
        })?;
        Ok((count(directive, n.trim())?, millis))
    }
    let mut plan = FaultPlan::default();
    for directive in text.split(';').map(str::trim).filter(|d| !d.is_empty()) {
        let (head, counts) = directive
            .split_once('=')
            .ok_or_else(|| format!("fault directive `{directive}` has no `=n` part"))?;
        if let Some(timed_list) = match head.trim() {
            "delay@net" => Some(&mut plan.delay_net),
            "partition@net" => Some(&mut plan.partition_net),
            _ => None,
        } {
            for pair in counts.split(',').map(str::trim) {
                timed_list.push(timed(directive, pair)?);
            }
            continue;
        }
        let list: &mut Vec<u64> = match head.trim() {
            "kill@sim" => &mut plan.kill_sim,
            "hang@sim" => &mut plan.hang_sim,
            "corrupt@put" => &mut plan.corrupt_put,
            "err@put" => &mut plan.err_put,
            "err@get" => &mut plan.err_get,
            "kill@accept" => &mut plan.kill_accept,
            "err@journal" => &mut plan.err_journal,
            "torn@journal" => &mut plan.torn_journal,
            "drop@net" => &mut plan.drop_net,
            other => return Err(format!("unknown fault directive `{other}`")),
        };
        for n in counts.split(',').map(str::trim) {
            list.push(count(directive, n)?);
        }
    }
    Ok(plan)
}

/// What [`on_sim_start`] decided for this simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimStart {
    /// Run normally.
    Run,
    /// The simulation "hung": the hook already burned the watchdog
    /// deadline; the caller should take its timeout path.
    Hung,
}

#[cfg(feature = "fault-inject")]
mod active {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::OnceLock;

    pub(super) static SIMS: AtomicU64 = AtomicU64::new(0);
    pub(super) static PUTS: AtomicU64 = AtomicU64::new(0);
    pub(super) static GETS: AtomicU64 = AtomicU64::new(0);
    pub(super) static ACCEPTS: AtomicU64 = AtomicU64::new(0);
    pub(super) static JOURNALS: AtomicU64 = AtomicU64::new(0);
    pub(super) static NETS: AtomicU64 = AtomicU64::new(0);
    /// Network faults actually injected (dropped, delayed, or blocked by
    /// an open partition) — surfaced through `/stats`.
    pub(super) static NET_FAULTS: AtomicU64 = AtomicU64::new(0);
    /// While `Some(t)`, a partition is open until `t`: every outbound
    /// request fails with a connection reset.
    pub(super) static PARTITION_UNTIL: std::sync::Mutex<Option<Instant>> =
        std::sync::Mutex::new(None);

    /// The process-wide plan, read from `HDSMT_FAULT` exactly once. A
    /// malformed plan aborts loudly: silently running a chaos test with
    /// no faults would make every scenario vacuously green.
    pub(super) fn plan() -> Option<&'static FaultPlan> {
        static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
        PLAN.get_or_init(|| {
            let text = std::env::var("HDSMT_FAULT").ok()?;
            match parse_plan(&text) {
                Ok(p) if p.is_empty() => None,
                Ok(p) => Some(p),
                Err(e) => panic!("invalid HDSMT_FAULT plan: {e}"),
            }
        })
        .as_ref()
    }
}

/// Called as each simulation starts (cache misses only). May abort the
/// process (`kill@sim`) or burn the watchdog deadline (`hang@sim`).
#[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))]
pub fn on_sim_start(deadline: Option<Instant>) -> SimStart {
    #[cfg(feature = "fault-inject")]
    {
        use std::sync::atomic::Ordering;
        let Some(plan) = active::plan() else { return SimStart::Run };
        let n = active::SIMS.fetch_add(1, Ordering::Relaxed) + 1;
        if plan.kill_sim.contains(&n) {
            eprintln!("fault-inject: kill@sim={n} — aborting");
            std::process::abort();
        }
        if plan.hang_sim.contains(&n) {
            // Emulate a wedged simulation: block until the watchdog
            // deadline passes, hard-capped so an unconfigured watchdog
            // cannot wedge a test suite forever.
            let cap = Instant::now() + std::time::Duration::from_secs(5);
            let until = deadline.map_or(cap, |d| d.min(cap));
            while Instant::now() < until {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            return SimStart::Hung;
        }
    }
    SimStart::Run
}

/// Called before each cache lookup; `true` = inject a read failure (the
/// cache serves the lookup as a miss).
#[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))]
pub fn on_cache_get(key: &str) -> bool {
    #[cfg(feature = "fault-inject")]
    {
        use std::sync::atomic::Ordering;
        if let Some(plan) = active::plan() {
            let n = active::GETS.fetch_add(1, Ordering::Relaxed) + 1;
            if plan.err_get.contains(&n) {
                eprintln!("fault-inject: err@get={n} on {key}");
                return true;
            }
        }
    }
    false
}

/// Called with each cache write's payload before it hits disk. May tear
/// the payload (`corrupt@put`) or fail the write (`err@put`).
#[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))]
pub fn on_cache_put(payload: &mut Vec<u8>) -> std::io::Result<()> {
    #[cfg(feature = "fault-inject")]
    {
        use std::sync::atomic::Ordering;
        if let Some(plan) = active::plan() {
            let n = active::PUTS.fetch_add(1, Ordering::Relaxed) + 1;
            if plan.err_put.contains(&n) {
                eprintln!("fault-inject: err@put={n}");
                return Err(std::io::Error::other("injected cache write failure (err@put)"));
            }
            if plan.corrupt_put.contains(&n) {
                eprintln!("fault-inject: corrupt@put={n}");
                payload.truncate(payload.len() / 2);
            }
        }
    }
    let _ = payload;
    Ok(())
}

/// What [`on_journal_append`] decided for this frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalWrite {
    /// Write the frame normally.
    Write,
    /// The frame was torn in place (`torn@journal`); the journal must
    /// persist the half-frame and then abort the process, emulating a
    /// power loss mid-append.
    TornAbort,
}

/// Called once per outbound HTTP request, at the client seam in
/// `serve::http`, before the connection is used. May fail the request
/// with a connection reset (`drop@net`, or any request while a
/// `partition@net` window is open) or stall it (`delay@net`). Injected
/// resets look exactly like a peer vanishing, so they exercise the same
/// retry/backoff/supervision paths real partitions do.
pub fn on_net_op() -> std::io::Result<()> {
    #[cfg(feature = "fault-inject")]
    {
        use std::sync::atomic::Ordering;
        let Some(plan) = active::plan() else { return Ok(()) };
        let reset = |what: String| {
            active::NET_FAULTS.fetch_add(1, Ordering::Relaxed);
            Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                format!("injected network fault ({what})"),
            ))
        };
        let n = active::NETS.fetch_add(1, Ordering::Relaxed) + 1;
        // An open partition blocks every request, whatever its ordinal.
        {
            let mut until =
                active::PARTITION_UNTIL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            match *until {
                Some(t) if Instant::now() < t => return reset("partition@net open".into()),
                Some(_) => *until = None, // partition healed
                None => {}
            }
        }
        if let Some((_, ms)) = plan.partition_net.iter().find(|(k, _)| *k == n) {
            eprintln!("fault-inject: partition@net={n}:{ms} — partition open");
            let mut until =
                active::PARTITION_UNTIL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *until = Some(Instant::now() + std::time::Duration::from_millis(*ms));
            return reset(format!("partition@net={n}"));
        }
        if plan.drop_net.contains(&n) {
            eprintln!("fault-inject: drop@net={n}");
            return reset(format!("drop@net={n}"));
        }
        if let Some((_, ms)) = plan.delay_net.iter().find(|(k, _)| *k == n) {
            eprintln!("fault-inject: delay@net={n}:{ms}");
            active::NET_FAULTS.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(*ms));
        }
    }
    Ok(())
}

/// How many network faults this process has injected so far (always 0
/// without the `fault-inject` feature or a plan).
pub fn net_faults_injected() -> u64 {
    #[cfg(feature = "fault-inject")]
    {
        use std::sync::atomic::Ordering;
        active::NET_FAULTS.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        0
    }
}

/// Called right after a campaign accept is durably journaled, before the
/// 202 is sent. May abort the process (`kill@accept`) — the canonical
/// "daemon died between journal and reply" crash point.
pub fn on_accept() {
    #[cfg(feature = "fault-inject")]
    {
        use std::sync::atomic::Ordering;
        if let Some(plan) = active::plan() {
            let n = active::ACCEPTS.fetch_add(1, Ordering::Relaxed) + 1;
            if plan.kill_accept.contains(&n) {
                eprintln!("fault-inject: kill@accept={n} — aborting");
                std::process::abort();
            }
        }
    }
}

/// Called with each journal frame before it hits disk. May fail the
/// append (`err@journal` → the API degrades to 503) or tear the frame
/// (`torn@journal` → half the frame persists, then the journal aborts
/// the process).
#[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))]
pub fn on_journal_append(frame: &mut Vec<u8>) -> std::io::Result<JournalWrite> {
    #[cfg(feature = "fault-inject")]
    {
        use std::sync::atomic::Ordering;
        if let Some(plan) = active::plan() {
            let n = active::JOURNALS.fetch_add(1, Ordering::Relaxed) + 1;
            if plan.err_journal.contains(&n) {
                eprintln!("fault-inject: err@journal={n}");
                return Err(std::io::Error::other("injected journal write failure (err@journal)"));
            }
            if plan.torn_journal.contains(&n) {
                eprintln!("fault-inject: torn@journal={n}");
                frame.truncate(frame.len() / 2);
                return Ok(JournalWrite::TornAbort);
            }
        }
    }
    let _ = frame;
    Ok(JournalWrite::Write)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive_kind_and_multi_counts() {
        let plan = parse_plan(
            "kill@sim=3; hang@sim=1,2,7 ;corrupt@put=2;err@put=9;err@get=4;\
             kill@accept=1;err@journal=2;torn@journal=5;drop@net=6,11;\
             delay@net=2:250; partition@net=4:500,20:125",
        )
        .unwrap();
        assert_eq!(plan.kill_sim, vec![3]);
        assert_eq!(plan.hang_sim, vec![1, 2, 7]);
        assert_eq!(plan.corrupt_put, vec![2]);
        assert_eq!(plan.err_put, vec![9]);
        assert_eq!(plan.err_get, vec![4]);
        assert_eq!(plan.kill_accept, vec![1]);
        assert_eq!(plan.err_journal, vec![2]);
        assert_eq!(plan.torn_journal, vec![5]);
        assert_eq!(plan.drop_net, vec![6, 11]);
        assert_eq!(plan.delay_net, vec![(2, 250)]);
        assert_eq!(plan.partition_net, vec![(4, 500), (20, 125)]);
        assert!(parse_plan("").unwrap().is_empty());
        assert!(parse_plan(" ; ").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in [
            "kill@sim",
            "boom@sim=1",
            "kill@sim=x",
            "kill@sim=0",
            "kill=1",
            "delay@net=5",         // missing `:millis`
            "partition@net=1:x",   // non-numeric duration
            "partition@net=0:100", // counts start at 1
            "drop@net=2:100",      // plain directive must not take a pair
        ] {
            assert!(parse_plan(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn hooks_are_inert_without_a_plan() {
        // Whatever the build features, a test process without HDSMT_FAULT
        // must see every hook as a no-op.
        assert_eq!(on_sim_start(None), SimStart::Run);
        assert!(!on_cache_get("0000"));
        let mut payload = b"{\"ok\":true}".to_vec();
        on_cache_put(&mut payload).unwrap();
        assert_eq!(payload, b"{\"ok\":true}");
        on_accept();
        let mut frame = vec![1u8, 2, 3, 4];
        assert_eq!(on_journal_append(&mut frame).unwrap(), JournalWrite::Write);
        assert_eq!(frame, vec![1, 2, 3, 4]);
        on_net_op().unwrap();
        assert_eq!(net_faults_injected(), 0);
    }
}
