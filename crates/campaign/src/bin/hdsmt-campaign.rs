//! The campaign CLI.
//!
//! ```text
//! hdsmt-campaign run    <spec.(toml|json)> [--workers N] [--cache DIR] [--remote ADDR]
//! hdsmt-campaign status [<spec>]           [--cache DIR] [--remote ADDR]
//! hdsmt-campaign export <spec> [--out DIR] [--cache DIR] [--remote ADDR]
//! hdsmt-campaign serve  [--addr A] [--cache DIR] [--workers N]
//!                       [--executors N] [--queue-cap N] [--shard I/N]
//!                       [--supervise N] [--worker ADDR]... [--peer ADDR]...
//!                       [--addr-file PATH]
//!                       [--cell-deadline-ms N] [--cell-retries N]
//!                       [--durable] [--no-journal]
//! hdsmt-campaign fsck   [--cache DIR] [--tmp-age-secs N] [--gc]
//!                       [--gc-age-secs N] [--repair-journal]
//! ```
//!
//! `run` executes the campaign (cache-first) and prints the summary;
//! `status` reports how much of the matrix is already cached without
//! simulating anything; `export` runs (fully cached after a prior `run`)
//! and writes `campaign.json`, `cells.csv`, and `summary.txt`; `serve`
//! runs the sweep-service daemon (see `hdsmt_campaign::serve`); `fsck`
//! verifies and repairs a cache tree — scrub + quarantine, orphaned-tmp
//! reaping, write-ahead-journal torn-tail truncation, quarantine GC —
//! and prints a machine-readable JSON report (see `hdsmt_campaign::fsck`).
//!
//! `serve` journals every accepted campaign to `<cache>/journal/` before
//! acknowledging it and replays unfinished campaigns at startup
//! (`--no-journal` opts out); `--durable` additionally fsyncs every
//! cache entry before publishing it, extending the crash model from
//! process death to host power loss.
//!
//! `serve --supervise n` runs the daemon as a fleet parent over `n`
//! restart-supervised shard workers; `--addr-file` makes a worker report
//! its bound address through an atomically written file (the supervisor's
//! handshake); `--cell-deadline-ms`/`--cell-retries` arm the per-cell
//! watchdog so a hung simulation is cancelled, retried, and at worst
//! marked failed-with-timeout while the campaign completes around it.
//!
//! For fleets that span hosts, repeatable `--worker HOST:PORT` entries
//! adopt already-running daemons as shard workers (with `--supervise 0`
//! the fleet is purely remote), and repeatable `--peer HOST:PORT` entries
//! make the cache read through to peer daemons on a miss — see
//! `hdsmt_campaign::serve` ("Distributed deployment") for the full
//! failure model.
//!
//! With `--remote ADDR`, `run`/`status`/`export` become thin HTTP clients
//! of a `serve` daemon instead of simulating locally: `run` submits the
//! spec and polls to completion, `status` queries `/stats` and the
//! campaign list, `export` fetches all three result formats. The client
//! retries connection refusals and 503s with capped exponential backoff
//! (honoring `Retry-After`), and `--poll-timeout-secs` bounds the
//! submit-and-wait polling loop.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use hdsmt_campaign::job::Watchdog;
use hdsmt_campaign::serve::http::{http_request_retry, RetryPolicy};
use hdsmt_campaign::serve::{Server, ServerConfig};
use hdsmt_campaign::{engine, export, CampaignSpec, JobRunner, ResultCache, ShardSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

struct Options {
    spec_path: Option<PathBuf>,
    workers: Option<usize>,
    cache_dir: Option<String>,
    out_dir: PathBuf,
    /// `serve` listen address.
    addr: String,
    /// Thin-client mode: talk to a daemon instead of simulating locally.
    remote: Option<String>,
    executors: usize,
    queue_cap: usize,
    shard: Option<ShardSpec>,
    /// Run `serve` as a fleet supervisor over N shard workers.
    supervise: Option<u32>,
    /// Remote daemons to adopt as shard workers (`--worker`, repeatable).
    worker_addrs: Vec<String>,
    /// Peer daemons whose caches back this one (`--peer`, repeatable).
    peers: Vec<String>,
    /// Report the bound listen address through this file (tmp+rename).
    addr_file: Option<PathBuf>,
    /// Per-cell watchdog soft deadline, in milliseconds.
    cell_deadline_ms: Option<u64>,
    cell_retries: u32,
    /// Total deadline for the thin client's submit-and-wait poll loop.
    poll_timeout_secs: u64,
    /// Fsync cache entries before publishing them (host-crash safety).
    durable: bool,
    /// Disable the write-ahead accept journal in `serve`.
    no_journal: bool,
    /// `fsck`: only reap `*.tmp` files at least this old.
    tmp_age_secs: u64,
    /// `fsck`: remove aged quarantine entries.
    gc: bool,
    /// `fsck`: age threshold for `--gc`.
    gc_age_secs: u64,
    /// `fsck`: truncate torn journal tails instead of just reporting.
    repair_journal: bool,
}

fn usage() -> String {
    "usage: hdsmt-campaign <run|status|export> <spec.(toml|json)> \
     [--workers N] [--cache DIR] [--out DIR] [--remote ADDR] \
     [--poll-timeout-secs N]\n       \
     hdsmt-campaign serve [--addr A] [--cache DIR] [--workers N] \
     [--executors N] [--queue-cap N] [--shard I/N] [--supervise N] \
     [--worker ADDR]... [--peer ADDR]... \
     [--addr-file PATH] [--cell-deadline-ms N] [--cell-retries N] \
     [--durable] [--no-journal]\n       \
     hdsmt-campaign fsck [--cache DIR] [--tmp-age-secs N] [--gc] \
     [--gc-age-secs N] [--repair-journal]"
        .to_string()
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        spec_path: None,
        workers: None,
        cache_dir: None,
        out_dir: PathBuf::from("results"),
        addr: "127.0.0.1:8181".to_string(),
        remote: None,
        executors: 1,
        queue_cap: 64,
        shard: None,
        supervise: None,
        worker_addrs: Vec::new(),
        peers: Vec::new(),
        addr_file: None,
        cell_deadline_ms: None,
        cell_retries: 2,
        poll_timeout_secs: 3600,
        durable: false,
        no_journal: false,
        tmp_age_secs: 15 * 60,
        gc: false,
        gc_age_secs: 7 * 24 * 3600,
        repair_journal: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                opts.workers = Some(v.parse::<usize>().map_err(|_| "--workers: not a number")?);
            }
            "--cache" => {
                opts.cache_dir = Some(it.next().ok_or("--cache needs a value")?.clone());
            }
            "--out" => {
                opts.out_dir = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--addr" => {
                opts.addr = it.next().ok_or("--addr needs a value")?.clone();
            }
            "--remote" => {
                opts.remote = Some(it.next().ok_or("--remote needs a value")?.clone());
            }
            "--executors" => {
                let v = it.next().ok_or("--executors needs a value")?;
                opts.executors = v.parse::<usize>().map_err(|_| "--executors: not a number")?;
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                opts.queue_cap = v.parse::<usize>().map_err(|_| "--queue-cap: not a number")?;
            }
            "--shard" => {
                let v = it.next().ok_or("--shard needs a value (I/N)")?;
                opts.shard = Some(ShardSpec::parse(v).map_err(|e| e.to_string())?);
            }
            "--supervise" => {
                let v = it.next().ok_or("--supervise needs a value")?;
                // 0 is legal with --worker entries: a purely remote fleet.
                opts.supervise = Some(v.parse::<u32>().map_err(|_| "--supervise: not a number")?);
            }
            "--worker" => {
                opts.worker_addrs.push(it.next().ok_or("--worker needs a host:port")?.clone());
            }
            "--peer" => {
                opts.peers.push(it.next().ok_or("--peer needs a host:port")?.clone());
            }
            "--addr-file" => {
                opts.addr_file = Some(PathBuf::from(it.next().ok_or("--addr-file needs a value")?));
            }
            "--cell-deadline-ms" => {
                let v = it.next().ok_or("--cell-deadline-ms needs a value")?;
                opts.cell_deadline_ms =
                    Some(v.parse::<u64>().map_err(|_| "--cell-deadline-ms: not a number")?);
            }
            "--cell-retries" => {
                let v = it.next().ok_or("--cell-retries needs a value")?;
                opts.cell_retries = v.parse::<u32>().map_err(|_| "--cell-retries: not a number")?;
            }
            "--poll-timeout-secs" => {
                let v = it.next().ok_or("--poll-timeout-secs needs a value")?;
                opts.poll_timeout_secs =
                    v.parse::<u64>().map_err(|_| "--poll-timeout-secs: not a number")?;
            }
            "--durable" => opts.durable = true,
            "--no-journal" => opts.no_journal = true,
            "--tmp-age-secs" => {
                let v = it.next().ok_or("--tmp-age-secs needs a value")?;
                opts.tmp_age_secs = v.parse::<u64>().map_err(|_| "--tmp-age-secs: not a number")?;
            }
            "--gc" => opts.gc = true,
            "--gc-age-secs" => {
                let v = it.next().ok_or("--gc-age-secs needs a value")?;
                opts.gc_age_secs = v.parse::<u64>().map_err(|_| "--gc-age-secs: not a number")?;
            }
            "--repair-journal" => opts.repair_journal = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n{}", usage()));
            }
            other => {
                if opts.spec_path.replace(PathBuf::from(other)).is_some() {
                    return Err(format!("more than one spec file given\n{}", usage()));
                }
            }
        }
    }
    Ok(opts)
}

fn spec_path(opts: &Options) -> Result<&PathBuf, String> {
    opts.spec_path.as_ref().ok_or_else(|| format!("missing spec file\n{}", usage()))
}

fn watchdog_of(opts: &Options) -> Option<Watchdog> {
    opts.cell_deadline_ms
        .map(|ms| Watchdog { deadline: Duration::from_millis(ms), retries: opts.cell_retries })
}

fn load(opts: &Options) -> Result<(CampaignSpec, ResultCache), String> {
    let mut spec = CampaignSpec::load(spec_path(opts)?).map_err(|e| e.to_string())?;
    if let Some(w) = opts.workers {
        spec.workers = Some(w as u64);
    }
    if let Some(dir) = &opts.cache_dir {
        spec.cache_dir = Some(dir.clone());
    }
    let cache = engine::open_cache(&spec)
        .map_err(|e| e.to_string())?
        .with_durable(opts.durable)
        .with_peers(opts.peers.clone());
    Ok((spec, cache))
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    let opts = parse_options(rest)?;
    match (cmd.as_str(), &opts.remote) {
        ("run", Some(remote)) => remote_run(remote, &opts),
        ("status", Some(remote)) => remote_status(remote),
        ("export", Some(remote)) => remote_export(remote, &opts),
        ("run", None) => {
            let (spec, cache) = load(&opts)?;
            let catalog = engine::catalog_for(&spec);
            let runner = JobRunner::new(spec.workers.unwrap_or(0) as usize, Some(cache.clone()))
                .with_watchdog(watchdog_of(&opts));
            eprintln!(
                "campaign `{}`: {} workers, cache at {}",
                spec.display_name(),
                runner.workers(),
                cache.dir().display()
            );
            let t0 = std::time::Instant::now();
            let result =
                engine::run_campaign_with(&spec, &catalog, &runner).map_err(|e| e.to_string())?;
            eprintln!(
                "finished in {:.1}s: {} cells, {} jobs ({} cache hits, {} simulated)",
                t0.elapsed().as_secs_f64(),
                result.cells.len(),
                result.report.total,
                result.report.cache_hits,
                result.report.simulated,
            );
            if result.failed_cells() > 0 {
                eprintln!(
                    "WARNING: {} cell(s) failed ({} watchdog timeout(s)); see the summary",
                    result.failed_cells(),
                    result.report.timeouts,
                );
            }
            print!("{}", export::summary(&result));
            Ok(())
        }
        ("status", None) => {
            let (spec, cache) = load(&opts)?;
            let catalog = engine::catalog_for(&spec);
            let st = engine::status(&spec, &catalog, &cache).map_err(|e| e.to_string())?;
            println!("campaign `{}` at cache {}", spec.display_name(), cache.dir().display());
            println!("cells:                {}", st.cells);
            println!("search jobs cached:   {}/{}", st.search_cached, st.search_jobs);
            println!("measure jobs cached:  {}/{}", st.measure_cached, st.measure_known);
            if st.measure_pending_search > 0 {
                println!(
                    "oracle measure jobs:  {} (keys depend on search phase)",
                    st.measure_pending_search
                );
            }
            println!("cache entries on disk: {}", cache.len());
            let counters = cache.counters();
            if !cache.peers().is_empty() {
                println!("cache peers: {}", cache.peers().join(", "));
                println!("cache remote hits: {}", counters.remote_hits);
                println!("cells replicated: {}", counters.replicated);
            }
            // Rotten entries re-simulate silently on the next run; the
            // count makes that visible here instead of just slow.
            println!("cache corrupt entries: {}", cache.corrupt_entries());
            println!("cache quarantined entries: {}", cache.quarantined_entries());
            if let Some(age) = cache.quarantine_oldest_age() {
                println!("cache quarantine oldest: {}s ago", age.as_secs());
            }
            println!("cache tmp files: {}", cache.tmp_files());
            for j in hdsmt_campaign::fsck::journal_checks(cache.dir(), false)
                .map_err(|e| e.to_string())?
            {
                println!(
                    "journal {}: {} record(s), {} pending, {} torn byte(s)",
                    j.file, j.records, j.pending, j.torn_bytes
                );
            }
            Ok(())
        }
        ("export", None) => {
            let (spec, cache) = load(&opts)?;
            let catalog = engine::catalog_for(&spec);
            let runner = JobRunner::new(spec.workers.unwrap_or(0) as usize, Some(cache))
                .with_watchdog(watchdog_of(&opts));
            let result =
                engine::run_campaign_with(&spec, &catalog, &runner).map_err(|e| e.to_string())?;
            write_exports(&opts.out_dir, &export_texts(&result))?;
            eprintln!(
                "wrote {} ({} cells; {} cache hits / {} jobs)",
                opts.out_dir.display(),
                result.cells.len(),
                result.report.cache_hits,
                result.report.total,
            );
            print!("{}", export::summary(&result));
            Ok(())
        }
        ("fsck", _) => {
            let cache_dir = opts.cache_dir.clone().unwrap_or_else(|| ".hdsmt-cache".into());
            let fsck_opts = hdsmt_campaign::FsckOptions {
                tmp_age: Duration::from_secs(opts.tmp_age_secs),
                gc: opts.gc,
                gc_age: Duration::from_secs(opts.gc_age_secs),
                repair_journal: opts.repair_journal,
            };
            let report = hdsmt_campaign::fsck::fsck(std::path::Path::new(&cache_dir), &fsck_opts)
                .map_err(|e| format!("fsck of {cache_dir}: {e}"))?;
            // Machine-readable by contract: stdout is the JSON report,
            // human commentary goes to stderr.
            println!("{}", serde_json::to_string_pretty(&report).map_err(|e| e.0)?);
            if !report.clean {
                eprintln!(
                    "fsck: tree NOT clean ({} quarantined, {} journal(s) with torn tails)",
                    report.corrupt_quarantined,
                    report.journals.iter().filter(|j| j.torn_bytes > 0 && !j.repaired).count()
                );
            }
            Ok(())
        }
        ("serve", _) => {
            if opts.supervise.is_some() && opts.shard.is_some() {
                return Err("--supervise spawns its own shards; drop --shard".into());
            }
            if opts.supervise == Some(0) && opts.worker_addrs.is_empty() {
                return Err("--supervise 0 needs at least one --worker ADDR to adopt".into());
            }
            if opts.supervise.is_none() && !opts.worker_addrs.is_empty() {
                return Err(
                    "--worker entries need --supervise N (0 for a purely remote fleet)".into()
                );
            }
            let config = ServerConfig {
                addr: opts.addr.clone(),
                cache_dir: opts.cache_dir.clone().unwrap_or_else(|| ".hdsmt-cache".into()),
                sim_workers: opts.workers.unwrap_or(0),
                executors: opts.executors,
                queue_cap: opts.queue_cap,
                shard: opts.shard,
                supervise: opts.supervise,
                cell_deadline: opts.cell_deadline_ms.map(Duration::from_millis),
                cell_retries: opts.cell_retries,
                journal: !opts.no_journal,
                durable: opts.durable,
                peers: opts.peers.clone(),
                remote_workers: opts.worker_addrs.clone(),
                ..ServerConfig::default()
            };
            let cache_dir = config.cache_dir.clone();
            let server =
                Server::start(config).map_err(|e| format!("cannot start on {}: {e}", opts.addr))?;
            // The supervisor handshake: report the bound (possibly
            // ephemeral) address atomically, so a reader never sees a
            // torn write.
            if let Some(addr_file) = &opts.addr_file {
                let tmp = addr_file.with_extension("tmp");
                std::fs::write(&tmp, format!("{}\n", server.addr()))
                    .and_then(|()| std::fs::rename(&tmp, addr_file))
                    .map_err(|e| format!("cannot write {}: {e}", addr_file.display()))?;
            }
            eprintln!(
                "hdsmt-campaign serve: listening on {} (cache {}, {}{})",
                server.addr(),
                cache_dir,
                match opts.supervise {
                    Some(n) if opts.worker_addrs.is_empty() => format!("supervising {n} worker(s)"),
                    Some(n) => format!(
                        "supervising {n} spawned + {} remote worker(s)",
                        opts.worker_addrs.len()
                    ),
                    None => format!("{} executor(s)", opts.executors.max(1)),
                },
                match opts.shard {
                    Some(s) => format!(", shard {s}"),
                    None => String::new(),
                }
            );
            server.run();
            eprintln!("hdsmt-campaign serve: drained, exiting");
            Ok(())
        }
        (other, _) => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

// ------------------------------------------------------- remote clients

/// One shared retry policy for every thin-client request: 503s and
/// connection refusals (a daemon restarting under its supervisor) are
/// retried with capped exponential backoff, honoring `Retry-After`.
fn client_policy() -> RetryPolicy {
    RetryPolicy::default()
}

/// `GET` a path and fail on any non-2xx (surfacing the structured error
/// body the daemon returns).
fn remote_get(addr: &str, path: &str) -> Result<String, String> {
    let resp = http_request_retry(addr, "GET", path, None, &client_policy())
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    if !(200..300).contains(&resp.status) {
        return Err(format!("{addr} answered {} for {path}: {}", resp.status, resp.body));
    }
    Ok(resp.body)
}

/// Submit the spec file and poll until the campaign reaches a terminal
/// phase; returns its id. Polling backs off from 200 ms to 2 s and gives
/// up — naming the campaign, which stays submitted and resumable — after
/// `--poll-timeout-secs`.
fn remote_submit_and_wait(addr: &str, opts: &Options) -> Result<String, String> {
    let path = spec_path(opts)?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let resp = http_request_retry(addr, "POST", "/campaigns", Some(&text), &client_policy())
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    if resp.status != 202 {
        return Err(format!("{addr} rejected the spec ({}): {}", resp.status, resp.body));
    }
    let snapshot =
        serde_json::from_str_value(&resp.body).map_err(|e| format!("bad submit response: {e}"))?;
    let id =
        snapshot.get("id").and_then(|i| i.as_str()).ok_or("submit response has no id")?.to_string();
    eprintln!("submitted as `{id}`; polling {addr}");
    let deadline = std::time::Instant::now() + Duration::from_secs(opts.poll_timeout_secs.max(1));
    let mut interval = Duration::from_millis(200);
    loop {
        if std::time::Instant::now() >= deadline {
            return Err(format!(
                "campaign `{id}` still not finished after {}s of polling {addr}; it keeps \
                 running server-side — poll `/campaigns/{id}` later or re-run with a larger \
                 --poll-timeout-secs",
                opts.poll_timeout_secs
            ));
        }
        std::thread::sleep(interval);
        // Capped backoff: fast feedback on short campaigns, light load on
        // long ones.
        interval = (interval * 2).min(Duration::from_secs(2));
        let body = remote_get(addr, &format!("/campaigns/{id}"))?;
        let snap =
            serde_json::from_str_value(&body).map_err(|e| format!("bad progress response: {e}"))?;
        let phase = snap.get("status").and_then(|s| s.as_str()).unwrap_or("?").to_string();
        match phase.as_str() {
            "done" => return Ok(id),
            "failed" | "cancelled" => {
                let why = snap
                    .get("error")
                    .and_then(|e| e.as_str())
                    .unwrap_or("no error message")
                    .to_string();
                return Err(format!("campaign `{id}` {phase}: {why}"));
            }
            _ => {}
        }
    }
}

fn remote_run(addr: &str, opts: &Options) -> Result<(), String> {
    let id = remote_submit_and_wait(addr, opts)?;
    print!("{}", remote_get(addr, &format!("/campaigns/{id}/results?format=summary"))?);
    Ok(())
}

fn remote_status(addr: &str) -> Result<(), String> {
    println!("{}", remote_get(addr, "/stats")?);
    println!("{}", remote_get(addr, "/campaigns")?);
    Ok(())
}

fn remote_export(addr: &str, opts: &Options) -> Result<(), String> {
    let id = remote_submit_and_wait(addr, opts)?;
    let json = remote_get(addr, &format!("/campaigns/{id}/results?format=json"))?;
    let csv = remote_get(addr, &format!("/campaigns/{id}/results?format=csv"))?;
    let summary = remote_get(addr, &format!("/campaigns/{id}/results?format=summary"))?;
    write_exports(&opts.out_dir, &ExportTexts { json, csv, summary })?;
    eprintln!("wrote {} (campaign `{id}` from {addr})", opts.out_dir.display());
    Ok(())
}

// ------------------------------------------------------------- exports

struct ExportTexts {
    json: String,
    csv: String,
    summary: String,
}

fn export_texts(result: &hdsmt_campaign::CampaignResult) -> ExportTexts {
    ExportTexts {
        json: export::to_json(result),
        csv: export::to_csv(result),
        summary: export::summary(result),
    }
}

/// Write `campaign.json`, `cells.csv`, `summary.txt` — one layout for the
/// local and remote export paths.
fn write_exports(out_dir: &std::path::Path, texts: &ExportTexts) -> Result<(), String> {
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    for (name, text) in
        [("campaign.json", &texts.json), ("cells.csv", &texts.csv), ("summary.txt", &texts.summary)]
    {
        std::fs::write(out_dir.join(name), text)
            .map_err(|e| format!("cannot write {name}: {e}"))?;
    }
    Ok(())
}
