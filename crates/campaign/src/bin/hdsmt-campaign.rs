//! The campaign CLI.
//!
//! ```text
//! hdsmt-campaign run    <spec.(toml|json)> [--workers N] [--cache DIR]
//! hdsmt-campaign status <spec>             [--cache DIR]
//! hdsmt-campaign export <spec> [--out DIR] [--cache DIR]
//! ```
//!
//! `run` executes the campaign (cache-first) and prints the summary;
//! `status` reports how much of the matrix is already cached without
//! simulating anything; `export` runs (fully cached after a prior `run`)
//! and writes `campaign.json`, `cells.csv`, and `summary.txt`.

use std::path::PathBuf;
use std::process::ExitCode;

use hdsmt_campaign::{engine, export, CampaignSpec, JobRunner, ResultCache};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

struct Options {
    spec_path: PathBuf,
    workers: Option<usize>,
    cache_dir: Option<String>,
    out_dir: PathBuf,
}

fn usage() -> String {
    "usage: hdsmt-campaign <run|status|export> <spec.(toml|json)> \
     [--workers N] [--cache DIR] [--out DIR]"
        .to_string()
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut spec_path: Option<PathBuf> = None;
    let mut workers = None;
    let mut cache_dir = None;
    let mut out_dir = PathBuf::from("results");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                workers = Some(v.parse::<usize>().map_err(|_| "--workers: not a number")?);
            }
            "--cache" => {
                cache_dir = Some(it.next().ok_or("--cache needs a value")?.clone());
            }
            "--out" => {
                out_dir = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n{}", usage()));
            }
            other => {
                if spec_path.replace(PathBuf::from(other)).is_some() {
                    return Err(format!("more than one spec file given\n{}", usage()));
                }
            }
        }
    }
    Ok(Options {
        spec_path: spec_path.ok_or_else(|| format!("missing spec file\n{}", usage()))?,
        workers,
        cache_dir,
        out_dir,
    })
}

fn load(opts: &Options) -> Result<(CampaignSpec, ResultCache), String> {
    let mut spec = CampaignSpec::load(&opts.spec_path).map_err(|e| e.to_string())?;
    if let Some(w) = opts.workers {
        spec.workers = Some(w as u64);
    }
    if let Some(dir) = &opts.cache_dir {
        spec.cache_dir = Some(dir.clone());
    }
    let cache = engine::open_cache(&spec).map_err(|e| e.to_string())?;
    Ok((spec, cache))
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    let opts = parse_options(rest)?;
    match cmd.as_str() {
        "run" => {
            let (spec, cache) = load(&opts)?;
            let catalog = engine::catalog_for(&spec);
            let runner = JobRunner::new(spec.workers.unwrap_or(0) as usize, Some(cache.clone()));
            eprintln!(
                "campaign `{}`: {} workers, cache at {}",
                spec.display_name(),
                runner.workers(),
                cache.dir().display()
            );
            let t0 = std::time::Instant::now();
            let result =
                engine::run_campaign_with(&spec, &catalog, &runner).map_err(|e| e.to_string())?;
            eprintln!(
                "finished in {:.1}s: {} cells, {} jobs ({} cache hits, {} simulated)",
                t0.elapsed().as_secs_f64(),
                result.cells.len(),
                result.report.total,
                result.report.cache_hits,
                result.report.simulated,
            );
            print!("{}", export::summary(&result));
            Ok(())
        }
        "status" => {
            let (spec, cache) = load(&opts)?;
            let catalog = engine::catalog_for(&spec);
            let st = engine::status(&spec, &catalog, &cache).map_err(|e| e.to_string())?;
            println!("campaign `{}` at cache {}", spec.display_name(), cache.dir().display());
            println!("cells:                {}", st.cells);
            println!("search jobs cached:   {}/{}", st.search_cached, st.search_jobs);
            println!("measure jobs cached:  {}/{}", st.measure_cached, st.measure_known);
            if st.measure_pending_search > 0 {
                println!(
                    "oracle measure jobs:  {} (keys depend on search phase)",
                    st.measure_pending_search
                );
            }
            println!("cache entries on disk: {}", cache.len());
            Ok(())
        }
        "export" => {
            let (spec, cache) = load(&opts)?;
            let catalog = engine::catalog_for(&spec);
            let runner = JobRunner::new(spec.workers.unwrap_or(0) as usize, Some(cache));
            let result =
                engine::run_campaign_with(&spec, &catalog, &runner).map_err(|e| e.to_string())?;
            std::fs::create_dir_all(&opts.out_dir)
                .map_err(|e| format!("cannot create {}: {e}", opts.out_dir.display()))?;
            let json_path = opts.out_dir.join("campaign.json");
            let csv_path = opts.out_dir.join("cells.csv");
            let summary_path = opts.out_dir.join("summary.txt");
            std::fs::write(&json_path, export::to_json(&result)).map_err(|e| e.to_string())?;
            std::fs::write(&csv_path, export::to_csv(&result)).map_err(|e| e.to_string())?;
            let summary = export::summary(&result);
            std::fs::write(&summary_path, &summary).map_err(|e| e.to_string())?;
            eprintln!(
                "wrote {}, {}, {} ({} cells; {} cache hits / {} jobs)",
                json_path.display(),
                csv_path.display(),
                summary_path.display(),
                result.cells.len(),
                result.report.cache_hits,
                result.report.total,
            );
            print!("{summary}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}
