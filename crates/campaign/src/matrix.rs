//! Deterministic expansion of a [`CampaignSpec`] into the cell matrix.
//!
//! Order is fixed — `archs × workloads × policies`, each in spec order,
//! selectors resolved in catalog order — so the same spec always produces
//! the same matrix, with the same per-thread seeds, and hence the same
//! cache keys.

use hdsmt_pipeline::MicroArch;

use crate::catalog::{Catalog, CatalogEntry};
use crate::job::{CampaignError, JobSpec, JobThread};
use crate::spec::{Budget, CampaignSpec};

/// Mapping policy of one cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Policy {
    /// The §2.1 profile-guided heuristic.
    Heur,
    /// Threads dealt to pipelines in order.
    RoundRobin,
    /// Seeded random capacity-respecting assignment.
    Random(u64),
    /// Oracle best over all distinct mappings (search at reduced budget).
    Best,
    /// Oracle worst (the envelope's lower edge).
    Worst,
}

impl Policy {
    pub fn parse(s: &str) -> Result<Self, CampaignError> {
        let lower = s.to_ascii_lowercase();
        if let Some(seed) = lower.strip_prefix("random:") {
            let seed = seed
                .parse::<u64>()
                .map_err(|_| CampaignError(format!("bad random seed in `{s}`")))?;
            return Ok(Policy::Random(seed));
        }
        match lower.as_str() {
            "heur" | "heuristic" => Ok(Policy::Heur),
            "rr" | "round-robin" | "roundrobin" => Ok(Policy::RoundRobin),
            "best" => Ok(Policy::Best),
            "worst" => Ok(Policy::Worst),
            _ => Err(CampaignError(format!(
                "unknown policy `{s}` (expected heur|rr|random:<seed>|best|worst)"
            ))),
        }
    }

    pub fn label(&self) -> String {
        match self {
            Policy::Heur => "heur".into(),
            Policy::RoundRobin => "rr".into(),
            Policy::Random(seed) => format!("random:{seed}"),
            Policy::Best => "best".into(),
            Policy::Worst => "worst".into(),
        }
    }

    /// Does this policy need an oracle mapping search?
    pub fn is_oracle(&self) -> bool {
        matches!(self, Policy::Best | Policy::Worst)
    }
}

/// One cell of the campaign matrix: a (microarchitecture, workload,
/// policy) combination to be measured.
#[derive(Clone, Debug)]
pub struct Cell {
    pub arch: String,
    pub workload: CatalogEntry,
    pub policy: Policy,
    /// Per-thread stream seeds (deterministic from the campaign seed).
    pub seeds: Vec<u64>,
}

impl Cell {
    pub fn threads(&self) -> Vec<JobThread> {
        self.workload
            .benchmarks
            .iter()
            .zip(&self.seeds)
            .map(|(b, &seed)| JobThread { bench: b.clone(), seed })
            .collect()
    }

    /// The measure-phase job for this cell under `mapping`.
    pub fn job(&self, mapping: Vec<u8>, budget: &Budget) -> JobSpec {
        JobSpec {
            arch: self.arch.clone(),
            threads: self.threads(),
            mapping,
            max_insts: budget.measure_insts,
            warmup_insts: budget.warmup_insts,
            fetch_policy: None,
            regfile_lat: None,
        }
    }

    /// A search-phase job (reduced budget, halved warm-up — matching the
    /// envelope methodology in `hdsmt-workloads`).
    pub fn search_job(&self, mapping: Vec<u8>, budget: &Budget) -> JobSpec {
        JobSpec {
            arch: self.arch.clone(),
            threads: self.threads(),
            mapping,
            max_insts: budget.search_insts,
            warmup_insts: budget.warmup_insts / 2,
            fetch_policy: None,
            regfile_lat: None,
        }
    }
}

/// One worker's slice of a sharded campaign: `index` of `count` peers.
///
/// **Ownership rule:** a cell belongs to shard `i` iff the first eight
/// bytes of `SHA-256("<arch>\x1f<workload id>\x1f<policy>")`, read as a
/// big-endian `u64`, equal `i` modulo `count`. The hash covers the cell's
/// *identity* — not its mapping or budget — so every process pointed at
/// the same spec partitions the matrix identically without coordination,
/// and `best`/`worst` cells of one workload can land on different shards
/// (their shared search sweep is then run by each owner; the
/// content-addressed cache coalesces the duplicate sub-jobs after the
/// first writer lands). Shards cover the matrix exactly: every cell has
/// one owner, no cell has two.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct ShardSpec {
    pub index: u32,
    pub count: u32,
}

impl ShardSpec {
    /// Parse `"i/n"` (e.g. `0/2`), requiring `i < n` and `n ≥ 1`.
    pub fn parse(s: &str) -> Result<Self, CampaignError> {
        let bad = || CampaignError(format!("bad shard `{s}` (expected i/n with i < n)"));
        let (i, n) = s.split_once('/').ok_or_else(bad)?;
        let index = i.trim().parse::<u32>().map_err(|_| bad())?;
        let count = n.trim().parse::<u32>().map_err(|_| bad())?;
        if count == 0 || index >= count {
            return Err(bad());
        }
        Ok(ShardSpec { index, count })
    }

    pub fn label(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }

    /// Does this shard own `cell`?
    pub fn owns(&self, cell: &Cell) -> bool {
        cell_shard(cell, self.count) == self.index
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The owning shard index of `cell` among `count` shards (see
/// [`ShardSpec`] for the rule).
pub fn cell_shard(cell: &Cell, count: u32) -> u32 {
    let identity = format!("{}\x1f{}\x1f{}", cell.arch, cell.workload.id, cell.policy.label());
    let digest = crate::hash::sha256(identity.as_bytes());
    let h = u64::from_be_bytes(digest[..8].try_into().unwrap());
    (h % count.max(1) as u64) as u32
}

/// Deterministic per-thread stream seed (same scheme as the workloads
/// crate, so identical runs share cache entries).
pub fn thread_seed(base: u64, workload_id: &str, position: usize) -> u64 {
    let mut h = base ^ 0x9e37_79b9_7f4a_7c15;
    for b in workload_id.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h ^ (position as u64) << 32
}

/// Expand `spec` against `catalog` into the ordered cell matrix.
///
/// Fails (rather than silently skipping) on unknown selectors, unknown
/// architectures, and workloads that exceed an architecture's contexts.
pub fn expand(spec: &CampaignSpec, catalog: &Catalog) -> Result<Vec<Cell>, CampaignError> {
    // Fold inline extra workloads into a working catalog copy.
    let mut catalog = catalog.clone();
    for extra in spec.extra_workloads.clone().unwrap_or_default() {
        for b in &extra.benchmarks {
            if !hdsmt_core::ThreadSpec::exists(b) {
                return Err(CampaignError(format!(
                    "extra workload `{}`: unknown benchmark `{b}`",
                    extra.id
                )));
            }
        }
        if extra.benchmarks.is_empty() {
            return Err(CampaignError(format!("extra workload `{}` has no benchmarks", extra.id)));
        }
        if catalog.get(&extra.id).is_some() {
            return Err(CampaignError(format!(
                "extra workload `{}` collides with an existing catalog id",
                extra.id
            )));
        }
        catalog = catalog.with_entry(CatalogEntry {
            id: extra.id,
            benchmarks: extra.benchmarks,
            class: extra.class,
        });
    }

    let archs: Vec<MicroArch> = spec
        .archs
        .iter()
        .map(|name| {
            MicroArch::parse(name).map_err(|e| CampaignError(format!("arch `{name}`: {e}")))
        })
        .collect::<Result<_, _>>()?;

    let mut workloads: Vec<CatalogEntry> = Vec::new();
    for selector in &spec.workloads {
        let matched = catalog.resolve(selector);
        if matched.is_empty() {
            return Err(CampaignError(format!("workload selector `{selector}` matched nothing")));
        }
        for m in matched {
            if !workloads.iter().any(|w| w.id == m.id) {
                workloads.push(m.clone());
            }
        }
    }

    let policies: Vec<Policy> =
        spec.policies().iter().map(|p| Policy::parse(p)).collect::<Result<_, _>>()?;

    let base_seed = spec.seed();
    let mut cells = Vec::new();
    for (arch, arch_name) in archs.iter().zip(&spec.archs) {
        for w in &workloads {
            if w.threads() > arch.max_threads as usize {
                return Err(CampaignError(format!(
                    "workload {} ({} threads) exceeds {arch_name}'s {} contexts",
                    w.id,
                    w.threads(),
                    arch.max_threads
                )));
            }
            let seeds: Vec<u64> =
                (0..w.threads()).map(|i| thread_seed(base_seed, &w.id, i)).collect();
            for policy in &policies {
                cells.push(Cell {
                    arch: arch_name.clone(),
                    workload: w.clone(),
                    policy: policy.clone(),
                    seeds: seeds.clone(),
                });
            }
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(workloads: &[&str], policies: &[&str]) -> CampaignSpec {
        CampaignSpec {
            name: None,
            archs: vec!["M8".into(), "2M4+2M2".into()],
            workloads: workloads.iter().map(|s| s.to_string()).collect(),
            policies: Some(policies.iter().map(|s| s.to_string()).collect()),
            budget: None,
            seed: Some(1),
            workers: None,
            cache_dir: None,
            profile_insts: None,
            extra_workloads: None,
            use_rv_workloads: None,
        }
    }

    #[test]
    fn expansion_is_deterministic_and_ordered() {
        let s = spec(&["MEM", "2W7"], &["heur", "rr"]);
        let catalog = Catalog::paper();
        let a = expand(&s, &catalog).unwrap();
        let b = expand(&s, &catalog).unwrap();
        assert_eq!(a.len(), 2 * 6 * 2); // 2 archs × (5 MEM + 2W7) × 2 policies
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arch, y.arch);
            assert_eq!(x.workload.id, y.workload.id);
            assert_eq!(x.policy, y.policy);
            assert_eq!(x.seeds, y.seeds);
        }
        // Spec order: all M8 cells first.
        assert!(a[..12].iter().all(|c| c.arch == "M8"));
        assert_eq!(a[0].workload.id, "2W4"); // first MEM workload in catalog order
    }

    #[test]
    fn duplicate_selectors_collapse() {
        let s = spec(&["2W7", "MIX"], &["heur"]);
        let cells = expand(&s, &Catalog::paper()).unwrap();
        // 2W7 is MIX: must appear once per arch, not twice.
        let m8_ids: Vec<&str> =
            cells.iter().filter(|c| c.arch == "M8").map(|c| c.workload.id.as_str()).collect();
        assert_eq!(m8_ids.iter().filter(|id| **id == "2W7").count(), 1);
    }

    #[test]
    fn errors_are_loud() {
        let catalog = Catalog::paper();
        assert!(expand(&spec(&["9W9"], &["heur"]), &catalog).is_err());
        let mut s = spec(&["2W1"], &["heur"]);
        s.archs = vec!["M5".into()];
        assert!(expand(&s, &catalog).is_err());
        // 6 threads do not fit on 2M2 (2 pipelines × 1 context).
        let mut s = spec(&["6W1"], &["heur"]);
        s.archs = vec!["2M2".into()];
        assert!(expand(&s, &catalog).is_err());
    }

    #[test]
    fn shards_partition_the_matrix_exactly() {
        let s = spec(&["MEM", "2W7", "MIX"], &["heur", "rr"]);
        let cells = expand(&s, &Catalog::paper()).unwrap();
        assert!(cells.len() > 10);
        for count in [1u32, 2, 3, 5] {
            let shards: Vec<ShardSpec> =
                (0..count).map(|index| ShardSpec { index, count }).collect();
            for cell in &cells {
                let owners = shards.iter().filter(|s| s.owns(cell)).count();
                assert_eq!(
                    owners, 1,
                    "cell {}/{} must have exactly one owner of {count}",
                    cell.arch, cell.workload.id
                );
            }
        }
        // A single shard owns everything.
        let solo = ShardSpec { index: 0, count: 1 };
        assert!(cells.iter().all(|c| solo.owns(c)));
        // Ownership is identity-stable: recomputing yields the same split.
        let first: Vec<u32> = cells.iter().map(|c| cell_shard(c, 4)).collect();
        let second: Vec<u32> = cells.iter().map(|c| cell_shard(c, 4)).collect();
        assert_eq!(first, second);
        // And with >1 shard on this matrix, work actually spreads.
        assert!(first.iter().any(|&s| s != first[0]), "degenerate split: {first:?}");
    }

    #[test]
    fn shard_spec_parses_and_rejects() {
        assert_eq!(ShardSpec::parse("0/2").unwrap(), ShardSpec { index: 0, count: 2 });
        assert_eq!(ShardSpec::parse("1/2").unwrap().label(), "1/2");
        assert!(ShardSpec::parse("2/2").is_err(), "index must be < count");
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("1").is_err());
        assert!(ShardSpec::parse("a/b").is_err());
    }

    #[test]
    fn seeds_differ_by_thread_and_workload() {
        assert_eq!(thread_seed(1, "2W1", 0), thread_seed(1, "2W1", 0));
        assert_ne!(thread_seed(1, "2W1", 0), thread_seed(1, "2W1", 1));
        assert_ne!(thread_seed(1, "2W1", 0), thread_seed(1, "2W2", 0));
        assert_ne!(thread_seed(1, "2W1", 0), thread_seed(2, "2W1", 0));
    }
}
