//! A small TOML-subset reader producing the `serde` shim's [`Value`]
//! tree, sufficient for campaign spec files:
//!
//! * top-level and `[table]` sections, `[[array-of-tables]]` entries;
//! * `key = value` with strings, integers, floats, booleans;
//! * single- and multi-line arrays of scalars;
//! * `#` comments, blank lines.
//!
//! Dotted keys, inline tables, datetimes and nested arrays are out of
//! scope and rejected with a line-numbered error.

use serde::{Number, Value};

pub fn parse(text: &str) -> Result<Value, String> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Path of the section currently being filled (None = root).
    let mut section: Option<(String, bool)> = None; // (name, is_array_entry)

    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let name = name.trim().to_string();
            check_key(&name, lineno)?;
            push_array_table(&mut root, &name);
            section = Some((name, true));
        } else if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim().to_string();
            check_key(&name, lineno)?;
            if root.iter().any(|(k, _)| *k == name) {
                return Err(format!("line {}: duplicate table [{name}]", lineno + 1));
            }
            root.push((name.clone(), Value::Object(Vec::new())));
            section = Some((name, false));
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().to_string();
            check_key(&key, lineno)?;
            let mut rhs = line[eq + 1..].trim().to_string();
            // Multi-line array: keep consuming lines until brackets match.
            while rhs.starts_with('[') && !balanced(&rhs) {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("line {}: unterminated array", lineno + 1));
                };
                rhs.push(' ');
                rhs.push_str(strip_comment(next).trim());
            }
            let value = parse_value(&rhs, lineno)?;
            insert(&mut root, &section, key, value, lineno)?;
        } else {
            return Err(format!("line {}: expected `key = value` or a [section]", lineno + 1));
        }
    }
    Ok(Value::Object(root))
}

fn check_key(key: &str, lineno: usize) -> Result<(), String> {
    let ok =
        !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if !ok {
        return Err(format!("line {}: unsupported key `{key}` (bare keys only)", lineno + 1));
    }
    Ok(())
}

/// Strip a `#` comment, respecting quoted strings (and `\"` escapes
/// inside them).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn push_array_table(root: &mut Vec<(String, Value)>, name: &str) {
    match root.iter_mut().find(|(k, _)| k == name) {
        Some((_, Value::Array(items))) => items.push(Value::Object(Vec::new())),
        Some(_) => {
            // Key collision with a non-array: overwrite with an array.
            root.retain(|(k, _)| k != name);
            root.push((name.to_string(), Value::Array(vec![Value::Object(Vec::new())])));
        }
        None => {
            root.push((name.to_string(), Value::Array(vec![Value::Object(Vec::new())])));
        }
    }
}

fn insert(
    root: &mut Vec<(String, Value)>,
    section: &Option<(String, bool)>,
    key: String,
    value: Value,
    lineno: usize,
) -> Result<(), String> {
    let target: &mut Vec<(String, Value)> = match section {
        None => root,
        Some((name, is_array)) => {
            let slot =
                root.iter_mut().find(|(k, _)| k == name).map(|(_, v)| v).expect("section exists");
            match (slot, is_array) {
                (Value::Array(items), true) => match items.last_mut() {
                    Some(Value::Object(o)) => o,
                    _ => return Err(format!("line {}: internal array-table state", lineno + 1)),
                },
                (Value::Object(o), false) => o,
                _ => return Err(format!("line {}: section/type mismatch", lineno + 1)),
            }
        }
    };
    if target.iter().any(|(k, _)| *k == key) {
        return Err(format!("line {}: duplicate key `{key}`", lineno + 1));
    }
    target.push((key, value));
    Ok(())
}

fn parse_value(s: &str, lineno: usize) -> Result<Value, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err(format!("line {}: missing value", lineno + 1));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("line {}: unterminated array", lineno + 1))?;
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_value(part, lineno)?);
        }
        return Ok(Value::Array(items));
    }
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("line {}: unterminated string", lineno + 1))?;
        return Ok(Value::String(unescape(body, lineno)?));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let clean: String = s.replace('_', "");
    if let Ok(u) = clean.parse::<u64>() {
        return Ok(Value::Number(Number::PosInt(u)));
    }
    if let Ok(i) = clean.parse::<i64>() {
        return Ok(Value::Number(Number::NegInt(i)));
    }
    if let Ok(f) = clean.parse::<f64>() {
        return Ok(Value::Number(Number::Float(f)));
    }
    Err(format!("line {}: cannot parse value `{s}`", lineno + 1))
}

fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            _ if escaped => {
                escaped = false;
                cur.push(c);
            }
            '\\' if in_str => {
                escaped = true;
                cur.push(c);
            }
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

fn unescape(s: &str, lineno: usize) -> Result<String, String> {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            other => return Err(format!("line {}: unsupported escape \\{other:?}", lineno + 1)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaped_quotes_survive_comment_stripping_and_splitting() {
        let v = parse(
            "name = \"say \\\"hi\\\" # not a comment\"  # real comment\n\
             tags = [\"a\\\"b\", \"c\"]\n",
        )
        .unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("say \"hi\" # not a comment"));
        let tags = v.get("tags").unwrap().as_array().unwrap();
        assert_eq!(tags[0].as_str(), Some("a\"b"));
        assert_eq!(tags[1].as_str(), Some("c"));
    }

    #[test]
    fn sections_arrays_and_scalars() {
        let v = parse(
            "a = 1\nneg = -2\nf = 1.5\nyes = true\n\n[t]\nx = \"s\"\n\n[[arr]]\nk = 1\n\n[[arr]]\nk = 2\n",
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-2));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("yes").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("t").unwrap().get("x").unwrap().as_str(), Some("s"));
        let arr = v.get("arr").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].get("k").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("key").is_err());
        assert!(parse("a = [1, 2").is_err());
        assert!(parse("a = \"unterminated").is_err());
        assert!(parse("a = 1\na = 2").is_err());
        assert!(parse("a.b = 1").is_err());
    }
}
