//! Workload catalog: name → benchmark list resolution for campaign specs.
//!
//! Ships the paper's Tables 2–3 as the built-in catalog (the canonical
//! typed table in `hdsmt-workloads` cross-checks against this one in its
//! tests), and accepts user-defined entries from spec files.

/// One named multiprogrammed workload.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CatalogEntry {
    pub id: String,
    pub benchmarks: Vec<String>,
    /// Paper classification label (`ILP` / `MEM` / `MIX`) when known.
    pub class: Option<String>,
}

impl CatalogEntry {
    pub fn threads(&self) -> usize {
        self.benchmarks.len()
    }
}

/// The paper's Tables 2 and 3 as plain static data.
pub const PAPER_WORKLOADS: &[(&str, &[&str], &str)] = &[
    // ---- two-threaded (Table 2, left) ----
    ("2W1", &["eon", "gcc"], "ILP"),
    ("2W2", &["crafty", "bzip2"], "ILP"),
    ("2W3", &["gap", "vortex"], "ILP"),
    ("2W4", &["mcf", "twolf"], "MEM"),
    ("2W5", &["vpr", "perlbmk"], "MEM"),
    ("2W6", &["vpr", "twolf"], "MEM"),
    ("2W7", &["gzip", "twolf"], "MIX"),
    ("2W8", &["crafty", "perlbmk"], "MIX"),
    ("2W9", &["parser", "vpr"], "MIX"),
    // ---- four-threaded (Table 2, right) ----
    ("4W1", &["eon", "gcc", "gzip", "bzip2"], "ILP"),
    ("4W2", &["crafty", "bzip2", "eon", "gzip"], "ILP"),
    ("4W3", &["gap", "vortex", "parser", "crafty"], "ILP"),
    ("4W4", &["mcf", "twolf", "vpr", "perlbmk"], "MEM"),
    ("4W5", &["vpr", "perlbmk", "mcf", "twolf"], "MEM"),
    ("4W6", &["gzip", "twolf", "bzip2", "mcf"], "MIX"),
    ("4W7", &["crafty", "perlbmk", "mcf", "bzip2"], "MIX"),
    ("4W8", &["parser", "vpr", "vortex", "twolf"], "MIX"),
    ("4W9", &["vpr", "twolf", "gap", "vortex"], "MIX"),
    // ---- six-threaded (Table 3) ----
    ("6W1", &["gzip", "gcc", "crafty", "eon", "gap", "bzip2"], "ILP"),
    ("6W2", &["gcc", "crafty", "parser", "eon", "gap", "vortex"], "ILP"),
    ("6W3", &["gzip", "vpr", "mcf", "eon", "perlbmk", "bzip2"], "MIX"),
    ("6W4", &["vpr", "mcf", "crafty", "perlbmk", "vortex", "twolf"], "MIX"),
];

/// Program-backed workloads: pure RV64I cells (`RV`) and mixed
/// synthetic+real cells (`XRV`). Opt-in via a spec's
/// `use_rv_workloads = true` (so existing specs using `all` / `2T`
/// selectors keep their exact matrices and cache keys).
pub const RV_WORKLOADS: &[(&str, &[&str], &str)] = &[
    ("RV2", &["rv:matmul", "rv:sort"], "RV"),
    ("RV4", &["rv:matmul", "rv:sort", "rv:prime", "rv:fib"], "RV"),
    ("XRV2", &["gzip", "rv:matmul"], "XRV"),
    ("XRV4", &["mcf", "rv:sort", "gzip", "rv:prime"], "XRV"),
];

fn entries_of(table: &[(&str, &[&str], &str)]) -> Vec<CatalogEntry> {
    table
        .iter()
        .map(|(id, benchmarks, class)| CatalogEntry {
            id: id.to_string(),
            benchmarks: benchmarks.iter().map(|b| b.to_string()).collect(),
            class: Some(class.to_string()),
        })
        .collect()
}

/// A resolvable set of named workloads.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    entries: Vec<CatalogEntry>,
}

impl Catalog {
    pub fn empty() -> Self {
        Catalog::default()
    }

    /// The built-in paper catalog (Tables 2–3).
    pub fn paper() -> Self {
        Catalog { entries: entries_of(PAPER_WORKLOADS) }
    }

    /// The paper catalog plus the program-backed RV64I workloads.
    pub fn paper_with_rv() -> Self {
        let mut c = Catalog::paper();
        c.entries.extend(entries_of(RV_WORKLOADS));
        c
    }

    pub fn with_entry(mut self, entry: CatalogEntry) -> Self {
        self.entries.push(entry);
        self
    }

    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Look up one workload by exact id.
    pub fn get(&self, id: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Resolve a workload *selector*: an exact id, `all`, a class label
    /// (`ILP`/`MEM`/`MIX`), or a thread-count group (`2T`/`4T`/`6T`).
    /// Returns entries in catalog order; an empty result means the
    /// selector matched nothing.
    pub fn resolve(&self, selector: &str) -> Vec<&CatalogEntry> {
        if let Some(e) = self.get(selector) {
            return vec![e];
        }
        let upper = selector.to_ascii_uppercase();
        if upper == "ALL" {
            return self.entries.iter().collect();
        }
        if let Some(class) = ["ILP", "MEM", "MIX", "RV", "XRV"].iter().find(|c| **c == upper) {
            return self.entries.iter().filter(|e| e.class.as_deref() == Some(*class)).collect();
        }
        if let Some(count) = upper.strip_suffix('T').and_then(|n| n.parse::<usize>().ok()) {
            return self.entries.iter().filter(|e| e.threads() == count).collect();
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_shape() {
        let c = Catalog::paper();
        assert_eq!(c.entries().len(), 22);
        assert_eq!(c.resolve("all").len(), 22);
        assert_eq!(c.resolve("2T").len(), 9);
        assert_eq!(c.resolve("4T").len(), 9);
        assert_eq!(c.resolve("6T").len(), 4);
        // MEM workloads exist only at 2 and 4 threads (§4): 3 + 2 = 5.
        assert_eq!(c.resolve("MEM").len(), 5);
        assert_eq!(c.resolve("mem").len(), 5);
        assert_eq!(c.resolve("2W7").len(), 1);
        assert!(c.resolve("9W9").is_empty());
    }

    #[test]
    fn all_paper_benchmarks_exist() {
        for e in Catalog::paper().entries() {
            for b in &e.benchmarks {
                assert!(hdsmt_trace::by_name(b).is_some(), "{}: unknown benchmark {b}", e.id);
            }
        }
    }

    #[test]
    fn rv_catalog_extends_without_disturbing_paper_selectors() {
        let c = Catalog::paper_with_rv();
        assert_eq!(c.entries().len(), 22 + RV_WORKLOADS.len());
        // Paper selectors keep their exact meaning…
        assert_eq!(c.resolve("MEM").len(), 5);
        // …while the new entries resolve by id and class.
        assert_eq!(c.resolve("RV").len(), 2);
        assert_eq!(c.resolve("XRV").len(), 2);
        assert_eq!(c.resolve("XRV2").len(), 1);
        // Every rv benchmark name resolves through either front-end.
        for e in c.entries() {
            for b in &e.benchmarks {
                assert!(hdsmt_core::ThreadSpec::exists(b), "{}: unknown benchmark {b}", e.id);
            }
        }
        // The default catalog stays rv-free: existing specs' matrices
        // (and hence cache keys) are untouched.
        assert!(Catalog::paper().get("RV2").is_none());
    }
}
