//! The declarative campaign specification (TOML or JSON).
//!
//! A spec names *what* to evaluate — microarchitectures × workloads ×
//! mapping policies × budgets — and the engine turns it into a
//! deterministic job matrix. Example (TOML):
//!
//! ```toml
//! name = "paper-smoke"
//! archs = ["M8", "3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"]
//! workloads = ["2W7", "4W6", "MEM"]        # ids, classes, or NT groups
//! policies = ["heur", "rr"]                # heur|rr|random:<seed>|best|worst
//! seed = 24333
//!
//! [budget]
//! measure_insts = 12000
//! warmup_insts = 8000
//! search_insts = 5000                      # only used by best/worst
//!
//! [[extra_workloads]]                      # optional user workloads
//! id = "mine"
//! benchmarks = ["gzip", "mcf"]
//! ```

use crate::job::CampaignError;

/// Instruction budgets for one campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Budget {
    /// Per-thread retire target of the measured runs.
    pub measure_insts: u64,
    /// Committed instructions before statistics reset.
    pub warmup_insts: u64,
    /// Per-thread retire target of oracle mapping-search runs
    /// (`best`/`worst` policies only).
    pub search_insts: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget { measure_insts: 30_000, warmup_insts: 15_000, search_insts: 8_000 }
    }
}

/// A user-defined workload declared inline in the spec.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExtraWorkload {
    pub id: String,
    pub benchmarks: Vec<String>,
    pub class: Option<String>,
}

/// The parsed campaign specification.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (labels exports; defaults to `campaign`).
    pub name: Option<String>,
    /// Microarchitecture names (`M8`, `2M4+2M2`, ...).
    pub archs: Vec<String>,
    /// Workload selectors: catalog ids (`2W1`), classes (`ILP`), thread
    /// groups (`4T`), `all`, or ids declared in `extra_workloads`.
    pub workloads: Vec<String>,
    /// Mapping policies per cell (default `["heur"]`).
    pub policies: Option<Vec<String>>,
    pub budget: Option<Budget>,
    /// Base seed for deterministic per-thread stream seeds.
    pub seed: Option<u64>,
    /// Worker threads (0 or absent = auto).
    pub workers: Option<u64>,
    /// Result-cache directory (defaults to `.hdsmt-cache`).
    pub cache_dir: Option<String>,
    /// Per-benchmark instruction budget when profiling for `heur`.
    pub profile_insts: Option<u64>,
    /// Workloads defined inline, usable from `workloads` by id.
    pub extra_workloads: Option<Vec<ExtraWorkload>>,
    /// Register the program-backed RV64I workloads (`RV2`, `XRV2`, …) in
    /// the catalog. Opt-in so specs using broad selectors (`all`, `2T`)
    /// keep their existing matrices and cache keys.
    pub use_rv_workloads: Option<bool>,
}

impl CampaignSpec {
    pub fn display_name(&self) -> &str {
        self.name.as_deref().unwrap_or("campaign")
    }

    pub fn budget(&self) -> Budget {
        self.budget.unwrap_or_default()
    }

    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(0x5eed)
    }

    pub fn policies(&self) -> Vec<String> {
        self.policies.clone().unwrap_or_else(|| vec!["heur".to_string()])
    }

    /// Should the catalog include the program-backed RV64I workloads?
    pub fn use_rv_workloads(&self) -> bool {
        self.use_rv_workloads.unwrap_or(false)
    }

    /// Parse a spec from TOML or JSON text (format auto-detected: JSON
    /// iff the first non-space byte is `{`).
    pub fn parse(text: &str) -> Result<Self, CampaignError> {
        let trimmed = text.trim_start();
        let value = if trimmed.starts_with('{') {
            serde_json::from_str_value(text)
                .map_err(|e| CampaignError(format!("spec JSON: {e}")))?
        } else {
            crate::toml::parse(text).map_err(|e| CampaignError(format!("spec TOML: {e}")))?
        };
        let spec: CampaignSpec = serde_json::from_value(&value)
            .map_err(|e| CampaignError(format!("spec shape: {e}")))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Load a spec file (`.toml` or `.json`).
    pub fn load(path: &std::path::Path) -> Result<Self, CampaignError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CampaignError(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    fn validate(&self) -> Result<(), CampaignError> {
        if self.archs.is_empty() {
            return Err(CampaignError("spec has no archs".into()));
        }
        if self.workloads.is_empty() {
            return Err(CampaignError("spec has no workloads".into()));
        }
        for p in self.policies() {
            crate::matrix::Policy::parse(&p)?;
        }
        let b = self.budget();
        if b.measure_insts == 0 {
            return Err(CampaignError("budget.measure_insts must be positive".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML_SPEC: &str = r#"
name = "smoke"
archs = ["M8", "2M4+2M2"]
workloads = ["2W7", "MEM"]
policies = ["heur", "random:7"]
seed = 99

[budget]
measure_insts = 4000
warmup_insts = 2000
search_insts = 1500

[[extra_workloads]]
id = "mine"
benchmarks = ["gzip", "mcf"]
class = "MIX"
"#;

    #[test]
    fn parses_toml() {
        let spec = CampaignSpec::parse(TOML_SPEC).unwrap();
        assert_eq!(spec.display_name(), "smoke");
        assert_eq!(spec.archs, vec!["M8", "2M4+2M2"]);
        assert_eq!(spec.seed(), 99);
        assert_eq!(spec.budget().measure_insts, 4000);
        let extra = spec.extra_workloads.as_ref().unwrap();
        assert_eq!(extra[0].id, "mine");
        assert_eq!(extra[0].benchmarks, vec!["gzip", "mcf"]);
    }

    #[test]
    fn parses_json() {
        let spec = CampaignSpec::parse(
            r#"{"archs": ["M8"], "workloads": ["2W1"], "budget":
               {"measure_insts": 1000, "warmup_insts": 500, "search_insts": 200}}"#,
        )
        .unwrap();
        assert_eq!(spec.display_name(), "campaign");
        assert_eq!(spec.policies(), vec!["heur"]);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(CampaignSpec::parse(r#"{"archs": [], "workloads": ["2W1"]}"#).is_err());
        assert!(CampaignSpec::parse(r#"{"archs": ["M8"], "workloads": []}"#).is_err());
        assert!(CampaignSpec::parse(
            r#"{"archs": ["M8"], "workloads": ["2W1"], "policies": ["bogus"]}"#
        )
        .is_err());
    }
}
