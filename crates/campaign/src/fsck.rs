//! Cache-tree verification and repair — the `hdsmt-campaign fsck` verb.
//!
//! "The cache is the database", so it gets a database's integrity
//! tooling. An fsck pass over a cache directory:
//!
//! 1. **Scrubs** every live entry: anything that fails to deserialize is
//!    quarantined (atomic rename into `quarantine/` plus a reason file),
//!    exactly as the lazy lookup path would have done eventually — but
//!    eagerly, for cells no campaign is currently polling.
//! 2. **Reaps** orphaned `*.tmp` files stranded by killed writers, but
//!    only ones older than [`FsckOptions::tmp_age`], so a racing live
//!    writer's in-flight tmp file is never touched.
//! 3. **Checks** every `journal/*.wal` write-ahead journal: replays it,
//!    reports complete records, pending campaigns, and torn tail bytes;
//!    with [`FsckOptions::repair_journal`] the torn tail is truncated
//!    away (crash-consistently, via tmp + fsync + rename).
//! 4. Optionally (**`--gc`**) removes quarantined entries older than
//!    [`FsckOptions::gc_age`] — quarantine is evidence, not a landfill.
//!    Besides scrub-time deserialization failures, replication conflicts
//!    land here too: a `PUT /cells/:hash` whose bytes disagree with the
//!    entry a shard already holds is quarantined as corruption evidence
//!    (cells are content-addressed and simulations deterministic, so
//!    honest replicas can never differ).
//!
//! The report is machine-readable (the CLI prints it as JSON). `clean`
//! means the live tree had no rot and no journal carries an unrepaired
//! torn tail; the *presence* of tmp files, pending journal records, or
//! quarantine evidence is expected operational state, not corruption,
//! and does not fail the check.
//!
//! Run fsck on a quiescent cache. Every individual repair is atomic, so
//! racing a live daemon cannot corrupt anything, but the report's counts
//! can be stale the moment they are produced.

use std::io;
use std::path::Path;
use std::time::Duration;

use crate::cache::ResultCache;
use crate::journal;

/// Tuning knobs for an fsck pass.
#[derive(Clone, Debug)]
pub struct FsckOptions {
    /// Only reap `*.tmp` files at least this old (safety margin for
    /// racing live writers).
    pub tmp_age: Duration,
    /// Remove quarantined entries older than [`Self::gc_age`].
    pub gc: bool,
    /// Age threshold for `--gc`.
    pub gc_age: Duration,
    /// Truncate torn journal tails instead of just reporting them.
    pub repair_journal: bool,
}

impl Default for FsckOptions {
    fn default() -> Self {
        FsckOptions {
            tmp_age: Duration::from_secs(15 * 60),
            gc: false,
            gc_age: Duration::from_secs(7 * 24 * 3600),
            repair_journal: false,
        }
    }
}

/// Replay summary of one `journal/*.wal` file.
#[derive(Clone, Debug, serde::Serialize)]
pub struct JournalCheck {
    /// File name (`serve.wal`, `fleet.wal`, …).
    pub file: String,
    /// Complete, checksum-valid records.
    pub records: u64,
    /// Accepted campaigns without a terminal record — the work a
    /// restarted daemon would resume.
    pub pending: u64,
    /// Bytes of torn tail after the last complete record.
    pub torn_bytes: u64,
    /// Whether this pass truncated the torn tail away.
    pub repaired: bool,
}

/// Machine-readable result of an fsck pass.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FsckReport {
    pub cache_dir: String,
    /// Live entries walked by the scrub.
    pub entries_checked: u64,
    /// Entries that parsed cleanly.
    pub entries_valid: u64,
    /// Entries quarantined by this pass.
    pub corrupt_quarantined: u64,
    /// Orphaned tmp files deleted by this pass.
    pub tmp_reaped: u64,
    /// Tmp files left in place (younger than the threshold).
    pub tmp_remaining: u64,
    /// Quarantined entries on disk after this pass.
    pub quarantine_entries: u64,
    /// Age of the oldest quarantined entry, seconds.
    pub quarantine_oldest_secs: Option<u64>,
    /// Quarantined entries removed by `--gc`.
    pub quarantine_gc_removed: u64,
    /// One summary per `journal/*.wal` file.
    pub journals: Vec<JournalCheck>,
    /// No rot found and no journal left with an unrepaired torn tail.
    pub clean: bool,
}

/// Replay every `journal/*.wal` under `cache_dir`, optionally truncating
/// torn tails. Shared by `fsck` and the `status` verb.
pub fn journal_checks(cache_dir: &Path, repair: bool) -> io::Result<Vec<JournalCheck>> {
    let mut checks = Vec::new();
    for path in journal::journal_files(cache_dir) {
        let replay = journal::replay_file(&path)?;
        let mut repaired = false;
        if repair && replay.torn_bytes > 0 {
            journal::rewrite(&path, &replay.records)?;
            repaired = true;
        }
        checks.push(JournalCheck {
            file: path.file_name().unwrap_or_default().to_string_lossy().into_owned(),
            records: replay.records.len() as u64,
            pending: replay.pending.len() as u64,
            torn_bytes: replay.torn_bytes,
            repaired,
        });
    }
    Ok(checks)
}

/// Run a full fsck pass over the cache at `cache_dir`.
pub fn fsck(cache_dir: &Path, opts: &FsckOptions) -> io::Result<FsckReport> {
    let cache = ResultCache::open(cache_dir)?;
    let (checked, quarantined) = cache.scrub();
    let tmp_reaped = cache.reap_tmp(opts.tmp_age);
    let gc_removed = if opts.gc { cache.quarantine_gc(opts.gc_age) } else { 0 };
    let journals = journal_checks(cache_dir, opts.repair_journal)?;
    let torn_unrepaired = journals.iter().any(|j| j.torn_bytes > 0 && !j.repaired);
    Ok(FsckReport {
        cache_dir: cache_dir.display().to_string(),
        entries_checked: checked as u64,
        entries_valid: (checked - quarantined) as u64,
        corrupt_quarantined: quarantined as u64,
        tmp_reaped: tmp_reaped as u64,
        tmp_remaining: cache.tmp_files() as u64,
        quarantine_entries: cache.quarantined_entries() as u64,
        quarantine_oldest_secs: cache.quarantine_oldest_age().map(|a| a.as_secs()),
        quarantine_gc_removed: gc_removed as u64,
        journals,
        clean: quarantined == 0 && !torn_unrepaired,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, Record};
    use hdsmt_core::{SimResult, SimStats};
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hdsmt-fsck-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn fake_result() -> SimResult {
        SimResult { arch: "M8".into(), mapping: vec![0], stats: SimStats::default() }
    }

    #[test]
    fn fsck_quarantines_rot_reaps_orphans_and_repairs_torn_journals() {
        let dir = tmpdir("full");
        let cache = ResultCache::open(&dir).unwrap();
        let good = ResultCache::key_for("{\"job\":1}");
        let bad = ResultCache::key_for("{\"job\":2}");
        cache.put(&good, "{\"job\":1}", &fake_result()).unwrap();
        cache.put(&bad, "{\"job\":2}", &fake_result()).unwrap();
        fs::write(dir.join(&bad[..2]).join(format!("{bad}.json")), "rot").unwrap();
        fs::write(dir.join(&good[..2]).join(format!("{good}.json.tmp.1.0")), "orphan").unwrap();

        // A journal with one resolved pair, one pending accept, and a
        // hand-torn tail.
        let (journal, _) = Journal::open(&dir, "serve").unwrap();
        journal.append(&Record::accept("c1-aa", "one", "s1")).unwrap();
        journal.append(&Record::done("c1-aa")).unwrap();
        journal.append(&Record::accept("c2-bb", "two", "s2")).unwrap();
        let wal = journal.path().to_path_buf();
        drop(journal);
        let mut bytes = fs::read(&wal).unwrap();
        bytes.extend_from_slice(&[7u8; 5]);
        fs::write(&wal, &bytes).unwrap();

        let opts = FsckOptions { tmp_age: Duration::ZERO, ..FsckOptions::default() };
        let report = fsck(&dir, &opts).unwrap();
        assert_eq!(report.entries_checked, 2);
        assert_eq!(report.entries_valid, 1);
        assert_eq!(report.corrupt_quarantined, 1);
        assert_eq!(report.tmp_reaped, 1);
        assert_eq!(report.tmp_remaining, 0);
        assert_eq!(report.quarantine_entries, 1);
        assert_eq!(report.journals.len(), 1);
        assert_eq!(report.journals[0].records, 3);
        assert_eq!(report.journals[0].pending, 1, "c2-bb is still pending");
        assert_eq!(report.journals[0].torn_bytes, 5);
        assert!(!report.journals[0].repaired, "repair is opt-in");
        assert!(!report.clean, "rot + torn tail → not clean");

        // Repair pass: torn tail truncated, tree now clean.
        let opts = FsckOptions { repair_journal: true, ..opts };
        let report = fsck(&dir, &opts).unwrap();
        assert_eq!(report.corrupt_quarantined, 0);
        assert_eq!(report.journals[0].torn_bytes, 5, "reported before truncation");
        assert!(report.journals[0].repaired);
        assert!(report.clean, "quarantine evidence alone does not fail the check");
        let replay = journal::replay_file(&wal).unwrap();
        assert_eq!(replay.torn_bytes, 0, "the repair truncated the tail");
        assert_eq!(replay.records.len(), 3);

        // --gc clears the quarantine.
        let opts = FsckOptions { gc: true, gc_age: Duration::ZERO, ..opts };
        let report = fsck(&dir, &opts).unwrap();
        assert_eq!(report.quarantine_gc_removed, 1);
        assert_eq!(report.quarantine_entries, 0);
        assert!(report.clean);

        // The report serializes — it is the CLI's output contract.
        let text = serde_json::to_string_pretty(&report).unwrap();
        assert!(text.contains("\"clean\""), "{text}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_on_an_empty_cache_is_clean() {
        let dir = tmpdir("empty");
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(report.clean);
        assert_eq!(report.entries_checked, 0);
        assert!(report.journals.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
