//! Work-stealing sharded scheduler for independent simulation jobs.
//!
//! Jobs are pre-sharded round-robin across per-worker deques; a worker
//! drains its own shard from the front and, when empty, steals from the
//! back of the other shards. Because the job set is static (no job spawns
//! another), a full sweep that finds every deque empty is a terminal
//! condition. Results land at their input index, so output order is
//! independent of scheduling — determinism is preserved no matter how the
//! steal race plays out.
//!
//! A **panicking job** is contained, not amplified: the panic is caught
//! at the job boundary, the remaining jobs still run, and the parent
//! re-raises the *original* payload (of the lowest-indexed panicking
//! job) once the batch drains. Without this, the unwinding worker
//! poisoned shared mutexes and every sibling worker died on a confusing
//! `PoisonError` far from the actual fault; lock acquisition is also
//! poison-tolerant for the same reason.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Poison-tolerant lock: a mutex poisoned by some other thread's panic
/// still guards plain data we can safely read (job indices, result
/// slots).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Human-readable panic payload (the `&str`/`String` forms `panic!`
/// produces).
pub(crate) fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Default worker count: leave a couple of cores for the OS.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get().saturating_sub(2).max(1)).unwrap_or(4)
}

/// Apply `f` to every item on up to `workers` threads, preserving order.
///
/// `f` receives `(index, &item)` so callers can correlate results without
/// interior mutability.
pub fn parallel_map_indexed<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, items.len());
    if workers == 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    // Round-robin pre-sharding: job j starts on deque j % workers.
    let shards: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for j in 0..items.len() {
        lock(&shards[j % workers]).push_back(j);
    }
    let results: Vec<Mutex<Option<O>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    // (job index, payload) of every panicking job.
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for w in 0..workers {
            let shards = &shards;
            let results = &results;
            let panics = &panics;
            let f = &f;
            scope.spawn(move || loop {
                // Own shard first (front), then steal (back) in ring order.
                let mut job = lock(&shards[w]).pop_front();
                if job.is_none() {
                    for v in 1..workers {
                        let victim = (w + v) % workers;
                        job = lock(&shards[victim]).pop_back();
                        if job.is_some() {
                            break;
                        }
                    }
                }
                match job {
                    Some(j) => {
                        // Contain a panicking job at its own boundary so
                        // the worker (and its siblings) keep draining the
                        // batch.
                        match catch_unwind(AssertUnwindSafe(|| f(j, &items[j]))) {
                            Ok(out) => *lock(&results[j]) = Some(out),
                            Err(payload) => lock(panics).push((j, payload)),
                        }
                    }
                    // Static job set: all deques empty means no work will
                    // ever appear again.
                    None => break,
                }
            });
        }
    });

    // Deterministic re-raise: the lowest-indexed panicking job wins,
    // regardless of which worker hit it first.
    let mut panics = panics.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some((j, payload)) = panics.drain(..).min_by_key(|&(j, _)| j) {
        eprintln!("parallel_map: job {j} panicked: {}", payload_msg(payload.as_ref()));
        std::panic::resume_unwind(payload);
    }

    results.into_iter().map(|slot| slot.into_inner().unwrap().expect("job completed")).collect()
}

/// Order-preserving parallel map (index-free convenience wrapper).
pub fn parallel_map<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    parallel_map_indexed(items, workers, |_, item| f(item))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(*o, (i * i) as u64);
        }
    }

    #[test]
    fn single_worker_empty_and_overprovisioned() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
        let out = parallel_map(&[1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let out = parallel_map(&[5u32], 16, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, 7, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out, items);
    }

    #[test]
    fn panicking_job_does_not_poison_siblings() {
        // One job panics; every other job must still run, and the parent
        // must re-raise the *original* payload — not a PoisonError from
        // a shard or result mutex.
        let done = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(&items, 8, |&x| {
                if x == 13 {
                    panic!("job 13 exploded");
                }
                done.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        let payload = caught.expect_err("the batch must re-raise the job panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("<not a str>");
        assert_eq!(msg, "job 13 exploded", "original payload, not a poisoned-lock error");
        assert_eq!(done.load(Ordering::Relaxed), 63, "sibling jobs must all complete");
    }

    #[test]
    fn lowest_indexed_panic_wins_deterministically() {
        for _ in 0..4 {
            let items: Vec<usize> = (0..32).collect();
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                parallel_map(&items, 8, |&x| {
                    if x == 7 || x == 23 {
                        panic!("job {x} exploded");
                    }
                    x
                })
            }));
            let payload = caught.unwrap_err();
            let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
            assert_eq!(msg, "job 7 exploded");
        }
    }

    #[test]
    fn stealing_balances_skewed_work() {
        // Front-load all the heavy jobs onto the shards of the first
        // worker; with stealing, wall-clock must stay well under the
        // serial sum. (Soft check: just assert completion + order.)
        let items: Vec<u64> = (0..64).map(|i| if i % 8 == 0 { 3 } else { 0 }).collect();
        let out = parallel_map(&items, 8, |&ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms
        });
        assert_eq!(out, items);
    }
}
