//! `hdsmt-campaign serve` — the sweep-service daemon.
//!
//! Runs campaigns as a long-lived HTTP/JSON service instead of one-shot
//! CLI invocations: clients `POST` a TOML/JSON spec, poll per-cell
//! progress, and fetch results, while a persistent worker pool executes
//! jobs through the exact same cached, work-stealing [`crate::job::JobRunner`]
//! path as `hdsmt-campaign run` — identical cache keys, identical oracle
//! search sub-jobs, identical panic isolation.
//!
//! # API
//!
//! | Route                     | Method | Meaning                                    |
//! |---------------------------|--------|--------------------------------------------|
//! | `/healthz`                | GET    | liveness probe                             |
//! | `/stats`                  | GET    | uptime, job totals, cache hit/miss/corrupt |
//! | `/campaigns`              | POST   | submit a spec (TOML or JSON body) → 202 + id |
//! | `/campaigns`              | GET    | list submitted campaigns                   |
//! | `/campaigns/:id`          | GET    | per-cell progress snapshot                 |
//! | `/campaigns/:id/results`  | GET    | export (`?format=json\|csv\|summary`)      |
//! | `/cells/:hash`            | GET    | verbatim cache entry by content key        |
//! | `/cells?since=secs`       | GET    | cache manifest (`key` + `mtime`) for anti-entropy sync |
//! | `/cells/:hash?sha256=hex` | PUT    | replicate one checksummed cache entry      |
//! | `/workers`                | GET    | supervised fleet health (restarts, backoff, partitions)|
//! | `/shutdown`               | POST   | graceful drain (same as SIGINT)            |
//!
//! Errors are structured JSON (`{"error":{"status":…,"message":…}}`) —
//! see [`api`] for the exact status-code mapping. Backpressure 503s from
//! the bounded queue carry a `Retry-After` header scaled to the backlog;
//! the bundled thin client honors it with capped exponential backoff
//! (see [`http::RetryPolicy`]).
//!
//! # Supervision and the failure model
//!
//! `serve --supervise n` turns the daemon into a fleet parent: instead of
//! executing campaigns in-process it spawns `n` child daemons (`--shard
//! i/n`, ephemeral ports, shared cache) and routes every campaign verb
//! through a ledger that keeps all shards fed. See [`supervisor`] for the
//! moving parts. The failure model, in decreasing order of blast radius:
//!
//! - **Worker crash** (SIGKILL, `abort()`, OOM): detected by process
//!   reaping or three consecutive missed `/healthz` probes. The worker is
//!   restarted under exponential backoff (250 ms base, 5 s cap,
//!   deterministic jitter) and re-seeded with every ledgered spec —
//!   idempotent, because finished cells are cache hits.
//! - **Crash loop**: more than `max_restarts` (default 5) restarts trips
//!   a circuit breaker; the worker is marked *broken*, `GET /workers`
//!   says so, and campaigns whose other shards finish report `degraded`
//!   instead of blocking forever. The broken shard's cells stay
//!   resumable in the cache.
//! - **Hung cell** (infinite loop in a simulation): the per-cell
//!   watchdog (`--cell-deadline-ms`) cancels the attempt cooperatively,
//!   retries it up to `--cell-retries` times, then marks the cell
//!   failed-with-timeout; the campaign completes around it with the
//!   failure recorded in the cell's `error` field.
//! - **Corrupt cache entry** (torn write, bit rot): quarantined on
//!   detection — atomically renamed into `quarantine/` with a reason
//!   file — so it is re-simulated on next use and never read twice;
//!   `status` and `GET /stats` report the quarantined count.
//! - **Failed cache write** (injected I/O error, full disk): costs
//!   resumability, not correctness — the in-hand result is returned and
//!   the cell re-simulates next run.
//!
//! # Deterministic fault injection
//!
//! Compiled with `--features fault-inject`, the daemon (and CLI) honor a
//! seeded fault plan in `HDSMT_FAULT`: `;`-separated directives of the
//! form `kind@counter=n[,n...]`, firing on the n-th event of a
//! per-process counter (see [`crate::fault`] for the grammar — `kill@sim`,
//! `hang@sim`, `corrupt@put`, `err@put`, `err@get`, `kill@accept`,
//! `err@journal`, `torn@journal`, and the network directives `drop@net=k`,
//! `delay@net=k:ms`, `partition@net=k:dur`, injected at the outbound
//! client seam in [`http`]). The chaos e2e suite
//! drives kill/corrupt/hang matrices through the supervisor with
//! single-threaded workers, so every failure fires at the same cell on
//! every run. Without the feature (the default), every hook compiles to
//! a no-op.
//!
//! # Sharding
//!
//! Several daemons can split one campaign across processes (or machines
//! on a shared filesystem) with `serve --shard i/n`, all pointing at the
//! same cache directory. **Ownership rule:** shard `i` of `n` owns a cell
//! iff the first 8 bytes of `SHA-256("<arch>\x1f<workload id>\x1f<policy>")`,
//! read as a big-endian `u64`, are ≡ `i` (mod `n`). Ownership depends only
//! on cell *identity* — not on mappings or budgets — so every shard
//! partitions the same spec identically with zero coordination: no cell
//! is lost, none is measured twice. (`best`/`worst` cells of one
//! (arch, workload) pair landing on different shards duplicate a search
//! *sweep*; the shared content-addressed cache coalesces those jobs, so
//! the duplication costs at most one warm pass.)
//!
//! # Distributed deployment & the partition failure model
//!
//! Nothing above requires one filesystem. A fleet can span machines:
//!
//! - **Remote workers** (`serve --supervise 0 --worker HOST:PORT ...`):
//!   each `--worker` entry is *adopted* instead of spawned — the
//!   supervisor never forks or kills it, but health-probes it over
//!   `/healthz` with the same max-missed / backoff / circuit-breaker
//!   machinery as spawned children, and backfills every ledgered
//!   campaign over the retrying client. The operator starts each remote
//!   daemon with the matching `--shard i/n` (`n` = spawned + adopted)
//!   and its own cache directory. `--supervise k --worker ...` mixes
//!   `k` local children with adopted remotes.
//! - **Cache peers** (`--peer HOST:PORT`, repeatable): a cache miss
//!   consults each peer's `GET /cells/:hash` and lands a verified copy
//!   locally (atomic tmp + rename) before falling back to simulation.
//!   The supervisor's `/campaigns/:id/results` replay first runs an
//!   anti-entropy pass — `GET /cells?since=` manifest diff against every
//!   live worker, pulling entries it is missing — so results are served
//!   entirely through HTTP when workers are remote.
//! - **Replication rule: byte-equality or quarantine.** Cache entries
//!   are deterministic, so two copies of one content key must be
//!   byte-identical. `PUT /cells/:hash` verifies a `?sha256=` checksum
//!   of the body (transit corruption → 422, nothing lands), validates
//!   the entry, and lands it atomically; if a *different* body already
//!   exists under the same key, the incoming copy is quarantined and
//!   the PUT answers 409 — never last-write-wins, and a quarantined
//!   copy is never served.
//! - **Partition semantics**: a worker that stops answering probes is
//!   restarted (spawned) or re-probed (adopted) under backoff; past the
//!   restart budget it is *broken* and its shard's unfinished cells are
//!   **re-owned** — the supervisor runs the broken worker's exact shard
//!   slice through its own cached engine, so campaigns complete with
//!   zero lost or duplicated cells (finished cells are cache or peer
//!   hits). `GET /workers` reports per-worker partition counts and
//!   re-owned totals; `GET /stats` reports `cache_remote_hits`,
//!   `cells_replicated`, and `net_faults_injected`.
//!
//! # The cache is the database
//!
//! The daemon keeps no job state of its own: every finished simulation is
//! an atomically written (`tmp` + rename) entry in the content-addressed
//! cache, and progress/`/stats` counters are derived in memory. Killing a
//! daemon mid-campaign therefore loses nothing — resubmitting the same
//! spec to a fresh daemon (or running `hdsmt-campaign run` on the same
//! cache) resumes from the completed cells. Graceful shutdown (SIGINT or
//! `POST /shutdown`) stops accepting work, cancels not-yet-started jobs,
//! and lets in-flight simulations finish and cache before exiting 0.
//!
//! # Durability & recovery
//!
//! The cache makes finished *cells* durable; the write-ahead journal
//! makes accepted *campaigns* durable. Before any `POST /campaigns`
//! returns its 202, the accept — id, name, and the verbatim spec text —
//! is appended to `<cache>/journal/<role>.wal` and fsynced (`serve`
//! writes `serve.wal`, `serve --shard i/n` a per-shard file, and
//! `serve --supervise` a `fleet.wal`). Completion appends a `done`
//! (or `failed`) mark. Each record is a length-prefixed, checksummed
//! frame (`u32 LE` length, `u64 LE` FNV-1a of the payload, JSON
//! payload — see [`crate::journal`]), so a crash mid-append leaves at
//! most one torn frame, which replay discards instead of poisoning
//! recovery.
//!
//! On startup the daemon replays its journal, compacts it (pending
//! accepts only, via tmp + fsync + rename), reaps orphaned `*.tmp`
//! files older than a safety threshold, and resubmits every unfinished
//! campaign — **with its original id** — through the ordinary cached
//! JobRunner path. Replay is idempotent by construction: cells the
//! previous incarnation finished are cache hits, so a SIGKILLed
//! campaign resumes rather than restarts, with zero lost or duplicated
//! cells. `GET /stats` reports `journal_records`, `journal_replayed`,
//! and `tmp_reaped`.
//!
//! A journal append that fails (full disk, injected `err@journal`)
//! refuses the submission with 503 + `Retry-After` — the daemon never
//! acknowledges work it cannot promise to survive. `--no-journal`
//! disables the journal entirely (supervised workers run this way: the
//! fleet journal at the supervisor is their source of truth), and
//! `--durable` extends the crash model from process death to host power
//! loss by fsyncing every cache entry before its rename publishes it.
//! `hdsmt-campaign fsck` (see [`crate::fsck`]) verifies and repairs a
//! cache tree offline: scrub + quarantine, tmp reaping, torn-tail
//! truncation, quarantine GC.

pub mod api;
pub mod http;
pub mod queue;
pub mod state;
pub mod supervisor;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

pub use state::{ServerConfig, ServerState};

/// Per-connection socket timeouts: a stalled peer must not pin a handler
/// thread forever.
const CONN_TIMEOUT: Duration = Duration::from_secs(30);

// ------------------------------------------------------------- SIGINT
// No `libc` crate is available offline, so the handler installation is a
// one-line FFI declaration of POSIX `signal(2)`. The handler itself only
// stores to an atomic — the single thing that is async-signal-safe.

#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);
    const SIGINT: i32 = 2;

    extern "C" fn on_sigint(_signum: i32) {
        SIGINT_SEEN.store(true, Ordering::Relaxed);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        // SAFETY: `signal(2)` with a handler that only stores to a static
        // AtomicBool — async-signal-safe, no allocation, no locks; the
        // handler address stays valid for the process lifetime.
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }

    pub fn seen() -> bool {
        SIGINT_SEEN.load(Ordering::Relaxed)
    }
}

#[cfg(not(unix))]
mod sigint {
    pub fn install() {}
    pub fn seen() -> bool {
        false
    }
}

/// A running daemon: acceptor + HTTP handler pool + campaign executors.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    handlers: Vec<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    /// Set once a shutdown poke has been sent, so idempotent shutdown
    /// paths (handler, SIGINT loop, explicit call) don't race.
    poked: Arc<AtomicBool>,
}

impl Server {
    /// Bind `config.addr` (use port 0 for an ephemeral test port) and
    /// start all threads. Returns once the daemon is accepting.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // A supervising daemon runs no campaigns itself — the shard
        // workers do — so its executor pool is empty.
        let executors_n = if config.supervise.is_some() { 0 } else { config.executors.max(1) };
        let http_n = config.http_workers.max(1);
        let state = Arc::new(ServerState::new(config)?);
        let poked = Arc::new(AtomicBool::new(false));

        if let Some(n) = state.config.supervise {
            let remote_workers = state.config.remote_workers.clone();
            // `--supervise 0` is adopt-only (remote workers required by
            // the CLI); without remotes, keep the old floor of 1 child.
            let spawned = if n == 0 && !remote_workers.is_empty() { 0 } else { n.max(1) };
            let sup = supervisor::Supervisor::start(
                supervisor::SupervisorConfig {
                    workers: spawned,
                    remote_workers,
                    cache_dir: state.config.cache_dir.clone(),
                    sim_workers: state.config.sim_workers,
                    binary: state.config.worker_binary.clone(),
                    cell_deadline: state.config.cell_deadline,
                    cell_retries: state.config.cell_retries,
                    child_env: state.config.child_env.clone(),
                    ..supervisor::SupervisorConfig::default()
                },
                state.cache.clone(),
                state.journal_arc(),
                state.take_recovered(),
            )?;
            state.set_supervisor(sup);
        }

        // Campaign executors: drain the bounded queue until it closes.
        // Spawn failures (thread exhaustion) propagate as the start error
        // they are, instead of panicking half-started.
        let executors = (0..executors_n)
            .map(|i| {
                let state = state.clone();
                std::thread::Builder::new().name(format!("serve-exec-{i}")).spawn(move || {
                    while let Some(entry) = state.queue.pop() {
                        state.execute(&entry);
                    }
                })
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        // HTTP handlers: one shared receiver of accepted connections.
        // Handlers exit when the acceptor drops the sender.
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let handlers = (0..http_n)
            .map(|i| {
                let state = state.clone();
                let conn_rx = conn_rx.clone();
                let poked = poked.clone();
                std::thread::Builder::new().name(format!("serve-http-{i}")).spawn(move || loop {
                    let Ok(mut stream) = ({
                        let guard = conn_rx.lock().unwrap_or_else(|e| e.into_inner());
                        guard.recv()
                    }) else {
                        return;
                    };
                    handle_connection(&state, &mut stream);
                    // A request may have initiated shutdown
                    // (`POST /shutdown`): wake the blocked acceptor.
                    if state.is_shutting_down() {
                        poke(&addr, &poked);
                    }
                })
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let acceptor = {
            let state = state.clone();
            std::thread::Builder::new().name("serve-accept".into()).spawn(move || {
                for conn in listener.incoming() {
                    if state.is_shutting_down() {
                        break; // the poke connection lands here
                    }
                    let Ok(stream) = conn else { continue };
                    let _ = stream.set_read_timeout(Some(CONN_TIMEOUT));
                    let _ = stream.set_write_timeout(Some(CONN_TIMEOUT));
                    if conn_tx.send(stream).is_err() {
                        break;
                    }
                }
                // conn_tx drops here → handler pool drains and exits.
            })?
        };

        Ok(Server { state, addr, acceptor, handlers, executors, poked })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Block until SIGINT or `POST /shutdown`, then drain and join.
    /// This is the `hdsmt-campaign serve` main loop.
    pub fn run(self) {
        sigint::install();
        while !self.state.is_shutting_down() {
            if sigint::seen() {
                self.state.begin_shutdown();
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join();
    }

    /// Initiate the graceful drain and wait for every thread: stop
    /// accepting, cancel not-yet-started jobs, let in-flight simulations
    /// finish and cache, then return.
    pub fn shutdown_and_join(self) {
        self.state.begin_shutdown();
        self.join();
    }

    fn join(self) {
        // Fleet first: stop restarting workers, drain them gracefully.
        if let Some(sup) = self.state.supervisor() {
            sup.shutdown();
        }
        poke(&self.addr, &self.poked);
        let _ = self.acceptor.join();
        for h in self.handlers {
            let _ = h.join();
        }
        for e in self.executors {
            let _ = e.join();
        }
    }
}

/// Wake an acceptor blocked in `accept()` with a throwaway connection
/// (once — the flag makes repeated shutdown paths cheap and race-free).
fn poke(addr: &SocketAddr, poked: &AtomicBool) {
    if !poked.swap(true, Ordering::Relaxed) {
        let _ = TcpStream::connect(addr);
    }
}

/// How long a keep-alive connection may sit idle between requests before
/// the handler closes it and returns to the accept pool.
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);

/// Serve one connection: parse, route, respond — repeatedly, while the
/// peer asks for keep-alive. Transport errors that yield no parseable
/// request are answered with a structured JSON error when possible and
/// otherwise dropped.
fn handle_connection(state: &ServerState, stream: &mut TcpStream) {
    let mut first = true;
    loop {
        if !first && !wait_for_next_request(state, stream) {
            return;
        }
        first = false;
        let request = match http::read_request(stream) {
            Ok(request) => request,
            Err(http::HttpError::Io(_)) => return, // peer went away mid-request
            Err(err) => {
                let _ = http::write_response(stream, &api::transport_error_response(&err), false);
                return;
            }
        };
        // A draining daemon closes after the in-hand response so no
        // handler thread stays pinned to an idle connection.
        let keep = request.keep_alive && !state.is_shutting_down();
        let response = api::handle(state, &request);
        if http::write_response(stream, &response, keep).is_err() || !keep {
            return;
        }
    }
}

/// Park between keep-alive requests. Peeks (never reads) in short slices
/// so shutdown is noticed promptly and a partially arrived request is
/// never consumed and dropped; `false` means close the connection (peer
/// gone, idle past [`KEEP_ALIVE_IDLE`], or the daemon is draining).
fn wait_for_next_request(state: &ServerState, stream: &mut TcpStream) -> bool {
    let deadline = std::time::Instant::now() + KEEP_ALIVE_IDLE;
    let mut byte = [0u8; 1];
    loop {
        if state.is_shutting_down() {
            return false;
        }
        if stream.set_read_timeout(Some(Duration::from_millis(250))).is_err() {
            return false;
        }
        match stream.peek(&mut byte) {
            Ok(0) => return false, // peer closed
            Ok(_) => return stream.set_read_timeout(Some(CONN_TIMEOUT)).is_ok(),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if std::time::Instant::now() >= deadline {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::http::{http_get, http_post};

    fn test_config(tag: &str) -> ServerConfig {
        let dir =
            std::env::temp_dir().join(format!("hdsmt-serve-mod-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            cache_dir: dir.to_string_lossy().into_owned(),
            sim_workers: 2,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn serves_health_and_stats_over_a_real_socket() {
        let server = Server::start(test_config("health")).unwrap();
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, r#"{"status":"ok"}"#));
        let (status, body) = http_get(&addr, "/stats").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"uptime_secs\""), "{body}");
        let cache_dir = server.state().cache.dir().to_path_buf();
        server.shutdown_and_join();
        let _ = std::fs::remove_dir_all(cache_dir);
    }

    #[test]
    fn post_shutdown_terminates_the_daemon() {
        let server = Server::start(test_config("shutdown")).unwrap();
        let addr = server.addr().to_string();
        let (status, _) = http_post(&addr, "/shutdown", "").unwrap();
        assert_eq!(status, 202);
        let cache_dir = server.state().cache.dir().to_path_buf();
        // All threads must come down without an external poke or timeout.
        server.shutdown_and_join();
        assert!(http_get(&addr, "/healthz").is_err(), "the socket must be closed after shutdown");
        let _ = std::fs::remove_dir_all(cache_dir);
    }
}
