//! Minimal HTTP/1.1 transport on `std::net` — request parser, response
//! writer, and a blocking client for the `--remote` thin-client verbs.
//!
//! Like the `vendor/` dependency shims, this is deliberately tiny: no
//! registry is reachable from this environment, so the daemon speaks the
//! smallest HTTP/1.1 subset that curl, browsers, and our own client all
//! understand. Bodies are framed by `Content-Length` only (no chunked
//! transfer), with byte-capped header and body sections so a misbehaving
//! peer cannot balloon memory. Connections are persistent by default
//! (HTTP/1.1 keep-alive): the server loop serves requests until the peer
//! sends `Connection: close` or goes idle, and [`HttpClient`] pools one
//! connection per peer so fleet traffic — heartbeats, replication,
//! backfill — stops paying a TCP connect per request.
//!
//! Every outbound request passes through [`crate::fault::on_net_op`],
//! the seam where the `fault-inject` build drops, delays, or partitions
//! network traffic on a seeded schedule.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body (campaign specs are a few KB).
pub const MAX_BODY: usize = 4 << 20;
/// Largest accepted request line + header section.
pub const MAX_HEAD: usize = 64 << 10;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    /// Decoded path without the query string (`/campaigns/abc`).
    pub path: String,
    /// Raw query string (`format=csv`), empty when absent.
    pub query: String,
    pub body: Vec<u8>,
    /// Whether the peer allows the connection to be reused (HTTP/1.1
    /// default unless it sent `Connection: close`).
    pub keep_alive: bool,
}

impl Request {
    /// Path split on `/`, empty segments dropped: `/campaigns/x/results`
    /// → `["campaigns", "x", "results"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// First value of a `key=value` query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::Malformed("body is not UTF-8"))
    }
}

/// One outgoing HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Emitted as a `Retry-After: <secs>` header — attached to 503s so
    /// backpressured clients back off an informed amount instead of a
    /// guessed one.
    pub retry_after: Option<u64>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    pub fn csv(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/csv; charset=utf-8",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }
}

/// Transport-level failure while reading a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Peer closed or an I/O error occurred mid-request.
    Io(String),
    /// The bytes are not a parseable HTTP/1.1 request.
    Malformed(&'static str),
    /// Head or body exceeded the hard caps.
    TooLarge(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
        }
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Read and parse one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let io = |e: std::io::Error| HttpError::Io(e.to_string());
    let mut reader = BufReader::new(stream);

    let mut head = String::new();
    let mut line = String::new();
    // Request line + headers, CRLF-terminated, blank line ends the head.
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(io)?;
        if n == 0 {
            return Err(HttpError::Io("peer closed mid-head".into()));
        }
        if head.len() + line.len() > MAX_HEAD {
            return Err(HttpError::TooLarge("head"));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
    }

    let mut lines = head.lines();
    let request_line = lines.next().ok_or(HttpError::Malformed("empty request line"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Malformed("missing method"))?.to_string();
    let target = parts.next().ok_or(HttpError::Malformed("missing target"))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("not HTTP/1.x")),
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    let mut keep_alive = true;
    for header in lines {
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::Malformed("header without colon"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
        } else if name.trim().eq_ignore_ascii_case("connection") {
            keep_alive = !value.trim().eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge("body"));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(io)?;
    Ok(Request { method, path, query, body, keep_alive })
}

/// Write `response` to `stream`. `keep_alive` picks the `Connection`
/// header — the server loop passes what it will actually do, so clients
/// never wait on a connection the server is about to drop.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let retry_after = match response.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
        retry_after,
        connection,
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

// ---------------------------------------------------------------- client

/// Blocking one-shot HTTP client: send `method path` with an optional
/// body to `addr`, return `(status, body)`. Used by the `--remote` CLI
/// verbs and the tests, so the daemon is exercised end-to-end over a real
/// socket by everything that talks to it.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let resp = http_request_full(addr, method, path, body)?;
    Ok((resp.status, resp.body))
}

pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    http_request(addr, "GET", path, None)
}

pub fn http_post(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    http_request(addr, "POST", path, Some(body))
}

// ------------------------------------------------------- retrying client

/// A parsed client-side response, including the `Retry-After` hint that
/// plain `http_request` discards.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub body: String,
    /// Seconds from a `Retry-After` header, when the server sent one.
    pub retry_after: Option<u64>,
}

/// Like [`http_request`], but keeps the header section long enough to
/// extract `Retry-After`. One-shot: pools nothing.
pub fn http_request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    HttpClient::new(addr).request(method, path, body)
}

/// A keep-alive HTTP/1.1 client: pools one TCP connection to `addr` and
/// reuses it across requests. Responses are `Content-Length`-framed, so
/// the connection stays usable after every exchange; a stale pooled
/// connection (the server closed it while idle) is retried exactly once
/// on a fresh one. Every request first passes the [`crate::fault`]
/// network seam.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    stream: Option<TcpStream>,
}

impl HttpClient {
    pub fn new(addr: &str) -> Self {
        HttpClient { addr: addr.to_string(), stream: None }
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Send one request, reusing the pooled connection when possible.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        crate::fault::on_net_op()?;
        let reused = self.stream.is_some();
        match self.send(method, path, body) {
            Err(e) if reused => {
                // The server may have dropped the idle pooled connection
                // between requests; that failure mode gets one fresh
                // connection, anything on a fresh connection is real.
                let _ = e;
                self.stream = None;
                self.send(method, path, body)
            }
            other => other,
        }
    }

    /// [`HttpClient::request`] with bounded retry under `policy` — the
    /// same 503/transient-error schedule as [`http_request_retry`], but
    /// reusing this client's pooled connection across attempts.
    pub fn request_retry(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        policy: &RetryPolicy,
    ) -> std::io::Result<HttpResponse> {
        let salt = format!("{method} {}{path}", self.addr);
        for attempt in 1..=policy.attempts.max(1) {
            // The final attempt returns unconditionally — a lingering 503
            // or refusal is the caller's to report, with full context.
            let delay = match self.request(method, path, body) {
                Ok(resp) if resp.status == 503 && attempt < policy.attempts => {
                    let computed = policy.backoff(attempt, &salt);
                    resp.retry_after
                        .map(|secs| Duration::from_secs(secs).min(policy.cap))
                        .unwrap_or(computed)
                }
                Ok(resp) => return Ok(resp),
                Err(e) if transient(&e) && attempt < policy.attempts => {
                    policy.backoff(attempt, &salt)
                }
                Err(e) => return Err(e),
            };
            std::thread::sleep(delay);
        }
        // The `attempt == policy.attempts` arms above always return; keep
        // a real error (not `unreachable!`) so a future refactor of the
        // retry arms degrades to a failed request instead of a panic.
        Err(std::io::Error::other("retry budget exhausted"))
    }

    fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(60)))?;
            stream.set_write_timeout(Some(Duration::from_secs(60)))?;
            self.stream = Some(stream);
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err(std::io::Error::other("no pooled connection"));
        };
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\
             Connection: keep-alive\r\n\r\n",
            self.addr,
            body.len(),
        );
        let exchange = (|| {
            stream.write_all(head.as_bytes())?;
            stream.write_all(body.as_bytes())?;
            stream.flush()?;
            read_framed_response(stream)
        })();
        match exchange {
            Ok((resp, server_keeps)) => {
                if !server_keeps {
                    self.stream = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Read one `Content-Length`-framed response; returns it plus whether
/// the server will keep the connection open.
fn read_framed_response(stream: &mut TcpStream) -> std::io::Result<(HttpResponse, bool)> {
    // A fresh BufReader per response is safe: responses are framed by
    // Content-Length and the server sends nothing past the body until
    // our next request, so the buffer cannot swallow later bytes.
    let mut reader = BufReader::new(stream);
    let bad = |what: &str| std::io::Error::other(format!("malformed HTTP response: {what}"));
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            "peer closed before the status line",
        ));
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("status line"))?;
    let mut content_length: Option<usize> = None;
    let mut retry_after = None;
    let mut keep_alive = true;
    let mut head_len = line.len();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("peer closed mid-head"));
        }
        head_len += line.len();
        if head_len > MAX_HEAD {
            return Err(bad("head too large"));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = Some(value.parse().map_err(|_| bad("content-length"))?);
        } else if name.trim().eq_ignore_ascii_case("retry-after") {
            // A missing or malformed hint simply means "no hint": the
            // retry client falls back to its computed backoff.
            retry_after = value.parse::<u64>().ok();
        } else if name.trim().eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let len = content_length.ok_or_else(|| bad("missing content-length"))?;
    if len > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8_lossy(&body).into_owned();
    Ok((HttpResponse { status, body, retry_after }, keep_alive))
}

/// Bounded exponential backoff for the thin client: how many attempts a
/// retryable failure gets, and how the sleep between them grows.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "never retry").
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base: Duration,
    /// Backoff ceiling — also clamps server-sent `Retry-After` hints.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 6, base: Duration::from_millis(100), cap: Duration::from_secs(2) }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): `base * 2^(retry-1)`
    /// clamped to `cap`, plus up to 25% deterministic jitter keyed on
    /// `(salt, retry)` so a fleet of identical clients still de-phases.
    pub fn backoff(&self, retry: u32, salt: &str) -> Duration {
        let exp = self.base.saturating_mul(1u32 << (retry - 1).min(16)).min(self.cap);
        let jitter = exp.mul_f64(0.25 * fraction(fnv(salt, retry)));
        exp + jitter
    }
}

/// FNV-1a over the salt and retry counter — a cheap deterministic jitter
/// source (no `rand` dependency, reproducible failures).
fn fnv(salt: &str, retry: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in salt.bytes().chain(retry.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn fraction(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Is this I/O failure worth retrying? Connection-level refusals and
/// resets are (the daemon may be restarting under its supervisor);
/// timeouts and protocol errors are not — the request may have been
/// acted on.
fn transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    )
}

/// [`http_request_full`] with bounded retry: connection-refused/reset and
/// 503 responses are retried under `policy`, honoring a server-sent
/// `Retry-After` (clamped to `policy.cap`) over the computed backoff.
/// Every other status — including 4xx/5xx — returns on the first attempt;
/// status handling stays with the caller. One pooled connection is reused
/// across the attempts.
pub fn http_request_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> std::io::Result<HttpResponse> {
    HttpClient::new(addr).request_retry(method, path, body, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Serve exactly `n` connections with `handler`, on an ephemeral
    /// port; returns the address.
    fn one_shot_server(
        n: usize,
        handler: impl Fn(Result<Request, HttpError>) -> Response + Send + 'static,
    ) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for _ in 0..n {
                let (mut stream, _) = listener.accept().unwrap();
                let req = read_request(&mut stream);
                let resp = handler(req);
                write_response(&mut stream, &resp, false).unwrap();
            }
        });
        addr
    }

    #[test]
    fn round_trips_methods_paths_queries_and_bodies() {
        let addr = one_shot_server(3, |req| {
            let req = req.expect("parseable");
            Response::text(
                200,
                format!(
                    "{} {} q={} fmt={:?} body={}",
                    req.method,
                    req.segments().join(","),
                    req.query,
                    req.query_param("format"),
                    req.body_str().unwrap()
                ),
            )
        });
        let (status, body) = http_get(&addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "GET healthz q= fmt=None body=");

        let (status, body) = http_post(&addr, "/campaigns", "name = \"x\"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "POST campaigns q= fmt=None body=name = \"x\"");

        let (_, body) = http_get(&addr, "/campaigns/c1/results?format=csv&x=1").unwrap();
        assert!(body.contains("campaigns,c1,results"), "{body}");
        assert!(body.contains("fmt=Some(\"csv\")"), "{body}");
    }

    #[test]
    fn retrying_client_rides_out_backpressure_and_honors_retry_after() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let served = Arc::new(AtomicUsize::new(0));
        let served_in = served.clone();
        // Two 503s (one with a Retry-After hint), then success.
        let addr = one_shot_server(3, move |_req| match served_in.fetch_add(1, Ordering::SeqCst) {
            0 => Response::text(503, "busy".into()).with_retry_after(1),
            1 => Response::text(503, "busy".into()),
            _ => Response::text(200, "done".into()),
        });
        let policy = RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
        };
        let started = std::time::Instant::now();
        let resp = http_request_retry(&addr, "GET", "/stats", None, &policy).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "done");
        assert_eq!(served.load(Ordering::SeqCst), 3);
        // The hinted 1s Retry-After must be clamped to the 20ms cap.
        assert!(started.elapsed() < Duration::from_millis(900), "{:?}", started.elapsed());
    }

    #[test]
    fn retrying_client_gives_up_after_the_attempt_budget() {
        let addr = one_shot_server(2, |_req| Response::text(503, "busy".into()));
        let policy = RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
        };
        let resp = http_request_retry(&addr, "GET", "/stats", None, &policy).unwrap();
        // The final 503 comes back to the caller instead of an error.
        assert_eq!(resp.status, 503);
    }

    #[test]
    fn retrying_client_retries_connection_refused() {
        // Bind then drop: the port is (momentarily) guaranteed refused.
        let refused = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let policy = RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
        };
        let err = http_request_retry(&refused, "GET", "/healthz", None, &policy).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
        };
        let b1 = p.backoff(1, "s");
        let b2 = p.backoff(2, "s");
        let b5 = p.backoff(5, "s");
        assert!(b1 >= Duration::from_millis(100) && b1 <= Duration::from_millis(125), "{b1:?}");
        assert!(b2 >= Duration::from_millis(200) && b2 <= Duration::from_millis(250), "{b2:?}");
        // 100ms * 2^4 = 1.6s, inside the cap; 25% jitter keeps it < 2.5s.
        assert!(b5 >= Duration::from_millis(1600) && b5 <= Duration::from_millis(2500), "{b5:?}");
        assert_eq!(p.backoff(3, "s"), p.backoff(3, "s"), "jitter must be deterministic");
        assert_ne!(p.backoff(3, "salt-a"), p.backoff(3, "salt-b"), "but keyed on the salt");
    }

    #[test]
    fn full_client_surfaces_retry_after() {
        let addr =
            one_shot_server(1, |_req| Response::text(503, "q full".into()).with_retry_after(7));
        let resp = http_request_full(&addr, "GET", "/stats", None).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(7));
        assert_eq!(resp.body, "q full");
    }

    /// Serve raw pre-baked response bytes, one connection per response.
    fn raw_server(responses: Vec<&'static str>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for raw in responses {
                let (mut stream, _) = listener.accept().unwrap();
                let _ = read_request(&mut stream);
                stream.write_all(raw.as_bytes()).unwrap();
            }
        });
        addr
    }

    #[test]
    fn keep_alive_client_reuses_one_connection() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let connections = Arc::new(AtomicUsize::new(0));
        let conns_in = connections.clone();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            // Serve every request on each accepted connection until the
            // peer closes, like the real server loop does.
            while let Ok((mut stream, _)) = listener.accept() {
                conns_in.fetch_add(1, Ordering::SeqCst);
                let mut served = 0u32;
                while let Ok(req) = read_request(&mut stream) {
                    served += 1;
                    let resp = Response::text(200, format!("req {served}"));
                    if write_response(&mut stream, &resp, req.keep_alive).is_err() {
                        break;
                    }
                    if !req.keep_alive {
                        break;
                    }
                }
            }
        });

        let mut client = HttpClient::new(&addr);
        for i in 1..=3 {
            let resp = client.request("GET", "/healthz", None).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, format!("req {i}"));
        }
        assert_eq!(connections.load(Ordering::SeqCst), 1, "three requests, one connection");
    }

    #[test]
    fn stale_pooled_connection_is_retried_on_a_fresh_one() {
        // Each connection serves exactly one request, then closes — so
        // the client's second request hits a dead pooled connection and
        // must transparently reconnect.
        let addr = one_shot_server(2, |_req| Response::text(200, "ok".into()));
        let mut client = HttpClient::new(&addr);
        assert_eq!(client.request("GET", "/a", None).unwrap().status, 200);
        assert_eq!(client.request("GET", "/b", None).unwrap().status, 200);
    }

    #[test]
    fn retry_after_parsing_missing_malformed_and_huge() {
        // Missing: no Retry-After header at all.
        let addr = raw_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbusy",
        ]);
        let resp = http_request_full(&addr, "GET", "/stats", None).unwrap();
        assert_eq!((resp.status, resp.retry_after), (503, None));

        // Malformed: an HTTP-date (or garbage) is "no hint", not an error.
        let addr = raw_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: soon\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbusy",
        ]);
        let resp = http_request_full(&addr, "GET", "/stats", None).unwrap();
        assert_eq!((resp.status, resp.retry_after), (503, None));

        // Wider than u64: also "no hint".
        let addr = raw_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 99999999999999999999999999\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbusy",
        ]);
        let resp = http_request_full(&addr, "GET", "/stats", None).unwrap();
        assert_eq!((resp.status, resp.retry_after), (503, None));

        // Huge but parseable survives parsing; the retry loop clamps it.
        let addr = raw_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 4294967295\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbusy",
        ]);
        let resp = http_request_full(&addr, "GET", "/stats", None).unwrap();
        assert_eq!((resp.status, resp.retry_after), (503, Some(4_294_967_295)));
    }

    #[test]
    fn huge_retry_after_hint_is_clamped_to_the_policy_cap() {
        let addr = raw_server(vec![
            // A ~136-year hint, then success: the sleep must be `cap`.
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 4294967295\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbusy",
            "HTTP/1.1 200 OK\r\nContent-Length: 4\r\nConnection: close\r\n\r\ndone",
        ]);
        let policy = RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
        };
        let started = std::time::Instant::now();
        let resp = http_request_retry(&addr, "GET", "/stats", None, &policy).unwrap();
        assert_eq!(resp.status, 200);
        assert!(started.elapsed() < Duration::from_millis(900), "{:?}", started.elapsed());
    }

    #[test]
    fn backoff_jitter_stays_within_the_25_percent_band() {
        let p = RetryPolicy {
            attempts: 10,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
        };
        for retry in 1..=10u32 {
            let exp = p.base.saturating_mul(1u32 << (retry - 1).min(16)).min(p.cap);
            for salt in ["a", "worker-0", "GET 127.0.0.1:1/x", ""] {
                let b = p.backoff(retry, salt);
                assert!(b >= exp, "retry {retry} salt {salt:?}: {b:?} < {exp:?}");
                assert!(
                    b <= exp + exp.mul_f64(0.25),
                    "retry {retry} salt {salt:?}: {b:?} > 1.25 * {exp:?}"
                );
            }
        }
    }

    #[test]
    fn rejects_garbage_and_oversized_requests() {
        let addr = one_shot_server(2, |req| match req {
            Ok(_) => Response::text(200, "ok".into()),
            Err(e) => Response::text(400, e.to_string()),
        });
        // Raw garbage instead of a request line.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"not http at all\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");

        // Declared body larger than the cap.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(
            format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1).as_bytes(),
        )
        .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    }
}
