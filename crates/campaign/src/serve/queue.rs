//! Bounded MPMC job queue feeding the daemon's executor pool.
//!
//! Deliberately boring: a `Mutex<VecDeque>` + `Condvar`. Submissions are
//! rejected (HTTP 503) when the queue is full — backpressure at the API
//! boundary instead of unbounded memory growth — and `close()` wakes
//! every blocked executor so graceful shutdown never hangs on a sleeping
//! worker.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why a `push` was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// At capacity: the client should retry later (503).
    Full,
    /// The queue was closed by shutdown: no new work is accepted.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer/multi-consumer FIFO.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Poison-tolerant lock: a panicking queue user must not wedge every
    /// other producer/consumer — the `Inner` state (a deque and a flag)
    /// is valid after any partial operation.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue without blocking; refuses when full or closed.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueue bypassing the capacity bound (still refuses when closed).
    /// Journal recovery must never drop a campaign the previous
    /// incarnation already acknowledged with a 202 — a replayed backlog
    /// larger than the queue bound is admitted whole, and backpressure
    /// only applies to *new* submissions on top of it.
    pub fn push_recovered(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, blocking until an item arrives or the queue is closed.
    /// `None` means closed **and** drained — the executor should exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// `Retry-After` seconds to send with a queue-full 503: roughly one
    /// second per queued campaign, clamped to `1..=30`. Crude, but it
    /// scales the hint with the actual backlog instead of a constant —
    /// deeper queue, longer advised backoff.
    pub fn retry_after_hint(&self) -> u64 {
        (self.len() as u64).clamp(1, 30)
    }

    /// Stop accepting work and wake every blocked `pop`. Items already
    /// queued are still handed out (drain-then-exit semantics); use
    /// [`Self::drain`] to also discard them.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Close and remove everything still queued, returning the orphans
    /// (the daemon marks them cancelled rather than silently dropping).
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.lock();
        inner.closed = true;
        let orphans = inner.items.drain(..).collect();
        drop(inner);
        self.ready.notify_all();
        orphans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(()));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn recovered_pushes_are_capacity_exempt_but_not_close_exempt() {
        let q = BoundedQueue::new(1);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Err(PushError::Full));
        assert_eq!(q.push_recovered(2), Ok(()), "recovery overrides the bound");
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.push_recovered(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn retry_after_hint_tracks_depth_within_bounds() {
        let q = BoundedQueue::new(64);
        assert_eq!(q.retry_after_hint(), 1, "empty queue still advises a minimal backoff");
        for i in 0..40 {
            q.push(i).unwrap();
        }
        assert_eq!(q.retry_after_hint(), 30, "hint is capped at 30s");
        while q.len() > 5 {
            q.pop();
        }
        assert_eq!(q.retry_after_hint(), 5);
    }

    #[test]
    fn close_wakes_blocked_consumers_and_rejects_producers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || q.pop()));
        }
        // Give the consumers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None, "blocked pop must observe the close");
        }
        assert_eq!(q.push(1), Err(PushError::Closed));
    }

    #[test]
    fn close_drains_queued_items_first() {
        let q = BoundedQueue::new(8);
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.close();
        assert_eq!(q.pop(), Some("a"), "queued work survives a plain close");
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);

        let q = BoundedQueue::new(8);
        q.push("a").unwrap();
        assert_eq!(q.drain(), vec!["a"], "drain hands orphans back");
        assert_eq!(q.pop(), None);
    }
}
