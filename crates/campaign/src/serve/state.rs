//! Shared daemon state: the campaign registry, per-campaign progress
//! counters, and the global service counters behind `GET /stats`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::cache::ResultCache;
use crate::engine::{self, CampaignProgress, CampaignResult};
use crate::hash::sha256_hex;
use crate::job::{JobOutcome, JobRunner, RunReport};
use crate::journal::{self, Journal, Record};
use crate::matrix::{Cell, ShardSpec};
use crate::serve::queue::{BoundedQueue, PushError};
use crate::spec::CampaignSpec;

/// Daemon configuration (CLI flags; every field has a usable default).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:8181` by default).
    pub addr: String,
    /// Result-cache directory — shared between shard workers.
    pub cache_dir: String,
    /// Simulation worker threads per running campaign (0 = auto). The
    /// daemon overrides any `workers` field in submitted specs.
    pub sim_workers: usize,
    /// Campaigns executed concurrently (each gets its own [`JobRunner`]).
    pub executors: usize,
    /// Bounded campaign-queue capacity; beyond it, `POST /campaigns`
    /// returns 503.
    pub queue_cap: usize,
    /// This worker's slice of every submitted campaign (`--shard i/n`).
    pub shard: Option<ShardSpec>,
    /// Connection-handler threads for the HTTP front door.
    pub http_workers: usize,
    /// Run as a fleet supervisor over N shard-worker child processes
    /// instead of executing campaigns in-process (`--supervise n`).
    pub supervise: Option<u32>,
    /// Binary to spawn supervised workers from. `None` = the current
    /// executable; tests point this at `CARGO_BIN_EXE_hdsmt-campaign`.
    pub worker_binary: Option<std::path::PathBuf>,
    /// Per-cell watchdog soft deadline (`--cell-deadline-ms`). `None`
    /// disables the watchdog.
    pub cell_deadline: Option<std::time::Duration>,
    /// Retries per timed-out cell before it is marked failed
    /// (`--cell-retries`).
    pub cell_retries: u32,
    /// Extra environment for supervised workers only (fault plans are
    /// injected here so the supervisor itself stays fault-free).
    pub child_env: Vec<(String, String)>,
    /// Write a durable accept journal and replay it at startup. On by
    /// default; supervised *worker* children run with `--no-journal`
    /// because the fleet journal at the supervisor is their source of
    /// truth (a worker restart is the supervisor's job, not replay's).
    pub journal: bool,
    /// Fsync cache entries before publishing them (`--durable`): extends
    /// the crash model from process death to host power loss, at the
    /// cost of one fsync + one directory fsync per simulated cell.
    pub durable: bool,
    /// Reap orphaned `*.tmp` files older than this at startup.
    pub tmp_reap_age: std::time::Duration,
    /// Peer daemons (`--peer host:port`) whose caches back this one: a
    /// local miss is retried against each peer's `GET /cells/:hash` and
    /// landed locally on success.
    pub peers: Vec<String>,
    /// Remote workers (`--worker host:port`) the supervisor adopts
    /// alongside (or instead of) spawned children.
    pub remote_workers: Vec<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8181".into(),
            cache_dir: ".hdsmt-cache".into(),
            sim_workers: 0,
            executors: 1,
            queue_cap: 64,
            shard: None,
            http_workers: 4,
            supervise: None,
            worker_binary: None,
            cell_deadline: None,
            cell_retries: 2,
            child_env: Vec::new(),
            journal: true,
            durable: false,
            tmp_reap_age: std::time::Duration::from_secs(15 * 60),
            peers: Vec::new(),
            remote_workers: Vec::new(),
        }
    }
}

/// Lifecycle of one submitted campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CampaignPhase {
    #[default]
    Queued,
    Running,
    Done,
    Failed,
    /// Interrupted by shutdown before completing — resubmit after restart
    /// to resume from the cache.
    Cancelled,
}

impl CampaignPhase {
    pub fn as_str(self) -> &'static str {
        match self {
            CampaignPhase::Queued => "queued",
            CampaignPhase::Running => "running",
            CampaignPhase::Done => "done",
            CampaignPhase::Failed => "failed",
            CampaignPhase::Cancelled => "cancelled",
        }
    }

    pub fn is_terminal(self) -> bool {
        matches!(self, CampaignPhase::Done | CampaignPhase::Failed | CampaignPhase::Cancelled)
    }
}

/// Per-cell progress counters of one campaign (measure phase; one job per
/// cell). Invariant once expanded: `queued + running + done + cached +
/// failed + cancelled == total`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct CellCounts {
    pub total: usize,
    pub queued: usize,
    pub running: usize,
    /// Concluded by simulation.
    pub done: usize,
    /// Concluded from the content-addressed cache.
    pub cached: usize,
    pub failed: usize,
    pub cancelled: usize,
}

/// Oracle search-phase counters (reduced-budget mapping-search sub-jobs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct SearchCounts {
    pub total: usize,
    pub finished: usize,
}

#[derive(Debug, Default)]
struct CampaignInner {
    phase: CampaignPhase, // Default = Queued, so the entry is valid from birth
    cells: CellCounts,
    search: SearchCounts,
    error: Option<String>,
    result: Option<CampaignResult>,
}

/// One submitted campaign: immutable identity + mutable progress.
#[derive(Debug)]
pub struct CampaignEntry {
    pub id: String,
    pub name: String,
    pub spec: CampaignSpec,
    inner: Mutex<CampaignInner>,
}

/// JSON shape of `GET /campaigns/:id` (and the list elements of
/// `GET /campaigns`).
#[derive(Clone, Debug, serde::Serialize)]
pub struct CampaignSnapshot {
    pub id: String,
    pub name: String,
    pub status: String,
    pub cells: CellCounts,
    pub search: SearchCounts,
    pub error: Option<String>,
}

impl CampaignEntry {
    fn new(id: String, spec: CampaignSpec) -> Self {
        CampaignEntry {
            id,
            name: spec.display_name().to_string(),
            spec,
            inner: Mutex::new(CampaignInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CampaignInner> {
        // A panicking simulation is contained at the job boundary; state
        // mutations here are plain counter writes, so a poisoned lock
        // still guards consistent data.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn phase(&self) -> CampaignPhase {
        self.lock().phase
    }

    pub fn snapshot(&self) -> CampaignSnapshot {
        let inner = self.lock();
        CampaignSnapshot {
            id: self.id.clone(),
            name: self.name.clone(),
            status: inner.phase.as_str().to_string(),
            cells: inner.cells,
            search: inner.search,
            error: inner.error.clone(),
        }
    }

    /// The finished result, if the campaign is `done`.
    pub fn result(&self) -> Option<CampaignResult> {
        self.lock().result.clone()
    }

    pub(crate) fn set_running(&self) {
        self.lock().phase = CampaignPhase::Running;
    }

    pub(crate) fn finish(&self, outcome: Result<CampaignResult, (CampaignPhase, String)>) {
        let mut inner = self.lock();
        match outcome {
            Ok(result) => {
                inner.phase = CampaignPhase::Done;
                inner.result = Some(result);
            }
            Err((phase, error)) => {
                inner.phase = phase;
                inner.error = Some(error);
            }
        }
    }
}

/// [`CampaignProgress`] implementation that keeps a [`CampaignEntry`]'s
/// counters current while the engine runs it.
pub(crate) struct EntryProgress<'a>(pub &'a CampaignEntry);

impl CampaignProgress for EntryProgress<'_> {
    fn cells_expanded(&self, cells: &[Cell]) {
        let mut inner = self.0.lock();
        inner.cells =
            CellCounts { total: cells.len(), queued: cells.len(), ..CellCounts::default() };
    }

    fn search_planned(&self, jobs: usize) {
        self.0.lock().search.total = jobs;
    }

    fn search_job_finished(&self, _outcome: JobOutcome) {
        self.0.lock().search.finished += 1;
    }

    fn cell_started(&self, _cell: usize) {
        let mut inner = self.0.lock();
        inner.cells.queued = inner.cells.queued.saturating_sub(1);
        inner.cells.running += 1;
    }

    fn cell_finished(&self, _cell: usize, outcome: JobOutcome) {
        let mut inner = self.0.lock();
        let cells = &mut inner.cells;
        match outcome {
            // Cancelled jobs never start: they leave `queued` directly.
            JobOutcome::Cancelled => cells.queued = cells.queued.saturating_sub(1),
            _ => cells.running = cells.running.saturating_sub(1),
        }
        match outcome {
            JobOutcome::CacheHit => cells.cached += 1,
            JobOutcome::Simulated => cells.done += 1,
            JobOutcome::Failed => cells.failed += 1,
            JobOutcome::Cancelled => cells.cancelled += 1,
        }
    }
}

/// Why a submission was refused (mapped to an HTTP status by the API).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Unparseable or invalid spec (400).
    Invalid(String),
    /// Queue at capacity — retry later (503).
    QueueFull,
    /// Daemon is draining for shutdown (503).
    ShuttingDown,
    /// The accept could not be durably journaled (ENOSPC, injected
    /// fault). The daemon must not acknowledge work it cannot promise to
    /// survive, so this degrades to 503 + Retry-After.
    Journal(String),
}

#[derive(Debug, Default)]
struct JobTotals {
    total: AtomicU64,
    cache_hits: AtomicU64,
    simulated: AtomicU64,
    failed: AtomicU64,
    timeouts: AtomicU64,
    retries: AtomicU64,
}

/// Everything the HTTP handlers and executors share.
pub struct ServerState {
    pub config: ServerConfig,
    pub cache: ResultCache,
    pub queue: BoundedQueue<Arc<CampaignEntry>>,
    campaigns: Mutex<Vec<Arc<CampaignEntry>>>,
    /// Once true: no new submissions, queued campaigns drain, and every
    /// campaign runner's cancel token fires (it IS this flag).
    shutdown: Arc<AtomicBool>,
    started: Instant,
    seq: AtomicU64,
    jobs: JobTotals,
    campaigns_done: AtomicU64,
    campaigns_failed: AtomicU64,
    /// Set once by `Server::start` when `config.supervise` is on; the API
    /// layer routes campaign verbs here instead of the local queue.
    supervisor: std::sync::OnceLock<Arc<crate::serve::supervisor::Supervisor>>,
    /// The durable accept journal (absent with `--no-journal`).
    journal: Option<Arc<Journal>>,
    /// Pending accepts replayed from a fleet journal, parked here until
    /// `Server::start` hands them to the supervisor (the supervisor does
    /// not exist yet when `new()` replays).
    recovered: Mutex<Vec<Record>>,
    /// Orphaned tmp files reaped at startup.
    tmp_reaped: u64,
}

impl ServerState {
    /// Poison-tolerant registry lock: the campaign list is a plain Vec of
    /// Arcs — valid after any partial mutation — and an executor that
    /// panicked mid-simulation must not take the whole API down with it.
    fn campaigns_lock(&self) -> std::sync::MutexGuard<'_, Vec<Arc<CampaignEntry>>> {
        self.campaigns.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn recovered_lock(&self) -> std::sync::MutexGuard<'_, Vec<Record>> {
        self.recovered.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn new(config: ServerConfig) -> std::io::Result<Self> {
        let cache = ResultCache::open(&config.cache_dir)?
            .with_durable(config.durable)
            .with_peers(config.peers.clone());
        // Reap what killed writers stranded before accepting new work;
        // the age threshold protects other live daemons on this cache.
        let tmp_reaped = cache.reap_tmp(config.tmp_reap_age) as u64;
        let (journal, pending) = if config.journal {
            let (journal, replay) =
                Journal::open(std::path::Path::new(&config.cache_dir), &journal_role(&config))?;
            (Some(Arc::new(journal)), replay.pending)
        } else {
            (None, Vec::new())
        };
        // Seed the id counter past every replayed campaign so fresh
        // submissions never collide with revived ids.
        let seq0 = pending.iter().map(|r| journal::id_seq(&r.id)).max().unwrap_or(0);
        let state = ServerState {
            queue: BoundedQueue::new(config.queue_cap),
            config,
            cache,
            campaigns: Mutex::new(Vec::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            seq: AtomicU64::new(seq0),
            jobs: JobTotals::default(),
            campaigns_done: AtomicU64::new(0),
            campaigns_failed: AtomicU64::new(0),
            supervisor: std::sync::OnceLock::new(),
            journal,
            recovered: Mutex::new(Vec::new()),
            tmp_reaped,
        };
        if state.config.supervise.is_some() {
            // The supervisor is built later by `Server::start`; park the
            // replayed accepts for it to re-ledger.
            *state.recovered_lock() = pending;
        } else {
            state.recover_local(pending);
        }
        Ok(state)
    }

    /// Resubmit journal-replayed campaigns through the ordinary executor
    /// path, preserving their ids. Idempotent by construction: every
    /// already-finished cell is a cache hit, so a campaign that was 90%
    /// done re-runs as 10% simulation. A spec that no longer parses
    /// (schema drift across an upgrade) is marked failed in the journal
    /// rather than wedging recovery forever.
    fn recover_local(&self, pending: Vec<Record>) {
        let n = pending.len() as u64;
        for rec in pending {
            match self.revive(&rec) {
                Ok(entry) => {
                    self.campaigns_lock().push(entry.clone());
                    if self.queue.push_recovered(entry).is_err() {
                        // Only possible if the queue is already closed —
                        // leave the record pending for the next restart.
                        self.campaigns_lock().retain(|e| e.id != rec.id);
                    }
                }
                Err(e) => {
                    eprintln!("journal replay: dropping campaign {}: {}", rec.id, e);
                    self.journal_mark(&Record::failed(&rec.id));
                }
            }
        }
        if let Some(journal) = &self.journal {
            journal.set_replayed(n);
        }
    }

    fn revive(&self, rec: &Record) -> Result<Arc<CampaignEntry>, String> {
        let mut spec = CampaignSpec::parse(&rec.spec).map_err(|e| e.0)?;
        spec.cache_dir = Some(self.config.cache_dir.clone());
        spec.workers = Some(self.config.sim_workers as u64);
        let catalog = engine::catalog_for(&spec);
        crate::matrix::expand(&spec, &catalog).map_err(|e| e.0)?;
        Ok(Arc::new(CampaignEntry::new(rec.id.clone(), spec)))
    }

    /// Append a terminal (`done`/`failed`) record, best-effort: a failed
    /// mark only costs a redundant — idempotent — replay next restart.
    fn journal_mark(&self, record: &Record) {
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append(record) {
                eprintln!("journal: failed to mark {} {}: {}", record.id, record.op, e);
            }
        }
    }

    /// The fleet supervisor, when this daemon runs in `--supervise` mode.
    pub fn supervisor(&self) -> Option<&Arc<crate::serve::supervisor::Supervisor>> {
        self.supervisor.get()
    }

    /// The accept journal, for sharing with the supervisor.
    pub(crate) fn journal_arc(&self) -> Option<Arc<Journal>> {
        self.journal.clone()
    }

    /// Pending fleet accepts replayed at startup (supervise mode only);
    /// drains the parked list.
    pub(crate) fn take_recovered(&self) -> Vec<Record> {
        std::mem::take(&mut *self.recovered_lock())
    }

    pub(crate) fn set_supervisor(&self, sup: Arc<crate::serve::supervisor::Supervisor>) {
        let _ = self.supervisor.set(sup);
    }

    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Begin the graceful drain: refuse new work, cancel not-yet-started
    /// jobs of running campaigns, and mark still-queued campaigns
    /// cancelled. In-flight simulations finish and stay cached.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for orphan in self.queue.drain() {
            orphan.finish(Err((
                CampaignPhase::Cancelled,
                "cancelled by shutdown before starting; resubmit to resume from the cache".into(),
            )));
        }
    }

    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Parse, validate, register, and enqueue a campaign spec (TOML or
    /// JSON text). The daemon owns the cache and worker budget: any
    /// `cache_dir`/`workers` fields in the submitted spec are overridden.
    pub fn submit(&self, spec_text: &str) -> Result<Arc<CampaignEntry>, SubmitError> {
        if self.is_shutting_down() {
            return Err(SubmitError::ShuttingDown);
        }
        let mut spec = CampaignSpec::parse(spec_text).map_err(|e| SubmitError::Invalid(e.0))?;
        spec.cache_dir = Some(self.config.cache_dir.clone());
        spec.workers = Some(self.config.sim_workers as u64);
        // Expand now (cheap, no simulation) so selector/arch/capacity
        // errors fail the submission with a clear 400 instead of a failed
        // campaign later.
        let catalog = engine::catalog_for(&spec);
        crate::matrix::expand(&spec, &catalog).map_err(|e| SubmitError::Invalid(e.0))?;

        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let digest = sha256_hex(spec_text.as_bytes());
        // sha256_hex always yields 64 ASCII hex chars, but this is a
        // durability path: degrade to the full digest over panicking.
        let short = digest.get(..8).unwrap_or(&digest);
        let id = format!("c{seq}-{short}");
        let entry = Arc::new(CampaignEntry::new(id, spec));
        // Journal the accept — durably, *before* the 202 leaves the
        // daemon. If the journal cannot promise the campaign will survive
        // a crash, the daemon refuses the work instead of lying.
        if let Some(journal) = &self.journal {
            journal
                .append(&Record::accept(&entry.id, &entry.name, spec_text))
                .map_err(|e| SubmitError::Journal(e.to_string()))?;
        }
        crate::fault::on_accept();
        self.campaigns_lock().push(entry.clone());
        match self.queue.push(entry.clone()) {
            Ok(()) => Ok(entry),
            Err(push_err) => {
                // Un-register so a rejected submission leaves no ghost —
                // including in the journal, or the rejected accept would
                // be resurrected on every restart.
                self.campaigns_lock().retain(|e| e.id != entry.id);
                self.journal_mark(&Record::failed(&entry.id));
                Err(match push_err {
                    PushError::Full => SubmitError::QueueFull,
                    PushError::Closed => SubmitError::ShuttingDown,
                })
            }
        }
    }

    pub fn get(&self, id: &str) -> Option<Arc<CampaignEntry>> {
        self.campaigns_lock().iter().find(|e| e.id == id).cloned()
    }

    pub fn list(&self) -> Vec<Arc<CampaignEntry>> {
        self.campaigns_lock().clone()
    }

    /// Execute one dequeued campaign (executor-thread body): a fresh
    /// [`JobRunner`] on the shared cache, cancel token linked to the
    /// shutdown flag, progress streamed into the entry.
    pub fn execute(&self, entry: &Arc<CampaignEntry>) {
        entry.set_running();
        let catalog = engine::catalog_for(&entry.spec);
        let watchdog = self
            .config
            .cell_deadline
            .map(|deadline| crate::job::Watchdog { deadline, retries: self.config.cell_retries });
        let runner = JobRunner::new(self.config.sim_workers, Some(self.cache.clone()))
            .with_cancel_token(self.shutdown.clone())
            .with_watchdog(watchdog);
        let progress = EntryProgress(entry);
        let outcome = engine::run_campaign_observed(
            &entry.spec,
            &catalog,
            &runner,
            self.config.shard,
            &progress,
        );
        self.merge_jobs(runner.report());
        match outcome {
            Ok(result) => {
                self.campaigns_done.fetch_add(1, Ordering::Relaxed);
                entry.finish(Ok(result));
                self.journal_mark(&Record::done(&entry.id));
            }
            Err(e) if self.is_shutting_down() => {
                entry.finish(Err((
                    CampaignPhase::Cancelled,
                    format!("interrupted by shutdown; resubmit to resume from the cache ({e})"),
                )));
                // Deliberately NOT journal-marked: a shutdown-cancelled
                // campaign stays pending, so the next incarnation resumes
                // it automatically from the cache.
            }
            Err(e) => {
                self.campaigns_failed.fetch_add(1, Ordering::Relaxed);
                entry.finish(Err((CampaignPhase::Failed, e.0)));
                self.journal_mark(&Record::failed(&entry.id));
            }
        }
    }

    fn merge_jobs(&self, report: RunReport) {
        self.jobs.total.fetch_add(report.total as u64, Ordering::Relaxed);
        self.jobs.cache_hits.fetch_add(report.cache_hits as u64, Ordering::Relaxed);
        self.jobs.simulated.fetch_add(report.simulated as u64, Ordering::Relaxed);
        self.jobs.failed.fetch_add(report.failed as u64, Ordering::Relaxed);
        self.jobs.timeouts.fetch_add(report.timeouts as u64, Ordering::Relaxed);
        self.jobs.retries.fetch_add(report.retries as u64, Ordering::Relaxed);
    }

    /// The `GET /stats` payload.
    pub fn stats(&self) -> ServerStats {
        let campaigns = self.campaigns_lock();
        let cache_counters = self.cache.counters();
        ServerStats {
            uptime_secs: self.uptime_secs(),
            accepting: !self.is_shutting_down(),
            shard: self.config.shard.map(|s| s.label()),
            sim_workers: match self.config.sim_workers {
                0 => crate::sched::default_workers(),
                n => n,
            },
            executors: self.config.executors,
            queue: QueueStats { depth: self.queue.len(), capacity: self.queue.capacity() },
            campaigns: CampaignStats {
                submitted: campaigns.len(),
                done: self.campaigns_done.load(Ordering::Relaxed),
                failed: self.campaigns_failed.load(Ordering::Relaxed),
            },
            jobs: RunReport {
                total: self.jobs.total.load(Ordering::Relaxed) as usize,
                cache_hits: self.jobs.cache_hits.load(Ordering::Relaxed) as usize,
                simulated: self.jobs.simulated.load(Ordering::Relaxed) as usize,
                failed: self.jobs.failed.load(Ordering::Relaxed) as usize,
                timeouts: self.jobs.timeouts.load(Ordering::Relaxed) as usize,
                retries: self.jobs.retries.load(Ordering::Relaxed) as usize,
            },
            cache_remote_hits: cache_counters.remote_hits,
            cells_replicated: cache_counters.replicated,
            cache: cache_counters,
            cache_entries: self.cache.len(),
            cache_quarantined: self.cache.quarantined_entries(),
            quarantine_oldest_secs: self.cache.quarantine_oldest_age().map(|a| a.as_secs()),
            net_faults_injected: crate::fault::net_faults_injected(),
            partitions_total: self.supervisor().map_or(0, |s| s.partitions_total()),
            journal_records: self.journal.as_ref().map_or(0, |j| j.records()),
            journal_replayed: self.journal.as_ref().map_or(0, |j| j.replayed()),
            tmp_reaped: self.tmp_reaped,
        }
    }
}

/// Which `journal/*.wal` file this daemon owns. Shard workers sharing a
/// cache directory each get their own journal; the supervisor's fleet
/// ledger gets another. The role is part of the filename so concurrent
/// daemons never interleave appends in one file.
fn journal_role(config: &ServerConfig) -> String {
    if config.supervise.is_some() {
        "fleet".to_string()
    } else if let Some(shard) = config.shard {
        format!("serve-shard-{}", shard.label().replace('/', "-of-"))
    } else {
        "serve".to_string()
    }
}

#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct QueueStats {
    pub depth: usize,
    pub capacity: usize,
}

#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct CampaignStats {
    pub submitted: usize,
    pub done: u64,
    pub failed: u64,
}

/// JSON shape of `GET /stats`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServerStats {
    pub uptime_secs: u64,
    pub accepting: bool,
    pub shard: Option<String>,
    pub sim_workers: usize,
    pub executors: usize,
    pub queue: QueueStats,
    pub campaigns: CampaignStats,
    /// Batch counters across every campaign run by this daemon.
    pub jobs: RunReport,
    /// Cache lookup telemetry (hit/miss/corrupt/quarantined) since daemon
    /// start.
    pub cache: crate::cache::CacheCounters,
    pub cache_entries: usize,
    /// Entries currently sitting in the cache's `quarantine/` directory
    /// (on-disk count, not since-start).
    pub cache_quarantined: usize,
    /// Age of the oldest quarantined entry, seconds — forgotten evidence
    /// shows up here instead of rotting silently.
    pub quarantine_oldest_secs: Option<u64>,
    /// Cache misses satisfied by a peer over HTTP (mirrors
    /// `cache.remote_hits`; surfaced top-level for scripts).
    pub cache_remote_hits: u64,
    /// Entries landed from peers (read-through, `PUT`, or anti-entropy;
    /// mirrors `cache.replicated`).
    pub cells_replicated: u64,
    /// Network perturbations the fault layer injected in this process
    /// (always 0 without the `fault-inject` feature).
    pub net_faults_injected: u64,
    /// Fleet-wide network-attributed worker losses (supervise mode).
    pub partitions_total: u64,
    /// Frames currently in this daemon's write-ahead journal.
    pub journal_records: u64,
    /// Campaigns resubmitted from the journal at startup.
    pub journal_replayed: u64,
    /// Orphaned `*.tmp` files reaped at startup.
    pub tmp_reaped: u64,
}
