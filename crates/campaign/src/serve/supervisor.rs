//! Fleet supervision: `serve --supervise n` runs the daemon as a parent
//! that spawns, monitors, and restarts `n` shard-worker child processes
//! instead of executing campaigns in-process.
//!
//! Each worker is a plain `hdsmt-campaign serve --shard i/n` child on the
//! shared content-addressed cache, bound to an ephemeral port it reports
//! back through an atomically written address file. The supervisor:
//!
//! - **submits** every accepted campaign to every live worker, keeping a
//!   ledger of spec texts so restarted workers are backfilled (the cache
//!   makes resubmission idempotent — completed cells are hits);
//! - **monitors** workers with a heartbeat loop: process exit, address
//!   handshake timeout, or [`MAX_MISSED`](SupervisorConfig::max_missed)
//!   consecutive failed `/healthz` probes all count as a crash;
//! - **restarts** crashed workers under exponential backoff with
//!   deterministic jitter, up to a crash-loop circuit breaker
//!   ([`SupervisorConfig::max_restarts`]); a worker that trips the
//!   breaker is marked *broken* and the fleet degrades to the surviving
//!   shards — their cells still complete, the broken shard's cells stay
//!   resumable in the cache;
//! - **aggregates** per-worker campaign snapshots into one fleet-level
//!   view (`GET /campaigns/:id` sums per-cell counters across shards) and
//!   reports worker health at `GET /workers`;
//! - **serves results** by replaying the campaign through the local
//!   engine once every shard reports done — by then every cell is a
//!   cache hit, so the replay is a read, not a re-simulation.
//!
//! The supervisor itself runs no simulations and holds no job state: kill
//! it (or any worker) at any point and resubmitting the same specs to a
//! fresh fleet resumes from the cache.
//!
//! # Remote workers and partitions
//!
//! `--worker ADDR` entries are **adopted** rather than spawned: the
//! supervisor probes the fixed address through the same
//! Starting→Up→Backoff lifecycle, but never forks a process, never kills
//! one, and leaves the remote daemon running at shutdown (it belongs to
//! its own operator). A remote worker's health failures are counted as
//! *partitions* — the worker may be fine, the network between us is not —
//! and surface per-worker in `GET /workers`. Remote workers keep their
//! own cache directories; the supervisor's cache reads through its
//! configured peers and runs an anti-entropy manifest pull before the
//! results replay, so results never assume filesystem locality.
//!
//! When a worker trips the circuit breaker with campaign cells still
//! unfinished, the monitor **re-owns** the broken shard: a local engine
//! run over exactly that shard's cells (any cells the worker managed to
//! finish are cache or peer hits) records a synthetic `done` snapshot on
//! its behalf, so the campaign completes instead of staying `degraded`.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::ResultCache;
use crate::engine::{self, CampaignResult};
use crate::hash::sha256_hex;
use crate::job::JobRunner;
use crate::journal::{self, Journal, Record};
use crate::matrix::ShardSpec;
use crate::serve::http::{http_get, http_post, HttpClient, RetryPolicy};
use crate::serve::state::{CampaignSnapshot, CellCounts, SearchCounts, SubmitError};
use crate::spec::CampaignSpec;

/// Everything the supervisor needs to run a fleet. Defaults are tuned
/// for "a worker crash costs sub-second recovery" on a local machine.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Number of shard workers (shard `i/n` for `i` in `0..n`).
    pub workers: u32,
    /// Shared cache directory (also holds the worker address files under
    /// `.supervise/`).
    pub cache_dir: String,
    /// Simulation threads per worker (0 = auto).
    pub sim_workers: usize,
    /// Worker binary. `None` = this executable (`std::env::current_exe`);
    /// tests point it at `CARGO_BIN_EXE_hdsmt-campaign`.
    pub binary: Option<PathBuf>,
    /// Per-cell watchdog forwarded to workers (`--cell-deadline-ms`).
    pub cell_deadline: Option<Duration>,
    pub cell_retries: u32,
    /// Monitor tick period (heartbeat + snapshot poll).
    pub heartbeat_interval: Duration,
    /// Consecutive failed `/healthz` probes before a worker is declared
    /// crashed.
    pub max_missed: u32,
    /// Restart backoff: `base * 2^(restarts-1)` clamped to `cap`, plus
    /// deterministic jitter.
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
    /// Crash-loop circuit breaker: restarts beyond this mark the worker
    /// broken and the fleet degrades to the surviving shards.
    pub max_restarts: u32,
    /// How long a spawned worker may take to report its address before
    /// the start counts as a crash.
    pub spawn_timeout: Duration,
    /// Extra environment for workers only — fault plans (`HDSMT_FAULT`)
    /// are injected here so the supervisor process stays fault-free.
    pub child_env: Vec<(String, String)>,
    /// Remote workers to adopt (fixed `host:port` addresses). They take
    /// the shard indices after the spawned workers; the operator must
    /// start each with the matching `--shard i/n`.
    pub remote_workers: Vec<String>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            workers: 1,
            cache_dir: ".hdsmt-cache".into(),
            sim_workers: 0,
            binary: None,
            cell_deadline: None,
            cell_retries: 2,
            heartbeat_interval: Duration::from_millis(200),
            max_missed: 3,
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_secs(5),
            max_restarts: 5,
            spawn_timeout: Duration::from_secs(10),
            child_env: Vec::new(),
            remote_workers: Vec::new(),
        }
    }
}

/// One worker's lifecycle state.
#[derive(Debug)]
enum Phase {
    /// Spawned; waiting for the address-file handshake.
    Starting { since: Instant },
    /// Handshook and answering `/healthz`.
    Up { addr: String, missed: u32 },
    /// Crashed; waiting out the restart backoff.
    Backoff { until: Instant },
    /// Crash-loop breaker tripped: no further restarts.
    Broken,
    /// Shut down deliberately.
    Stopped,
}

impl Phase {
    fn label(&self) -> &'static str {
        match self {
            Phase::Starting { .. } => "starting",
            Phase::Up { .. } => "up",
            Phase::Backoff { .. } => "backoff",
            Phase::Broken => "broken",
            Phase::Stopped => "stopped",
        }
    }
}

/// How a worker came to be supervised.
#[derive(Clone, Debug)]
enum WorkerKind {
    /// A child process this supervisor forks, kills, and restarts.
    Spawned,
    /// A daemon someone else runs at a fixed address: probed and
    /// backfilled like any worker, never forked or killed.
    Remote { addr: String },
}

struct Worker {
    index: u32,
    kind: WorkerKind,
    addr_file: PathBuf,
    child: Option<Child>,
    /// Pooled keep-alive connection to the worker, created when it
    /// reaches `Up` and dropped on any crash/partition.
    client: Option<HttpClient>,
    phase: Phase,
    restarts: u32,
    /// Health failures attributed to the network rather than the
    /// process (remote workers only — we cannot tell a dead remote from
    /// an unreachable one, so every remote loss counts as a partition).
    partitions: u64,
    /// Ledger id → this incarnation's child-side campaign id.
    submitted: HashMap<String, String>,
    /// Ledger id → last snapshot polled from the child (survives the
    /// incarnation that produced it, so aggregation never goes blind
    /// during a restart).
    snapshots: HashMap<String, ChildSnapshot>,
}

impl Worker {
    fn is_remote(&self) -> bool {
        matches!(self.kind, WorkerKind::Remote { .. })
    }
}

/// The slice of a child's `GET /campaigns/:id` the supervisor keeps.
#[derive(Clone, Debug)]
struct ChildSnapshot {
    status: String,
    cells: CellCounts,
    search: SearchCounts,
    error: Option<String>,
}

/// One campaign as the supervisor tracks it: the spec text (for worker
/// backfill and the local results replay) plus the replayed result.
struct LedgerEntry {
    id: String,
    name: String,
    spec_text: String,
    result: Option<CampaignResult>,
    /// Whether a terminal (`done`/`failed`) record has been appended to
    /// the fleet journal for this campaign — appended once, by the
    /// monitor, when the aggregate status settles.
    done_logged: bool,
}

struct Inner {
    workers: Vec<Worker>,
    ledger: Vec<LedgerEntry>,
    seq: u64,
}

/// A running fleet. Created by `Server::start` when
/// `ServerConfig::supervise` is set; the HTTP API routes campaign verbs
/// here instead of the local queue.
pub struct Supervisor {
    config: SupervisorConfig,
    cache: ResultCache,
    inner: Mutex<Inner>,
    stop: Arc<AtomicBool>,
    monitor: Mutex<Option<JoinHandle<()>>>,
    /// The fleet's write-ahead journal (`fleet.wal`), shared with the
    /// owning [`crate::serve::ServerState`]. Workers run `--no-journal`;
    /// this is the single source of truth for accepted fleet campaigns.
    journal: Option<Arc<Journal>>,
    /// Finished re-own runs, pushed by their worker threads and drained
    /// by the next monitor tick (`(ledger id, worker index, outcome)` —
    /// `None` means the run failed and may be retried).
    reown_done: Arc<Mutex<Vec<ReownOutcome>>>,
    /// `(ledger id, worker index)` pairs with a re-own run in flight.
    reown_inflight: Mutex<HashSet<(String, u32)>>,
    /// Completed re-own runs (broken shards whose cells a local run
    /// covered).
    reowned: AtomicU64,
}

type ReownOutcome = (String, u32, Option<ChildSnapshot>);

/// JSON shape of one row of `GET /workers`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct WorkerReport {
    pub index: u32,
    pub shard: String,
    pub kind: String,
    pub state: String,
    pub addr: Option<String>,
    pub pid: Option<u32>,
    pub restarts: u32,
    pub partitions: u64,
}

/// JSON shape of `GET /workers`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FleetReport {
    pub supervising: u32,
    pub restarts_total: u64,
    pub broken: usize,
    pub partitions_total: u64,
    pub reowned: u64,
    pub workers: Vec<WorkerReport>,
}

impl Supervisor {
    /// Spawn the fleet and its monitor thread. `recovered` is the
    /// pending accepts replayed from a previous incarnation's fleet
    /// journal — they are re-ledgered with their original ids, and the
    /// monitor backfills them into workers exactly like any other
    /// ledgered campaign (idempotent: finished cells are cache hits).
    pub fn start(
        config: SupervisorConfig,
        cache: ResultCache,
        journal: Option<Arc<Journal>>,
        recovered: Vec<Record>,
    ) -> std::io::Result<Arc<Supervisor>> {
        let handshake_dir = std::path::Path::new(&config.cache_dir).join(".supervise");
        std::fs::create_dir_all(&handshake_dir)?;
        // A SIGKILLed previous incarnation leaves its workers' address
        // files behind; trusting one would point this supervisor at a
        // dead port (or worse, an unrelated process that reused it).
        let stale = clean_stale_addr_files(&config.cache_dir);
        if stale > 0 {
            eprintln!("supervisor: removed {stale} stale worker address file(s)");
        }
        // Spawned workers take shard indices 0..spawned; adopted remote
        // workers take the indices after them. Everyone starts in an
        // expired Backoff so startup and restart share one code path.
        let spawned = spawned_workers(&config);
        let new_worker = |index: u32, kind: WorkerKind| Worker {
            index,
            kind,
            addr_file: handshake_dir.join(format!("worker-{index}.addr")),
            child: None,
            client: None,
            phase: Phase::Backoff { until: Instant::now() },
            restarts: 0,
            partitions: 0,
            submitted: HashMap::new(),
            snapshots: HashMap::new(),
        };
        let mut workers: Vec<Worker> =
            (0..spawned).map(|index| new_worker(index, WorkerKind::Spawned)).collect();
        for (i, addr) in config.remote_workers.iter().enumerate() {
            let index = spawned + i as u32;
            eprintln!("supervisor: adopting remote worker {index} at {addr}");
            workers.push(new_worker(index, WorkerKind::Remote { addr: addr.clone() }));
        }
        let seq = recovered.iter().map(|r| journal::id_seq(&r.id)).max().unwrap_or(0);
        let ledger: Vec<LedgerEntry> = recovered
            .into_iter()
            .map(|rec| LedgerEntry {
                id: rec.id,
                name: rec.name,
                spec_text: rec.spec,
                result: None,
                done_logged: false,
            })
            .collect();
        if let Some(j) = &journal {
            j.set_replayed(ledger.len() as u64);
        }
        let supervisor = Arc::new(Supervisor {
            config,
            cache,
            inner: Mutex::new(Inner { workers, ledger, seq }),
            stop: Arc::new(AtomicBool::new(false)),
            monitor: Mutex::new(None),
            journal,
            reown_done: Arc::new(Mutex::new(Vec::new())),
            reown_inflight: Mutex::new(HashSet::new()),
            reowned: AtomicU64::new(0),
        });
        let monitor = {
            let supervisor = supervisor.clone();
            std::thread::Builder::new()
                .name("serve-supervisor".into())
                .spawn(move || supervisor.monitor_loop())?
        };
        *supervisor.monitor.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some(monitor);
        Ok(supervisor)
    }

    fn binary(&self) -> PathBuf {
        self.config
            .binary
            .clone()
            .or_else(|| std::env::current_exe().ok())
            .unwrap_or_else(|| PathBuf::from("hdsmt-campaign"))
    }

    fn backoff_policy(&self) -> RetryPolicy {
        RetryPolicy {
            attempts: u32::MAX,
            base: self.config.backoff_base,
            cap: self.config.backoff_cap,
        }
    }

    /// Total shard count: spawned children plus adopted remotes. Every
    /// `--shard i/n` denominator and fleet report uses this.
    fn shard_total(&self) -> u32 {
        (spawned_workers(&self.config) + self.config.remote_workers.len() as u32).max(1)
    }

    // ------------------------------------------------------------ monitor

    fn monitor_loop(&self) {
        while !self.stop.load(Ordering::Relaxed) {
            self.tick();
            std::thread::sleep(self.config.heartbeat_interval);
        }
    }

    /// One heartbeat over every worker: reap exits, advance handshakes,
    /// probe health, backfill submissions, poll snapshots, restart what
    /// the backoff clock allows, and re-own broken shards' cells.
    ///
    /// Locks are taken strictly sequentially (re-own queues first, then
    /// `inner`, then the queues again after `inner` is released) — never
    /// nested.
    fn tick(&self) {
        let drained: Vec<ReownOutcome> = {
            let mut q = self.reown_done.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *q)
        };
        {
            let mut inflight =
                self.reown_inflight.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for (id, widx, _) in &drained {
                inflight.remove(&(id.clone(), *widx));
            }
        }
        let now = Instant::now();
        let mut guard = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let Inner { workers, ledger, .. } = &mut *guard;
        for (id, widx, outcome) in drained {
            let Some(snap) = outcome else { continue };
            self.reowned.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "supervisor: re-owned {} cell(s) of {id} from broken worker {widx}",
                snap.cells.total
            );
            if let Some(w) = workers.iter_mut().find(|w| w.index == widx) {
                w.snapshots.insert(id, snap);
            }
        }
        for w in workers.iter_mut() {
            // A reaped child trumps whatever phase says: SIGKILL, abort(),
            // or a clean-but-unexpected exit all land here.
            if let Some(child) = w.child.as_mut() {
                if let Ok(Some(status)) = child.try_wait() {
                    w.child = None;
                    if !matches!(w.phase, Phase::Stopped) {
                        self.crashed(w, now, &format!("process exited: {status}"), false);
                        continue;
                    }
                }
            }
            enum Action {
                Spawn,
                Handshake { since: Instant },
                Probe,
                Idle,
            }
            let action = match &w.phase {
                Phase::Backoff { until } if now >= *until => Action::Spawn,
                Phase::Starting { since } => Action::Handshake { since: *since },
                Phase::Up { .. } => Action::Probe,
                _ => Action::Idle,
            };
            match action {
                Action::Spawn => self.spawn_worker(w, now),
                Action::Handshake { since } => {
                    // An address alone is not proof of life: a stale
                    // address file points at a dead port, and a remote
                    // address is just configuration. Only a live
                    // `/healthz` promotes the worker to Up.
                    let candidate = match &w.kind {
                        WorkerKind::Spawned => read_addr_file(&w.addr_file),
                        WorkerKind::Remote { addr } => Some(addr.clone()),
                    };
                    let live_addr =
                        candidate.filter(|addr| matches!(http_get(addr, "/healthz"), Ok((200, _))));
                    if let Some(addr) = live_addr {
                        eprintln!("supervisor: worker {} up at {addr}", w.index);
                        w.client = Some(HttpClient::new(&addr));
                        w.phase = Phase::Up { addr, missed: 0 };
                    } else if now.duration_since(since) > self.config.spawn_timeout {
                        let partition = w.is_remote();
                        self.crashed(
                            w,
                            now,
                            "no address handshake before the spawn timeout",
                            partition,
                        );
                    }
                }
                Action::Probe => {
                    let healthy = w
                        .client
                        .as_mut()
                        .and_then(|c| c.request("GET", "/healthz", None).ok())
                        .is_some_and(|resp| resp.status == 200);
                    if healthy {
                        if let Phase::Up { missed, .. } = &mut w.phase {
                            *missed = 0;
                        }
                        backfill(w, ledger);
                        poll_snapshots(w);
                    } else {
                        let gone = match &mut w.phase {
                            Phase::Up { missed, .. } => {
                                *missed += 1;
                                *missed >= self.config.max_missed.max(1)
                            }
                            _ => false,
                        };
                        if gone {
                            let partition = w.is_remote();
                            self.crashed(w, now, "health probes timed out", partition);
                        }
                    }
                }
                Action::Idle => {}
            }
        }
        let reown = self.reown_candidates(workers, ledger);
        // Journal terminal marks once per campaign, from the aggregate
        // view: `done` and `failed` are settled; `degraded`/`cancelled`
        // stay pending so the next incarnation resumes them.
        if let Some(j) = &self.journal {
            for entry in ledger.iter_mut().filter(|e| !e.done_logged) {
                let status = aggregate(entry, workers).status;
                let record = match status.as_str() {
                    "done" => Record::done(&entry.id),
                    "failed" => Record::failed(&entry.id),
                    _ => continue,
                };
                match j.append(&record) {
                    Ok(()) => entry.done_logged = true,
                    Err(e) => eprintln!("fleet journal: failed to mark {}: {e}", entry.id),
                }
            }
        }
        drop(guard);
        for (id, spec_text, widx) in reown {
            let claimed = self
                .reown_inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert((id.clone(), widx));
            if claimed {
                self.spawn_reown(id, spec_text, widx);
            }
        }
    }

    /// Broken-shard slices whose cells no one is finishing: each becomes
    /// a local re-own run. Pure inspection — the in-flight claim happens
    /// after `inner` is released.
    fn reown_candidates(
        &self,
        workers: &[Worker],
        ledger: &[LedgerEntry],
    ) -> Vec<(String, String, u32)> {
        let mut out = Vec::new();
        for w in workers.iter().filter(|w| matches!(w.phase, Phase::Broken)) {
            for entry in ledger {
                if w.snapshots.get(&entry.id).is_some_and(|s| s.status == "done") {
                    continue;
                }
                let status = aggregate(entry, workers).status;
                if status == "failed" || status == "cancelled" {
                    continue;
                }
                out.push((entry.id.clone(), entry.spec_text.clone(), w.index));
            }
        }
        out
    }

    /// Run one broken shard's slice of a campaign on a thread, against
    /// the supervisor's own (peer-reading) cache, and queue the outcome
    /// for the next tick.
    fn spawn_reown(&self, id: String, spec_text: String, widx: u32) {
        eprintln!("supervisor: worker {widx} is broken; re-owning its shard of {id} locally");
        let total = self.shard_total();
        let cache = self.cache.clone();
        let cache_dir = self.config.cache_dir.clone();
        let sim_workers = self.config.sim_workers;
        let done = self.reown_done.clone();
        let key = (id.clone(), widx);
        let spawned = std::thread::Builder::new().name(format!("reown-{widx}")).spawn(move || {
            let outcome = reown_shard(&spec_text, &cache_dir, sim_workers, cache, widx, total);
            done.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push((id, widx, outcome));
        });
        if spawned.is_err() {
            self.reown_inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&key);
        }
    }

    /// Account a crash: clear the incarnation, arm the backoff clock, or
    /// trip the breaker. `partition` attributes the loss to the network
    /// (remote workers) rather than the process.
    fn crashed(&self, w: &mut Worker, now: Instant, why: &str, partition: bool) {
        kill(w);
        w.client = None;
        w.submitted.clear();
        if partition {
            w.partitions += 1;
        }
        w.restarts += 1;
        if w.restarts > self.config.max_restarts {
            eprintln!(
                "supervisor: worker {} BROKEN after {} restarts ({why}); \
                 degrading to the surviving shards",
                w.index, self.config.max_restarts
            );
            w.phase = Phase::Broken;
            return;
        }
        let delay = self.backoff_policy().backoff(w.restarts, &format!("worker-{}", w.index));
        eprintln!(
            "supervisor: worker {} crashed ({why}); restart {}/{} in {:.2}s",
            w.index,
            w.restarts,
            self.config.max_restarts,
            delay.as_secs_f64()
        );
        w.phase = Phase::Backoff { until: now + delay };
    }

    fn spawn_worker(&self, w: &mut Worker, now: Instant) {
        if w.is_remote() {
            // Adopted, not spawned: enter Starting and let the handshake
            // probe the fixed address until it answers or times out.
            w.phase = Phase::Starting { since: now };
            return;
        }
        let _ = std::fs::remove_file(&w.addr_file);
        let mut cmd = Command::new(self.binary());
        cmd.arg("serve")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--addr-file")
            .arg(&w.addr_file)
            .arg("--cache")
            .arg(&self.config.cache_dir)
            .arg("--shard")
            .arg(format!("{}/{}", w.index, self.shard_total()))
            .arg("--workers")
            .arg(self.config.sim_workers.to_string())
            .arg("--executors")
            .arg("1")
            .arg("--cell-retries")
            .arg(self.config.cell_retries.to_string())
            // The fleet journal is the source of truth for accepted
            // campaigns; per-worker journals would replay every backfilled
            // spec a second time on each restart.
            .arg("--no-journal");
        // Fault domains are explicit: a worker sees only the plan in
        // `child_env`, never one inherited from the supervisor's own
        // environment (the net-fault chaos tests seed the supervisor).
        cmd.env_remove("HDSMT_FAULT");
        if let Some(d) = self.config.cell_deadline {
            cmd.arg("--cell-deadline-ms").arg(d.as_millis().to_string());
        }
        for (k, v) in &self.config.child_env {
            cmd.env(k, v);
        }
        cmd.stdin(Stdio::null()).stdout(Stdio::null());
        match cmd.spawn() {
            Ok(child) => {
                w.child = Some(child);
                w.phase = Phase::Starting { since: now };
            }
            Err(e) => self.crashed(w, now, &format!("spawn failed: {e}"), false),
        }
    }

    // ---------------------------------------------------------- campaigns

    /// Accept a campaign: validate locally (clean 400s), ledger it, and
    /// push it to every live worker. Restarted workers are backfilled by
    /// the monitor.
    pub fn submit(&self, spec_text: &str) -> Result<CampaignSnapshot, SubmitError> {
        // Same pre-flight as the local path: a bad spec must fail the
        // submission, not n workers later.
        let spec = CampaignSpec::parse(spec_text).map_err(|e| SubmitError::Invalid(e.0))?;
        let catalog = engine::catalog_for(&spec);
        crate::matrix::expand(&spec, &catalog).map_err(|e| SubmitError::Invalid(e.0))?;

        let mut guard = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // sha256_hex always yields 64 hex chars; degrade to the full
        // digest rather than indexing (durability path, no panics).
        let digest = sha256_hex(spec_text.as_bytes());
        let short = digest.get(..8).unwrap_or(&digest);
        let id = format!("f{}-{short}", guard.seq + 1);
        // Durably journal the accept before the ledger (and thus the 202)
        // sees it — an accept the journal cannot promise to survive is
        // refused, not acknowledged.
        if let Some(j) = &self.journal {
            j.append(&Record::accept(&id, spec.display_name(), spec_text))
                .map_err(|e| SubmitError::Journal(e.to_string()))?;
        }
        crate::fault::on_accept();
        guard.seq += 1;
        // Build the entry first and ledger it after the worker fan-out:
        // no `expect("just pushed")` back-reference needed, and the
        // snapshot is computed from the same state either way (workers
        // have not reported any cells for a campaign this young).
        let entry = LedgerEntry {
            id: id.clone(),
            name: spec.display_name().to_string(),
            spec_text: spec_text.to_string(),
            result: None,
            done_logged: false,
        };
        for w in &mut guard.workers {
            if matches!(w.phase, Phase::Up { .. }) {
                submit_to_worker(w, &entry);
            }
        }
        let snap = aggregate(&entry, &guard.workers);
        guard.ledger.push(entry);
        drop(guard);
        Ok(snap)
    }

    /// Fleet-level snapshot of one campaign: per-cell counters summed
    /// across shards.
    pub fn snapshot(&self, id: &str) -> Option<CampaignSnapshot> {
        let guard = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = guard.ledger.iter().find(|e| e.id == id)?;
        Some(aggregate(entry, &guard.workers))
    }

    pub fn list(&self) -> Vec<CampaignSnapshot> {
        let guard = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.ledger.iter().map(|e| aggregate(e, &guard.workers)).collect()
    }

    /// The finished result: once every shard reports done, replay the
    /// campaign through the local engine on the shared cache (a pure
    /// read — every cell is a hit) and memoize it. `Err` carries the
    /// HTTP status + message for the API layer.
    pub fn results(&self, id: &str) -> Result<CampaignResult, (u16, String)> {
        let (spec_text, worker_addrs) = {
            let guard = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let entry = guard
                .ledger
                .iter()
                .find(|e| e.id == id)
                .ok_or_else(|| (404, format!("no campaign `{id}`")))?;
            if let Some(result) = &entry.result {
                return Ok(result.clone());
            }
            let snap = aggregate(entry, &guard.workers);
            if snap.status != "done" {
                return Err((
                    409,
                    format!(
                        "campaign `{id}` is {}; results exist only once every shard is done",
                        snap.status
                    ),
                ));
            }
            let addrs: Vec<String> = guard
                .workers
                .iter()
                .filter_map(|w| match &w.phase {
                    Phase::Up { addr, .. } => Some(addr.clone()),
                    _ => None,
                })
                .collect();
            (entry.spec_text.clone(), addrs)
        };
        // Anti-entropy: remote workers land cells in *their* caches, not
        // ours. Pull every live worker's manifest diff first so the
        // replay below stays a pure local read (misses the pull raced
        // still resolve through the read-through peer tier).
        for addr in &worker_addrs {
            let pulled = self.cache.sync_from_peer(addr, None);
            if pulled > 0 {
                eprintln!("supervisor: anti-entropy pulled {pulled} cell(s) from {addr}");
            }
        }
        // Replay outside the lock: the engine run is all cache hits, but
        // there is no reason to stall heartbeats on it.
        let mut spec =
            CampaignSpec::parse(&spec_text).map_err(|e| (500, format!("ledger spec: {}", e.0)))?;
        spec.cache_dir = Some(self.config.cache_dir.clone());
        spec.workers = Some(self.config.sim_workers as u64);
        let catalog = engine::catalog_for(&spec);
        let runner = JobRunner::new(self.config.sim_workers, Some(self.cache.clone()));
        let result = engine::run_campaign_with(&spec, &catalog, &runner)
            .map_err(|e| (500, format!("results replay failed: {}", e.0)))?;
        let mut guard = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(entry) = guard.ledger.iter_mut().find(|e| e.id == id) {
            entry.result = Some(result.clone());
        }
        Ok(result)
    }

    /// `GET /workers`.
    pub fn fleet(&self) -> FleetReport {
        let guard = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let workers: Vec<WorkerReport> = guard
            .workers
            .iter()
            .map(|w| WorkerReport {
                index: w.index,
                shard: format!("{}/{}", w.index, self.shard_total()),
                kind: match &w.kind {
                    WorkerKind::Spawned => "spawned".to_string(),
                    WorkerKind::Remote { .. } => "remote".to_string(),
                },
                state: w.phase.label().to_string(),
                addr: match (&w.phase, &w.kind) {
                    (Phase::Up { addr, .. }, _) => Some(addr.clone()),
                    // A down remote still has a configured address worth
                    // showing to the operator.
                    (_, WorkerKind::Remote { addr }) => Some(addr.clone()),
                    _ => None,
                },
                pid: w.child.as_ref().map(Child::id),
                restarts: w.restarts,
                partitions: w.partitions,
            })
            .collect();
        FleetReport {
            supervising: self.shard_total(),
            restarts_total: guard.workers.iter().map(|w| w.restarts as u64).sum(),
            broken: guard.workers.iter().filter(|w| matches!(w.phase, Phase::Broken)).count(),
            partitions_total: guard.workers.iter().map(|w| w.partitions).sum(),
            reowned: self.reowned.load(Ordering::Relaxed),
            workers,
        }
    }

    /// Stop the monitor, drain the workers (graceful `POST /shutdown`,
    /// bounded wait, then kill), and join.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) =
            self.monitor.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()
        {
            let _ = handle.join();
        }
        let mut guard = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for w in &mut guard.workers {
            if w.is_remote() {
                // An adopted worker belongs to its own operator: stop
                // probing it, but never drain or kill it.
                w.client = None;
                w.phase = Phase::Stopped;
                continue;
            }
            if let Phase::Up { addr, .. } = &w.phase {
                let _ = http_post(addr, "/shutdown", "");
            }
            if let Some(child) = w.child.as_mut() {
                let deadline = Instant::now() + Duration::from_secs(5);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        _ if Instant::now() >= deadline => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                        _ => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
            }
            w.child = None;
            w.client = None;
            w.phase = Phase::Stopped;
        }
    }

    /// Health losses attributed to the network, summed over the fleet.
    pub fn partitions_total(&self) -> u64 {
        let guard = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.workers.iter().map(|w| w.partitions).sum()
    }

    /// Broken-shard slices completed locally on the workers' behalf.
    pub fn reowned_total(&self) -> u64 {
        self.reowned.load(Ordering::Relaxed)
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        // Never leak child processes, even on a panicking exit path.
        self.stop.store(true, Ordering::Relaxed);
        let mut guard = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for w in &mut guard.workers {
            kill(w);
        }
    }
}

fn kill(w: &mut Worker) {
    if let Some(child) = w.child.as_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
    w.child = None;
}

/// How many workers this supervisor forks itself. The legacy default (no
/// remotes, `workers: 0`) still spawns one; a pure-remote fleet
/// (`--supervise 0 --worker ...`) spawns none.
fn spawned_workers(config: &SupervisorConfig) -> u32 {
    if config.workers == 0 && config.remote_workers.is_empty() {
        1
    } else {
        config.workers
    }
}

/// Run one broken shard's slice locally. The supervisor's cache reads
/// through its peers, so cells the broken worker already finished are
/// hits, not re-simulations. `None` = the run failed; a later tick may
/// retry.
fn reown_shard(
    spec_text: &str,
    cache_dir: &str,
    sim_workers: usize,
    cache: ResultCache,
    widx: u32,
    total: u32,
) -> Option<ChildSnapshot> {
    let shard = ShardSpec::parse(&format!("{widx}/{total}")).ok()?;
    let mut spec = CampaignSpec::parse(spec_text).ok()?;
    spec.cache_dir = Some(cache_dir.to_string());
    spec.workers = Some(sim_workers as u64);
    let catalog = engine::catalog_for(&spec);
    let runner = JobRunner::new(sim_workers, Some(cache));
    let result = engine::run_campaign_observed(&spec, &catalog, &runner, Some(shard), &()).ok()?;
    let n = result.cells.len();
    Some(ChildSnapshot {
        status: "done".to_string(),
        cells: CellCounts { total: n, done: n, ..CellCounts::default() },
        search: SearchCounts::default(),
        error: None,
    })
}

/// Remove every `*.addr` (and stranded `*.tmp`) file under
/// `<cache_dir>/.supervise/`, returning how many were removed. A fresh
/// supervisor must start from a clean handshake directory: address files
/// left by a SIGKILLed previous incarnation point at dead ports — or at
/// ports the OS has since handed to unrelated processes.
pub fn clean_stale_addr_files(cache_dir: &str) -> usize {
    let dir = std::path::Path::new(cache_dir).join(".supervise");
    let mut removed = 0usize;
    for entry in std::fs::read_dir(&dir).into_iter().flatten().flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let stale = name.ends_with(".addr") || name.contains(".tmp");
        if stale && path.is_file() && std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// The worker wrote its bound address with tmp+rename, so a read sees
/// either nothing or a complete `host:port` line.
fn read_addr_file(path: &std::path::Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let addr = text.trim();
    if addr.contains(':') {
        Some(addr.to_string())
    } else {
        None
    }
}

/// Submission retry policy: a couple of quick attempts over the pooled
/// connection. Anything still failing is retried by the next heartbeat's
/// backfill pass, so the budget stays small to keep ticks snappy.
const SUBMIT_RETRY: RetryPolicy =
    RetryPolicy { attempts: 3, base: Duration::from_millis(25), cap: Duration::from_millis(100) };

/// Push every not-yet-submitted ledger entry to a live worker (no-op for
/// a worker that already has them — this is what re-seeds a restarted
/// incarnation).
fn backfill(w: &mut Worker, ledger: &[LedgerEntry]) {
    for entry in ledger {
        if !w.submitted.contains_key(&entry.id) {
            submit_to_worker(w, entry);
        }
    }
}

fn submit_to_worker(w: &mut Worker, entry: &LedgerEntry) {
    let Some(client) = w.client.as_mut() else { return };
    // Transient errors and 503 backpressure get a short retry budget
    // here; anything else waits for the next backfill pass.
    let Ok(resp) =
        client.request_retry("POST", "/campaigns", Some(&entry.spec_text), &SUBMIT_RETRY)
    else {
        return;
    };
    if resp.status != 202 {
        return;
    }
    if let Some(child_id) = serde_json::from_str_value(&resp.body)
        .ok()
        .and_then(|v| v.get("id").and_then(|i| i.as_str()).map(str::to_string))
    {
        w.submitted.insert(entry.id.clone(), child_id);
    }
}

/// Refresh the worker's last-known snapshot of every submitted campaign.
fn poll_snapshots(w: &mut Worker) {
    let pairs: Vec<(String, String)> =
        w.submitted.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
    let mut fresh: Vec<(String, ChildSnapshot)> = Vec::new();
    let mut lost: Vec<String> = Vec::new();
    if let Some(client) = w.client.as_mut() {
        for (ledger_id, child_id) in pairs {
            let Ok(resp) = client.request("GET", &format!("/campaigns/{child_id}"), None) else {
                continue;
            };
            if resp.status == 200 {
                if let Some(snap) = parse_child_snapshot(&resp.body) {
                    fresh.push((ledger_id, snap));
                }
            } else if resp.status == 404 {
                // The worker answers but does not know the campaign: it
                // restarted (same address, fresh ledger) between two
                // probes, fast enough that no probe ever failed. An
                // adopted remote can do this at any time — forget the
                // submission so the next tick backfills it. Finished
                // cells are cache hits on the worker, so the resubmit is
                // idempotent.
                lost.push(ledger_id);
            }
        }
    }
    for (ledger_id, snap) in fresh {
        w.snapshots.insert(ledger_id, snap);
    }
    for ledger_id in lost {
        eprintln!(
            "supervisor: worker {} forgot campaign {ledger_id} (restarted?); resubmitting",
            w.index
        );
        w.submitted.remove(&ledger_id);
    }
}

fn parse_child_snapshot(body: &str) -> Option<ChildSnapshot> {
    let v = serde_json::from_str_value(body).ok()?;
    let counts = |key: &str| {
        let c = v.get(key)?;
        let n = |k: &str| c.get(k).and_then(|x| x.as_u64()).unwrap_or(0) as usize;
        Some((
            n("total"),
            n("queued"),
            n("running"),
            n("done"),
            n("cached"),
            n("failed"),
            n("cancelled"),
            n("finished"),
        ))
    };
    let (total, queued, running, done, cached, failed, cancelled, _) = counts("cells")?;
    let (s_total, .., s_finished) = counts("search").unwrap_or((0, 0, 0, 0, 0, 0, 0, 0));
    Some(ChildSnapshot {
        status: v.get("status")?.as_str()?.to_string(),
        cells: CellCounts { total, queued, running, done, cached, failed, cancelled },
        search: SearchCounts { total: s_total, finished: s_finished },
        error: v.get("error").and_then(|e| e.as_str()).map(str::to_string),
    })
}

/// Sum one campaign's per-worker snapshots into the fleet-level view.
///
/// Status precedence: any shard `failed` → failed; any `cancelled` →
/// cancelled; every live shard `done` → done (or **degraded** when a
/// broken shard can no longer finish its slice); otherwise running —
/// or queued while no shard has reported at all.
///
/// A broken worker whose snapshot is `done` (its slice finished before
/// the breaker tripped, or a re-own run completed it on its behalf)
/// still *covers* its shard, so it counts toward done, not degraded.
fn aggregate(entry: &LedgerEntry, workers: &[Worker]) -> CampaignSnapshot {
    let mut cells = CellCounts::default();
    let mut search = SearchCounts::default();
    let mut error: Option<String> = None;
    let mut any_failed = false;
    let mut any_cancelled = false;
    let mut reported = 0usize;
    let mut live_done = 0usize;
    let mut live = 0usize;
    let mut broken = 0usize;
    for w in workers {
        let snap = w.snapshots.get(&entry.id);
        let done_snap = snap.is_some_and(|s| s.status == "done");
        if matches!(w.phase, Phase::Broken) && !done_snap {
            broken += 1;
        } else {
            live += 1;
            if done_snap {
                live_done += 1;
            }
        }
        let Some(snap) = snap else { continue };
        reported += 1;
        cells.total += snap.cells.total;
        cells.queued += snap.cells.queued;
        cells.running += snap.cells.running;
        cells.done += snap.cells.done;
        cells.cached += snap.cells.cached;
        cells.failed += snap.cells.failed;
        cells.cancelled += snap.cells.cancelled;
        search.total += snap.search.total;
        search.finished += snap.search.finished;
        match snap.status.as_str() {
            "failed" => any_failed = true,
            "cancelled" => any_cancelled = true,
            _ => {}
        }
        if error.is_none() {
            error = snap.error.clone();
        }
    }
    let status = if any_failed {
        "failed"
    } else if any_cancelled {
        "cancelled"
    } else if live > 0 && live_done == live {
        if broken > 0 {
            "degraded"
        } else {
            "done"
        }
    } else if live == 0 {
        // Every shard tripped the breaker: nothing can make progress.
        "degraded"
    } else if reported == 0 {
        "queued"
    } else {
        "running"
    };
    CampaignSnapshot {
        id: entry.id.clone(),
        name: entry.name.clone(),
        status: status.to_string(),
        cells,
        search,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_addr_files_are_removed_on_startup() {
        let dir =
            std::env::temp_dir().join(format!("hdsmt-supervisor-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let handshake = dir.join(".supervise");
        std::fs::create_dir_all(&handshake).unwrap();
        // What a SIGKILLed incarnation leaves behind: address files
        // pointing at dead ports and a stranded tmp from an in-flight
        // atomic write.
        std::fs::write(handshake.join("worker-0.addr"), "127.0.0.1:1\n").unwrap();
        std::fs::write(handshake.join("worker-1.addr"), "127.0.0.1:2\n").unwrap();
        std::fs::write(handshake.join("worker-2.addr.tmp"), "127.0.0").unwrap();
        std::fs::write(handshake.join("unrelated.txt"), "keep me").unwrap();

        let cache_dir = dir.to_string_lossy().into_owned();
        assert_eq!(clean_stale_addr_files(&cache_dir), 3);
        assert!(!handshake.join("worker-0.addr").exists());
        assert!(!handshake.join("worker-2.addr.tmp").exists());
        assert!(handshake.join("unrelated.txt").exists(), "only handshake files are removed");
        assert_eq!(clean_stale_addr_files(&cache_dir), 0, "idempotent");
        // A cache dir with no .supervise/ at all is fine too.
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(clean_stale_addr_files(&cache_dir), 0);
    }
}
