//! The JSON API: routing, status codes, and error bodies.
//!
//! Every failure is a structured JSON object so thin clients and scripts
//! never have to scrape prose:
//!
//! ```json
//! {"error": {"status": 404, "message": "no campaign `c9-deadbeef`"}}
//! ```
//!
//! | Route                        | Method | Success                            |
//! |------------------------------|--------|------------------------------------|
//! | `/healthz`                   | GET    | 200 `{"status":"ok"}`              |
//! | `/stats`                     | GET    | 200 service counters               |
//! | `/campaigns`                 | POST   | 202 snapshot of the queued campaign|
//! | `/campaigns`                 | GET    | 200 list of snapshots              |
//! | `/campaigns/:id`             | GET    | 200 snapshot                       |
//! | `/campaigns/:id/results`     | GET    | 200 export (`?format=json\|csv\|summary`) |
//! | `/cells/:hash`               | GET    | 200 verbatim cache entry           |
//! | `/cells/:hash?sha256=hex`    | PUT    | 200 replication landed             |
//! | `/cells?since=secs`          | GET    | 200 cache manifest (key + mtime)   |
//! | `/workers`                   | GET    | 200 supervised fleet health        |
//! | `/shutdown`                  | POST   | 202 drain begins                   |
//!
//! On a supervising daemon (`--supervise n`) the campaign verbs route to
//! the fleet [`crate::serve::supervisor::Supervisor`] — same paths, same
//! shapes, with per-cell counters summed across shards and the extra
//! campaign status `degraded` (a broken shard can no longer finish its
//! slice). Queue-full 503s carry a `Retry-After` header scaled to the
//! backlog.

use crate::cache::{EntryLookup, Replicate, ReplicateError};
use crate::export;
use crate::serve::http::{HttpError, Request, Response};
use crate::serve::state::{CampaignPhase, ServerState, SubmitError};

#[derive(serde::Serialize)]
struct ErrorDetail {
    status: u16,
    message: String,
}

#[derive(serde::Serialize)]
struct ErrorBody {
    error: ErrorDetail,
}

/// The structured JSON error response every failing route returns.
pub fn error_response(status: u16, message: impl Into<String>) -> Response {
    let body = ErrorBody { error: ErrorDetail { status, message: message.into() } };
    // A plain struct of a u16 and a String always serializes; if that
    // assumption ever breaks, degrade to a schema-compatible static body
    // rather than panicking the handler thread.
    let text = serde_json::to_string(&body).unwrap_or_else(|_| {
        format!("{{\"error\":{{\"status\":{status},\"message\":\"error serialization failed\"}}}}")
    });
    Response::json(status, text)
}

/// Map a transport-level parse failure to a response (mod.rs calls this
/// for connections whose bytes never became a [`Request`]).
pub fn transport_error_response(err: &HttpError) -> Response {
    match err {
        HttpError::TooLarge(what) => error_response(413, format!("request too large: {what}")),
        _ => error_response(400, err.to_string()),
    }
}

fn json_ok(status: u16, value: &impl serde::Serialize) -> Response {
    match serde_json::to_string(value) {
        Ok(text) => Response::json(status, text),
        // Unreachable for the plain-data API types, but a handler thread
        // must answer 500, not unwind.
        Err(_) => error_response(500, "response serialization failed"),
    }
}

/// Route one request against the daemon state. Pure request→response:
/// socket handling (and shutdown plumbing) lives in `mod.rs`.
pub fn handle(state: &ServerState, req: &Request) -> Response {
    let segments = req.segments();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", []) => json_ok(200, &ServiceIndex::default()),
        ("GET", ["healthz"]) => Response::json(200, r#"{"status":"ok"}"#.to_string()),
        ("GET", ["stats"]) => json_ok(200, &state.stats()),
        ("POST", ["campaigns"]) => submit(state, req),
        ("GET", ["campaigns"]) => match state.supervisor() {
            Some(sup) => json_ok(200, &sup.list()),
            None => {
                let list: Vec<_> = state.list().iter().map(|e| e.snapshot()).collect();
                json_ok(200, &list)
            }
        },
        ("GET", ["campaigns", id]) => {
            let snapshot = match state.supervisor() {
                Some(sup) => sup.snapshot(id),
                None => state.get(id).map(|e| e.snapshot()),
            };
            match snapshot {
                Some(snap) => json_ok(200, &snap),
                None => error_response(404, format!("no campaign `{id}`")),
            }
        }
        ("GET", ["campaigns", id, "results"]) => results(state, req, id),
        ("GET", ["cells"]) => manifest(state, req),
        ("GET", ["cells", hash]) => cell(state, hash),
        ("PUT", ["cells", hash]) => cell_put(state, req, hash),
        ("GET", ["workers"]) => workers(state),
        ("POST", ["shutdown"]) => {
            state.begin_shutdown();
            Response::json(202, r#"{"status":"draining"}"#.to_string())
        }
        // Known paths with the wrong verb get a 405, not a 404.
        (
            _,
            []
            | ["healthz"]
            | ["stats"]
            | ["campaigns", ..]
            | ["cells", ..]
            | ["workers"]
            | ["shutdown"],
        ) => error_response(405, format!("method {} not allowed on {}", req.method, req.path)),
        _ => error_response(404, format!("no route for {}", req.path)),
    }
}

/// `GET /` — a tiny machine-readable index so a curl of the bare address
/// explains the service.
#[derive(serde::Serialize)]
struct ServiceIndex {
    service: &'static str,
    routes: Vec<&'static str>,
}

impl Default for ServiceIndex {
    fn default() -> Self {
        ServiceIndex {
            service: "hdsmt-campaign serve",
            routes: vec![
                "GET /healthz",
                "GET /stats",
                "POST /campaigns",
                "GET /campaigns",
                "GET /campaigns/:id",
                "GET /campaigns/:id/results?format=json|csv|summary",
                "GET /cells/:hash",
                "PUT /cells/:hash?sha256=hex",
                "GET /cells?since=secs",
                "GET /workers",
                "POST /shutdown",
            ],
        }
    }
}

fn submit(state: &ServerState, req: &Request) -> Response {
    let spec_text = match req.body_str() {
        Ok(text) if !text.trim().is_empty() => text,
        Ok(_) => return error_response(400, "empty body: POST a TOML or JSON campaign spec"),
        Err(e) => return error_response(400, e.to_string()),
    };
    if state.is_shutting_down() {
        return error_response(503, "daemon is shutting down; not accepting campaigns");
    }
    if let Some(sup) = state.supervisor() {
        return match sup.submit(spec_text) {
            Ok(snapshot) => json_ok(202, &snapshot),
            Err(SubmitError::Invalid(msg)) => error_response(400, msg),
            // The supervisor has no local queue; these cannot happen, but
            // map them anyway rather than panic.
            Err(SubmitError::QueueFull | SubmitError::ShuttingDown) => {
                error_response(503, "fleet is not accepting campaigns")
            }
            Err(SubmitError::Journal(msg)) => journal_unavailable(&msg),
        };
    }
    match state.submit(spec_text) {
        Ok(entry) => json_ok(202, &entry.snapshot()),
        Err(SubmitError::Invalid(msg)) => error_response(400, msg),
        // Backpressure: tell the client *when* to come back, scaled to
        // the backlog, instead of letting it guess.
        Err(SubmitError::QueueFull) => {
            error_response(503, "campaign queue is full; retry after a campaign finishes")
                .with_retry_after(state.queue.retry_after_hint())
        }
        Err(SubmitError::ShuttingDown) => {
            error_response(503, "daemon is shutting down; not accepting campaigns")
        }
        Err(SubmitError::Journal(msg)) => journal_unavailable(&msg),
    }
}

/// A failed journal append (full disk, injected fault) refuses the
/// submission: the daemon must not 202 work it cannot promise to
/// survive. Degrade to 503 + Retry-After — journal failures are usually
/// transient (disk pressure), so tell the client to come back.
fn journal_unavailable(msg: &str) -> Response {
    error_response(503, format!("cannot journal the accept ({msg}); retry later"))
        .with_retry_after(10)
}

/// `GET /workers` — fleet health. A non-supervising daemon answers with
/// an empty fleet rather than a 404, so probes need no mode detection.
fn workers(state: &ServerState) -> Response {
    match state.supervisor() {
        Some(sup) => json_ok(200, &sup.fleet()),
        None => Response::json(
            200,
            r#"{"supervising":0,"restarts_total":0,"broken":0,"partitions_total":0,"reowned":0,"workers":[]}"#.to_string(),
        ),
    }
}

fn results(state: &ServerState, req: &Request, id: &str) -> Response {
    let result = if let Some(sup) = state.supervisor() {
        match sup.results(id) {
            Ok(result) => result,
            Err((status, message)) => return error_response(status, message),
        }
    } else {
        let Some(entry) = state.get(id) else {
            return error_response(404, format!("no campaign `{id}`"));
        };
        let phase = entry.phase();
        if phase != CampaignPhase::Done {
            return error_response(
                409,
                format!(
                    "campaign `{id}` is {}; results exist only once it is done",
                    phase.as_str()
                ),
            );
        }
        match entry.result() {
            Some(result) => result,
            // A done campaign always carries a result; if the invariant
            // ever slips, a 500 beats killing the handler thread.
            None => {
                return error_response(500, format!("campaign `{id}` is done but has no result"))
            }
        }
    };
    match req.query_param("format").unwrap_or("json") {
        "json" => Response::json(200, export::to_json(&result)),
        "csv" => Response::csv(export::to_csv(&result)),
        "summary" => Response::text(200, export::summary(&result)),
        other => error_response(400, format!("unknown format `{other}` (json|csv|summary)")),
    }
}

fn valid_cell_key(hash: &str) -> bool {
    hash.len() == 64 && hash.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

fn cell(state: &ServerState, hash: &str) -> Response {
    if !valid_cell_key(hash) {
        return error_response(400, "cell key must be 64 lowercase hex chars (a SHA-256)");
    }
    // Local-only lookup: a peered daemon answering this route must never
    // consult its own peers, or two daemons missing a key would bounce
    // the request between each other forever.
    match state.cache.entry_text_local(hash) {
        // The on-disk entry is already the JSON response body.
        EntryLookup::Hit(text) => Response::json(200, text),
        EntryLookup::Miss => error_response(404, format!("no cached cell `{hash}`")),
        EntryLookup::Corrupt => error_response(
            500,
            format!("cell `{hash}` was corrupt and has been quarantined; it will re-simulate on next use"),
        ),
    }
}

/// `PUT /cells/:hash?sha256=hex` — land a replicated entry. The checksum
/// covers the body in transit; the byte-equality conflict rule (entries
/// are deterministic, so divergence is corruption) lives in the cache.
fn cell_put(state: &ServerState, req: &Request, hash: &str) -> Response {
    if !valid_cell_key(hash) {
        return error_response(400, "cell key must be 64 lowercase hex chars (a SHA-256)");
    }
    let Some(claimed) = req.query_param("sha256") else {
        return error_response(400, "missing sha256 checksum query parameter");
    };
    let body = match req.body_str() {
        Ok(text) => text,
        Err(e) => return error_response(400, e.to_string()),
    };
    if crate::hash::sha256_hex(body.as_bytes()) != claimed {
        return error_response(422, "body does not match the sha256 checksum (corrupt in transit)");
    }
    match state.cache.put_entry_text(hash, body) {
        Ok(Replicate::Stored) => Response::json(200, r#"{"status":"stored"}"#.to_string()),
        Ok(Replicate::AlreadyPresent) => {
            Response::json(200, r#"{"status":"already-present"}"#.to_string())
        }
        Err(ReplicateError::Invalid) => {
            error_response(422, "body is not a valid cache entry; refusing to land it")
        }
        Err(ReplicateError::Conflict) => error_response(
            409,
            format!("cell `{hash}` already exists with different bytes; incoming copy quarantined"),
        ),
        Err(ReplicateError::Io(e)) => error_response(500, format!("failed to land cell: {e}")),
    }
}

/// `GET /cells?since=secs` — the anti-entropy manifest: every cached key
/// with its mtime (unix seconds), optionally floored so peers can diff
/// incrementally.
fn manifest(state: &ServerState, req: &Request) -> Response {
    let since = match req.query_param("since") {
        None => None,
        Some(raw) => match raw.parse::<u64>() {
            Ok(secs) => Some(secs),
            Err(_) => {
                return error_response(400, format!("malformed since `{raw}` (want unix seconds)"))
            }
        },
    };
    #[derive(serde::Serialize)]
    struct ManifestCell {
        key: String,
        mtime: u64,
    }
    #[derive(serde::Serialize)]
    struct Manifest {
        cells: Vec<ManifestCell>,
    }
    let cells = state
        .cache
        .manifest(since)
        .into_iter()
        .map(|(key, mtime)| ManifestCell { key, mtime })
        .collect();
    json_ok(200, &Manifest { cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::state::ServerConfig;

    fn tmp_state(tag: &str) -> ServerState {
        let dir =
            std::env::temp_dir().join(format!("hdsmt-serve-api-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ServerState::new(ServerConfig {
            cache_dir: dir.to_string_lossy().into_owned(),
            ..ServerConfig::default()
        })
        .unwrap()
    }

    fn get(path: &str) -> Request {
        let (path, query) = path.split_once('?').unwrap_or((path, ""));
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query.into(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: String::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    fn put(path: &str, body: &str) -> Request {
        let (path, query) = path.split_once('?').unwrap_or((path, ""));
        Request {
            method: "PUT".into(),
            path: path.into(),
            query: query.into(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    fn body_json(resp: &Response) -> serde_json::Value {
        serde_json::from_str_value(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    const SPEC: &str = r#"{"archs": ["M8"], "workloads": ["2W1"], "policies": ["rr"]}"#;

    #[test]
    fn health_stats_and_index() {
        let state = tmp_state("health");
        assert_eq!(handle(&state, &get("/healthz")).status, 200);
        let stats = handle(&state, &get("/stats"));
        assert_eq!(stats.status, 200);
        let v = body_json(&stats);
        assert_eq!(v.get("accepting").and_then(|b| b.as_bool()), Some(true));
        assert!(v.get("cache").and_then(|c| c.get("corrupt")).is_some(), "corrupt counter");
        let index = handle(&state, &get("/"));
        assert!(body_json(&index).get("routes").and_then(|r| r.as_array()).is_some());
    }

    #[test]
    fn submit_lifecycle_without_an_executor() {
        let state = tmp_state("lifecycle");
        // No executor is draining the queue, so the campaign stays queued
        // — exactly what the progress/results error paths need.
        let accepted = handle(&state, &post("/campaigns", SPEC));
        assert_eq!(accepted.status, 202, "{:?}", accepted.body);
        let id = body_json(&accepted).get("id").and_then(|i| i.as_str()).unwrap().to_string();
        assert!(id.starts_with("c1-"), "sequence + spec digest: {id}");

        let snap = handle(&state, &get(&format!("/campaigns/{id}")));
        assert_eq!(snap.status, 200);
        assert_eq!(body_json(&snap).get("status").and_then(|s| s.as_str()), Some("queued"));

        let list = handle(&state, &get("/campaigns"));
        assert_eq!(body_json(&list).as_array().map(|a| a.len()), Some(1));

        let res = handle(&state, &get(&format!("/campaigns/{id}/results")));
        assert_eq!(res.status, 409, "results before completion must conflict");
        let msg = body_json(&res);
        assert_eq!(
            msg.get("error").and_then(|e| e.get("status")).and_then(|s| s.as_u64()),
            Some(409)
        );
    }

    #[test]
    fn error_paths_are_structured_json() {
        let state = tmp_state("errors");

        // Malformed specs: bad JSON, empty body, validation failure.
        for (body, want) in [
            ("{ not json", 400),
            ("", 400),
            (r#"{"archs": [], "workloads": ["2W1"]}"#, 400),
            (r#"{"archs": ["M8"], "workloads": ["2W1"], "policies": ["bogus"]}"#, 400),
        ] {
            let resp = handle(&state, &post("/campaigns", body));
            assert_eq!(resp.status, want, "spec {body:?}");
            let v = body_json(&resp);
            assert!(
                v.get("error").and_then(|e| e.get("message")).is_some(),
                "structured error for {body:?}"
            );
        }

        assert_eq!(handle(&state, &get("/campaigns/c9-unknown")).status, 404);
        assert_eq!(handle(&state, &get("/campaigns/c9-unknown/results")).status, 404);
        assert_eq!(handle(&state, &get("/nope")).status, 404);
        assert_eq!(handle(&state, &post("/healthz", "")).status, 405);
        assert_eq!(handle(&state, &post("/campaigns/x", "")).status, 405);

        // Cell lookups: bad key shape vs a well-formed miss.
        assert_eq!(handle(&state, &get("/cells/shorthash")).status, 400);
        assert_eq!(handle(&state, &get(&format!("/cells/{}", "A".repeat(64)))).status, 400);
        assert_eq!(handle(&state, &get(&format!("/cells/{}", "a".repeat(64)))).status, 404);
    }

    #[test]
    fn results_format_selection() {
        let state = tmp_state("formats");
        let accepted = handle(&state, &post("/campaigns", SPEC));
        let id = body_json(&accepted).get("id").and_then(|i| i.as_str()).unwrap().to_string();
        // Run the queued campaign inline (what an executor thread does).
        let entry = state.queue.pop().unwrap();
        state.execute(&entry);

        let json = handle(&state, &get(&format!("/campaigns/{id}/results")));
        assert_eq!(json.status, 200, "{:?}", String::from_utf8_lossy(&json.body));
        assert!(body_json(&json).get("cells").is_some());

        let csv = handle(&state, &get(&format!("/campaigns/{id}/results?format=csv")));
        assert_eq!(csv.status, 200);
        assert_eq!(csv.content_type, "text/csv; charset=utf-8");
        assert!(std::str::from_utf8(&csv.body).unwrap().starts_with("arch,workload"));

        let summary = handle(&state, &get(&format!("/campaigns/{id}/results?format=summary")));
        assert_eq!(summary.status, 200);
        assert!(std::str::from_utf8(&summary.body).unwrap().contains("hmean IPC"));

        let bad = handle(&state, &get(&format!("/campaigns/{id}/results?format=xml")));
        assert_eq!(bad.status, 400);

        // The snapshot now reports terminal per-cell counts.
        let snap = body_json(&handle(&state, &get(&format!("/campaigns/{id}"))));
        assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"));
        let cells = snap.get("cells").unwrap();
        let n = |k: &str| cells.get(k).and_then(|v| v.as_u64()).unwrap();
        assert_eq!(n("total"), 1);
        assert_eq!(n("done") + n("cached"), 1, "{cells:?}");
        assert_eq!(n("queued") + n("running") + n("failed") + n("cancelled"), 0, "{cells:?}");

        let _ = std::fs::remove_dir_all(state.cache.dir());
    }

    #[test]
    fn workers_route_reports_an_empty_fleet_when_not_supervising() {
        let state = tmp_state("workers");
        let resp = handle(&state, &get("/workers"));
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("supervising").and_then(|n| n.as_u64()), Some(0));
        assert_eq!(v.get("workers").and_then(|w| w.as_array()).map(|a| a.len()), Some(0));
        assert_eq!(handle(&state, &post("/workers", "")).status, 405);
    }

    #[test]
    fn queue_full_503_carries_a_retry_after_hint() {
        let dir =
            std::env::temp_dir().join(format!("hdsmt-serve-api-qfull-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = ServerState::new(ServerConfig {
            cache_dir: dir.to_string_lossy().into_owned(),
            queue_cap: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        // No executor drains the queue: the second submission must bounce
        // with backpressure advice.
        assert_eq!(handle(&state, &post("/campaigns", SPEC)).status, 202);
        let bounced = handle(&state, &post("/campaigns", SPEC));
        assert_eq!(bounced.status, 503);
        assert_eq!(bounced.retry_after, Some(1), "one queued campaign → 1s hint");
        // Shutdown 503s advise nothing — retrying won't help.
        handle(&state, &post("/shutdown", ""));
        let refused = handle(&state, &post("/campaigns", SPEC));
        assert_eq!((refused.status, refused.retry_after), (503, None));
    }

    #[test]
    fn stats_report_the_quarantined_count() {
        let state = tmp_state("quarantine");
        let v = body_json(&handle(&state, &get("/stats")));
        assert_eq!(
            v.get("cache").and_then(|c| c.get("quarantined")).and_then(|q| q.as_u64()),
            Some(0)
        );
        assert_eq!(v.get("cache_quarantined").and_then(|q| q.as_u64()), Some(0));
    }

    #[test]
    fn shutdown_refuses_new_submissions() {
        let state = tmp_state("shutdown");
        assert_eq!(handle(&state, &post("/shutdown", "")).status, 202);
        let refused = handle(&state, &post("/campaigns", SPEC));
        assert_eq!(refused.status, 503);
        let v = body_json(&refused);
        assert!(
            v.get("error")
                .and_then(|e| e.get("message"))
                .and_then(|m| m.as_str())
                .unwrap()
                .contains("shutting down"),
            "{v:?}"
        );
        let stats = body_json(&handle(&state, &get("/stats")));
        assert_eq!(stats.get("accepting").and_then(|b| b.as_bool()), Some(false));
    }

    /// Exercise the replication surface end to end at the handler level:
    /// manifest listing, checksum enforcement, idempotent landing, and
    /// the byte-equality conflict rule.
    #[test]
    fn cell_replication_put_manifest_and_conflicts() {
        // Source daemon: run a two-cell campaign so the cache holds two
        // distinct entries (same spec shape, different bytes).
        let src = tmp_state("repl-src");
        let spec = r#"{"archs": ["M8"], "workloads": ["2W1", "2W7"], "policies": ["rr"]}"#;
        assert_eq!(handle(&src, &post("/campaigns", spec)).status, 202);
        let entry = src.queue.pop().unwrap();
        src.execute(&entry);

        let man = body_json(&handle(&src, &get("/cells")));
        let keys: Vec<String> = man
            .get("cells")
            .and_then(|c| c.as_array())
            .unwrap()
            .iter()
            .map(|c| c.get("key").and_then(|k| k.as_str()).unwrap().to_string())
            .collect();
        assert_eq!(keys.len(), 2, "{man:?}");
        // An impossible floor filters everything; garbage is a 400.
        let future = body_json(&handle(&src, &get("/cells?since=99999999999")));
        assert_eq!(future.get("cells").and_then(|c| c.as_array()).map(|a| a.len()), Some(0));
        assert_eq!(handle(&src, &get("/cells?since=soon")).status, 400);

        let fetch = |key: &str| {
            let resp = handle(&src, &get(&format!("/cells/{key}")));
            assert_eq!(resp.status, 200);
            String::from_utf8(resp.body.clone()).unwrap()
        };
        let (text_a, text_b) = (fetch(&keys[0]), fetch(&keys[1]));
        assert_ne!(text_a, text_b, "distinct cells must serialize differently");

        // Destination daemon: an empty cache on a "different host".
        let dst = tmp_state("repl-dst");
        let sha_a = crate::hash::sha256_hex(text_a.as_bytes());
        let route = |sha: &str| format!("/cells/{}?sha256={sha}", keys[0]);
        assert_eq!(handle(&dst, &put(&format!("/cells/{}", keys[0]), &text_a)).status, 400);
        assert_eq!(handle(&dst, &put(&route(&"0".repeat(64)), &text_a)).status, 422);
        assert_eq!(handle(&dst, &get(&format!("/cells/{}", keys[0]))).status, 404);

        let stored = handle(&dst, &put(&route(&sha_a), &text_a));
        assert_eq!(stored.status, 200, "{:?}", String::from_utf8_lossy(&stored.body));
        assert_eq!(body_json(&stored).get("status").and_then(|s| s.as_str()), Some("stored"));
        let again = body_json(&handle(&dst, &put(&route(&sha_a), &text_a)));
        assert_eq!(again.get("status").and_then(|s| s.as_str()), Some("already-present"));

        // A checksum-valid body that is not a cache entry never lands.
        let garbage = r#"{"not": "a cache entry"}"#;
        let sha_g = crate::hash::sha256_hex(garbage.as_bytes());
        assert_eq!(handle(&dst, &put(&route(&sha_g), garbage)).status, 422);

        // Byte conflict: different valid bytes under an existing key is
        // corruption by definition — quarantined, never last-write-wins.
        let sha_b = crate::hash::sha256_hex(text_b.as_bytes());
        assert_eq!(handle(&dst, &put(&route(&sha_b), &text_b)).status, 409);
        let served = handle(&dst, &get(&format!("/cells/{}", keys[0])));
        assert_eq!(String::from_utf8(served.body).unwrap(), text_a, "original bytes survive");
        let quarantine = std::path::Path::new(dst.cache.dir()).join("quarantine");
        assert!(
            std::fs::read_dir(&quarantine).map(|d| d.count() > 0).unwrap_or(false),
            "conflicting copy must land in quarantine/"
        );

        let stats = body_json(&handle(&dst, &get("/stats")));
        let counter = |k: &str| stats.get(k).and_then(|v| v.as_u64());
        assert_eq!(counter("cells_replicated"), Some(1), "{stats:?}");
        assert_eq!(counter("cache_remote_hits"), Some(0), "{stats:?}");

        let _ = std::fs::remove_dir_all(src.cache.dir());
        let _ = std::fs::remove_dir_all(dst.cache.dir());
    }
}
