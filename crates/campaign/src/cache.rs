//! Content-addressed on-disk result cache.
//!
//! Every simulation job serializes to a canonical JSON descriptor; its
//! cache key is the SHA-256 of that descriptor plus a code-version salt.
//! Entries live at `<dir>/<k0k1>/<key>.json` (sharded by the first key
//! byte) and are written atomically (`tmp` + rename), so an interrupted
//! campaign never leaves a truncated entry behind — a half-written file
//! simply re-simulates. Re-running a campaign therefore only simulates
//! the missing cells: resumability and incrementality by construction.

use std::fs;
use std::path::{Path, PathBuf};

use hdsmt_core::SimResult;

use crate::hash::sha256_hex;

/// Bump when the meaning of a cached result changes (simulator semantics,
/// result schema, key schema). Old entries are then simply never hit.
pub const CODE_VERSION: &str = concat!("hdsmt-campaign/", env!("CARGO_PKG_VERSION"), "/schema-2");

/// A content-addressed store of [`SimResult`]s.
#[derive(Clone, Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (and create) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cache key for a canonical job descriptor.
    pub fn key_for(descriptor_json: &str) -> String {
        let mut salted = String::with_capacity(descriptor_json.len() + CODE_VERSION.len() + 1);
        salted.push_str(CODE_VERSION);
        salted.push('\n');
        salted.push_str(descriptor_json);
        sha256_hex(salted.as_bytes())
    }

    fn path(&self, key: &str) -> PathBuf {
        self.dir.join(&key[..2]).join(format!("{key}.json"))
    }

    /// Is a result for `key` present on disk?
    pub fn contains(&self, key: &str) -> bool {
        self.path(key).is_file()
    }

    /// Load the cached result for `key`. Corrupt or unreadable entries
    /// count as misses (the caller re-simulates and overwrites them).
    pub fn get(&self, key: &str) -> Option<SimResult> {
        let text = fs::read_to_string(self.path(key)).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        Some(entry.result)
    }

    /// Atomically store `result` under `key`, alongside its descriptor
    /// (kept for human inspection of the cache).
    pub fn put(&self, key: &str, descriptor_json: &str, result: &SimResult) -> std::io::Result<()> {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Unique per write: two threads simulating the same deterministic
        // job (e.g. the heuristic mapping equalling the oracle best in one
        // measure batch) must not share a tmp path, or the loser's rename
        // fails. The final rename is atomic and both payloads are
        // identical, so last-writer-wins is correct.
        static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
        let descriptor = serde_json::from_str_value(descriptor_json)
            .unwrap_or(serde_json::Value::String(descriptor_json.to_string()));
        let entry =
            CacheEntry { version: CODE_VERSION.to_string(), descriptor, result: result.clone() };
        let final_path = self.path(key);
        fs::create_dir_all(final_path.parent().unwrap())?;
        let tmp = final_path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, serde_json::to_string_pretty(&entry).map_err(io_err)?)?;
        fs::rename(&tmp, &final_path)?;
        Ok(())
    }

    /// Number of entries on disk (status reporting).
    pub fn len(&self) -> usize {
        let Ok(shards) = fs::read_dir(&self.dir) else { return 0 };
        shards
            .flatten()
            .filter(|d| d.path().is_dir())
            .filter_map(|d| fs::read_dir(d.path()).ok())
            .flat_map(|entries| entries.flatten())
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn io_err(e: serde_json::Error) -> std::io::Error {
    std::io::Error::other(e.0)
}

#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct CacheEntry {
    version: String,
    descriptor: serde_json::Value,
    result: SimResult,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsmt_core::SimStats;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hdsmt-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn fake_result() -> SimResult {
        SimResult { arch: "M8".into(), mapping: vec![0, 0], stats: SimStats::default() }
    }

    #[test]
    fn put_get_round_trip() {
        let dir = tmpdir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let key = ResultCache::key_for("{\"job\":1}");
        assert!(!cache.contains(&key));
        assert!(cache.get(&key).is_none());
        cache.put(&key, "{\"job\":1}", &fake_result()).unwrap();
        assert!(cache.contains(&key));
        let got = cache.get(&key).unwrap();
        assert_eq!(got.arch, "M8");
        assert_eq!(got.mapping, vec![0, 0]);
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let dir = tmpdir("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        let key = ResultCache::key_for("{\"job\":2}");
        cache.put(&key, "{\"job\":2}", &fake_result()).unwrap();
        let path = dir.join(&key[..2]).join(format!("{key}.json"));
        fs::write(&path, "{ truncated").unwrap();
        assert!(cache.get(&key).is_none(), "corrupt entry must be a miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_depends_on_descriptor_and_version() {
        let a = ResultCache::key_for("{\"a\":1}");
        let b = ResultCache::key_for("{\"a\":2}");
        assert_ne!(a, b);
        assert_eq!(a, ResultCache::key_for("{\"a\":1}"));
        assert_eq!(a.len(), 64);
    }
}
