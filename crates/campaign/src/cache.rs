//! Content-addressed on-disk result cache.
//!
//! Every simulation job serializes to a canonical JSON descriptor; its
//! cache key is the SHA-256 of that descriptor plus a code-version salt.
//! Entries live at `<dir>/<k0k1>/<key>.json` (sharded by the first key
//! byte) and are written atomically (`tmp` + rename), so an interrupted
//! campaign never leaves a truncated entry behind — a half-written file
//! simply re-simulates. Re-running a campaign therefore only simulates
//! the missing cells: resumability and incrementality by construction.
//!
//! # The remote tier
//!
//! A cache may be given HTTP **peers** ([`ResultCache::with_peers`]):
//! other sweep daemons with their *own* cache directories. A local miss
//! then consults each peer's content-addressed `GET /cells/:hash`,
//! validates the returned entry, lands a copy locally (same atomic
//! tmp + rename as a simulated result), and serves it — so fleets
//! spanning machines share finished cells without a shared filesystem.
//! Replication is governed by one rule, *byte-equality or quarantine*:
//! entries are deterministic, so two copies of one key must be
//! byte-identical, and any divergence is treated as corruption — the
//! suspect copy is quarantined as evidence, never merged
//! last-write-wins, never served. [`ResultCache::sync_from_peer`] runs
//! the anti-entropy direction: diff a peer's `GET /cells?since=`
//! manifest against the local tree and pull what's missing.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hdsmt_core::SimResult;

use crate::hash::sha256_hex;

/// Bump when the meaning of a cached result changes (simulator semantics,
/// result schema, key schema). Old entries are then simply never hit.
pub const CODE_VERSION: &str = concat!("hdsmt-campaign/", env!("CARGO_PKG_VERSION"), "/schema-2");

/// Runtime lookup counters, shared by every clone of a [`ResultCache`]
/// (the serve daemon reports them in `GET /stats`). A **corrupt** entry is
/// one that exists on disk but fails to deserialize — served as a miss
/// (the caller re-simulates), counted separately so silent cache rot is
/// visible instead of just slow, and **quarantined**: atomically renamed
/// into `<dir>/quarantine/` with a reason file, so the rotten bytes are
/// kept as evidence instead of being overwritten.
#[derive(Debug, Default)]
pub struct CacheTelemetry {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    quarantined: AtomicU64,
    remote_hits: AtomicU64,
    replicated: AtomicU64,
    conflicts: AtomicU64,
}

/// Point-in-time snapshot of [`CacheTelemetry`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    /// Entries present on disk but undeserializable at lookup time.
    pub corrupt: u64,
    /// Corrupt entries this process moved into `quarantine/`.
    pub quarantined: u64,
    /// Local misses served by a peer's `GET /cells/:hash`.
    pub remote_hits: u64,
    /// Entries landed from peers (read-through, `PUT /cells`, sync).
    pub replicated: u64,
    /// Replication attempts rejected because a byte-different copy of
    /// the same key already existed (incoming copy quarantined).
    pub conflicts: u64,
}

/// Subdirectory (inside the cache root) holding quarantined entries.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Outcome of a raw entry lookup (`GET /cells/:hash`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryLookup {
    /// The verbatim JSON entry text (version + descriptor + result).
    Hit(String),
    Miss,
    /// Present on disk but does not deserialize.
    Corrupt,
}

/// Successful outcome of landing a replicated entry (`PUT /cells/:hash`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Replicate {
    /// The entry landed (atomically) in the live tree.
    Stored,
    /// A byte-identical copy was already present — idempotent no-op.
    AlreadyPresent,
}

/// Why a replicated entry was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicateError {
    /// The body does not deserialize as a cache entry.
    Invalid,
    /// A byte-*different* copy of this key already exists locally; the
    /// incoming bytes were quarantined, the local copy stays.
    Conflict,
    /// The landing write failed.
    Io(String),
}

/// A content-addressed store of [`SimResult`]s.
#[derive(Clone, Debug)]
pub struct ResultCache {
    dir: PathBuf,
    telemetry: Arc<CacheTelemetry>,
    /// When set, [`Self::put`] fsyncs the entry before the rename and
    /// fsyncs the shard directory after it, extending the crash model
    /// from process death to host power loss (`--durable`).
    durable: bool,
    /// Remote tier: `host:port` of peer daemons whose `GET /cells/:hash`
    /// is consulted on a local miss (`--peer`, or supervisor-plumbed).
    peers: Arc<Vec<String>>,
}

impl ResultCache {
    /// Open (and create) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir,
            telemetry: Arc::new(CacheTelemetry::default()),
            durable: false,
            peers: Arc::new(Vec::new()),
        })
    }

    /// Toggle fsync-before-rename writes (see the `durable` field).
    pub fn with_durable(mut self, durable: bool) -> Self {
        self.durable = durable;
        self
    }

    /// Attach the remote tier: peers consulted (in order) on local miss.
    pub fn with_peers(mut self, peers: Vec<String>) -> Self {
        self.peers = Arc::new(peers);
        self
    }

    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cache key for a canonical job descriptor.
    pub fn key_for(descriptor_json: &str) -> String {
        let mut salted = String::with_capacity(descriptor_json.len() + CODE_VERSION.len() + 1);
        salted.push_str(CODE_VERSION);
        salted.push('\n');
        salted.push_str(descriptor_json);
        sha256_hex(salted.as_bytes())
    }

    fn path(&self, key: &str) -> PathBuf {
        // Total for any key: a key shorter than the two-char shard prefix
        // (impossible for sha256 hex, but this is a durability path) maps
        // to a shard named after the whole key instead of panicking.
        let shard = key.get(..2).unwrap_or(key);
        self.dir.join(shard).join(format!("{key}.json"))
    }

    /// Is a result for `key` present on disk?
    pub fn contains(&self, key: &str) -> bool {
        self.path(key).is_file()
    }

    /// Load the cached result for `key`. Corrupt or unreadable entries
    /// count as misses (the caller re-simulates and overwrites them), but
    /// corrupt ones are additionally tallied in [`Self::counters`].
    pub fn get(&self, key: &str) -> Option<SimResult> {
        match self.entry_text(key) {
            // `entry_text` validated the text deserializes; re-parse
            // defensively anyway — a decode surprise is a miss, not a panic.
            EntryLookup::Hit(text) => {
                serde_json::from_str::<CacheEntry>(&text).ok().map(|entry| entry.result)
            }
            EntryLookup::Miss | EntryLookup::Corrupt => None,
        }
    }

    /// Entry lookup with the remote tier: a local miss consults each
    /// peer's `GET /cells/:hash` in order, lands a verified copy locally,
    /// and serves it. This is what [`Self::get`] (and therefore the whole
    /// job path) uses, so a fleet-wide cache hit never re-simulates.
    pub fn entry_text(&self, key: &str) -> EntryLookup {
        match self.entry_text_local(key) {
            EntryLookup::Miss if !self.peers.is_empty() => self.read_through(key),
            other => other,
        }
    }

    /// Raw **local-only** entry lookup: the verbatim on-disk JSON,
    /// validated. This is the `GET /cells/:hash` backend — the entry text
    /// is already the response body, and serving it must never recurse
    /// into the remote tier (two daemons peering at each other would
    /// bounce a missing key back and forth forever). Updates the
    /// telemetry counters like [`Self::get`]. A corrupt entry is
    /// quarantined on detection (see [`Self::quarantined_entries`]), so
    /// the *next* lookup of the same key is a clean miss that
    /// re-simulates.
    pub fn entry_text_local(&self, key: &str) -> EntryLookup {
        if crate::fault::on_cache_get(key) {
            self.telemetry.misses.fetch_add(1, Ordering::Relaxed);
            return EntryLookup::Miss;
        }
        let Ok(text) = fs::read_to_string(self.path(key)) else {
            self.telemetry.misses.fetch_add(1, Ordering::Relaxed);
            return EntryLookup::Miss;
        };
        if serde_json::from_str::<CacheEntry>(&text).is_err() {
            self.telemetry.corrupt.fetch_add(1, Ordering::Relaxed);
            self.quarantine(key, "failed to deserialize at lookup");
            return EntryLookup::Corrupt;
        }
        self.telemetry.hits.fetch_add(1, Ordering::Relaxed);
        EntryLookup::Hit(text)
    }

    /// The remote half of [`Self::entry_text`]: first peer with a valid
    /// copy wins. Landing the copy locally is best-effort — the fetched
    /// text is served either way; a failed write just means the next
    /// lookup asks the peer again.
    fn read_through(&self, key: &str) -> EntryLookup {
        for peer in self.peers.iter() {
            let Some(text) = self.fetch_from_peer(peer, key) else { continue };
            if self.land_text(key, text.as_bytes()).is_ok() {
                self.telemetry.replicated.fetch_add(1, Ordering::Relaxed);
            }
            self.telemetry.remote_hits.fetch_add(1, Ordering::Relaxed);
            return EntryLookup::Hit(text);
        }
        EntryLookup::Miss
    }

    /// `GET /cells/:hash` against one peer; `None` unless the peer
    /// returns 200 with a body that deserializes as a cache entry (a
    /// truncated or tampered response must not poison this cache).
    fn fetch_from_peer(&self, peer: &str, key: &str) -> Option<String> {
        let (status, body) = crate::serve::http::http_get(peer, &format!("/cells/{key}")).ok()?;
        if status != 200 || serde_json::from_str::<CacheEntry>(&body).is_err() {
            return None;
        }
        Some(body)
    }

    /// Move a rotten entry into `<dir>/quarantine/` (atomic rename) with a
    /// sibling `.reason.txt`, so cache rot is preserved evidence instead
    /// of silently overwritten. Losing the rename race (a concurrent
    /// process already quarantined it, or a writer just healed the key) is
    /// fine — the entry is gone from the live tree either way.
    pub(crate) fn quarantine(&self, key: &str, reason: &str) {
        let qdir = self.dir.join(QUARANTINE_DIR);
        let _ = fs::create_dir_all(&qdir);
        if fs::rename(self.path(key), qdir.join(format!("{key}.json"))).is_ok() {
            self.telemetry.quarantined.fetch_add(1, Ordering::Relaxed);
            let _ = fs::write(
                qdir.join(format!("{key}.reason.txt")),
                format!("quarantined by pid {}: {reason}\n", std::process::id()),
            );
        }
    }

    /// Number of quarantined entries on disk (any process may have put
    /// them there — this scans, unlike the per-process counter in
    /// [`Self::counters`]).
    pub fn quarantined_entries(&self) -> usize {
        fs::read_dir(self.dir.join(QUARANTINE_DIR))
            .into_iter()
            .flatten()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .count()
    }

    /// Snapshot of the runtime lookup counters (shared across clones).
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.telemetry.hits.load(Ordering::Relaxed),
            misses: self.telemetry.misses.load(Ordering::Relaxed),
            corrupt: self.telemetry.corrupt.load(Ordering::Relaxed),
            quarantined: self.telemetry.quarantined.load(Ordering::Relaxed),
            remote_hits: self.telemetry.remote_hits.load(Ordering::Relaxed),
            replicated: self.telemetry.replicated.load(Ordering::Relaxed),
            conflicts: self.telemetry.conflicts.load(Ordering::Relaxed),
        }
    }

    /// Walk every entry on disk and count the ones that fail to
    /// deserialize. O(cache size) — used by `status` reporting, not by
    /// the lookup path (which counts lazily via [`Self::counters`]).
    pub fn corrupt_entries(&self) -> usize {
        self.entry_paths()
            .filter(|p| {
                fs::read_to_string(p)
                    .map(|t| serde_json::from_str::<CacheEntry>(&t).is_err())
                    .unwrap_or(true)
            })
            .count()
    }

    /// Atomically store `result` under `key`, alongside its descriptor
    /// (kept for human inspection of the cache).
    pub fn put(&self, key: &str, descriptor_json: &str, result: &SimResult) -> std::io::Result<()> {
        // Unique per write: two threads simulating the same deterministic
        // job (e.g. the heuristic mapping equalling the oracle best in one
        // measure batch) must not share a tmp path, or the loser's rename
        // fails. The final rename is atomic and both payloads are
        // identical, so last-writer-wins is correct.
        static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
        let descriptor = serde_json::from_str_value(descriptor_json)
            .unwrap_or(serde_json::Value::String(descriptor_json.to_string()));
        let entry =
            CacheEntry { version: CODE_VERSION.to_string(), descriptor, result: result.clone() };
        let final_path = self.path(key);
        let shard_dir = final_path
            .parent()
            .ok_or_else(|| std::io::Error::other("cache entry path has no parent directory"))?;
        fs::create_dir_all(shard_dir)?;
        let tmp = final_path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut payload = serde_json::to_string_pretty(&entry).map_err(io_err)?.into_bytes();
        crate::fault::on_cache_put(&mut payload)?;
        fs::write(&tmp, payload)?;
        if self.durable {
            // Flush the entry's bytes before publishing the name, then
            // make the rename itself durable: after a power loss the key
            // either resolves to the complete entry or does not exist.
            fs::File::open(&tmp)?.sync_all()?;
        }
        fs::rename(&tmp, &final_path)?;
        if self.durable {
            crate::journal::fsync_dir(shard_dir)?;
        }
        Ok(())
    }

    /// Atomically land verbatim entry bytes under `key` (tmp + rename,
    /// honoring `--durable`) — the write half of the remote tier, where
    /// the payload is an already-serialized entry instead of a
    /// [`SimResult`]. Callers validate the bytes first.
    fn land_text(&self, key: &str, payload: &[u8]) -> std::io::Result<()> {
        // Unique per write, same reasoning as `put`: concurrent landings
        // of one deterministic entry must not share a tmp path.
        static LAND_SEQ: AtomicU64 = AtomicU64::new(0);
        let final_path = self.path(key);
        let shard_dir = final_path
            .parent()
            .ok_or_else(|| std::io::Error::other("cache entry path has no parent directory"))?;
        fs::create_dir_all(shard_dir)?;
        let tmp = final_path.with_extension(format!(
            "tmp.{}.r{}",
            std::process::id(),
            LAND_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, payload)?;
        if self.durable {
            fs::File::open(&tmp)?.sync_all()?;
        }
        fs::rename(&tmp, &final_path)?;
        if self.durable {
            crate::journal::fsync_dir(shard_dir)?;
        }
        Ok(())
    }

    /// Land a replicated entry pushed by a peer (`PUT /cells/:hash`).
    /// Enforces the byte-equality-or-quarantine rule: an identical copy
    /// is idempotent, a divergent copy under a valid local entry is
    /// quarantined evidence (the local copy stays authoritative), and a
    /// rotten local copy is quarantined so the verified incoming copy
    /// heals the key.
    pub fn put_entry_text(&self, key: &str, body: &str) -> Result<Replicate, ReplicateError> {
        if serde_json::from_str::<CacheEntry>(body).is_err() {
            return Err(ReplicateError::Invalid);
        }
        match fs::read_to_string(self.path(key)) {
            Ok(existing) if existing == body => return Ok(Replicate::AlreadyPresent),
            Ok(existing) => {
                if serde_json::from_str::<CacheEntry>(&existing).is_ok() {
                    // Entries are deterministic: same key, different
                    // bytes means one side is corrupt. Keep the local
                    // copy, quarantine the incoming bytes as evidence —
                    // never last-write-wins.
                    self.telemetry.conflicts.fetch_add(1, Ordering::Relaxed);
                    self.quarantine_conflict(key, body);
                    return Err(ReplicateError::Conflict);
                }
                self.telemetry.corrupt.fetch_add(1, Ordering::Relaxed);
                self.quarantine(key, "local copy invalid when replication landed");
            }
            Err(_) => {}
        }
        self.land_text(key, body.as_bytes()).map_err(|e| ReplicateError::Io(e.to_string()))?;
        self.telemetry.replicated.fetch_add(1, Ordering::Relaxed);
        Ok(Replicate::Stored)
    }

    /// Preserve a conflicting incoming copy in `quarantine/` (the live
    /// tree keeps the local entry). Distinct file names per key keep the
    /// evidence from colliding with a quarantined local copy.
    fn quarantine_conflict(&self, key: &str, body: &str) {
        let qdir = self.dir.join(QUARANTINE_DIR);
        let _ = fs::create_dir_all(&qdir);
        if fs::write(qdir.join(format!("{key}.conflict.json")), body).is_ok() {
            self.telemetry.quarantined.fetch_add(1, Ordering::Relaxed);
            let _ = fs::write(
                qdir.join(format!("{key}.conflict.reason.txt")),
                format!(
                    "replication conflict detected by pid {}: incoming bytes differ from \
                     the local entry for this key\n",
                    std::process::id()
                ),
            );
        }
    }

    /// `(key, mtime unix-seconds)` for every live entry, sorted by key —
    /// the anti-entropy manifest behind `GET /cells?since=`. With
    /// `since`, entries modified before `since - 1` are filtered out
    /// (one second of slack absorbs filesystem timestamp granularity).
    pub fn manifest(&self, since: Option<u64>) -> Vec<(String, u64)> {
        let floor = since.map(|s| s.saturating_sub(1));
        let mut cells: Vec<(String, u64)> = self
            .entry_paths()
            .filter_map(|p| {
                let key = p.file_stem()?.to_str()?.to_string();
                let mtime = fs::metadata(&p)
                    .ok()?
                    .modified()
                    .ok()?
                    .duration_since(std::time::UNIX_EPOCH)
                    .ok()?
                    .as_secs();
                Some((key, mtime))
            })
            .filter(|(_, mtime)| floor.is_none_or(|f| *mtime >= f))
            .collect();
        cells.sort();
        cells
    }

    /// Anti-entropy pull: diff `peer`'s manifest against the local tree
    /// and fetch every entry this cache is missing. Returns how many
    /// entries landed. Best-effort by design — an unreachable peer or a
    /// failed fetch only lowers the count; the caller's replay falls
    /// back to read-through (or re-simulation) for whatever is left.
    pub fn sync_from_peer(&self, peer: &str, since: Option<u64>) -> usize {
        let path = match since {
            Some(s) => format!("/cells?since={s}"),
            None => "/cells".to_string(),
        };
        let Ok((status, body)) = crate::serve::http::http_get(peer, &path) else { return 0 };
        if status != 200 {
            return 0;
        }
        let Ok(value) = serde_json::from_str_value(&body) else { return 0 };
        let mut pulled = 0usize;
        for cell in value.get("cells").and_then(|c| c.as_array()).into_iter().flatten() {
            let Some(key) = cell.get("key").and_then(|k| k.as_str()) else { continue };
            if self.contains(key) {
                continue;
            }
            let Some(text) = self.fetch_from_peer(peer, key) else { continue };
            if self.land_text(key, text.as_bytes()).is_ok() {
                self.telemetry.replicated.fetch_add(1, Ordering::Relaxed);
                pulled += 1;
            }
        }
        pulled
    }

    /// Every live `*.json` entry path on disk, in directory order. Only
    /// the two-hex-char shard directories count: `quarantine/` (and any
    /// other bookkeeping subdirectory) is not part of the live cache.
    fn entry_paths(&self) -> impl Iterator<Item = PathBuf> + '_ {
        fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter(|d| {
                let name = d.file_name();
                let name = name.to_string_lossy();
                name.len() == 2 && name.bytes().all(|b| b.is_ascii_hexdigit()) && d.path().is_dir()
            })
            .filter_map(|d| fs::read_dir(d.path()).ok())
            .flat_map(|entries| entries.flatten())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
    }

    /// Number of entries on disk (status reporting).
    pub fn len(&self) -> usize {
        self.entry_paths().count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Walk every live entry, quarantining the ones that fail to parse.
    /// Returns `(entries_checked, corrupt_quarantined)`. This is the
    /// `fsck` scrub pass: unlike the lazy lookup path it touches the
    /// whole tree, so rot in cells no campaign is currently polling is
    /// found too. Run it on a quiescent cache — a writer racing the scan
    /// can publish an entry the walk misses (harmless: the next scrub
    /// sees it).
    pub fn scrub(&self) -> (usize, usize) {
        let paths: Vec<PathBuf> = self.entry_paths().collect();
        let mut quarantined = 0usize;
        for path in &paths {
            let rotten = fs::read_to_string(path)
                .map(|t| serde_json::from_str::<CacheEntry>(&t).is_err())
                .unwrap_or(true);
            if rotten {
                if let Some(key) = path.file_stem().and_then(|s| s.to_str()) {
                    self.telemetry.corrupt.fetch_add(1, Ordering::Relaxed);
                    self.quarantine(key, "failed to deserialize during scrub");
                    quarantined += 1;
                }
            }
        }
        (paths.len(), quarantined)
    }

    /// Directories a killed writer can strand `*.tmp` files in: the
    /// shard dirs (cache entries), `journal/` (compaction tmps), and
    /// `.supervise/` (address files).
    fn tmp_dirs(&self) -> Vec<PathBuf> {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter(|d| {
                let name = d.file_name();
                let name = name.to_string_lossy();
                let shard = name.len() == 2 && name.bytes().all(|b| b.is_ascii_hexdigit());
                (shard || name == crate::journal::JOURNAL_DIR || name == ".supervise")
                    && d.path().is_dir()
            })
            .map(|d| d.path())
            .collect();
        dirs.push(self.dir.clone());
        dirs
    }

    /// Every orphan-candidate `*.tmp*` file under the cache tree.
    fn tmp_paths(&self) -> Vec<PathBuf> {
        self.tmp_dirs()
            .into_iter()
            .filter_map(|d| fs::read_dir(d).ok())
            .flat_map(|entries| entries.flatten())
            .map(|e| e.path())
            .filter(|p| {
                p.is_file()
                    && p.file_name().map(|n| n.to_string_lossy().contains(".tmp")).unwrap_or(false)
            })
            .collect()
    }

    /// Number of `*.tmp` files currently in the tree (status reporting).
    pub fn tmp_files(&self) -> usize {
        self.tmp_paths().len()
    }

    /// Delete `*.tmp` files older than `older_than` and return how many
    /// were reaped. The age threshold is the safety margin that keeps a
    /// racing *live* writer's seconds-old tmp file untouched; a file a
    /// killed writer stranded only gets older. An unreadable mtime means
    /// "not provably old" — the file is skipped, never reaped.
    pub fn reap_tmp(&self, older_than: Duration) -> usize {
        let mut reaped = 0usize;
        for path in self.tmp_paths() {
            let old = fs::metadata(&path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|m| m.elapsed().ok())
                .is_some_and(|age| age >= older_than);
            if old && fs::remove_file(&path).is_ok() {
                reaped += 1;
            }
        }
        reaped
    }

    /// Age of the oldest quarantined entry, if any — surfaced in stats
    /// so forgotten quarantine evidence shows up instead of rotting
    /// silently forever.
    pub fn quarantine_oldest_age(&self) -> Option<Duration> {
        fs::read_dir(self.dir.join(QUARANTINE_DIR))
            .into_iter()
            .flatten()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter_map(|e| e.metadata().ok()?.modified().ok()?.elapsed().ok())
            .max()
    }

    /// Remove quarantined entries (and their reason files) older than
    /// `older_than`. Returns the number of entries removed. This is the
    /// `fsck --gc` pass: quarantine is evidence, not a landfill.
    pub fn quarantine_gc(&self, older_than: Duration) -> usize {
        let qdir = self.dir.join(QUARANTINE_DIR);
        let mut removed = 0usize;
        for entry in fs::read_dir(&qdir).into_iter().flatten().flatten() {
            let path = entry.path();
            if path.extension().is_none_or(|x| x != "json") {
                continue;
            }
            let old = entry
                .metadata()
                .ok()
                .and_then(|m| m.modified().ok())
                .and_then(|m| m.elapsed().ok())
                .is_some_and(|age| age >= older_than);
            if old && fs::remove_file(&path).is_ok() {
                removed += 1;
                if let Some(key) = path.file_stem().and_then(|s| s.to_str()) {
                    let _ = fs::remove_file(qdir.join(format!("{key}.reason.txt")));
                }
            }
        }
        removed
    }
}

fn io_err(e: serde_json::Error) -> std::io::Error {
    std::io::Error::other(e.0)
}

#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct CacheEntry {
    version: String,
    descriptor: serde_json::Value,
    result: SimResult,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsmt_core::SimStats;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hdsmt-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn fake_result() -> SimResult {
        SimResult { arch: "M8".into(), mapping: vec![0, 0], stats: SimStats::default() }
    }

    #[test]
    fn put_get_round_trip() {
        let dir = tmpdir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let key = ResultCache::key_for("{\"job\":1}");
        assert!(!cache.contains(&key));
        assert!(cache.get(&key).is_none());
        cache.put(&key, "{\"job\":1}", &fake_result()).unwrap();
        assert!(cache.contains(&key));
        let got = cache.get(&key).unwrap();
        assert_eq!(got.arch, "M8");
        assert_eq!(got.mapping, vec![0, 0]);
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_served_as_a_miss() {
        let dir = tmpdir("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        let key = ResultCache::key_for("{\"job\":2}");
        let good = ResultCache::key_for("{\"job\":3}");
        cache.put(&key, "{\"job\":2}", &fake_result()).unwrap();
        cache.put(&good, "{\"job\":3}", &fake_result()).unwrap();
        // Truncate one entry mid-file — the shape an interrupted write
        // would leave if the tmp+rename protocol were ever violated.
        let path = dir.join(&key[..2]).join(format!("{key}.json"));
        fs::write(&path, "{ truncated").unwrap();

        // First lookup detects the rot, reports it, and quarantines the
        // bytes; the file leaves the live tree.
        assert_eq!(cache.entry_text(&key), EntryLookup::Corrupt);
        assert!(!cache.contains(&key), "quarantine removes the live entry");
        assert_eq!(cache.quarantined_entries(), 1);
        assert_eq!(cache.len(), 1, "quarantined entries are not live entries");
        assert_eq!(cache.corrupt_entries(), 0, "the live tree is clean again");
        let reason = dir.join(QUARANTINE_DIR).join(format!("{key}.reason.txt"));
        assert!(reason.is_file(), "a reason file documents the quarantine");

        // Subsequent lookups are clean misses; siblings are unaffected.
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.entry_text(&key), EntryLookup::Miss);
        assert!(cache.get(&good).is_some(), "sibling entries are unaffected");

        // Telemetry distinguishes the outcomes — and is shared across
        // clones (the daemon holds clones per worker).
        let counters = cache.clone().counters();
        assert_eq!(counters.corrupt, 1, "{counters:?}");
        assert_eq!(counters.quarantined, 1, "{counters:?}");
        assert_eq!(counters.hits, 1, "{counters:?}");
        assert_eq!(counters.misses, 2, "{counters:?}");

        // Re-simulating re-creates the entry and heals the cache; the
        // quarantined evidence stays put.
        cache.put(&key, "{\"job\":2}", &fake_result()).unwrap();
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.quarantined_entries(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_quarantines_rot_the_lookup_path_never_touched() {
        let dir = tmpdir("scrub");
        let cache = ResultCache::open(&dir).unwrap();
        let good = ResultCache::key_for("{\"job\":10}");
        let bad = ResultCache::key_for("{\"job\":11}");
        cache.put(&good, "{\"job\":10}", &fake_result()).unwrap();
        cache.put(&bad, "{\"job\":11}", &fake_result()).unwrap();
        fs::write(dir.join(&bad[..2]).join(format!("{bad}.json")), "not json").unwrap();

        let (checked, quarantined) = cache.scrub();
        assert_eq!(checked, 2);
        assert_eq!(quarantined, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.quarantined_entries(), 1);
        assert_eq!(cache.scrub(), (1, 0), "a second scrub finds a clean tree");

        // --gc with a zero threshold clears the quarantine, reason files
        // included; a huge threshold removes nothing.
        assert_eq!(cache.quarantine_gc(Duration::from_secs(1 << 20)), 0);
        assert!(cache.quarantine_oldest_age().is_some());
        assert_eq!(cache.quarantine_gc(Duration::ZERO), 1);
        assert_eq!(cache.quarantined_entries(), 0);
        assert!(cache.quarantine_oldest_age().is_none());
        assert!(
            !dir.join(QUARANTINE_DIR).join(format!("{bad}.reason.txt")).exists(),
            "gc removes the reason file with the entry"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_reaping_respects_the_age_threshold() {
        let dir = tmpdir("reap");
        let cache = ResultCache::open(&dir).unwrap();
        let key = ResultCache::key_for("{\"job\":20}");
        cache.put(&key, "{\"job\":20}", &fake_result()).unwrap();
        // Strand tmp files where killed writers leave them: a shard dir
        // and the journal dir.
        let shard = dir.join(&key[..2]);
        fs::write(shard.join(format!("{key}.json.tmp.999.0")), "orphan").unwrap();
        fs::create_dir_all(dir.join(crate::journal::JOURNAL_DIR)).unwrap();
        fs::write(dir.join(crate::journal::JOURNAL_DIR).join("serve.wal.tmp"), "orphan").unwrap();
        assert_eq!(cache.tmp_files(), 2);

        // Fresh files survive a thresholded reap (they might be a live
        // writer's), then a zero threshold takes them all.
        assert_eq!(cache.reap_tmp(Duration::from_secs(1 << 20)), 0);
        assert_eq!(cache.tmp_files(), 2);
        assert_eq!(cache.reap_tmp(Duration::ZERO), 2);
        assert_eq!(cache.tmp_files(), 0);
        assert!(cache.contains(&key), "live entries are untouched");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_put_round_trips() {
        let dir = tmpdir("durable");
        let cache = ResultCache::open(&dir).unwrap().with_durable(true);
        let key = ResultCache::key_for("{\"job\":30}");
        cache.put(&key, "{\"job\":30}", &fake_result()).unwrap();
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.tmp_files(), 0, "no tmp file survives a durable put");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_depends_on_descriptor_and_version() {
        let a = ResultCache::key_for("{\"a\":1}");
        let b = ResultCache::key_for("{\"a\":2}");
        assert_ne!(a, b);
        assert_eq!(a, ResultCache::key_for("{\"a\":1}"));
        assert_eq!(a.len(), 64);
    }
}
