//! Durable write-ahead journal for accepted campaigns.
//!
//! The serve daemon's in-memory queue (and the supervisor's ledger) make
//! an accepted-but-unfinished campaign a single-point-of-failure: a
//! SIGKILL or host power loss silently drops it. The journal closes that
//! hole: every accepted campaign is appended — and fsynced — to
//! `<cache_dir>/journal/<role>.wal` *before* the 202 leaves the daemon,
//! and marked with a terminal record when it completes. On startup the
//! daemon replays the journal and resubmits every still-pending campaign
//! through the ordinary cached [`crate::job::JobRunner`] path, which is
//! idempotent by construction (finished cells are cache hits).
//!
//! # On-disk format
//!
//! A journal file is a sequence of length-prefixed, checksummed frames:
//!
//! ```text
//! ┌──────────────┬────────────────────┬───────────────────┐
//! │ len: u32 LE  │ fnv1a(payload): u64 LE │ payload (JSON)  │
//! └──────────────┴────────────────────┴───────────────────┘
//! ```
//!
//! The payload is one [`Record`] as JSON (`op` ∈ `accept`/`done`/
//! `failed`, plus the campaign id and — for accepts — the verbatim spec
//! text). Frames are append-only and each append is `fdatasync`ed, so
//! after a crash the file is a prefix of valid frames followed by at most
//! one torn frame. Replay stops at the first incomplete or
//! checksum-failing frame and **discards the tail** instead of poisoning
//! recovery; the pending set is then every `accept` without a matching
//! terminal record. Opening the journal compacts it (pending accepts
//! only) via tmp + fsync + rename + directory fsync, which also truncates
//! any torn tail.
//!
//! Campaign ids are preserved across restarts: a client that got
//! `{"id":"c3-…"}` before the crash can keep polling the same id after
//! the daemon comes back.
//!
//! A supervisor's `fleet.wal` is the single source of truth for its
//! whole fleet — including *adopted* remote workers (`--worker ADDR`),
//! which journal nothing on the supervisor's behalf: after a supervisor
//! restart, replayed campaigns are resubmitted to every worker and the
//! workers' own caches make the resubmission idempotent.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Subdirectory of the cache root holding the journal files.
pub const JOURNAL_DIR: &str = "journal";

/// Sanity bound on a single frame's payload — anything larger is treated
/// as a torn/garbage header, not an allocation request.
const MAX_RECORD_LEN: usize = 16 * 1024 * 1024;

pub const OP_ACCEPT: &str = "accept";
pub const OP_DONE: &str = "done";
pub const OP_FAILED: &str = "failed";

/// One journal frame's payload.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Record {
    /// `accept`, `done`, or `failed`.
    pub op: String,
    /// The campaign id the daemon handed out (`c…`/`f…`) — stable across
    /// restarts.
    pub id: String,
    /// Display name (accepts only; empty otherwise).
    pub name: String,
    /// Verbatim spec text (accepts only; empty otherwise).
    pub spec: String,
}

impl Record {
    pub fn accept(id: &str, name: &str, spec: &str) -> Record {
        Record { op: OP_ACCEPT.into(), id: id.into(), name: name.into(), spec: spec.into() }
    }

    pub fn done(id: &str) -> Record {
        Record { op: OP_DONE.into(), id: id.into(), name: String::new(), spec: String::new() }
    }

    pub fn failed(id: &str) -> Record {
        Record { op: OP_FAILED.into(), id: id.into(), name: String::new(), spec: String::new() }
    }
}

/// FNV-1a 64-bit — the frame checksum. Not cryptographic; it only has to
/// catch torn writes and bit rot, same as the retry-jitter hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn frame(record: &Record) -> io::Result<Vec<u8>> {
    let payload = serde_json::to_string(record).map_err(|e| io::Error::other(e.0))?.into_bytes();
    let mut buf = Vec::with_capacity(12 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
    Ok(buf)
}

/// What a journal replay recovered.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    /// Every complete, checksum-valid record, in append order.
    pub records: Vec<Record>,
    /// Accepts without a matching terminal record — the campaigns the
    /// daemon must resume.
    pub pending: Vec<Record>,
    /// Bytes discarded from the tail (torn frame, bad checksum, or
    /// trailing garbage). Zero for a cleanly closed journal.
    pub torn_bytes: u64,
}

/// Little-endian u32 at the front of `b`, if `b` is long enough.
fn le_u32(b: &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(..4)?.try_into().ok()?))
}

/// Little-endian u64 at the front of `b`, if `b` is long enough.
fn le_u64(b: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(..8)?.try_into().ok()?))
}

/// Decode a journal byte stream. Never panics: the tail after the last
/// complete frame is counted in [`Replay::torn_bytes`] and dropped. All
/// frame access goes through `.get(..)` — a torn header is a decode stop,
/// not a slice-index panic (PR 8 contract: degrade, don't die).
pub fn replay_bytes(bytes: &[u8]) -> Replay {
    let mut records = Vec::new();
    let mut off = 0usize;
    while let Some(len) = bytes.get(off..off + 4).and_then(le_u32) {
        let Some(check) = bytes.get(off + 4..off + 12).and_then(le_u64) else {
            break;
        };
        let len = len as usize;
        if len == 0 || len > MAX_RECORD_LEN {
            break;
        }
        let Some(payload) = bytes.get(off + 12..off + 12 + len) else {
            break;
        };
        if fnv1a(payload) != check {
            break;
        }
        let Ok(record) = std::str::from_utf8(payload)
            .map_err(|_| ())
            .and_then(|text| serde_json::from_str::<Record>(text).map_err(|_| ()))
        else {
            break;
        };
        records.push(record);
        off += 12 + len;
    }
    Replay { pending: pending_of(&records), records, torn_bytes: (bytes.len() - off) as u64 }
}

/// Replay a journal file; a missing file is an empty journal.
pub fn replay_file(path: &Path) -> io::Result<Replay> {
    match fs::read(path) {
        Ok(bytes) => Ok(replay_bytes(&bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Replay::default()),
        Err(e) => Err(e),
    }
}

/// The accepts in `records` that no later terminal record resolved.
fn pending_of(records: &[Record]) -> Vec<Record> {
    let mut pending: Vec<Record> = Vec::new();
    for r in records {
        match r.op.as_str() {
            OP_ACCEPT if !pending.iter().any(|p| p.id == r.id) => pending.push(r.clone()),
            OP_DONE | OP_FAILED => pending.retain(|p| p.id != r.id),
            _ => {}
        }
    }
    pending
}

/// The numeric sequence inside a campaign id (`c12-ab…` → 12, `f3-…` →
/// 3). Recovery seeds the daemon's id counter past the replayed maximum
/// so fresh submissions never collide with revived campaigns.
pub fn id_seq(id: &str) -> u64 {
    let digits: String = id
        .chars()
        .skip_while(|c| c.is_ascii_alphabetic())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().unwrap_or(0)
}

/// Fsync a directory, making a just-renamed entry inside it durable.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Every `*.wal` file under `<cache_dir>/journal/`.
pub fn journal_files(cache_dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(cache_dir.join(JOURNAL_DIR))
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    files.sort();
    files
}

/// Rewrite a journal file to exactly `records`, crash-consistently: tmp
/// file, fsync, rename over the original, fsync the directory. At any
/// interruption point the file is either the old journal or the new one.
pub fn rewrite(path: &Path, records: &[Record]) -> io::Result<()> {
    let tmp = path.with_extension("wal.tmp");
    let mut buf = Vec::new();
    for r in records {
        buf.extend_from_slice(&frame(r)?);
    }
    let mut f = File::create(&tmp)?;
    f.write_all(&buf)?;
    f.sync_all()?;
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        fsync_dir(parent)?;
    }
    Ok(())
}

/// An open, appendable journal. Clone-free: owners share it behind an
/// `Arc`. Appends take a mutex (frames must not interleave) and fsync
/// before returning — that is the durability contract the 202 relies on.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    /// Frames currently in the file (pending-at-open + appended since).
    records: AtomicU64,
    /// Campaigns resubmitted from this journal at startup (set by the
    /// owner after recovery; surfaced in `GET /stats`).
    replayed: AtomicU64,
}

impl Journal {
    /// Path of the journal for `role` under `cache_dir`.
    pub fn role_path(cache_dir: &Path, role: &str) -> PathBuf {
        cache_dir.join(JOURNAL_DIR).join(format!("{role}.wal"))
    }

    /// Open (creating directories as needed) the journal for `role`,
    /// replaying and compacting whatever a previous incarnation left.
    /// Returns the journal plus the replay — `replay.pending` is the
    /// work the caller must resume.
    pub fn open(cache_dir: &Path, role: &str) -> io::Result<(Journal, Replay)> {
        let path = Self::role_path(cache_dir, role);
        let parent = path
            .parent()
            .ok_or_else(|| io::Error::other("journal role path has no parent directory"))?;
        fs::create_dir_all(parent)?;
        let replay = replay_file(&path)?;
        // Compact unless the file already is exactly its pending set:
        // truncates any torn tail and drops resolved accept/done pairs.
        if replay.torn_bytes > 0 || replay.records.len() != replay.pending.len() {
            rewrite(&path, &replay.pending)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let journal = Journal {
            path,
            file: Mutex::new(file),
            records: AtomicU64::new(replay.pending.len() as u64),
            replayed: AtomicU64::new(0),
        };
        Ok((journal, replay))
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record and fsync it. Only returns `Ok` once the bytes
    /// are on stable storage — callers answer the client *after* this.
    /// I/O failures (ENOSPC, injected `err@journal`) surface as `Err` so
    /// the API can degrade to 503 + Retry-After instead of lying.
    pub fn append(&self, record: &Record) -> io::Result<()> {
        let mut buf = frame(record)?;
        let write = crate::fault::on_journal_append(&mut buf)?;
        let mut file = self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        file.write_all(&buf)?;
        file.sync_data()?;
        if matches!(write, crate::fault::JournalWrite::TornAbort) {
            // The torn frame is durably on disk — exactly the state a
            // power loss mid-append leaves — now die like one.
            eprintln!("fault-inject: torn@journal — torn frame persisted, aborting");
            std::process::abort();
        }
        self.records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Frames currently in the file.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    pub fn set_replayed(&self, n: u64) {
        self.replayed.store(n, Ordering::Relaxed);
    }

    pub fn replayed(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("hdsmt-journal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_replay_round_trip_and_pending_tracking() {
        let dir = tmpdir("roundtrip");
        let (journal, replay) = Journal::open(&dir, "serve").unwrap();
        assert!(replay.records.is_empty());
        journal.append(&Record::accept("c1-aa", "first", "spec-1")).unwrap();
        journal.append(&Record::accept("c2-bb", "second", "spec-2")).unwrap();
        journal.append(&Record::done("c1-aa")).unwrap();
        assert_eq!(journal.records(), 3);
        drop(journal);

        let replay = replay_file(&Journal::role_path(&dir, "serve")).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.pending.len(), 1, "done campaigns are not pending");
        assert_eq!(replay.pending[0].id, "c2-bb");
        assert_eq!(replay.pending[0].spec, "spec-2");

        // Re-opening compacts to the pending set and keeps appending.
        let (journal, replay) = Journal::open(&dir, "serve").unwrap();
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(journal.records(), 1, "compaction dropped the resolved pair");
        journal.append(&Record::failed("c2-bb")).unwrap();
        drop(journal);
        let (journal, replay) = Journal::open(&dir, "serve").unwrap();
        assert!(replay.pending.is_empty(), "failed is terminal too");
        assert_eq!(journal.records(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_and_compacted_away() {
        let dir = tmpdir("torn");
        let (journal, _) = Journal::open(&dir, "serve").unwrap();
        journal.append(&Record::accept("c1-aa", "one", "spec-1")).unwrap();
        journal.append(&Record::accept("c2-bb", "two", "spec-2")).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);

        // Append half a frame — what a crash mid-append leaves.
        let torn = &frame(&Record::accept("c3-cc", "three", "spec-3")).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        fs::write(&path, &bytes).unwrap();

        let replay = replay_file(&path).unwrap();
        assert_eq!(replay.records.len(), 2, "complete frames all recover");
        assert!(replay.torn_bytes > 0, "the torn tail is reported");
        assert_eq!(replay.pending.len(), 2);

        // A corrupted checksum mid-file stops replay at the corruption.
        let mut flipped = fs::read(&path).unwrap();
        flipped[14] ^= 0xff; // inside the first frame's payload
        assert_eq!(replay_bytes(&flipped).records.len(), 0, "bad checksum stops replay");

        // Open compacts: the torn tail is gone, the two accepts survive.
        let (journal, replay) = Journal::open(&dir, "serve").unwrap();
        assert_eq!(replay.pending.len(), 2);
        assert_eq!(journal.records(), 2);
        drop(journal);
        let clean = replay_file(&path).unwrap();
        assert_eq!(clean.torn_bytes, 0, "compaction truncated the torn tail");
        assert_eq!(clean.records.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_accepts_and_unknown_ops_are_tolerated() {
        let a = Record::accept("c1-aa", "one", "s");
        let records = vec![
            a.clone(),
            a.clone(), // a replayed-then-recrashed daemon can double-accept
            Record {
                op: "future-op".into(),
                id: "x".into(),
                name: String::new(),
                spec: String::new(),
            },
            Record::done("never-accepted"),
        ];
        assert_eq!(pending_of(&records), vec![a]);
    }

    #[test]
    fn id_seq_parses_the_sequence_prefix() {
        assert_eq!(id_seq("c12-deadbeef"), 12);
        assert_eq!(id_seq("f3-00aa11"), 3);
        assert_eq!(id_seq("garbage"), 0);
        assert_eq!(id_seq(""), 0);
    }

    // The satellite property: truncating a valid journal at EVERY byte
    // offset never panics and recovers exactly the records whose
    // checksummed frames are complete.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        fn truncation_at_every_offset_recovers_exactly_the_complete_frames(
            shapes in prop::collection::vec((0u8..3, 0usize..40, any::<u64>()), 1..7)
        ) {
            let records: Vec<Record> = shapes
                .iter()
                .enumerate()
                .map(|(i, (op, spec_len, salt))| {
                    let id = format!("c{}-{salt:08x}", i + 1);
                    match op {
                        0 => Record::accept(&id, &format!("camp-{i}"), &"s".repeat(*spec_len)),
                        1 => Record::done(&id),
                        _ => Record::failed(&id),
                    }
                })
                .collect();
            let mut bytes = Vec::new();
            let mut ends = Vec::new(); // cumulative end offset of each frame
            for r in &records {
                bytes.extend_from_slice(&frame(r).unwrap());
                ends.push(bytes.len());
            }
            for offset in 0..=bytes.len() {
                let replay = replay_bytes(&bytes[..offset]);
                let complete = ends.iter().take_while(|&&e| e <= offset).count();
                prop_assert_eq!(
                    &replay.records[..], &records[..complete],
                    "offset {} of {}", offset, bytes.len()
                );
                prop_assert_eq!(
                    replay.torn_bytes as usize,
                    offset - ends[..complete].last().copied().unwrap_or(0),
                    "offset {}", offset
                );
            }
        }
    }
}
