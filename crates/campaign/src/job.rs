//! The unit of campaign work: one deterministic simulation, fully
//! described by a serializable [`JobSpec`] — which is also its cache
//! identity — plus the cached, work-stealing [`JobRunner`] that executes
//! batches of them.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdsmt_core::{run_sim, run_sim_interruptible, FetchPolicy, SimConfig, SimResult, ThreadSpec};
use hdsmt_pipeline::MicroArch;

use crate::cache::ResultCache;
use crate::sched::default_workers;

/// One software thread of a job: benchmark model + stream seed.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct JobThread {
    pub bench: String,
    pub seed: u64,
}

/// A complete, self-contained description of one simulation run.
///
/// Serializing a `JobSpec` to canonical JSON and hashing it (plus the
/// code-version salt) yields the job's cache key; two jobs with equal
/// specs are bit-identical simulations, because the simulator is
/// deterministic.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// Microarchitecture name (`M8`, `2M4+2M2`, ...).
    pub arch: String,
    pub threads: Vec<JobThread>,
    /// Thread i runs on pipeline `mapping[i]`.
    pub mapping: Vec<u8>,
    /// Per-thread retire target after warm-up.
    pub max_insts: u64,
    /// Committed instructions before statistics reset.
    pub warmup_insts: u64,
    /// Fetch-policy override (`icount`/`flush`/`l1mcount`/`rr`);
    /// `None` = the paper's per-architecture rule.
    pub fetch_policy: Option<String>,
    /// Register-file latency override; `None` = the §4 rule.
    pub regfile_lat: Option<u32>,
}

/// Spec/expansion error with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignError(pub String);

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CampaignError {}

impl JobSpec {
    /// Canonical JSON descriptor (field order is fixed by the struct).
    pub fn descriptor(&self) -> String {
        serde_json::to_string(self).expect("JobSpec serializes")
    }

    /// Content hash identifying this job in the result cache.
    pub fn key(&self) -> String {
        ResultCache::key_for(&self.descriptor())
    }

    fn parse_fetch_policy(name: &str) -> Result<FetchPolicy, CampaignError> {
        match name.to_ascii_lowercase().as_str() {
            "icount" => Ok(FetchPolicy::Icount),
            "flush" => Ok(FetchPolicy::Flush),
            "l1mcount" => Ok(FetchPolicy::L1mcount),
            "rr" | "round-robin" | "roundrobin" => Ok(FetchPolicy::RoundRobin),
            other => Err(CampaignError(format!("unknown fetch policy `{other}`"))),
        }
    }

    /// Validate the job and build its simulator configuration — cheap
    /// (no program synthesis), suitable for batch pre-flight checks.
    pub fn check(&self) -> Result<SimConfig, CampaignError> {
        let arch = MicroArch::parse(&self.arch)
            .map_err(|e| CampaignError(format!("bad arch `{}`: {e}", self.arch)))?;
        if self.threads.is_empty() {
            return Err(CampaignError("job has no threads".into()));
        }
        if self.mapping.len() != self.threads.len() {
            return Err(CampaignError(format!(
                "mapping length {} != thread count {}",
                self.mapping.len(),
                self.threads.len()
            )));
        }
        for t in &self.threads {
            // Either front-end: synthetic models or `rv:*` programs.
            if !ThreadSpec::exists(&t.bench) {
                return Err(CampaignError(format!("unknown benchmark `{}`", t.bench)));
            }
        }
        for (i, &p) in self.mapping.iter().enumerate() {
            if p as usize >= arch.pipes.len() {
                return Err(CampaignError(format!(
                    "thread {i} mapped to pipeline {p}, but {} has {} pipelines",
                    self.arch,
                    arch.pipes.len()
                )));
            }
        }
        let mut cfg = SimConfig::paper_defaults(arch, self.max_insts);
        cfg.warmup_insts = self.warmup_insts;
        if let Some(fp) = &self.fetch_policy {
            cfg.fetch_policy = Self::parse_fetch_policy(fp)?;
        }
        cfg.regfile_lat = self.regfile_lat;
        cfg.validate().map_err(CampaignError)?;
        Ok(cfg)
    }

    /// Validate and build the simulator configuration + thread specs
    /// (synthesizes each thread's program — only call when simulating).
    pub fn materialize(&self) -> Result<(SimConfig, Vec<ThreadSpec>), CampaignError> {
        let cfg = self.check()?;
        let specs =
            self.threads.iter().map(|t| ThreadSpec::for_benchmark(&t.bench, t.seed)).collect();
        Ok((cfg, specs))
    }

    /// Run the simulation, bypassing any cache.
    pub fn run_uncached(&self) -> Result<SimResult, CampaignError> {
        let (cfg, specs) = self.materialize()?;
        Ok(run_sim(&cfg, &specs, &self.mapping))
    }

    /// Run the simulation (no cache) under an optional soft deadline.
    /// `Ok(None)` means the deadline fired mid-simulation — or an
    /// injected `hang@sim` fault wedged the run — and it was abandoned.
    /// This is the [`JobRunner`] watchdog's execution path.
    pub fn run_watched(
        &self,
        deadline: Option<Instant>,
    ) -> Result<Option<SimResult>, CampaignError> {
        let (cfg, specs) = self.materialize()?;
        if crate::fault::on_sim_start(deadline) == crate::fault::SimStart::Hung {
            return Ok(None);
        }
        match deadline {
            None => Ok(Some(run_sim(&cfg, &specs, &self.mapping))),
            Some(deadline) => Ok(run_sim_interruptible(&cfg, &specs, &self.mapping, &mut || {
                Instant::now() >= deadline
            })),
        }
    }
}

/// How one job of a batch concluded (reported to [`JobRunner`]
/// observers — the serve daemon turns these into per-cell progress).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Served from the content-addressed cache.
    CacheHit,
    /// Simulated (and written to the cache, if one is attached).
    Simulated,
    /// The job errored or its simulation panicked.
    Failed,
    /// Skipped because the runner's cancel token fired before it started.
    Cancelled,
}

/// One job's lifecycle, as seen by a [`JobRunner`] observer.
///
/// `Started` is emitted when a worker picks the job up (cache probe
/// included); `Finished` when it concludes. A job skipped by
/// cancellation emits **only** `Finished(Cancelled)` — it never starts —
/// so observers can treat `Started` as "left the queue".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobEvent {
    Started,
    Finished(JobOutcome),
}

/// Execution counters for one `run_all` batch. `simulated` counts every
/// job not served from the cache (including the ones that ultimately
/// failed); `failed`/`timeouts`/`retries` break the unhappy paths out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct RunReport {
    pub total: usize,
    pub cache_hits: usize,
    pub simulated: usize,
    /// Jobs that concluded with an error (panic, timeout budget
    /// exhausted, spec failure).
    pub failed: usize,
    /// Watchdog deadline expiries (one per abandoned attempt, so one job
    /// can contribute several).
    pub timeouts: usize,
    /// Attempts re-run after a deadline expiry.
    pub retries: usize,
}

impl RunReport {
    fn merge(&mut self, other: RunReport) {
        self.total += other.total;
        self.cache_hits += other.cache_hits;
        self.simulated += other.simulated;
        self.failed += other.failed;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
    }
}

/// Per-job watchdog policy: a soft wall-clock deadline per simulation
/// attempt, and how many times a timed-out attempt is retried before the
/// job is marked failed-with-timeout. The deadline is cooperative — the
/// simulation loop polls it (see `hdsmt_core::run_sim_interruptible`) —
/// so no watchdog thread exists and a cancelled attempt leaves no state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Watchdog {
    pub deadline: Duration,
    pub retries: u32,
}

/// Batch executor: work-stealing parallelism + content-addressed caching.
pub struct JobRunner {
    workers: usize,
    cache: Option<ResultCache>,
    report: std::sync::Mutex<RunReport>,
    /// Cooperative cancellation: once set, jobs that have not started yet
    /// fail fast with a `cancelled` error; in-flight simulations finish
    /// (and cache) normally. The serve daemon's graceful shutdown relies
    /// on this to leave a resumable cache behind.
    cancel: Arc<AtomicBool>,
    /// Optional per-job deadline + retry budget. Orthogonal to `cancel`:
    /// shutdown never interrupts an in-flight simulation, the watchdog
    /// only ever does.
    watchdog: Option<Watchdog>,
}

impl JobRunner {
    /// `workers = 0` means auto (cores − 2).
    pub fn new(workers: usize, cache: Option<ResultCache>) -> Self {
        let workers = if workers == 0 { default_workers() } else { workers };
        JobRunner {
            workers,
            cache,
            report: std::sync::Mutex::new(RunReport::default()),
            cancel: Arc::new(AtomicBool::new(false)),
            watchdog: None,
        }
    }

    /// Attach (or clear) the per-job watchdog.
    pub fn with_watchdog(mut self, watchdog: Option<Watchdog>) -> Self {
        self.watchdog = watchdog;
        self
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Shared cancellation token. Setting it to `true` makes every
    /// not-yet-started job of any current or future batch fail with a
    /// `cancelled by shutdown` error; completed work stays cached.
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        self.cancel.clone()
    }

    /// Link this runner to an externally owned cancel token (the serve
    /// daemon points every campaign's runner at its shutdown flag).
    pub fn with_cancel_token(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = token;
        self
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Cumulative counters across every `run_all` on this runner.
    pub fn report(&self) -> RunReport {
        *self.report.lock().unwrap()
    }

    /// Execute `jobs` (cache-first), returning results in input order.
    /// Any job failure fails the batch (all-or-nothing).
    pub fn run_all(&self, jobs: &[JobSpec]) -> Result<Vec<SimResult>, CampaignError> {
        self.run_all_observed(jobs, &|_, _| {})
    }

    /// [`Self::run_all`] with a per-job lifecycle callback `(index,
    /// event)`, invoked from worker threads. The batch result is
    /// unaffected by the observer — same cache keys, same panic
    /// isolation, same output order.
    pub fn run_all_observed(
        &self,
        jobs: &[JobSpec],
        observe: &(dyn Fn(usize, JobEvent) + Sync),
    ) -> Result<Vec<SimResult>, CampaignError> {
        self.try_run_all(jobs, observe)?.into_iter().collect()
    }

    /// Like [`Self::run_all_observed`], but with per-job fault isolation:
    /// each job's outcome comes back individually, so a panicking or
    /// timed-out cell does not take its siblings' finished work with it.
    /// The outer `Err` is batch-level only (a job failed pre-flight
    /// validation — nothing was simulated).
    pub fn try_run_all(
        &self,
        jobs: &[JobSpec],
        observe: &(dyn Fn(usize, JobEvent) + Sync),
    ) -> Result<Vec<Result<SimResult, CampaignError>>, CampaignError> {
        // Validate everything up front (cheaply — no program synthesis)
        // so a bad cell fails the campaign before burning simulation time
        // on its neighbours.
        for job in jobs {
            job.check()?;
        }
        let counts = BatchCounts::default();
        let results: Vec<Result<SimResult, CampaignError>> =
            crate::sched::parallel_map_indexed(jobs, self.workers, |i, job| {
                if self.is_cancelled() {
                    observe(i, JobEvent::Finished(JobOutcome::Cancelled));
                    return Err(CampaignError(
                        "cancelled by shutdown before this job started".into(),
                    ));
                }
                observe(i, JobEvent::Started);
                let out = self.run_one(job, &counts);
                observe(
                    i,
                    JobEvent::Finished(match &out {
                        Ok((outcome, _)) => *outcome,
                        Err(_) => JobOutcome::Failed,
                    }),
                );
                if out.is_err() {
                    counts.failed.fetch_add(1, Ordering::Relaxed);
                }
                out.map(|(_, r)| r)
            });
        let hits = counts.hits.load(Ordering::Relaxed);
        self.report.lock().unwrap().merge(RunReport {
            total: jobs.len(),
            cache_hits: hits,
            simulated: jobs.len() - hits,
            failed: counts.failed.load(Ordering::Relaxed),
            timeouts: counts.timeouts.load(Ordering::Relaxed),
            retries: counts.retries.load(Ordering::Relaxed),
        });
        Ok(results)
    }

    fn run_one(
        &self,
        job: &JobSpec,
        counts: &BatchCounts,
    ) -> Result<(JobOutcome, SimResult), CampaignError> {
        let descriptor = job.descriptor();
        let key = ResultCache::key_for(&descriptor);
        let attempts = 1 + self.watchdog.map_or(0, |w| w.retries);
        for attempt in 1..=attempts {
            // Probed per attempt, not once: while this worker was timing
            // out, a sibling worker — or a restarted shard process on the
            // same cache — may have finished the job.
            if let Some(cache) = &self.cache {
                if let Some(hit) = cache.get(&key) {
                    counts.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((JobOutcome::CacheHit, hit));
                }
            }
            let deadline = self.watchdog.map(|w| Instant::now() + w.deadline);
            // A panicking simulation (a model bug, or a structural
            // impossibility `check` cannot see, like a context-count
            // violation) fails *this job* — the sibling jobs finish
            // and the campaign reports one clean error instead of a
            // poisoned-lock abort. Panics are not retried: the simulator
            // is deterministic, so a panic would just repeat.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                job.run_watched(deadline)
            }))
            .unwrap_or_else(|p| {
                let msg = crate::sched::payload_msg(p.as_ref());
                Err(CampaignError(format!("job `{descriptor}` panicked: {msg}")))
            })?;
            let Some(result) = result else {
                // The watchdog deadline fired mid-simulation.
                counts.timeouts.fetch_add(1, Ordering::Relaxed);
                if attempt < attempts {
                    counts.retries.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let deadline = self.watchdog.expect("timeouts imply a watchdog").deadline;
                return Err(CampaignError(format!(
                    "job `{descriptor}` timed out: {attempts} attempt(s) exceeded the \
                     {:.1}s cell deadline",
                    deadline.as_secs_f64()
                )));
            };
            if let Some(cache) = &self.cache {
                if let Err(e) = cache.put(&key, &descriptor, &result) {
                    // A failed write costs resumability, not correctness:
                    // the result is in hand, the cell just re-simulates
                    // next time. Degrade loudly instead of failing a
                    // finished simulation.
                    eprintln!("warning: cache write failed for {key}: {e}");
                }
            }
            return Ok((JobOutcome::Simulated, result));
        }
        unreachable!("the attempt loop always returns")
    }
}

/// One batch's shared atomic tallies (merged into [`RunReport`] at the
/// end of the batch).
#[derive(Default)]
struct BatchCounts {
    hits: AtomicUsize,
    failed: AtomicUsize,
    timeouts: AtomicUsize,
    retries: AtomicUsize,
}
