//! Chaos and fault-tolerance tests: the supervised fleet surviving
//! SIGKILL, the per-cell watchdog, and — behind the `fault-inject`
//! feature — the deterministic fault matrix (hung simulations, torn
//! cache writes, worker kills) riding through to a complete, bit-stable
//! campaign.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use hdsmt_campaign::serve::http::{http_get, http_post};
use hdsmt_campaign::serve::{Server, ServerConfig};
use hdsmt_campaign::{JobRunner, JobSpec, JobThread, ResultCache, Watchdog};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hdsmt-chaos-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn json(body: &str) -> serde_json::Value {
    serde_json::from_str_value(body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"))
}

fn submit(addr: &str, spec: &str) -> String {
    let (status, body) = http_post(addr, "/campaigns", spec).unwrap();
    assert_eq!(status, 202, "{body}");
    json(&body).get("id").and_then(|i| i.as_str()).unwrap().to_string()
}

fn cell_count(snap: &serde_json::Value, key: &str) -> u64 {
    snap.get("cells").and_then(|c| c.get(key)).and_then(|v| v.as_u64()).unwrap()
}

/// Poll until the campaign reaches a terminal/steady phase.
fn wait_terminal(addr: &str, id: &str) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http_get(addr, &format!("/campaigns/{id}")).unwrap();
        assert_eq!(status, 200, "{body}");
        let snap = json(&body);
        let phase = snap.get("status").and_then(|s| s.as_str()).unwrap().to_string();
        if ["done", "failed", "cancelled", "degraded"].contains(&phase.as_str()) {
            return snap;
        }
        assert!(Instant::now() < deadline, "campaign `{id}` stuck: {snap:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// A supervised daemon: the parent executes nothing itself; shard-worker
/// child processes (spawned from the test-built binary) do the work.
fn supervised_server(cache: &Path, workers: u32, env: Vec<(String, String)>) -> Server {
    supervised_server_with(cache, workers, env, |_| {})
}

fn supervised_server_with(
    cache: &Path,
    workers: u32,
    env: Vec<(String, String)>,
    tweak: impl FnOnce(&mut ServerConfig),
) -> Server {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: cache.to_string_lossy().into_owned(),
        sim_workers: 1,
        supervise: Some(workers),
        worker_binary: Some(env!("CARGO_BIN_EXE_hdsmt-campaign").into()),
        child_env: env,
        ..ServerConfig::default()
    };
    tweak(&mut config);
    Server::start(config).unwrap()
}

fn fleet(addr: &str) -> serde_json::Value {
    let (status, body) = http_get(addr, "/workers").unwrap();
    assert_eq!(status, 200, "{body}");
    json(&body)
}

fn restarts_total(report: &serde_json::Value) -> u64 {
    report.get("restarts_total").and_then(|v| v.as_u64()).unwrap()
}

/// rr-policy spec (no oracle search phase): 4 cells.
const SPEC: &str = r#"
name = "chaos-e2e"
archs = ["M8", "2M4+2M2"]
workloads = ["2W1", "2W7"]
policies = ["rr"]
seed = 9
[budget]
measure_insts = 1500
warmup_insts = 600
search_insts = 500
"#;

/// A slower 8-cell campaign, so a SIGKILL can land mid-flight. The
/// budget is sized so the campaign spans many 200ms supervisor ticks
/// even on a fast host: a kill gated on a *partial* snapshot (see
/// [`wait_partial`]) needs a genuine mid-flight window to aim at.
const SLOW_SPEC: &str = r#"
name = "chaos-kill"
archs = ["M8", "3M4", "4M4", "2M4+2M2"]
workloads = ["2W1", "2W7"]
policies = ["rr"]
seed = 9
[budget]
measure_insts = 150000
warmup_insts = 1500
search_insts = 500
"#;

#[test]
fn supervised_fleet_completes_a_campaign_and_reports_its_workers() {
    let dir = tmpdir("fleet");
    let server = supervised_server(&dir.join("cache"), 2, Vec::new());
    let addr = server.addr().to_string();

    let id = submit(&addr, SPEC);
    assert!(id.starts_with('f'), "fleet campaign ids are supervisor-scoped: {id}");
    let snap = wait_terminal(&addr, &id);
    assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
    assert_eq!(cell_count(&snap, "total"), 4, "{snap:?}");
    assert_eq!(cell_count(&snap, "failed"), 0, "{snap:?}");
    assert_eq!(
        cell_count(&snap, "done") + cell_count(&snap, "cached"),
        4,
        "no cell lost, none duplicated: {snap:?}"
    );

    // The fleet is visible and healthy.
    let report = fleet(&addr);
    assert_eq!(report.get("supervising").and_then(|v| v.as_u64()), Some(2), "{report:?}");
    assert_eq!(restarts_total(&report), 0, "{report:?}");
    let workers = report.get("workers").and_then(|w| w.as_array()).unwrap();
    assert_eq!(workers.len(), 2);
    for w in workers {
        assert_eq!(w.get("state").and_then(|s| s.as_str()), Some("up"), "{w:?}");
        assert!(w.get("pid").and_then(|p| p.as_u64()).is_some(), "{w:?}");
        assert!(w.get("shard").and_then(|s| s.as_str()).unwrap().ends_with("/2"), "{w:?}");
    }

    // Results come from a cache replay; two fetches are byte-identical.
    let (status, body1) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
    assert_eq!(status, 200, "{body1}");
    let (_, body2) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
    assert_eq!(body1, body2, "results must be memoized bit-identically");
    assert_eq!(json(&body1).get("cells").and_then(|c| c.as_array()).map(|a| a.len()), Some(4));

    // Resubmit: every shard serves its slice from the shared cache.
    let id2 = submit(&addr, SPEC);
    let snap2 = wait_terminal(&addr, &id2);
    assert_eq!(snap2.get("status").and_then(|s| s.as_str()), Some("done"), "{snap2:?}");
    assert_eq!(cell_count(&snap2, "cached"), 4, "resubmit must be fully cached: {snap2:?}");

    server.shutdown_and_join();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_worker_restarts_and_the_campaign_still_completes_exactly() {
    let dir = tmpdir("sigkill");
    let server = supervised_server(&dir.join("cache"), 1, Vec::new());
    let addr = server.addr().to_string();
    let id = submit(&addr, SLOW_SPEC);

    // Let the worker make some progress, then SIGKILL it mid-campaign.
    let deadline = Instant::now() + Duration::from_secs(120);
    let pid = loop {
        let (_, body) = http_get(&addr, &format!("/campaigns/{id}")).unwrap();
        let snap = json(&body);
        let concluded = cell_count(&snap, "done") + cell_count(&snap, "cached");
        let report = fleet(&addr);
        let pid = report
            .get("workers")
            .and_then(|w| w.as_array())
            .and_then(|w| w.first())
            .and_then(|w| w.get("pid"))
            .and_then(|p| p.as_u64());
        if concluded >= 1 {
            break pid.expect("a worker that reported progress has a pid");
        }
        assert!(Instant::now() < deadline, "no progress before the kill: {snap:?}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .unwrap()
        .success());

    // The supervisor must notice the crash and restart within its backoff.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if restarts_total(&fleet(&addr)) >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "crash never detected: {:?}", fleet(&addr));
        std::thread::sleep(Duration::from_millis(50));
    }

    // ... and the campaign completes around the crash: no cell lost, no
    // cell failed, everything either cached (pre-kill work reused) or
    // freshly simulated by the new incarnation.
    let snap = wait_terminal(&addr, &id);
    assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
    assert_eq!(cell_count(&snap, "total"), 8, "{snap:?}");
    assert_eq!(cell_count(&snap, "failed"), 0, "{snap:?}");
    assert_eq!(cell_count(&snap, "done") + cell_count(&snap, "cached"), 8, "{snap:?}");

    let report = fleet(&addr);
    assert!(restarts_total(&report) >= 1, "{report:?}");
    assert_eq!(report.get("broken").and_then(|v| v.as_u64()), Some(0), "{report:?}");

    // Bit-identical results, twice, and a fully cached resubmit.
    let (status, body1) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
    assert_eq!(status, 200, "{body1}");
    let (_, body2) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
    assert_eq!(body1, body2);
    assert_eq!(json(&body1).get("cells").and_then(|c| c.as_array()).map(|a| a.len()), Some(8));

    let id2 = submit(&addr, SLOW_SPEC);
    let snap2 = wait_terminal(&addr, &id2);
    assert_eq!(snap2.get("status").and_then(|s| s.as_str()), Some("done"), "{snap2:?}");
    assert_eq!(cell_count(&snap2, "cached"), 8, "the kill must not cost cached work: {snap2:?}");

    server.shutdown_and_join();
    let _ = fs::remove_dir_all(&dir);
}

// ------------------------------------ crash-consistent daemon (journal)
//
// These spawn the test-built binary as a real daemon process, so a
// SIGKILL takes out the whole server — journal, queue, executors — and
// recovery runs through the startup replay path exactly as it would in
// production.

use std::process::{Child, Command, Stdio};

/// Spawn `hdsmt-campaign serve` as a child process on an ephemeral port
/// and wait for its `--addr-file` handshake plus a live `/healthz`.
fn spawn_daemon(
    dir: &Path,
    cache: &Path,
    tag: &str,
    extra: &[&str],
    env: &[(&str, &str)],
) -> (Child, String) {
    let addr_file = dir.join(format!("addr-{tag}"));
    let _ = fs::remove_file(&addr_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hdsmt-campaign"));
    cmd.arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .arg("--addr-file")
        .arg(&addr_file)
        .arg("--cache")
        .arg(cache)
        .args(["--workers", "1", "--executors", "1"])
        .args(extra)
        .stdin(Stdio::null());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(text) = fs::read_to_string(&addr_file) {
            let addr = text.trim().to_string();
            if addr.contains(':') && matches!(http_get(&addr, "/healthz"), Ok((200, _))) {
                return (child, addr);
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("daemon `{tag}` exited before its handshake: {status}");
        }
        assert!(Instant::now() < deadline, "daemon `{tag}` never came up");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn sigkill(child: &mut Child) {
    assert!(Command::new("kill").args(["-9", &child.id().to_string()]).status().unwrap().success());
    let _ = child.wait();
}

/// Graceful drain: `POST /shutdown`, then reap the process.
fn shutdown_daemon(mut child: Child, addr: &str) {
    let _ = http_post(addr, "/shutdown", "");
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        if let Ok(Some(_)) = child.try_wait() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = child.kill();
    panic!("daemon did not exit after /shutdown");
}

fn stats(addr: &str) -> serde_json::Value {
    let (status, body) = http_get(addr, "/stats").unwrap();
    assert_eq!(status, 200, "{body}");
    json(&body)
}

fn journal_replayed(addr: &str) -> u64 {
    stats(addr).get("journal_replayed").and_then(|v| v.as_u64()).unwrap()
}

/// Run `hdsmt-campaign fsck` on a cache and parse its JSON report.
fn fsck_report(cache: &Path) -> serde_json::Value {
    let out = Command::new(env!("CARGO_BIN_EXE_hdsmt-campaign"))
        .arg("fsck")
        .arg("--cache")
        .arg(cache)
        .output()
        .unwrap();
    assert!(out.status.success(), "fsck: {}", String::from_utf8_lossy(&out.stderr));
    json(&String::from_utf8_lossy(&out.stdout))
}

fn assert_fsck_clean(cache: &Path) {
    let report = fsck_report(cache);
    assert_eq!(report.get("clean").and_then(|v| v.as_bool()), Some(true), "{report:?}");
    assert_eq!(report.get("corrupt_quarantined").and_then(|v| v.as_u64()), Some(0), "{report:?}");
}

/// The `cells` array of an independent single-worker engine run on a
/// fresh cache — the ground truth a recovered daemon must match.
fn reference_cells(spec_text: &str, cache: &Path) -> serde_json::Value {
    let mut spec = hdsmt_campaign::CampaignSpec::parse(spec_text).unwrap();
    spec.cache_dir = Some(cache.to_string_lossy().into_owned());
    spec.workers = Some(1);
    let catalog = hdsmt_campaign::engine::catalog_for(&spec);
    let runner = JobRunner::new(1, Some(ResultCache::open(cache).unwrap()));
    let result = hdsmt_campaign::run_campaign_with(&spec, &catalog, &runner).unwrap();
    json(&hdsmt_campaign::export::to_json(&result)).get("cells").unwrap().clone()
}

/// Poll `/campaigns/:id` until at least one cell has concluded, so a
/// kill lands mid-campaign rather than before any work happened.
fn wait_progress(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = http_get(addr, &format!("/campaigns/{id}")).unwrap();
        let snap = json(&body);
        if cell_count(&snap, "done") + cell_count(&snap, "cached") >= 1 {
            return;
        }
        assert!(Instant::now() < deadline, "no progress before the kill: {snap:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Poll `/campaigns/:id` until the campaign is observably *mid-flight*:
/// some cells concluded, some still outstanding, and the status not yet
/// terminal. A kill gated on this cannot race the supervisor's done-mark
/// — on a loaded 1-CPU host, "at least one cell concluded" may only
/// become observable in the same tick that concludes the whole campaign,
/// and a kill landing after the done-mark tests nothing.
fn wait_partial(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = http_get(addr, &format!("/campaigns/{id}")).unwrap();
        let snap = json(&body);
        let status = snap.get("status").and_then(|s| s.as_str()).unwrap().to_string();
        let concluded = cell_count(&snap, "done")
            + cell_count(&snap, "cached")
            + cell_count(&snap, "failed")
            + cell_count(&snap, "cancelled");
        let total = cell_count(&snap, "total");
        let terminal = ["done", "failed", "cancelled", "degraded"].contains(&status.as_str());
        if !terminal && concluded >= 1 && concluded < total {
            return;
        }
        assert!(!terminal, "campaign finished before a mid-flight kill could land: {snap:?}");
        assert!(Instant::now() < deadline, "no progress before the kill: {snap:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn sigkilled_daemon_replays_its_journal_and_completes_the_campaign() {
    let dir = tmpdir("daemon-kill");
    let cache = dir.join("cache");
    let (mut first, addr) = spawn_daemon(&dir, &cache, "a", &["--durable"], &[]);
    let id = submit(&addr, SLOW_SPEC);
    assert!(id.starts_with('c'), "{id}");

    // Let it conclude at least one cell, then SIGKILL the whole daemon.
    wait_progress(&addr, &id);
    sigkill(&mut first);

    // Restart over the same cache: the journaled accept replays, the
    // campaign keeps its id, and it finishes exactly — no cell lost,
    // none duplicated, pre-kill work served from the cache.
    let (second, addr) = spawn_daemon(&dir, &cache, "b", &["--durable"], &[]);
    assert_eq!(journal_replayed(&addr), 1);
    let snap = wait_terminal(&addr, &id);
    assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
    assert_eq!(cell_count(&snap, "total"), 8, "{snap:?}");
    assert_eq!(cell_count(&snap, "failed"), 0, "{snap:?}");
    assert_eq!(cell_count(&snap, "done") + cell_count(&snap, "cached"), 8, "{snap:?}");

    // Byte-identical results, and cell-for-cell identical to an
    // undisturbed run on a fresh cache.
    let (status, body1) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
    assert_eq!(status, 200, "{body1}");
    let (_, body2) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
    assert_eq!(body1, body2, "results must replay bit-identically");
    assert_eq!(
        json(&body1).get("cells").unwrap(),
        &reference_cells(SLOW_SPEC, &dir.join("reference-cache")),
        "a kill mid-campaign must not perturb a single cell"
    );

    shutdown_daemon(second, &addr);
    assert_fsck_clean(&cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_supervisor_replays_its_fleet_journal_and_completes() {
    let dir = tmpdir("super-kill");
    let cache = dir.join("cache");
    let (mut first, addr) = spawn_daemon(&dir, &cache, "a", &["--supervise", "1"], &[]);
    let id = submit(&addr, SLOW_SPEC);
    assert!(id.starts_with('f'), "fleet ids are supervisor-scoped: {id}");

    // A *partial* snapshot, then a whole-host crash: SIGKILL the
    // supervisor AND its worker (an orphaned worker would otherwise keep
    // simulating). Gating on wait_progress alone was flaky on 1-CPU
    // hosts — the first observable progress could be the all-done
    // snapshot whose tick also journals the done-mark, and the replay
    // then had nothing to prove.
    wait_partial(&addr, &id);
    let worker_pids: Vec<u64> = fleet(&addr)
        .get("workers")
        .and_then(|w| w.as_array())
        .unwrap()
        .iter()
        .filter_map(|w| w.get("pid").and_then(|p| p.as_u64()))
        .collect();
    sigkill(&mut first);
    for pid in worker_pids {
        let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
    }

    // Restart: the fleet journal replays the accept with its original
    // id, a fresh worker is backfilled, and the campaign completes.
    let (second, addr) = spawn_daemon(&dir, &cache, "b", &["--supervise", "1"], &[]);
    assert_eq!(journal_replayed(&addr), 1);
    let snap = wait_terminal(&addr, &id);
    assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
    assert_eq!(cell_count(&snap, "total"), 8, "{snap:?}");
    assert_eq!(cell_count(&snap, "failed"), 0, "{snap:?}");
    assert_eq!(cell_count(&snap, "done") + cell_count(&snap, "cached"), 8, "{snap:?}");

    let (status, body1) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
    assert_eq!(status, 200, "{body1}");
    let (_, body2) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
    assert_eq!(body1, body2, "results must replay bit-identically");

    shutdown_daemon(second, &addr);
    assert_fsck_clean(&cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_worker_addr_file_cannot_point_a_fresh_fleet_at_a_dead_port() {
    let dir = tmpdir("stale-addr");
    let cache = dir.join("cache");
    let handshake = cache.join(".supervise");
    fs::create_dir_all(&handshake).unwrap();
    // What a SIGKILLed fleet leaves behind: an address file naming a
    // port nobody listens on anymore.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    fs::write(handshake.join("worker-0.addr"), format!("{dead}\n")).unwrap();

    // A fresh fleet must scrub it, handshake its own worker, and finish.
    let server = supervised_server(&cache, 1, Vec::new());
    let addr = server.addr().to_string();
    let id = submit(&addr, SPEC);
    let snap = wait_terminal(&addr, &id);
    assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
    assert_eq!(cell_count(&snap, "failed"), 0, "{snap:?}");
    let report = fleet(&addr);
    assert_eq!(restarts_total(&report), 0, "a stale file must not count as a crash: {report:?}");
    server.shutdown_and_join();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn startup_reaps_aged_tmp_files_but_spares_fresh_ones() {
    let dir = tmpdir("tmp-reap");
    let cache = dir.join("cache");
    fs::create_dir_all(cache.join("ab")).unwrap();
    fs::write(cache.join("ab").join("deadbeef.json.tmp.4242.7"), "torn write").unwrap();
    fs::write(cache.join("deadc0de.json.tmp.4242.9"), "torn write").unwrap();

    let config = |age| ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: cache.to_string_lossy().into_owned(),
        sim_workers: 1,
        tmp_reap_age: age,
        ..ServerConfig::default()
    };

    // Under the default 15-minute threshold these are in-flight writes.
    let server = Server::start(config(Duration::from_secs(900))).unwrap();
    let addr = server.addr().to_string();
    let st = stats(&addr);
    assert_eq!(st.get("tmp_reaped").and_then(|v| v.as_u64()), Some(0), "{st:?}");
    server.shutdown_and_join();

    // With a zero threshold they are orphans and startup reaps them.
    let server = Server::start(config(Duration::ZERO)).unwrap();
    let addr = server.addr().to_string();
    let st = stats(&addr);
    assert_eq!(st.get("tmp_reaped").and_then(|v| v.as_u64()), Some(2), "{st:?}");
    server.shutdown_and_join();
    assert!(!cache.join("ab").join("deadbeef.json.tmp.4242.7").exists());
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------- distributed fleet (no shared fs)
//
// Two independent worker daemons on disjoint cache directories, adopted
// by a supervisor (`--supervise 0 --worker ADDR`). Nothing crosses a
// filesystem boundary: results reach the supervisor purely over HTTP —
// peer read-through plus anti-entropy — and replication refuses any
// byte that differs from what a shard already holds.

/// Fetch a daemon's cell manifest (`GET /cells`) as `(key, text)` pairs.
fn manifest_cells(addr: &str) -> Vec<(String, String)> {
    let (status, body) = http_get(addr, "/cells").unwrap();
    assert_eq!(status, 200, "{body}");
    json(&body)
        .get("cells")
        .and_then(|c| c.as_array())
        .unwrap()
        .iter()
        .map(|c| {
            let key = c.get("key").and_then(|k| k.as_str()).unwrap().to_string();
            let (status, text) = http_get(addr, &format!("/cells/{key}")).unwrap();
            assert_eq!(status, 200, "{text}");
            (key, text)
        })
        .collect()
}

fn healthz_up(addr: &str) -> bool {
    matches!(http_get(addr, "/healthz"), Ok((200, _)))
}

#[test]
fn distributed_fleet_replicates_results_over_http_with_no_shared_filesystem() {
    use hdsmt_campaign::hash::sha256_hex;
    use hdsmt_campaign::serve::http::http_request_full;

    let dir = tmpdir("dist");
    let cache_a = dir.join("cache-a");
    let cache_b = dir.join("cache-b");
    let cache_sup = dir.join("cache-sup");

    let (worker_a, addr_a) = spawn_daemon(&dir, &cache_a, "wa", &["--shard", "0/2"], &[]);
    let (worker_b, addr_b) = spawn_daemon(&dir, &cache_b, "wb", &["--shard", "1/2"], &[]);
    let (sup, addr) = spawn_daemon(
        &dir,
        &cache_sup,
        "sup",
        &[
            "--supervise",
            "0",
            "--worker",
            &addr_a,
            "--worker",
            &addr_b,
            "--peer",
            &addr_a,
            "--peer",
            &addr_b,
        ],
        &[],
    );

    let id = submit(&addr, SPEC);
    assert!(id.starts_with('f'), "fleet ids are supervisor-scoped: {id}");
    let snap = wait_terminal(&addr, &id);
    assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
    assert_eq!(cell_count(&snap, "total"), 4, "{snap:?}");
    assert_eq!(cell_count(&snap, "failed"), 0, "{snap:?}");
    assert_eq!(
        cell_count(&snap, "done") + cell_count(&snap, "cached"),
        4,
        "no cell lost, none duplicated: {snap:?}"
    );

    // The fleet report shows two adopted shards, healthy, unpartitioned.
    let report = fleet(&addr);
    assert_eq!(report.get("supervising").and_then(|v| v.as_u64()), Some(2), "{report:?}");
    assert_eq!(report.get("partitions_total").and_then(|v| v.as_u64()), Some(0), "{report:?}");
    let workers = report.get("workers").and_then(|w| w.as_array()).unwrap();
    assert_eq!(workers.len(), 2, "{report:?}");
    for w in workers {
        assert_eq!(w.get("kind").and_then(|k| k.as_str()), Some("remote"), "{w:?}");
        assert_eq!(w.get("state").and_then(|s| s.as_str()), Some("up"), "{w:?}");
        assert!(w.get("pid").and_then(|p| p.as_u64()).is_none(), "adopted, not spawned: {w:?}");
    }

    // Results replay through HTTP replication: byte-identical, twice,
    // and cell-for-cell equal to an undisturbed single-node run.
    let (status, body1) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
    assert_eq!(status, 200, "{body1}");
    let (_, body2) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
    assert_eq!(body1, body2, "results must replay bit-identically");
    assert_eq!(
        json(&body1).get("cells").unwrap(),
        &reference_cells(SPEC, &dir.join("reference-cache")),
        "HTTP replication must not perturb a single cell"
    );

    // The supervisor landed every cell over the wire, none from disk.
    let st = stats(&addr);
    assert!(
        st.get("cells_replicated").and_then(|v| v.as_u64()).unwrap() >= 4,
        "all four cells crossed the network: {st:?}"
    );
    assert!(st.get("cache_remote_hits").and_then(|v| v.as_u64()).is_some(), "{st:?}");

    // Replication is byte-equality-or-quarantine, never last-write-wins:
    // push worker A's (valid, correctly checksummed) cell to worker B
    // under a key worker B already owns with different bytes.
    let cells_a = manifest_cells(&addr_a);
    let cells_b = manifest_cells(&addr_b);
    assert_eq!(cells_a.len(), 2, "shard 0/2 of a 4-cell campaign: {cells_a:?}");
    assert_eq!(cells_b.len(), 2, "shard 1/2 of a 4-cell campaign: {cells_b:?}");
    let (victim_key, victim_text) = &cells_b[0];
    let foreign_text = &cells_a[0].1;
    assert_ne!(victim_text, foreign_text);
    let resp = http_request_full(
        &addr_b,
        "PUT",
        &format!("/cells/{victim_key}?sha256={}", sha256_hex(foreign_text.as_bytes())),
        Some(foreign_text),
    )
    .unwrap();
    assert_eq!(resp.status, 409, "conflicting bytes must be refused: {}", resp.body);
    let (_, after) = http_get(&addr_b, &format!("/cells/{victim_key}")).unwrap();
    assert_eq!(&after, victim_text, "the quarantined impostor must never be served");
    let st_b = stats(&addr_b);
    let conflicts = st_b.get("cache").and_then(|c| c.get("conflicts")).and_then(|v| v.as_u64());
    assert_eq!(conflicts, Some(1), "{st_b:?}");

    // Shutting the supervisor down must NOT take the adopted workers
    // with it — they belong to their own operators.
    shutdown_daemon(sup, &addr);
    assert!(healthz_up(&addr_a), "supervisor shutdown must not kill adopted worker A");
    assert!(healthz_up(&addr_b), "supervisor shutdown must not kill adopted worker B");
    shutdown_daemon(worker_a, &addr_a);
    shutdown_daemon(worker_b, &addr_b);

    assert_fsck_clean(&cache_a);
    assert_fsck_clean(&cache_sup);
    // Worker B's cache is clean too; the conflict left evidence, not rot.
    let report_b = fsck_report(&cache_b);
    assert_eq!(report_b.get("clean").and_then(|v| v.as_bool()), Some(true), "{report_b:?}");
    assert_eq!(
        report_b.get("quarantine_entries").and_then(|v| v.as_u64()),
        Some(1),
        "the refused replica must sit in quarantine: {report_b:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn broken_remote_workers_shard_is_reowned_and_the_campaign_completes() {
    use hdsmt_campaign::serve::supervisor::{Supervisor, SupervisorConfig};

    let dir = tmpdir("reown");
    let cache_live = dir.join("cache-live");
    let cache_sup = dir.join("cache-sup");
    let (live, addr_live) = spawn_daemon(&dir, &cache_live, "live", &["--shard", "0/2"], &[]);

    // A worker that will never answer: a port nothing listens on.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };

    let cache = ResultCache::open(&cache_sup).unwrap().with_peers(vec![addr_live.clone()]);
    let config = SupervisorConfig {
        workers: 0,
        cache_dir: cache_sup.to_string_lossy().into_owned(),
        sim_workers: 1,
        remote_workers: vec![addr_live.clone(), dead],
        heartbeat_interval: Duration::from_millis(50),
        spawn_timeout: Duration::from_millis(300),
        backoff_base: Duration::from_millis(50),
        backoff_cap: Duration::from_millis(100),
        max_restarts: 0,
        ..SupervisorConfig::default()
    };
    let sup = Supervisor::start(config, cache, None, Vec::new()).unwrap();

    let id = sup.submit(SPEC).unwrap().id;
    // "degraded" is transient here — the breaker trips, then the re-own
    // recomputes the orphaned shard — so poll for full completion.
    let deadline = Instant::now() + Duration::from_secs(120);
    let snap = loop {
        let snap = sup.snapshot(&id).expect("a submitted campaign is ledgered");
        assert_ne!(snap.status, "failed", "{snap:?}");
        assert_ne!(snap.status, "cancelled", "{snap:?}");
        if snap.status == "done" {
            break snap;
        }
        assert!(Instant::now() < deadline, "re-own never completed: {snap:?}");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(snap.cells.failed, 0, "{snap:?}");

    let report = sup.fleet();
    assert_eq!(report.broken, 1, "the dead adoptee must trip the breaker: {report:?}");
    assert!(report.partitions_total >= 1, "unreachable-remote crashes are partitions: {report:?}");
    assert!(report.reowned >= 1, "the orphaned shard must be re-owned: {report:?}");
    assert!(sup.reowned_total() >= 1);

    // The stitched result — the live worker's shard read over HTTP plus
    // the re-owned shard computed locally — matches an undisturbed run.
    let result = sup.results(&id).unwrap_or_else(|(code, body)| panic!("{code}: {body}"));
    let cells = json(&hdsmt_campaign::export::to_json(&result)).get("cells").unwrap().clone();
    assert_eq!(
        cells,
        reference_cells(SPEC, &dir.join("reference-cache")),
        "re-owning a shard must not perturb a single cell"
    );

    sup.shutdown();
    assert!(healthz_up(&addr_live), "shutdown must not kill the adopted worker");
    shutdown_daemon(live, &addr_live);
    assert_fsck_clean(&cache_sup);
    assert_fsck_clean(&cache_live);
    let _ = fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------- watchdog

fn runaway_job() -> JobSpec {
    JobSpec {
        arch: "2M4+2M2".into(),
        threads: vec![
            JobThread { bench: "gzip".into(), seed: 11 },
            JobThread { bench: "mcf".into(), seed: 12 },
        ],
        mapping: vec![0, 2],
        // Far more work than the deadline below allows.
        max_insts: 200_000_000,
        warmup_insts: 800,
        fetch_policy: None,
        regfile_lat: None,
    }
}

#[test]
fn watchdog_times_out_a_runaway_cell_after_its_retry_budget() {
    let dir = tmpdir("watchdog");
    let cache = ResultCache::open(&dir).unwrap();
    let runner = JobRunner::new(1, Some(cache.clone()))
        .with_watchdog(Some(Watchdog { deadline: Duration::from_millis(50), retries: 1 }));

    let err = runner.run_all(&[runaway_job()]).expect_err("the runaway job must time out");
    assert!(err.0.contains("timed out"), "{err}");
    assert!(err.0.contains("2 attempt(s)"), "1 + 1 retry: {err}");

    let report = runner.report();
    assert_eq!(report.timeouts, 2, "both attempts hit the deadline: {report:?}");
    assert_eq!(report.retries, 1, "{report:?}");
    assert_eq!(report.failed, 1, "{report:?}");
    assert_eq!(cache.len(), 0, "an abandoned attempt must leave no cache entry");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_generous_watchdog_changes_nothing_bit_for_bit() {
    // The interruptible simulation path must be bit-identical to the
    // plain one when the deadline never fires.
    let dir = tmpdir("watchdog-id");
    let mut job = runaway_job();
    job.max_insts = 2_000;
    let runner = JobRunner::new(1, Some(ResultCache::open(&dir).unwrap()))
        .with_watchdog(Some(Watchdog { deadline: Duration::from_secs(60), retries: 1 }));
    let watched = runner.run_all(std::slice::from_ref(&job)).unwrap().remove(0);
    let plain = job.run_uncached().unwrap();
    assert_eq!(
        serde_json::to_string(&watched).unwrap(),
        serde_json::to_string(&plain).unwrap(),
        "watchdog instrumentation must not perturb the simulation"
    );
    let _ = fs::remove_dir_all(&dir);
}

// ------------------------------------- deterministic fault matrix (e2e)
//
// These need the fault hooks compiled in:
//     cargo test -p hdsmt-campaign --features fault-inject --test chaos

#[cfg(feature = "fault-inject")]
mod fault_matrix {
    use super::*;
    use std::process::Command;

    fn cli() -> Command {
        Command::new(env!("CARGO_BIN_EXE_hdsmt-campaign"))
    }

    /// The combined chaos scenario from the module docs of
    /// `campaign::fault`, run under supervision with one simulation
    /// worker so the schedule is deterministic:
    ///
    /// Each worker incarnation (counters are per-process) hangs its first
    /// simulation (watchdog timeout → retry), tears its third cache write
    /// (quarantined + re-simulated on next read), and aborts at its fifth
    /// simulation start. Over a 6-cell campaign that yields exactly three
    /// incarnations, two restarts, and two quarantined entries — and a
    /// complete, zero-failure campaign.
    #[test]
    fn fault_matrix_rides_hang_corrupt_and_kill_to_a_complete_campaign() {
        let dir = tmpdir("matrix");
        let spec = r#"
name = "chaos-matrix"
archs = ["M8", "2M4+2M2", "3M4"]
workloads = ["2W1", "2W7"]
policies = ["rr"]
seed = 9
[budget]
measure_insts = 1500
warmup_insts = 600
search_insts = 500
"#;
        let server = supervised_server_with(
            &dir.join("cache"),
            1,
            vec![("HDSMT_FAULT".into(), "hang@sim=1;corrupt@put=3;kill@sim=5".into())],
            |c| {
                c.cell_deadline = Some(Duration::from_millis(500));
                c.cell_retries = 2;
            },
        );
        let addr = server.addr().to_string();

        let id = submit(&addr, spec);
        let snap = wait_terminal(&addr, &id);
        assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
        assert_eq!(cell_count(&snap, "total"), 6, "{snap:?}");
        assert_eq!(cell_count(&snap, "failed"), 0, "every fault must be absorbed: {snap:?}");
        assert_eq!(cell_count(&snap, "done") + cell_count(&snap, "cached"), 6, "{snap:?}");

        // The deterministic schedule: two kills → two restarts; two torn
        // writes → two quarantined entries.
        let report = fleet(&addr);
        assert_eq!(restarts_total(&report), 2, "{report:?}");
        assert_eq!(report.get("broken").and_then(|v| v.as_u64()), Some(0), "{report:?}");
        let (_, stats) = http_get(&addr, "/stats").unwrap();
        let stats = json(&stats);
        assert_eq!(
            stats.get("cache_quarantined").and_then(|v| v.as_u64()),
            Some(2),
            "torn writes must be quarantined, not deleted: {stats:?}"
        );

        // Despite hangs, kills, and torn writes, the final cache is whole:
        // a resubmit simulates nothing.
        let id2 = submit(&addr, spec);
        let snap2 = wait_terminal(&addr, &id2);
        assert_eq!(snap2.get("status").and_then(|s| s.as_str()), Some("done"), "{snap2:?}");
        assert_eq!(cell_count(&snap2, "cached"), 6, "{snap2:?}");
        assert_eq!(cell_count(&snap2, "done"), 0, "{snap2:?}");

        // And the results replay cleanly, twice, byte-identically.
        let (status, body1) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
        assert_eq!(status, 200, "{body1}");
        let (_, body2) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
        assert_eq!(body1, body2);

        server.shutdown_and_join();
        let _ = fs::remove_dir_all(&dir);
    }

    /// A cell whose every attempt hangs exhausts its retry budget and is
    /// marked failed-with-timeout; its sibling completes and the run
    /// degrades gracefully instead of wedging.
    #[test]
    fn hung_cell_exhausts_its_retry_budget_and_the_run_degrades() {
        let dir = tmpdir("hung");
        let cache = dir.join("cache");
        let spec_path = dir.join("spec.toml");
        fs::write(
            &spec_path,
            format!(
                "name = \"chaos-hung\"\narchs = [\"M8\"]\nworkloads = [\"2W1\", \"2W7\"]\n\
                 policies = [\"rr\"]\nseed = 9\ncache_dir = \"{}\"\n\
                 [budget]\nmeasure_insts = 1500\nwarmup_insts = 600\nsearch_insts = 500\n",
                cache.display()
            ),
        )
        .unwrap();

        // Attempts 1 and 2 of the first cell both hang (retries = 1).
        let run = cli()
            .arg("run")
            .arg(&spec_path)
            .args(["--workers", "1", "--cell-deadline-ms", "300", "--cell-retries", "1"])
            .env("HDSMT_FAULT", "hang@sim=1,2")
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&run.stderr);
        assert!(run.status.success(), "degradation is not a crash: {stderr}");
        assert!(stderr.contains("WARNING: 1 cell(s) failed (2 watchdog timeout(s))"), "{stderr}");

        // A clean re-run heals: the failed cell re-simulates, the healthy
        // sibling is a cache hit.
        let run2 = cli().arg("run").arg(&spec_path).args(["--workers", "1"]).output().unwrap();
        let stderr2 = String::from_utf8_lossy(&run2.stderr);
        assert!(run2.status.success(), "{stderr2}");
        assert!(stderr2.contains("1 cache hits, 1 simulated"), "{stderr2}");
        assert!(!stderr2.contains("WARNING"), "{stderr2}");
        let _ = fs::remove_dir_all(&dir);
    }

    /// A torn cache write is quarantined on first read and the entry
    /// re-simulates — visible in `status`, healed by the next run.
    #[test]
    fn torn_cache_write_is_quarantined_and_heals_on_the_next_run() {
        let dir = tmpdir("torn");
        let cache = dir.join("cache");
        let spec_path = dir.join("spec.toml");
        fs::write(
            &spec_path,
            format!(
                "name = \"chaos-torn\"\narchs = [\"M8\"]\nworkloads = [\"2W1\"]\n\
                 policies = [\"rr\"]\nseed = 9\ncache_dir = \"{}\"\n\
                 [budget]\nmeasure_insts = 1500\nwarmup_insts = 600\nsearch_insts = 500\n",
                cache.display()
            ),
        )
        .unwrap();

        // First run tears its only cache write.
        let run = cli()
            .arg("run")
            .arg(&spec_path)
            .args(["--workers", "1"])
            .env("HDSMT_FAULT", "corrupt@put=1")
            .output()
            .unwrap();
        assert!(run.status.success(), "stderr: {}", String::from_utf8_lossy(&run.stderr));

        // Second run (no faults): the torn entry reads as corrupt, is
        // quarantined, and the cell re-simulates.
        let run2 = cli().arg("run").arg(&spec_path).args(["--workers", "1"]).output().unwrap();
        let stderr2 = String::from_utf8_lossy(&run2.stderr);
        assert!(run2.status.success(), "{stderr2}");
        assert!(stderr2.contains("0 cache hits, 1 simulated"), "{stderr2}");

        let status = cli().arg("status").arg(&spec_path).output().unwrap();
        let out = String::from_utf8_lossy(&status.stdout);
        assert!(out.contains("cache quarantined entries: 1"), "{out}");
        assert!(
            out.contains("cache corrupt entries: 0"),
            "quarantine empties the live tree: {out}"
        );

        // Third run: healed — a clean hit.
        let run3 = cli().arg("run").arg(&spec_path).args(["--workers", "1"]).output().unwrap();
        let stderr3 = String::from_utf8_lossy(&run3.stderr);
        assert!(stderr3.contains("1 cache hits, 0 simulated"), "{stderr3}");
        let _ = fs::remove_dir_all(&dir);
    }

    // ------------------------------------------- journal fault injection

    /// Wait (bounded) for a daemon that is expected to die on its own —
    /// `kill@accept`, `torn@journal` — to actually exit.
    fn wait_exit(child: &mut Child, why: &str) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(Some(_)) = child.try_wait() {
                return;
            }
            assert!(Instant::now() < deadline, "daemon still alive: {why}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// `err@journal`: an accept whose journal write fails is refused with
    /// a 503 and a `Retry-After` hint — never acknowledged, never
    /// ledgered — and the retry goes through cleanly.
    #[test]
    fn journal_write_failure_refuses_the_accept_with_a_retry_hint() {
        use hdsmt_campaign::serve::http::http_request_full;

        let dir = tmpdir("err-journal");
        let cache = dir.join("cache");
        let (daemon, addr) =
            spawn_daemon(&dir, &cache, "a", &[], &[("HDSMT_FAULT", "err@journal=1")]);

        let resp = http_request_full(&addr, "POST", "/campaigns", Some(SPEC)).unwrap();
        assert_eq!(resp.status, 503, "{}", resp.body);
        assert_eq!(resp.retry_after, Some(10), "{resp:?}");
        assert!(resp.body.contains("journal"), "{}", resp.body);
        let (_, list) = http_get(&addr, "/campaigns").unwrap();
        assert_eq!(
            json(&list).as_array().map(|a| a.len()),
            Some(0),
            "a refused accept must not be ledgered: {list}"
        );

        // The plan fires once; the resubmission is accepted and runs.
        let id = submit(&addr, SPEC);
        let snap = wait_terminal(&addr, &id);
        assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
        assert_eq!(cell_count(&snap, "failed"), 0, "{snap:?}");

        shutdown_daemon(daemon, &addr);
        assert_fsck_clean(&cache);
        let _ = fs::remove_dir_all(&dir);
    }

    /// `kill@accept`: the daemon dies after fsyncing the accept but
    /// before answering. The client never saw a 202, yet the journaled
    /// accept replays on restart — crash-consistency errs toward
    /// at-least-once, and the cache makes the re-run idempotent.
    #[test]
    fn kill_at_accept_still_replays_the_fsynced_accept_on_restart() {
        let dir = tmpdir("kill-accept");
        let cache = dir.join("cache");
        let (mut first, addr) =
            spawn_daemon(&dir, &cache, "a", &[], &[("HDSMT_FAULT", "kill@accept=1")]);

        // The POST rides into the abort: a dead socket, never a 202.
        let _ = http_post(&addr, "/campaigns", SPEC);
        wait_exit(&mut first, "kill@accept should have aborted the daemon");

        let (second, addr) = spawn_daemon(&dir, &cache, "b", &[], &[]);
        assert_eq!(journal_replayed(&addr), 1);
        let (_, list) = http_get(&addr, "/campaigns").unwrap();
        let list = json(&list);
        let campaigns = list.as_array().unwrap();
        assert_eq!(campaigns.len(), 1, "{list:?}");
        let id = campaigns[0].get("id").and_then(|i| i.as_str()).unwrap().to_string();
        let snap = wait_terminal(&addr, &id);
        assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
        assert_eq!(cell_count(&snap, "total"), 4, "{snap:?}");
        assert_eq!(cell_count(&snap, "failed"), 0, "{snap:?}");

        shutdown_daemon(second, &addr);
        assert_fsck_clean(&cache);
        let _ = fs::remove_dir_all(&dir);
    }

    /// `torn@journal`: a crash halfway through a journal frame (power
    /// loss) leaves a torn tail. Restart discards the torn record,
    /// replays every complete one, and compacts the tear away.
    #[test]
    fn torn_journal_tail_is_discarded_and_complete_records_replay() {
        let dir = tmpdir("torn-journal");
        let cache = dir.join("cache");
        let (mut first, addr) =
            spawn_daemon(&dir, &cache, "a", &[], &[("HDSMT_FAULT", "torn@journal=2")]);

        // Accept #1 journals cleanly; accept #2 tears mid-frame and
        // takes the daemon down. (The slow 8-cell campaign keeps its
        // done-mark far behind these two appends, so the schedule is
        // deterministic.)
        let id = submit(&addr, SLOW_SPEC);
        let _ = http_post(&addr, "/campaigns", SPEC);
        wait_exit(&mut first, "torn@journal should have aborted the daemon");

        let (second, addr) = spawn_daemon(&dir, &cache, "b", &[], &[]);
        assert_eq!(journal_replayed(&addr), 1, "exactly the complete record replays");
        let (_, list) = http_get(&addr, "/campaigns").unwrap();
        assert_eq!(
            json(&list).as_array().map(|a| a.len()),
            Some(1),
            "the torn accept must not resurrect: {list}"
        );
        let snap = wait_terminal(&addr, &id);
        assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
        assert_eq!(cell_count(&snap, "total"), 8, "{snap:?}");
        assert_eq!(cell_count(&snap, "failed"), 0, "{snap:?}");
        assert_eq!(cell_count(&snap, "done") + cell_count(&snap, "cached"), 8, "{snap:?}");

        shutdown_daemon(second, &addr);
        // fsck must agree the tear is gone: the journal was compacted at
        // open, so no torn bytes survive anywhere in the cache tree.
        let report = fsck_report(&cache);
        assert_eq!(report.get("clean").and_then(|v| v.as_bool()), Some(true), "{report:?}");
        for j in report.get("journals").and_then(|j| j.as_array()).unwrap() {
            assert_eq!(j.get("torn_bytes").and_then(|v| v.as_u64()), Some(0), "{j:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    // --------------------------------------- network fault injection

    /// `partition@net`: a deterministic partition separates the
    /// supervisor from both adopted workers mid-campaign. The workers
    /// keep simulating on their side; when the partition heals, the
    /// supervisor reconnects, backfills, and completes the campaign
    /// with zero lost and zero duplicated cells — bit-identical to an
    /// undisturbed single-node run on a fresh cache.
    #[test]
    fn network_partition_heals_and_the_distributed_campaign_completes_exactly() {
        let dir = tmpdir("partition");
        let cache_a = dir.join("cache-a");
        let cache_b = dir.join("cache-b");
        let cache_sup = dir.join("cache-sup");

        // The fault plan rides on the supervisor daemon ONLY: workers
        // stay fault-free, so the partition is purely a network event
        // between otherwise-healthy processes.
        let (worker_a, addr_a) = spawn_daemon(&dir, &cache_a, "pa", &["--shard", "0/2"], &[]);
        let (worker_b, addr_b) = spawn_daemon(&dir, &cache_b, "pb", &["--shard", "1/2"], &[]);
        let (sup, addr) = spawn_daemon(
            &dir,
            &cache_sup,
            "psup",
            &[
                "--supervise",
                "0",
                "--worker",
                &addr_a,
                "--worker",
                &addr_b,
                "--peer",
                &addr_a,
                "--peer",
                &addr_b,
            ],
            &[("HDSMT_FAULT", "partition@net=9:1400")],
        );

        let id = submit(&addr, SLOW_SPEC);
        let snap = wait_terminal(&addr, &id);
        assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
        assert_eq!(cell_count(&snap, "total"), 8, "{snap:?}");
        assert_eq!(cell_count(&snap, "failed"), 0, "{snap:?}");
        assert_eq!(
            cell_count(&snap, "done") + cell_count(&snap, "cached"),
            8,
            "no cell lost, none duplicated: {snap:?}"
        );

        // The partition was injected, detected as such, and healed:
        // workers crashed-and-recovered in the supervisor's eyes, and
        // nobody tripped the circuit breaker.
        let report = fleet(&addr);
        assert!(restarts_total(&report) >= 1, "the partition must be detected: {report:?}");
        assert_eq!(report.get("broken").and_then(|v| v.as_u64()), Some(0), "{report:?}");
        assert!(
            report.get("partitions_total").and_then(|v| v.as_u64()).unwrap() >= 1,
            "remote-worker crashes must be counted as partitions: {report:?}"
        );
        let st = stats(&addr);
        assert!(st.get("net_faults_injected").and_then(|v| v.as_u64()).unwrap() >= 1, "{st:?}");
        assert!(st.get("partitions_total").and_then(|v| v.as_u64()).unwrap() >= 1, "{st:?}");

        // Bit-stability rides through the partition.
        let (status, body1) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
        assert_eq!(status, 200, "{body1}");
        let (_, body2) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
        assert_eq!(body1, body2, "results must replay bit-identically");
        assert_eq!(
            json(&body1).get("cells").unwrap(),
            &reference_cells(SLOW_SPEC, &dir.join("reference-cache")),
            "a healed partition must not perturb a single cell"
        );

        shutdown_daemon(sup, &addr);
        shutdown_daemon(worker_a, &addr_a);
        shutdown_daemon(worker_b, &addr_b);
        assert_fsck_clean(&cache_a);
        assert_fsck_clean(&cache_b);
        assert_fsck_clean(&cache_sup);
        let _ = fs::remove_dir_all(&dir);
    }
}
