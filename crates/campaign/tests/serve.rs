//! End-to-end tests of the sweep-service daemon: submit → poll → results
//! over a real socket, cache-resumable shutdown, shard-partitioned
//! completion, structured API errors, and the `--remote` thin-client CLI
//! against a `serve` subprocess.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use hdsmt_campaign::serve::http::{http_get, http_post};
use hdsmt_campaign::serve::{Server, ServerConfig};
use hdsmt_campaign::{engine, expand, CampaignSpec, MicroArch, ShardSpec};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hdsmt-serve-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn server_on(cache: &Path, shard: Option<ShardSpec>) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: cache.to_string_lossy().into_owned(),
        sim_workers: 2,
        executors: 1,
        shard,
        ..ServerConfig::default()
    })
    .unwrap()
}

/// A small rr/random campaign: no oracle search phase, and every cell's
/// cache key is computable client-side (needed for `GET /cells/:hash`).
const SPEC: &str = r#"
name = "serve-e2e"
archs = ["M8", "2M4+2M2"]
workloads = ["2W1", "2W7"]
policies = ["rr"]
seed = 9
[budget]
measure_insts = 1500
warmup_insts = 600
search_insts = 500
"#;

fn json(body: &str) -> serde_json::Value {
    serde_json::from_str_value(body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"))
}

fn submit(addr: &str, spec: &str) -> String {
    let (status, body) = http_post(addr, "/campaigns", spec).unwrap();
    assert_eq!(status, 202, "{body}");
    json(&body).get("id").and_then(|i| i.as_str()).unwrap().to_string()
}

/// Poll until the campaign reaches a terminal phase; returns the final
/// snapshot.
fn wait_terminal(addr: &str, id: &str) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http_get(addr, &format!("/campaigns/{id}")).unwrap();
        assert_eq!(status, 200, "{body}");
        let snap = json(&body);
        let phase = snap.get("status").and_then(|s| s.as_str()).unwrap().to_string();
        if ["done", "failed", "cancelled"].contains(&phase.as_str()) {
            return snap;
        }
        assert!(Instant::now() < deadline, "campaign `{id}` stuck: {snap:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn cell_count(snap: &serde_json::Value, key: &str) -> u64 {
    snap.get("cells").and_then(|c| c.get(key)).and_then(|v| v.as_u64()).unwrap()
}

#[test]
fn submit_poll_results_and_full_cache_on_resubmit() {
    let dir = tmpdir("e2e");
    let server = server_on(&dir.join("cache"), None);
    let addr = server.addr().to_string();

    // ---- first submission: everything simulates ----
    let id = submit(&addr, SPEC);
    let snap = wait_terminal(&addr, &id);
    assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
    assert_eq!(cell_count(&snap, "total"), 4);
    assert_eq!(cell_count(&snap, "done"), 4, "cold cache: all simulated: {snap:?}");
    assert_eq!(cell_count(&snap, "cached"), 0, "{snap:?}");

    let (status, body) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
    assert_eq!(status, 200);
    let result = json(&body);
    assert_eq!(result.get("cells").and_then(|c| c.as_array()).map(|a| a.len()), Some(4));

    let (status, csv) = http_get(&addr, &format!("/campaigns/{id}/results?format=csv")).unwrap();
    assert_eq!(status, 200);
    assert_eq!(csv.lines().count(), 5, "header + 4 rows: {csv}");

    // ---- second submission of the same spec: 100% cache hits ----
    let id2 = submit(&addr, SPEC);
    assert_ne!(id2, id, "each submission is its own campaign");
    let snap2 = wait_terminal(&addr, &id2);
    assert_eq!(snap2.get("status").and_then(|s| s.as_str()), Some("done"));
    assert_eq!(cell_count(&snap2, "cached"), 4, "resubmit must be fully cached: {snap2:?}");
    assert_eq!(cell_count(&snap2, "done"), 0, "{snap2:?}");

    // ---- direct cell lookup by a client-computed content key ----
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let catalog = engine::catalog_for(&spec);
    let cells = expand(&spec, &catalog).unwrap();
    let budget = spec.budget();
    for cell in &cells {
        let arch = MicroArch::parse(&cell.arch).unwrap();
        let mapping = hdsmt_core::mapping::round_robin_mapping(&arch, cell.workload.threads());
        let key = cell.job(mapping, &budget).key();
        let (status, body) = http_get(&addr, &format!("/cells/{key}")).unwrap();
        assert_eq!(status, 200, "cell {}/{} must be cached: {body}", cell.arch, cell.workload.id);
        let entry = json(&body);
        assert!(entry.get("result").is_some(), "verbatim cache entry: {body}");
    }

    // ---- /stats reflects the work ----
    let (_, stats) = http_get(&addr, "/stats").unwrap();
    let stats = json(&stats);
    let jobs = stats.get("jobs").unwrap();
    assert_eq!(jobs.get("total").and_then(|v| v.as_u64()), Some(8));
    assert_eq!(jobs.get("cache_hits").and_then(|v| v.as_u64()), Some(4));
    assert_eq!(
        stats.get("campaigns").and_then(|c| c.get("done")).and_then(|v| v.as_u64()),
        Some(2)
    );

    server.shutdown_and_join();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn api_errors_over_the_socket_are_structured_json() {
    let dir = tmpdir("errors");
    let server = server_on(&dir.join("cache"), None);
    let addr = server.addr().to_string();

    let (status, body) = http_post(&addr, "/campaigns", "{ not a spec").unwrap();
    assert_eq!(status, 400);
    let err = json(&body).get("error").cloned().expect("structured error");
    assert_eq!(err.get("status").and_then(|s| s.as_u64()), Some(400));
    assert!(err.get("message").and_then(|m| m.as_str()).is_some());

    let (status, body) =
        http_post(&addr, "/campaigns", r#"{"archs": ["M99"], "workloads": ["2W1"]}"#).unwrap();
    assert_eq!(status, 400, "validation failures are client errors: {body}");
    assert!(body.contains("M99"), "the message names the bad arch: {body}");

    let (status, _) = http_get(&addr, "/campaigns/c0-nope").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_get(&addr, "/campaigns/c0-nope/results").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_request_raw(&addr, "PUT /campaigns HTTP/1.1");
    assert_eq!(status, 405);
    let (status, _) = http_request_raw(&addr, "GET /definitely/not/a/route HTTP/1.1");
    assert_eq!(status, 404);
    let (status, body) = http_request_raw(&addr, "complete garbage");
    assert_eq!(status, 400, "unparseable requests get a structured 400: {body}");
    assert!(json(&body).get("error").is_some(), "{body}");

    server.shutdown_and_join();
    let _ = fs::remove_dir_all(&dir);
}

/// Send a raw request line (no body) and return (status, body).
fn http_request_raw(addr: &str, request_line: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(format!("{request_line}\r\nContent-Length: 0\r\n\r\n").as_bytes()).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    let status = out.split_whitespace().nth(1).and_then(|v| v.parse().ok()).unwrap_or(0);
    let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

#[test]
fn shutdown_mid_campaign_leaves_a_resumable_cache() {
    let dir = tmpdir("resume");
    let cache_dir = dir.join("cache");

    // One slow-ish campaign on a single-threaded runner so a shutdown can
    // land mid-flight.
    let spec = r#"
name = "serve-resume"
archs = ["M8", "3M4", "4M4", "2M4+2M2"]
workloads = ["2W1", "2W7"]
policies = ["rr"]
seed = 9
[budget]
measure_insts = 4000
warmup_insts = 1500
search_insts = 500
"#;
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: cache_dir.to_string_lossy().into_owned(),
        sim_workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    let id = submit(&addr, spec);

    // Wait until at least one cell concluded, then pull the plug.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = http_get(&addr, &format!("/campaigns/{id}")).unwrap();
        let snap = json(&body);
        let concluded = cell_count(&snap, "done") + cell_count(&snap, "cached");
        let terminal = snap.get("status").and_then(|s| s.as_str()).unwrap() != "running"
            && snap.get("status").and_then(|s| s.as_str()).unwrap() != "queued";
        if concluded >= 1 || terminal {
            break;
        }
        assert!(Instant::now() < deadline, "no progress: {snap:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, _) = http_post(&addr, "/shutdown", "").unwrap();
    assert_eq!(status, 202);
    server.shutdown_and_join();

    // The daemon may have finished the campaign in the race — both ends
    // are legal; what matters is what the *cache* enables next.
    // A fresh daemon on the same cache resumes: nothing already simulated
    // re-simulates, and the campaign completes.
    let server2 = server_on(&cache_dir, None);
    let addr2 = server2.addr().to_string();
    let id2 = submit(&addr2, spec);
    let snap = wait_terminal(&addr2, &id2);
    assert_eq!(snap.get("status").and_then(|s| s.as_str()), Some("done"), "{snap:?}");
    assert_eq!(cell_count(&snap, "total"), 8);
    assert!(
        cell_count(&snap, "cached") >= 1,
        "work finished before the shutdown must be reused: {snap:?}"
    );
    assert_eq!(cell_count(&snap, "cached") + cell_count(&snap, "done"), 8, "{snap:?}");
    assert_eq!(cell_count(&snap, "failed"), 0, "{snap:?}");
    server2.shutdown_and_join();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn two_shards_sharing_one_cache_complete_a_campaign_exactly() {
    let dir = tmpdir("shards");
    let cache_dir = dir.join("cache");
    let spec_text = r#"
name = "serve-shards"
archs = ["M8", "2M4+2M2"]
workloads = ["2W1", "2W7"]
policies = ["rr", "random:7"]
seed = 9
[budget]
measure_insts = 1500
warmup_insts = 600
search_insts = 500
"#;
    let spec = CampaignSpec::parse(spec_text).unwrap();
    let catalog = engine::catalog_for(&spec);
    let all_cells = expand(&spec, &catalog).unwrap();
    assert_eq!(all_cells.len(), 8);

    // Two daemons, same cache directory, complementary shards — as two
    // worker processes on a shared filesystem would run.
    let s0 = server_on(&cache_dir, Some(ShardSpec::parse("0/2").unwrap()));
    let s1 = server_on(&cache_dir, Some(ShardSpec::parse("1/2").unwrap()));
    let (a0, a1) = (s0.addr().to_string(), s1.addr().to_string());

    let id0 = submit(&a0, spec_text);
    let id1 = submit(&a1, spec_text);
    let snap0 = wait_terminal(&a0, &id0);
    let snap1 = wait_terminal(&a1, &id1);
    assert_eq!(snap0.get("status").and_then(|s| s.as_str()), Some("done"), "{snap0:?}");
    assert_eq!(snap1.get("status").and_then(|s| s.as_str()), Some("done"), "{snap1:?}");

    // Exact partition: the shard totals match the ownership rule and sum
    // to the full matrix — no cell lost, none owned twice.
    let owned0 =
        all_cells.iter().filter(|c| ShardSpec::parse("0/2").unwrap().owns(c)).count() as u64;
    assert_eq!(cell_count(&snap0, "total"), owned0, "{snap0:?}");
    assert_eq!(cell_count(&snap0, "total") + cell_count(&snap1, "total"), 8);
    assert!(cell_count(&snap0, "total") > 0, "degenerate split: {snap0:?}");
    assert!(cell_count(&snap1, "total") > 0, "degenerate split: {snap1:?}");
    for snap in [&snap0, &snap1] {
        assert_eq!(cell_count(snap, "failed"), 0, "{snap:?}");
        assert_eq!(
            cell_count(snap, "done") + cell_count(snap, "cached"),
            cell_count(snap, "total"),
            "{snap:?}"
        );
    }

    s0.shutdown_and_join();
    s1.shutdown_and_join();

    // The union is complete: an unsharded run over the same cache
    // simulates nothing.
    let mut full = spec.clone();
    full.cache_dir = Some(cache_dir.to_string_lossy().into_owned());
    full.workers = Some(2);
    let r = engine::run_campaign(&full, &catalog).unwrap();
    assert_eq!(r.cells.len(), 8);
    assert_eq!(r.report.simulated, 0, "shards must have covered every cell: {:?}", r.report);
    let _ = fs::remove_dir_all(&dir);
}

// --------------------------------------------------- CLI thin client

#[test]
fn cli_remote_round_trip_against_a_serve_subprocess() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    let dir = tmpdir("cli-remote");
    let cache_dir = dir.join("cache");
    let spec_path = dir.join("spec.toml");
    fs::write(&spec_path, SPEC).unwrap();

    // `serve` on an ephemeral port; the daemon prints the resolved
    // address on stderr.
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_hdsmt-campaign"))
        .args(["serve", "--addr", "127.0.0.1:0", "--cache"])
        .arg(&cache_dir)
        .args(["--workers", "2"])
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut stderr = BufReader::new(daemon.stderr.take().unwrap());
    let mut banner = String::new();
    stderr.read_line(&mut banner).unwrap();
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .to_string();

    // Thin-client run: submits, polls, prints the summary.
    let run = Command::new(env!("CARGO_BIN_EXE_hdsmt-campaign"))
        .arg("run")
        .arg(&spec_path)
        .args(["--remote", &addr])
        .output()
        .unwrap();
    assert!(run.status.success(), "stderr: {}", String::from_utf8_lossy(&run.stderr));
    let summary = String::from_utf8_lossy(&run.stdout);
    assert!(summary.contains("hmean IPC"), "{summary}");

    // Thin-client status: daemon stats + campaign list.
    let status = Command::new(env!("CARGO_BIN_EXE_hdsmt-campaign"))
        .args(["status", "--remote", &addr])
        .output()
        .unwrap();
    assert!(status.status.success());
    let out = String::from_utf8_lossy(&status.stdout);
    assert!(out.contains("\"uptime_secs\""), "{out}");
    assert!(out.contains("serve-e2e"), "the submitted campaign is listed: {out}");

    // Thin-client export: fully cached second pass, files on disk.
    let out_dir = dir.join("out");
    let export = Command::new(env!("CARGO_BIN_EXE_hdsmt-campaign"))
        .arg("export")
        .arg(&spec_path)
        .args(["--remote", &addr, "--out"])
        .arg(&out_dir)
        .output()
        .unwrap();
    assert!(export.status.success(), "stderr: {}", String::from_utf8_lossy(&export.stderr));
    for name in ["campaign.json", "cells.csv", "summary.txt"] {
        assert!(out_dir.join(name).is_file(), "{name} missing");
    }

    // SIGINT → graceful drain → exit code 0 (the daemon's whole point).
    let pid = daemon.id().to_string();
    assert!(Command::new("kill").args(["-INT", &pid]).status().unwrap().success());
    let code = daemon.wait().unwrap();
    assert!(code.success(), "graceful SIGINT shutdown must exit 0, got {code:?}");
    let _ = fs::remove_dir_all(&dir);
}
