//! Cache-writer race stress tests: many threads and multiple processes
//! hammering one cache directory — same keys and different keys — must
//! leave only whole, parseable, bit-identical entries behind. This is the
//! property the serve daemon's shard workers (and any two concurrent
//! `hdsmt-campaign run`s) stand on.

use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use hdsmt_campaign::{EntryLookup, JobSpec, JobThread, ResultCache};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hdsmt-cache-race-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// A cheap deterministic job per index: distinct descriptors → distinct
/// keys; equal indices → bit-identical payloads.
fn job(i: usize) -> JobSpec {
    JobSpec {
        arch: "M8".into(),
        threads: vec![JobThread { bench: "gzip".into(), seed: i as u64 }],
        mapping: vec![0],
        max_insts: 300,
        warmup_insts: 100,
        fetch_policy: None,
        regfile_lat: None,
    }
}

#[test]
fn threads_racing_on_same_and_different_keys_leave_whole_entries() {
    let dir = tmpdir("threads");
    let cache = Arc::new(ResultCache::open(&dir).unwrap());

    // 8 threads × 6 jobs; each job is written by TWO threads (thread t
    // and thread t+4 share the same 6 keys), so every key sees concurrent
    // same-key writes while different keys interleave in the same shard
    // directories.
    const JOBS: usize = 6;
    let results: Vec<_> = (0..JOBS).map(|i| job(i).run_uncached().unwrap()).collect();
    let results = Arc::new(results);
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let cache = cache.clone();
            let results = results.clone();
            std::thread::spawn(move || {
                for i in 0..JOBS {
                    // Stagger the two writers of each key differently.
                    let i = (i + t) % JOBS;
                    let spec = job(i);
                    cache.put(&spec.key(), &spec.descriptor(), &results[i]).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(cache.len(), JOBS, "exactly one entry per key");
    assert_eq!(cache.corrupt_entries(), 0, "no torn writes");

    // Every surviving entry is bit-identical to an uncontended write of
    // the same job into a fresh cache.
    let control_dir = tmpdir("threads-control");
    let control = ResultCache::open(&control_dir).unwrap();
    for i in 0..JOBS {
        let spec = job(i);
        control.put(&spec.key(), &spec.descriptor(), &results[i]).unwrap();
        let (EntryLookup::Hit(raced), EntryLookup::Hit(clean)) =
            (cache.entry_text(&spec.key()), control.entry_text(&spec.key()))
        else {
            panic!("job {i} missing from a cache");
        };
        assert_eq!(raced, clean, "job {i}: raced entry differs from clean write");
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&control_dir);
}

#[test]
fn concurrent_cli_processes_share_one_cache_without_corruption() {
    let dir = tmpdir("procs");
    let cache_dir = dir.join("cache");
    let spec_path = dir.join("spec.toml");
    fs::write(
        &spec_path,
        format!(
            r#"
name = "race"
archs = ["M8", "2M4+2M2"]
workloads = ["2W1", "2W7"]
policies = ["rr"]
seed = 21
cache_dir = "{}"
[budget]
measure_insts = 1500
warmup_insts = 600
search_insts = 500
"#,
            cache_dir.display()
        ),
    )
    .unwrap();

    // Two whole `run` processes race the same 4-cell campaign: every cell
    // is simulated and written by both (cross-process same-key races),
    // in shared shard directories (different-key races).
    let spawn = || {
        Command::new(env!("CARGO_BIN_EXE_hdsmt-campaign"))
            .arg("run")
            .arg(&spec_path)
            .args(["--workers", "2"])
            .spawn()
            .unwrap()
    };
    let (mut a, mut b) = (spawn(), spawn());
    assert!(a.wait().unwrap().success());
    assert!(b.wait().unwrap().success());

    // The cache holds exactly the 4 cells, none corrupt…
    let cache = ResultCache::open(&cache_dir).unwrap();
    assert_eq!(cache.len(), 4);
    assert_eq!(cache.corrupt_entries(), 0, "cross-process torn write");

    // …`status` agrees (and surfaces the corrupt count satellite)…
    let status = Command::new(env!("CARGO_BIN_EXE_hdsmt-campaign"))
        .arg("status")
        .arg(&spec_path)
        .output()
        .unwrap();
    assert!(status.status.success());
    let out = String::from_utf8_lossy(&status.stdout);
    assert!(out.contains("measure jobs cached:  4/4"), "{out}");
    assert!(out.contains("cache corrupt entries: 0"), "{out}");

    // …and a third run is 100% hits.
    let rerun = Command::new(env!("CARGO_BIN_EXE_hdsmt-campaign"))
        .arg("run")
        .arg(&spec_path)
        .output()
        .unwrap();
    assert!(rerun.status.success());
    let err = String::from_utf8_lossy(&rerun.stderr);
    assert!(err.contains("4 cache hits, 0 simulated"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}
