//! End-to-end campaign engine tests: cache identity, resumability, and
//! the `hdsmt-campaign` CLI acceptance flow (≥24-cell matrix, 100% cache
//! hits on the second invocation, valid JSON/CSV exports).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use hdsmt_campaign::{
    engine, expand, Budget, CampaignSpec, Catalog, JobRunner, JobSpec, JobThread, Policy,
    ResultCache,
};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hdsmt-campaign-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn tiny_spec(archs: &[&str], workloads: &[&str], policies: &[&str], cache: &Path) -> CampaignSpec {
    CampaignSpec {
        name: Some("it".into()),
        archs: archs.iter().map(|s| s.to_string()).collect(),
        workloads: workloads.iter().map(|s| s.to_string()).collect(),
        policies: Some(policies.iter().map(|s| s.to_string()).collect()),
        budget: Some(Budget { measure_insts: 1_500, warmup_insts: 600, search_insts: 600 }),
        seed: Some(3),
        workers: Some(4),
        cache_dir: Some(cache.to_string_lossy().into_owned()),
        profile_insts: Some(15_000),
        extra_workloads: None,
        use_rv_workloads: None,
    }
}

fn job() -> JobSpec {
    JobSpec {
        arch: "2M4+2M2".into(),
        threads: vec![
            JobThread { bench: "gzip".into(), seed: 11 },
            JobThread { bench: "mcf".into(), seed: 12 },
        ],
        mapping: vec![0, 2],
        max_insts: 2_000,
        warmup_insts: 800,
        fetch_policy: None,
        regfile_lat: None,
    }
}

/// Byte-faithful comparison proxy: the JSON encoding keeps integers in
/// exact lanes and floats in shortest-round-trip form, so equal strings
/// ⇔ bit-identical results.
fn fingerprint(r: &hdsmt_campaign::SimResult) -> String {
    serde_json::to_string(r).unwrap()
}

#[test]
fn cache_hit_is_bit_identical_to_cold_run() {
    let dir = tmpdir("bitident");
    let cache = ResultCache::open(&dir).unwrap();
    let runner = JobRunner::new(2, Some(cache));
    let job = job();

    let cold = runner.run_all(std::slice::from_ref(&job)).unwrap().remove(0);
    assert_eq!(runner.report().simulated, 1);
    let warm = runner.run_all(std::slice::from_ref(&job)).unwrap().remove(0);
    assert_eq!(runner.report().cache_hits, 1, "second run must hit");

    let uncached = job.run_uncached().unwrap();
    assert_eq!(fingerprint(&cold), fingerprint(&uncached), "cold == direct");
    assert_eq!(fingerprint(&cold), fingerprint(&warm), "cache round-trip must be bit-identical");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn rerun_simulates_nothing_and_interrupt_resumes() {
    let dir = tmpdir("resume");
    let catalog = Catalog::paper();

    // "Interrupted" campaign: only half the architectures ran before the
    // plug was pulled.
    let partial = tiny_spec(&["M8"], &["2W7", "2W4"], &["heur"], &dir);
    let r1 = engine::run_campaign(&partial, &catalog).unwrap();
    assert_eq!(r1.report.simulated, 2);
    assert_eq!(r1.report.cache_hits, 0);

    // Resume with the full spec: only the new cells simulate.
    let full = tiny_spec(&["M8", "2M4+2M2"], &["2W7", "2W4"], &["heur"], &dir);
    let r2 = engine::run_campaign(&full, &catalog).unwrap();
    assert_eq!(r2.report.total, 4);
    assert_eq!(r2.report.cache_hits, 2, "already-simulated cells must be hits");
    assert_eq!(r2.report.simulated, 2);

    // Identical re-run: zero re-simulated cells.
    let r3 = engine::run_campaign(&full, &catalog).unwrap();
    assert_eq!(r3.report.cache_hits, r3.report.total);
    assert_eq!(r3.report.simulated, 0);

    // And the numbers are bit-stable across the resume boundary.
    let pick = |r: &engine::CampaignResult| {
        r.cells
            .iter()
            .find(|c| c.arch == "M8" && c.workload == "2W7")
            .map(|c| c.ipc.to_bits())
            .unwrap()
    };
    assert_eq!(pick(&r1), pick(&r3));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn oracle_policies_share_the_search_phase_and_order_correctly() {
    let dir = tmpdir("oracle");
    let catalog = Catalog::paper();
    let spec = tiny_spec(&["2M4+2M2"], &["2W7"], &["best", "worst", "heur"], &dir);

    let cells = expand(&spec, &catalog).unwrap();
    assert_eq!(cells.len(), 3);
    assert!(cells.iter().any(|c| c.policy == Policy::Best));

    let r = engine::run_campaign(&spec, &catalog).unwrap();
    let ipc_of = |p: &str| r.cells.iter().find(|c| c.policy == p).unwrap().ipc;
    assert!(ipc_of("best") >= ipc_of("worst"), "oracle envelope must be ordered");
    let best = r.cells.iter().find(|c| c.policy == "best").unwrap();
    assert!(best.n_mappings > 1, "2 threads on 2M4+2M2 have multiple mappings");

    // best and worst share ONE search sweep even on a cold cache: total
    // jobs = one sweep over the mapping space + three measure runs.
    assert_eq!(r.report.total, best.n_mappings + 3, "duplicate search sweeps enqueued");

    // And a re-run is fully cached.
    let r2 = engine::run_campaign(&spec, &catalog).unwrap();
    assert_eq!(r2.report.simulated, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn rv_program_workloads_sweep_mixed_cells_through_the_cache() {
    // Acceptance: a campaign mixing RV64I-program threads with synthetic
    // ones — catalog entries (RV2/XRV2) plus an inline mixed extra —
    // completes through the cache on both machine families, and a re-run
    // is 100% hits.
    let dir = tmpdir("rvmix");
    let mut spec = tiny_spec(&["M8", "2M4+2M2"], &["RV2", "XRV2", "fibmix"], &["heur"], &dir);
    spec.use_rv_workloads = Some(true);
    spec.extra_workloads = Some(vec![hdsmt_campaign::ExtraWorkload {
        id: "fibmix".into(),
        benchmarks: vec!["rv:fib".into(), "twolf".into()],
        class: Some("XRV".into()),
    }]);
    let catalog = engine::catalog_for(&spec);
    assert!(catalog.get("RV2").is_some(), "rv workloads must register in the catalog");

    let r = engine::run_campaign(&spec, &catalog).unwrap();
    assert_eq!(r.cells.len(), 6);
    for c in &r.cells {
        assert!(c.ipc > 0.1, "{}/{}: ipc {}", c.arch, c.workload, c.ipc);
        assert!(c.retired > 0);
    }
    // The mixed cells genuinely interleave front-ends on one machine.
    let xrv = r.cells.iter().find(|c| c.workload == "XRV2").unwrap();
    assert_eq!(xrv.threads, 2);

    let r2 = engine::run_campaign(&spec, &catalog).unwrap();
    assert_eq!(r2.report.simulated, 0, "second sweep must be fully cached");
    assert_eq!(r2.report.cache_hits, r2.report.total);

    // Spec-reader path: the same opt-in round-trips through TOML.
    let toml_spec = CampaignSpec::parse(
        "archs = [\"M8\"]\nworkloads = [\"XRV2\"]\nuse_rv_workloads = true\n\
         [budget]\nmeasure_insts = 1000\nwarmup_insts = 400\nsearch_insts = 300\n",
    )
    .unwrap();
    assert!(toml_spec.use_rv_workloads());
    assert!(engine::catalog_for(&toml_spec).get("XRV2").is_some());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn one_panicking_job_fails_cleanly_without_aborting_the_batch() {
    // Mapping [2, 2] on 2M4+2M2 passes the cheap pre-flight `check` (the
    // pipeline index is valid) but panics in the simulator: the M2 has a
    // single context. The batch must return one clean error naming the
    // panic — not abort the process on a poisoned lock — and the healthy
    // sibling jobs must land in the cache.
    let dir = tmpdir("panicjob");
    let cache = ResultCache::open(&dir).unwrap();
    let runner = JobRunner::new(4, Some(cache.clone()));
    let mut bad = job();
    bad.mapping = vec![2, 2];
    assert!(bad.check().is_ok(), "the panic must come from the simulator, not pre-flight");
    let batch = vec![job(), bad, job()];
    let err = runner.run_all(&batch).expect_err("the bad job must surface as an error");
    assert!(err.0.contains("panicked"), "{err}");
    assert!(err.0.contains("contexts"), "the original panic message survives: {err}");
    assert_eq!(cache.len(), 1, "the healthy sibling job still completed and cached");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn status_reports_cache_coverage() {
    let dir = tmpdir("status");
    let catalog = Catalog::paper();
    let spec = tiny_spec(&["M8", "3M4"], &["2W1"], &["heur"], &dir);
    let cache = engine::open_cache(&spec).unwrap();

    let st = engine::status(&spec, &catalog, &cache).unwrap();
    assert_eq!(st.cells, 2);
    assert_eq!(st.measure_cached, 0);

    engine::run_campaign(&spec, &catalog).unwrap();
    let st = engine::status(&spec, &catalog, &cache).unwrap();
    assert_eq!(st.measure_cached, 2, "after a run, status must see the cache");
    let _ = fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------------- CLI

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hdsmt-campaign"))
}

#[test]
fn cli_run_export_acceptance_flow() {
    let dir = tmpdir("cli");
    let cache = dir.join("cache");
    let out = dir.join("out");
    // 6 archs × 4 workloads × 1 policy = 24 cells (the acceptance floor).
    let spec_text = format!(
        r#"
name = "cli-acceptance"
archs = ["M8", "3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"]
workloads = ["2W1", "2W7", "4W4", "4W6"]
policies = ["heur"]
seed = 5
profile_insts = 15000
cache_dir = "{}"

[budget]
measure_insts = 1200
warmup_insts = 500
search_insts = 400
"#,
        cache.display()
    );
    let spec_path = dir.join("spec.toml");
    fs::write(&spec_path, spec_text).unwrap();

    // First run: everything simulates.
    let run1 = cli().arg("run").arg(&spec_path).output().unwrap();
    assert!(run1.status.success(), "stderr: {}", String::from_utf8_lossy(&run1.stderr));
    let err1 = String::from_utf8_lossy(&run1.stderr);
    assert!(err1.contains("24 cells"), "{err1}");
    assert!(err1.contains("0 cache hits, 24 simulated"), "{err1}");

    // Second run: 100% cache hits.
    let run2 = cli().arg("run").arg(&spec_path).output().unwrap();
    assert!(run2.status.success());
    let err2 = String::from_utf8_lossy(&run2.stderr);
    assert!(err2.contains("24 cache hits, 0 simulated"), "{err2}");

    // Status sees full coverage.
    let status = cli().arg("status").arg(&spec_path).output().unwrap();
    assert!(status.status.success());
    let out_s = String::from_utf8_lossy(&status.stdout);
    assert!(out_s.contains("measure jobs cached:  24/24"), "{out_s}");

    // Export writes valid JSON + CSV + summary.
    let export = cli().arg("export").arg(&spec_path).arg("--out").arg(&out).output().unwrap();
    assert!(export.status.success(), "stderr: {}", String::from_utf8_lossy(&export.stderr));

    let json = fs::read_to_string(out.join("campaign.json")).unwrap();
    let v = serde_json::from_str_value(&json).expect("campaign.json is valid JSON");
    assert_eq!(v.get("cells").and_then(|c| c.as_array()).map(|a| a.len()), Some(24));

    let csv = fs::read_to_string(out.join("cells.csv")).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 25, "header + 24 rows");
    assert!(lines[0].starts_with("arch,workload,class,threads,policy,mapping,ipc"));
    for row in &lines[1..] {
        assert_eq!(row.split(',').count(), lines[0].split(',').count(), "{row}");
    }

    let summary = fs::read_to_string(out.join("summary.txt")).unwrap();
    assert!(summary.contains("most complexity-effective machine"), "{summary}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cli_rejects_bad_input() {
    let dir = tmpdir("cli-bad");
    let bad_spec = dir.join("bad.toml");
    fs::write(&bad_spec, "archs = [\"M8\"]\n").unwrap(); // no workloads
    assert!(!cli().arg("run").arg(&bad_spec).output().unwrap().status.success());
    assert!(!cli().arg("run").arg(dir.join("missing.toml")).output().unwrap().status.success());
    assert!(!cli().arg("frobnicate").arg(&bad_spec).output().unwrap().status.success());
    assert!(!cli().output().unwrap().status.success());
    let _ = fs::remove_dir_all(&dir);
}
