//! Behavioural benchmark profiles.
//!
//! A [`BenchProfile`] is the knob set from which a synthetic benchmark is
//! generated. Every knob maps onto one of the behavioural axes the paper's
//! evaluation depends on; see DESIGN.md §3 for the substitution argument.

/// Paper-level workload classification of a benchmark (Table 2/3 footnote:
/// I = high instruction-level parallelism, M = bad memory behaviour).
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum BenchClass {
    /// High-ILP, cache-friendly.
    Ilp,
    /// Memory-bound.
    Mem,
}

/// Generator parameters for one synthetic benchmark.
///
/// Fractions are over the relevant population (e.g. `frac_load` over
/// non-control instructions, `loop_frac` over conditional terminators).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BenchProfile {
    pub name: &'static str,
    pub class: BenchClass,

    // ---- static code shape ----
    /// Number of basic blocks in the main region (controls the instruction
    /// footprint and hence I-cache behaviour; ~7 instructions / 28 bytes per
    /// block on average).
    pub blocks: u16,
    /// Inclusive range of block body lengths (excluding the terminator
    /// instruction).
    pub block_len: (u8, u8),
    /// Number of called functions (exercises call/return and the RAS).
    pub funcs: u8,

    // ---- dynamic instruction mix (fractions of body instructions) ----
    pub frac_load: f32,
    pub frac_store: f32,
    /// Fraction of ALU body ops that are floating point.
    pub frac_fp: f32,
    /// Fraction of integer ALU ops that are multiplies.
    pub frac_mul: f32,

    // ---- dependence structure (ILP) ----
    /// Probability that an instruction's first source is the *immediately
    /// preceding* producer (long serial chains → low ILP). Low values leave
    /// wide instruction-level parallelism for the pipeline to harvest.
    pub serial_dep: f32,
    /// Probability that a load's base register is a recent load result
    /// (pointer chasing: serialises cache misses, the mcf signature).
    pub ptr_chase: f32,

    // ---- memory behaviour ----
    /// Portion of memory ops accessing the small hot stack frame.
    pub stack_frac: f32,
    /// Of the remaining memory ops, the portion doing strided scans (the
    /// rest access their region uniformly at random).
    pub stride_frac: f32,
    /// Scan stride in bytes.
    pub stride_bytes: u16,
    /// Working-set region sizes in KB: `[small, medium, large]`. Relative
    /// to the paper's 64 KB L1D / 512 KB L2, a region ≤ 32 KB is L1-resident,
    /// ~256–512 KB lives in L2, and multi-MB regions stream from memory.
    pub ws_kb: [u32; 3],
    /// Relative weights distributing non-stack memory ops over the three
    /// regions.
    pub region_weights: [f32; 3],

    // ---- control behaviour ----
    /// Fraction of conditional terminators that are counted loops
    /// (near-perfectly predictable).
    pub loop_frac: f32,
    /// Inclusive trip-count range for counted loops.
    pub loop_trip: (u16, u16),
    /// Mean taken-bias of non-loop conditionals (0.5 = coin flip, 1.0 =
    /// always taken).
    pub br_bias: f32,
    /// Fraction of non-loop conditionals that are data-dependent coin flips
    /// (p ≈ 0.5), which no predictor can learn.
    pub br_noise_frac: f32,
    /// Fraction of block terminators that are calls.
    pub call_frac: f32,
    /// Fraction of block terminators that are indirect jumps (interpreter
    /// dispatch, virtual calls; stresses the BTB).
    pub indirect_frac: f32,
}

impl BenchProfile {
    /// Sanity-check the knob ranges. Returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let frac = |v: f32, what: &str| -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{}: {what} = {v} out of [0,1]", self.name))
            }
        };
        frac(self.frac_load, "frac_load")?;
        frac(self.frac_store, "frac_store")?;
        if self.frac_load + self.frac_store > 0.8 {
            return Err(format!("{}: memory fraction implausibly high", self.name));
        }
        frac(self.frac_fp, "frac_fp")?;
        frac(self.frac_mul, "frac_mul")?;
        frac(self.serial_dep, "serial_dep")?;
        frac(self.ptr_chase, "ptr_chase")?;
        frac(self.stack_frac, "stack_frac")?;
        frac(self.stride_frac, "stride_frac")?;
        frac(self.loop_frac, "loop_frac")?;
        frac(self.br_noise_frac, "br_noise_frac")?;
        frac(self.call_frac, "call_frac")?;
        frac(self.indirect_frac, "indirect_frac")?;
        if self.call_frac + self.indirect_frac > 0.9 {
            return Err(format!("{}: too few conditional branches", self.name));
        }
        if !(0.5..=1.0).contains(&self.br_bias) {
            return Err(format!("{}: br_bias {} out of [0.5,1]", self.name, self.br_bias));
        }
        if self.blocks == 0 {
            return Err(format!("{}: no blocks", self.name));
        }
        if self.block_len.0 == 0 || self.block_len.0 > self.block_len.1 {
            return Err(format!("{}: bad block_len range", self.name));
        }
        if self.loop_trip.0 == 0 || self.loop_trip.0 > self.loop_trip.1 {
            return Err(format!("{}: bad loop_trip range", self.name));
        }
        if self.ws_kb.contains(&0) {
            return Err(format!("{}: zero-sized working-set region", self.name));
        }
        if self.region_weights.iter().any(|&w| w < 0.0 || !w.is_finite())
            || self.region_weights.iter().sum::<f32>() <= 0.0
        {
            return Err(format!("{}: bad region weights", self.name));
        }
        if self.stride_bytes == 0 {
            return Err(format!("{}: zero stride", self.name));
        }
        Ok(())
    }

    /// Approximate static code footprint in bytes (for I-cache reasoning in
    /// tests and docs).
    pub fn approx_code_bytes(&self) -> u64 {
        let avg_len = (self.block_len.0 as u64 + self.block_len.1 as u64) / 2 + 1;
        self.blocks as u64 * avg_len * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn base() -> BenchProfile {
        BenchProfile {
            name: "test",
            class: BenchClass::Ilp,
            blocks: 100,
            block_len: (4, 10),
            funcs: 4,
            frac_load: 0.25,
            frac_store: 0.10,
            frac_fp: 0.05,
            frac_mul: 0.05,
            serial_dep: 0.2,
            ptr_chase: 0.1,
            stack_frac: 0.3,
            stride_frac: 0.5,
            stride_bytes: 8,
            ws_kb: [16, 256, 2048],
            region_weights: [0.5, 0.3, 0.2],
            loop_frac: 0.3,
            loop_trip: (8, 64),
            br_bias: 0.9,
            br_noise_frac: 0.08,
            call_frac: 0.05,
            indirect_frac: 0.02,
        }
    }

    #[test]
    fn valid_profile_passes() {
        base().validate().unwrap();
    }

    #[test]
    fn rejects_out_of_range_fractions() {
        let mut p = base();
        p.frac_load = 1.5;
        assert!(p.validate().is_err());
        let mut p = base();
        p.br_bias = 0.3;
        assert!(p.validate().is_err());
        let mut p = base();
        p.frac_load = 0.6;
        p.frac_store = 0.4;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_degenerate_shapes() {
        let mut p = base();
        p.blocks = 0;
        assert!(p.validate().is_err());
        let mut p = base();
        p.block_len = (5, 3);
        assert!(p.validate().is_err());
        let mut p = base();
        p.loop_trip = (0, 4);
        assert!(p.validate().is_err());
        let mut p = base();
        p.ws_kb = [0, 1, 1];
        assert!(p.validate().is_err());
        let mut p = base();
        p.region_weights = [0.0, 0.0, 0.0];
        assert!(p.validate().is_err());
    }

    #[test]
    fn code_footprint_estimate() {
        let p = base();
        // 100 blocks * (7 + 1) * 4 bytes.
        assert_eq!(p.approx_code_bytes(), 100 * 8 * 4);
    }
}
