//! # hdsmt-trace — synthetic SPECint2000 benchmark models
//!
//! The paper drives its SMTSIM-derived simulator with Alpha traces of the
//! twelve SPECint2000 benchmarks (300M-instruction SimPoint segments). Those
//! traces are not redistributable, so this crate builds the closest
//! synthetic equivalent (DESIGN.md §3):
//!
//! 1. a [`BenchProfile`] captures the *behavioural axes* that the paper's
//!    evaluation actually depends on — instruction mix, dependence-chain
//!    depth (ILP), working-set/locality structure (data-cache miss
//!    behaviour), branch-population predictability, and static code
//!    footprint;
//! 2. [`synth::synthesize`] turns a profile into a concrete static
//!    [`hdsmt_isa::Program`] (a control-flow graph of basic blocks), fully
//!    deterministic given a seed;
//! 3. a [`TraceStream`] walks the program, producing the infinite dynamic
//!    instruction stream (with concrete effective addresses and branch
//!    outcomes) consumed by the processor model. Wrong-path address
//!    fabrication uses a *separate* RNG so speculation never perturbs the
//!    architecturally-correct stream.
//!
//! The twelve calibrated models live in [`spec`]; their relative ordering on
//! each behavioural axis follows the published characterisation of
//! SPECint2000 (mcf far ahead of twolf/vpr/perlbmk in data-cache misses,
//! gzip/eon/crafty/bzip2 at the high-ILP end, perlbmk indirect-branch heavy,
//! gcc/vortex with large instruction footprints, …).

#![forbid(unsafe_code)]

pub mod chunk;
pub mod dyninst;
pub mod profile;
pub mod source;
pub mod spec;
pub mod stream;
pub mod synth;

pub use chunk::{ChunkBuf, CHUNK_INSTS};
pub use dyninst::{CtrlOutcome, DynInst};
pub use profile::{BenchClass, BenchProfile};
pub use source::TraceSource;
pub use spec::{all_benchmarks, by_name, BENCHMARK_NAMES};
pub use stream::TraceStream;
pub use synth::synthesize;
