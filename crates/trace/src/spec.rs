//! Calibrated models of the twelve SPECint2000 benchmarks.
//!
//! Absolute fidelity to the Alpha binaries is neither possible nor needed
//! (DESIGN.md §3): what the paper's evaluation consumes is each benchmark's
//! *position* on a handful of behavioural axes. The knob values below encode
//! the published SPECint2000 characterisation:
//!
//! * **D-cache behaviour** — `mcf` is the outlier (multi-MB pointer-chased
//!   working set, dozens-to-hundreds of misses per 1K instructions);
//!   `twolf`, `vpr` and `perlbmk` follow (the paper's MEM class); the ILP
//!   class (`gzip`, `eon`, `crafty`, `bzip2`, `gap`, `vortex`, `gcc`,
//!   `parser`) is largely L1/L2 resident.
//! * **ILP** — `eon`/`gzip`/`crafty`/`bzip2` sustain high issue rates
//!   (shallow dependence chains), `mcf` is serialised on dependent misses.
//! * **Branch population** — `perlbmk` is indirect-branch heavy
//!   (interpreter dispatch), `crafty`/`vortex` call-heavy, `gzip`/`bzip2`
//!   loop-dominated and highly predictable, `twolf`/`vpr` carry more
//!   data-dependent conditionals.
//! * **Code footprint** — `gcc` and `vortex` stress the 64 KB L1I; the rest
//!   mostly fit.
//!
//! The classification (`Ilp` vs `Mem`) matches the workload tables of the
//! paper (Tables 2–3): mcf, twolf, vpr and perlbmk appear in MEM workloads.

use crate::profile::{BenchClass, BenchProfile};

/// The benchmark names in SPECint2000 order, as used by the paper.
pub const BENCHMARK_NAMES: [&str; 12] = [
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex", "bzip2",
    "twolf",
];

/// All twelve calibrated benchmark models.
pub fn all_benchmarks() -> &'static [BenchProfile] {
    &BENCHMARKS
}

/// Look a benchmark model up by name.
pub fn by_name(name: &str) -> Option<&'static BenchProfile> {
    BENCHMARKS.iter().find(|p| p.name == name)
}

/// Deterministic per-benchmark program seed: every simulation of a given
/// benchmark uses the same synthetic binary, mirroring how the paper traces
/// one fixed binary per benchmark.
pub fn program_seed(name: &str) -> u64 {
    // FNV-1a over the name — stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

static BENCHMARKS: std::sync::LazyLock<Vec<BenchProfile>> = std::sync::LazyLock::new(|| {
    vec![
        // ---- high-ILP, cache-friendly compression ----
        BenchProfile {
            name: "gzip",
            class: BenchClass::Ilp,
            blocks: 160,
            block_len: (5, 11),
            funcs: 5,
            frac_load: 0.22,
            frac_store: 0.10,
            frac_fp: 0.01,
            frac_mul: 0.03,
            serial_dep: 0.14,
            ptr_chase: 0.05,
            stack_frac: 0.35,
            stride_frac: 0.72,
            stride_bytes: 8,
            ws_kb: [16, 96, 2048],
            region_weights: [0.97, 0.028, 0.002],
            loop_frac: 0.38,
            loop_trip: (8, 40),
            br_bias: 0.93,
            br_noise_frac: 0.05,
            call_frac: 0.04,
            indirect_frac: 0.01,
        },
        // ---- FPGA place & route: scattered accesses over netlist data ----
        BenchProfile {
            name: "vpr",
            class: BenchClass::Mem,
            blocks: 260,
            block_len: (4, 9),
            funcs: 6,
            frac_load: 0.27,
            frac_store: 0.09,
            frac_fp: 0.08,
            frac_mul: 0.04,
            serial_dep: 0.24,
            ptr_chase: 0.18,
            stack_frac: 0.18,
            stride_frac: 0.18,
            stride_bytes: 16,
            ws_kb: [32, 768, 2048],
            region_weights: [0.91, 0.05, 0.04],
            loop_frac: 0.22,
            loop_trip: (3, 16),
            br_bias: 0.86,
            br_noise_frac: 0.13,
            call_frac: 0.05,
            indirect_frac: 0.01,
        },
        // ---- compiler: large code footprint, branchy, moderate misses ----
        BenchProfile {
            name: "gcc",
            class: BenchClass::Ilp,
            blocks: 1400,
            block_len: (4, 8),
            funcs: 12,
            frac_load: 0.25,
            frac_store: 0.11,
            frac_fp: 0.01,
            frac_mul: 0.02,
            serial_dep: 0.20,
            ptr_chase: 0.12,
            stack_frac: 0.30,
            stride_frac: 0.35,
            stride_bytes: 8,
            ws_kb: [32, 128, 1536],
            region_weights: [0.96, 0.036, 0.004],
            loop_frac: 0.20,
            loop_trip: (3, 12),
            br_bias: 0.88,
            br_noise_frac: 0.09,
            call_frac: 0.07,
            indirect_frac: 0.03,
        },
        // ---- the memory-bound outlier: pointer-chased multi-MB lists ----
        BenchProfile {
            name: "mcf",
            class: BenchClass::Mem,
            blocks: 140,
            block_len: (4, 9),
            funcs: 3,
            frac_load: 0.31,
            frac_store: 0.09,
            frac_fp: 0.00,
            frac_mul: 0.01,
            serial_dep: 0.34,
            ptr_chase: 0.55,
            stack_frac: 0.08,
            stride_frac: 0.06,
            stride_bytes: 32,
            ws_kb: [32, 2048, 8192],
            region_weights: [0.6, 0.15, 0.25],
            loop_frac: 0.24,
            loop_trip: (3, 24),
            br_bias: 0.89,
            br_noise_frac: 0.10,
            call_frac: 0.03,
            indirect_frac: 0.00,
        },
        // ---- chess: hash tables that mostly fit, high ILP, call-heavy ----
        BenchProfile {
            name: "crafty",
            class: BenchClass::Ilp,
            blocks: 450,
            block_len: (5, 11),
            funcs: 10,
            frac_load: 0.26,
            frac_store: 0.08,
            frac_fp: 0.00,
            frac_mul: 0.04,
            serial_dep: 0.15,
            ptr_chase: 0.06,
            stack_frac: 0.30,
            stride_frac: 0.45,
            stride_bytes: 8,
            ws_kb: [32, 96, 1024],
            region_weights: [0.975, 0.023, 0.002],
            loop_frac: 0.26,
            loop_trip: (4, 20),
            br_bias: 0.91,
            br_noise_frac: 0.07,
            call_frac: 0.08,
            indirect_frac: 0.01,
        },
        // ---- NL parser: dictionary lookups, moderate everything ----
        BenchProfile {
            name: "parser",
            class: BenchClass::Ilp,
            blocks: 340,
            block_len: (4, 9),
            funcs: 8,
            frac_load: 0.26,
            frac_store: 0.10,
            frac_fp: 0.00,
            frac_mul: 0.02,
            serial_dep: 0.24,
            ptr_chase: 0.22,
            stack_frac: 0.24,
            stride_frac: 0.22,
            stride_bytes: 8,
            ws_kb: [32, 160, 2048],
            region_weights: [0.957, 0.037, 0.006],
            loop_frac: 0.20,
            loop_trip: (3, 12),
            br_bias: 0.87,
            br_noise_frac: 0.11,
            call_frac: 0.07,
            indirect_frac: 0.01,
        },
        // ---- C++ ray tracer: fp-rich, tiny working set, very high ILP ----
        BenchProfile {
            name: "eon",
            class: BenchClass::Ilp,
            blocks: 240,
            block_len: (6, 12),
            funcs: 12,
            frac_load: 0.24,
            frac_store: 0.11,
            frac_fp: 0.28,
            frac_mul: 0.30,
            serial_dep: 0.12,
            ptr_chase: 0.03,
            stack_frac: 0.42,
            stride_frac: 0.60,
            stride_bytes: 8,
            ws_kb: [16, 64, 512],
            region_weights: [0.99, 0.009, 0.001],
            loop_frac: 0.30,
            loop_trip: (3, 12),
            br_bias: 0.93,
            br_noise_frac: 0.04,
            call_frac: 0.10,
            indirect_frac: 0.03,
        },
        // ---- perl interpreter: indirect dispatch, sizeable heap ----
        BenchProfile {
            name: "perlbmk",
            class: BenchClass::Mem,
            blocks: 600,
            block_len: (4, 9),
            funcs: 10,
            frac_load: 0.28,
            frac_store: 0.12,
            frac_fp: 0.00,
            frac_mul: 0.02,
            serial_dep: 0.25,
            ptr_chase: 0.20,
            stack_frac: 0.22,
            stride_frac: 0.18,
            stride_bytes: 8,
            ws_kb: [32, 768, 3072],
            region_weights: [0.948, 0.035, 0.017],
            loop_frac: 0.16,
            loop_trip: (3, 10),
            br_bias: 0.85,
            br_noise_frac: 0.12,
            call_frac: 0.08,
            indirect_frac: 0.08,
        },
        // ---- group theory: list/bag operations, decent locality ----
        BenchProfile {
            name: "gap",
            class: BenchClass::Ilp,
            blocks: 360,
            block_len: (4, 10),
            funcs: 8,
            frac_load: 0.24,
            frac_store: 0.10,
            frac_fp: 0.02,
            frac_mul: 0.06,
            serial_dep: 0.19,
            ptr_chase: 0.10,
            stack_frac: 0.28,
            stride_frac: 0.40,
            stride_bytes: 8,
            ws_kb: [32, 128, 1024],
            region_weights: [0.969, 0.028, 0.003],
            loop_frac: 0.24,
            loop_trip: (3, 16),
            br_bias: 0.90,
            br_noise_frac: 0.07,
            call_frac: 0.06,
            indirect_frac: 0.02,
        },
        // ---- OO database: large code, call-heavy, good data locality ----
        BenchProfile {
            name: "vortex",
            class: BenchClass::Ilp,
            blocks: 700,
            block_len: (5, 10),
            funcs: 14,
            frac_load: 0.27,
            frac_store: 0.13,
            frac_fp: 0.00,
            frac_mul: 0.02,
            serial_dep: 0.17,
            ptr_chase: 0.10,
            stack_frac: 0.34,
            stride_frac: 0.40,
            stride_bytes: 8,
            ws_kb: [32, 128, 1280],
            region_weights: [0.965, 0.032, 0.003],
            loop_frac: 0.18,
            loop_trip: (3, 10),
            br_bias: 0.92,
            br_noise_frac: 0.05,
            call_frac: 0.11,
            indirect_frac: 0.03,
        },
        // ---- compression again: strided, loopy, high ILP ----
        BenchProfile {
            name: "bzip2",
            class: BenchClass::Ilp,
            blocks: 150,
            block_len: (5, 12),
            funcs: 4,
            frac_load: 0.23,
            frac_store: 0.11,
            frac_fp: 0.00,
            frac_mul: 0.03,
            serial_dep: 0.15,
            ptr_chase: 0.06,
            stack_frac: 0.26,
            stride_frac: 0.62,
            stride_bytes: 8,
            ws_kb: [32, 128, 2048],
            region_weights: [0.962, 0.035, 0.003],
            loop_frac: 0.36,
            loop_trip: (6, 36),
            br_bias: 0.92,
            br_noise_frac: 0.06,
            call_frac: 0.03,
            indirect_frac: 0.01,
        },
        // ---- standard-cell place & route: the second memory-bound model ----
        BenchProfile {
            name: "twolf",
            class: BenchClass::Mem,
            blocks: 260,
            block_len: (4, 9),
            funcs: 6,
            frac_load: 0.28,
            frac_store: 0.09,
            frac_fp: 0.04,
            frac_mul: 0.05,
            serial_dep: 0.27,
            ptr_chase: 0.28,
            stack_frac: 0.14,
            stride_frac: 0.12,
            stride_bytes: 16,
            ws_kb: [32, 768, 3072],
            region_weights: [0.89, 0.07, 0.04],
            loop_frac: 0.18,
            loop_trip: (3, 12),
            br_bias: 0.85,
            br_noise_frac: 0.13,
            call_frac: 0.05,
            indirect_frac: 0.01,
        },
    ]
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_benchmarks_all_valid() {
        assert_eq!(all_benchmarks().len(), 12);
        for p in all_benchmarks() {
            p.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn names_match_registry() {
        for name in BENCHMARK_NAMES {
            assert!(by_name(name).is_some(), "{name} missing");
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn paper_mem_class_membership() {
        // Tables 2–3 build MEM workloads from mcf, twolf, vpr, perlbmk.
        for name in ["mcf", "twolf", "vpr", "perlbmk"] {
            assert_eq!(by_name(name).unwrap().class, BenchClass::Mem, "{name}");
        }
        for name in ["gzip", "gcc", "crafty", "eon", "gap", "vortex", "bzip2", "parser"] {
            assert_eq!(by_name(name).unwrap().class, BenchClass::Ilp, "{name}");
        }
    }

    #[test]
    fn mcf_is_the_memory_outlier() {
        // mcf must dominate every other model on the memory-pressure knobs
        // that generate data-cache misses.
        let mcf = by_name("mcf").unwrap();
        for p in all_benchmarks() {
            if p.name == "mcf" {
                continue;
            }
            assert!(mcf.ws_kb[2] >= p.ws_kb[2], "{}", p.name);
            assert!(mcf.ptr_chase >= p.ptr_chase, "{}", p.name);
        }
    }

    #[test]
    fn code_footprints() {
        // gcc and vortex carry the largest code footprints (as in real
        // SPECint); gzip/mcf/bzip2 are small kernels. All models keep their
        // steady-state footprint within the 64 KB L1I so that short scaled
        // runs reach the same I-cache steady state the paper's 300 M-
        // instruction runs do.
        let code = |n: &str| by_name(n).unwrap().approx_code_bytes();
        assert!(code("gcc") > 2 * code("gzip"));
        assert!(code("vortex") > 2 * code("mcf"));
        assert!(code("gcc") <= 64 * 1024);
        assert!(code("gzip") < 16 * 1024);
        assert!(code("mcf") < 16 * 1024);
    }

    #[test]
    fn program_seed_is_stable_and_distinct() {
        assert_eq!(program_seed("gzip"), program_seed("gzip"));
        let mut seeds: Vec<u64> = BENCHMARK_NAMES.iter().map(|n| program_seed(n)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12, "program seeds must be distinct");
    }

    #[test]
    fn perlbmk_is_indirect_heavy() {
        let perl = by_name("perlbmk").unwrap();
        for p in all_benchmarks() {
            if p.name != "perlbmk" {
                assert!(perl.indirect_frac >= p.indirect_frac, "{}", p.name);
            }
        }
    }
}
