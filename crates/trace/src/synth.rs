//! Synthetic program generation: [`BenchProfile`] → [`Program`].
//!
//! The generated CFG is a large outer ring of "main chain" blocks (the
//! steady-state loop every SPEC benchmark spends its SimPoint segment in),
//! decorated with:
//!
//! * counted self-loops (predictable loop branches),
//! * biased and data-dependent forward conditionals,
//! * calls into a small set of leaf functions (RAS traffic),
//! * indirect jumps over several forward targets (BTB pressure).
//!
//! Architectural fall-through correctness is maintained by construction:
//! every not-taken/fall-through successor is the next block id, which the
//! program layout places at the next PC.
//!
//! Register dataflow: destinations rotate through a 24-register pool while
//! sources are drawn either from the immediately preceding producer (with
//! probability `serial_dep`, creating serial chains) or from a recent-
//! producer window (leaving ILP). Load base registers optionally chain on
//! recent load results (`ptr_chase`) to serialise cache misses like mcf's
//! list traversals.

use hdsmt_isa::{ArchReg, BasicBlock, BlockId, MemGen, Op, Pc, Program, StaticInst, Terminator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::profile::BenchProfile;

/// Integer registers `r0..POOL` / fp `f0..POOL` rotate as destinations;
/// higher registers are stable (never written), usable as loop-invariant
/// bases.
const DST_POOL: u8 = 24;
/// Size of the recent-producer window sources draw from.
const RECENT: usize = 8;

/// Tracks rotating destinations and recent producers for one register class.
struct RegAlloc {
    next: u8,
    recent: [u8; RECENT],
    fp: bool,
}

impl RegAlloc {
    fn new(fp: bool) -> Self {
        RegAlloc { next: 0, recent: [0; RECENT], fp }
    }

    fn make(&self, n: u8) -> ArchReg {
        if self.fp {
            ArchReg::fp(n)
        } else {
            ArchReg::int(n)
        }
    }

    /// Allocate the next rotating destination.
    fn alloc_dst(&mut self) -> ArchReg {
        let r = self.next;
        self.next = (self.next + 1) % DST_POOL;
        self.recent.rotate_right(1);
        self.recent[0] = r;
        self.make(r)
    }

    /// Most recent producer.
    fn prev(&self) -> ArchReg {
        self.make(self.recent[0])
    }

    /// A random recent producer (index 0 = newest).
    fn recent(&self, rng: &mut SmallRng) -> ArchReg {
        self.make(self.recent[rng.gen_range(0..RECENT)])
    }

    /// A stable, never-written register.
    fn stable(&self, rng: &mut SmallRng) -> ArchReg {
        self.make(rng.gen_range(DST_POOL..32))
    }
}

/// Everything the per-block body generator needs to share across blocks.
struct BodyGen {
    int: RegAlloc,
    fp: RegAlloc,
    /// Destination of the most recent load (for pointer chasing).
    last_load_dst: Option<ArchReg>,
}

impl BodyGen {
    fn new() -> Self {
        BodyGen { int: RegAlloc::new(false), fp: RegAlloc::new(true), last_load_dst: None }
    }

    /// Pick a memory-access generator annotation per the profile's locality
    /// mix.
    fn mem_gen(&mut self, p: &BenchProfile, rng: &mut SmallRng) -> MemGen {
        if rng.gen::<f32>() < p.stack_frac {
            return MemGen::Stack;
        }
        if rng.gen::<f32>() < p.stride_frac {
            MemGen::Stride { stride: p.stride_bytes }
        } else {
            MemGen::Random
        }
    }

    /// Generate one body instruction.
    fn inst(&mut self, p: &BenchProfile, rng: &mut SmallRng) -> StaticInst {
        let r = rng.gen::<f32>();
        if r < p.frac_load {
            // Load: base register either chases a recent load result or is a
            // stable pointer.
            let base = match self.last_load_dst {
                Some(d) if rng.gen::<f32>() < p.ptr_chase => d,
                _ => self.int.stable(rng),
            };
            let fp_dst = rng.gen::<f32>() < p.frac_fp;
            let dst = if fp_dst { self.fp.alloc_dst() } else { self.int.alloc_dst() };
            if !fp_dst {
                self.last_load_dst = Some(dst);
            }
            let gen = self.mem_gen(p, rng);
            StaticInst::load(dst, base, gen)
        } else if r < p.frac_load + p.frac_store {
            let value = if rng.gen::<f32>() < p.frac_fp {
                self.fp.recent(rng)
            } else {
                self.int.recent(rng)
            };
            let base = self.int.stable(rng);
            let gen = self.mem_gen(p, rng);
            StaticInst::store(value, base, gen)
        } else if rng.gen::<f32>() < p.frac_fp {
            // FP arithmetic.
            let op = if rng.gen::<f32>() < p.frac_mul { Op::FpMul } else { Op::FpAlu };
            let s0 =
                if rng.gen::<f32>() < p.serial_dep { self.fp.prev() } else { self.fp.recent(rng) };
            let s1 = self.fp.recent(rng);
            let dst = self.fp.alloc_dst();
            StaticInst::alu(op, dst, [Some(s0), Some(s1)])
        } else {
            // Integer arithmetic.
            let op = if rng.gen::<f32>() < p.frac_mul { Op::IntMul } else { Op::IntAlu };
            let s0 = if rng.gen::<f32>() < p.serial_dep {
                self.int.prev()
            } else {
                self.int.recent(rng)
            };
            let s1 = if rng.gen::<f32>() < 0.5 { Some(self.int.recent(rng)) } else { None };
            let dst = self.int.alloc_dst();
            StaticInst::alu(op, dst, [Some(s0), s1])
        }
    }

    /// Fill a block body of `len` instructions.
    fn body(&mut self, p: &BenchProfile, rng: &mut SmallRng, len: usize) -> Vec<StaticInst> {
        (0..len).map(|_| self.inst(p, rng)).collect()
    }

    /// Register a conditional branch tests (a recent integer producer).
    fn branch_src(&mut self, rng: &mut SmallRng) -> ArchReg {
        self.int.recent(rng)
    }
}

/// Generate the static program for `profile`, deterministically from `seed`.
///
/// # Panics
/// Panics if the profile fails [`BenchProfile::validate`] — profiles are
/// compiled-in data, so an invalid one is a programming error.
pub fn synthesize(profile: &BenchProfile, seed: u64) -> Program {
    profile.validate().expect("invalid benchmark profile");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5d9f_4a7e_12c3_88b1);
    let mut gen = BodyGen::new();

    let n_main = profile.blocks as usize;
    // Function layout: each function is a chain of 1–3 blocks starting at
    // `func_starts[f]`, ending in Return.
    let mut func_lens = Vec::with_capacity(profile.funcs as usize);
    for _ in 0..profile.funcs {
        func_lens.push(rng.gen_range(1..=3usize));
    }
    let mut func_starts = Vec::with_capacity(func_lens.len());
    let mut next_id = n_main;
    for &l in &func_lens {
        func_starts.push(next_id);
        next_id += l;
    }
    let total = next_id;

    let body_len = |rng: &mut SmallRng, p: &BenchProfile| {
        rng.gen_range(p.block_len.0 as usize..=p.block_len.1 as usize)
    };

    let mut blocks = Vec::with_capacity(total);

    // ---- main chain ----
    for i in 0..n_main {
        let id = BlockId(i as u32);
        let next = BlockId(((i + 1) % n_main) as u32);
        let body_n = body_len(&mut rng, profile);
        let mut insts = gen.body(profile, &mut rng, body_n);
        let term = if i == n_main - 1 {
            // Close the outer ring with an unconditional jump (a conditional
            // here would need a non-adjacent fall-through, which the ISA
            // forbids).
            insts.push(StaticInst::control(Op::Jump, None));
            Terminator::Jump { target: BlockId(0) }
        } else {
            let r = rng.gen::<f32>();
            if r < profile.call_frac && !func_starts.is_empty() {
                let f = rng.gen_range(0..func_starts.len());
                insts.push(StaticInst::control(Op::Call, None));
                Terminator::Call { callee: BlockId(func_starts[f] as u32), ret_to: next }
            } else if r < profile.call_frac + profile.indirect_frac {
                // 2–4 forward targets in the ring.
                let k = rng.gen_range(2..=4usize);
                let mut targets = Vec::with_capacity(k);
                for _ in 0..k {
                    let skip = rng.gen_range(1..=8usize);
                    let t = BlockId(((i + skip) % n_main) as u32);
                    targets.push((t, rng.gen_range(0.2..1.0f32)));
                }
                insts.push(StaticInst::control(Op::IndirectJump, Some(gen.int.stable(&mut rng))));
                Terminator::Indirect { targets }
            } else if rng.gen::<f32>() < profile.loop_frac {
                let trip = rng.gen_range(profile.loop_trip.0..=profile.loop_trip.1);
                insts.push(StaticInst::control(Op::CondBranch, Some(gen.branch_src(&mut rng))));
                Terminator::Loop { back: id, exit: next, trip }
            } else if rng.gen::<f32>() < 0.92 {
                // Forward conditional. Taken target skips ahead in the ring;
                // fall-through is the adjacent block.
                let skip = rng.gen_range(2..=5usize);
                let taken = BlockId(((i + skip) % n_main) as u32);
                let p_taken = if rng.gen::<f32>() < profile.br_noise_frac {
                    rng.gen_range(0.35..0.65)
                } else {
                    let bias = (profile.br_bias + rng.gen_range(-0.06..0.06)).clamp(0.55, 0.99);
                    // Most predictable branches in real code are
                    // bias-not-taken forward branches; keep a taken-biased
                    // minority so fetch still breaks on taken branches.
                    if rng.gen::<f32>() < 0.35 {
                        bias
                    } else {
                        1.0 - bias
                    }
                };
                insts.push(StaticInst::control(Op::CondBranch, Some(gen.branch_src(&mut rng))));
                Terminator::Cond { taken, not_taken: next, p_taken }
            } else if rng.gen::<f32>() < 0.5 {
                insts.push(StaticInst::control(Op::Jump, None));
                Terminator::Jump { target: next }
            } else {
                Terminator::FallThrough { next }
            }
        };
        blocks.push(BasicBlock { id, start: Pc(0), insts, term });
    }

    // ---- functions ----
    for (f, &start) in func_starts.iter().enumerate() {
        let len = func_lens[f];
        for j in 0..len {
            let id = BlockId((start + j) as u32);
            let body_n = body_len(&mut rng, profile);
            let mut insts = gen.body(profile, &mut rng, body_n);
            let term = if j + 1 == len {
                insts.push(StaticInst::control(Op::Return, None));
                Terminator::Return
            } else {
                Terminator::FallThrough { next: BlockId((start + j + 1) as u32) }
            };
            blocks.push(BasicBlock { id, start: Pc(0), insts, term });
        }
    }

    Program::build(blocks, BlockId(0)).expect("synthesized program must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn test_profile() -> BenchProfile {
        spec::by_name("gzip").unwrap().clone()
    }

    #[test]
    fn synthesis_is_deterministic() {
        let p = test_profile();
        let a = synthesize(&p, 42);
        let b = synthesize(&p, 42);
        assert_eq!(a.blocks().len(), b.blocks().len());
        for (x, y) in a.blocks().iter().zip(b.blocks().iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = test_profile();
        let a = synthesize(&p, 1);
        let b = synthesize(&p, 2);
        let same = a.blocks().iter().zip(b.blocks().iter()).filter(|(x, y)| x == y).count();
        assert!(same < a.blocks().len(), "seeds should change the program");
    }

    #[test]
    fn fall_through_targets_are_adjacent() {
        // The ISA requires not-taken/fall-through successors to sit at the
        // next PC; the generator must uphold this for every block.
        for name in spec::BENCHMARK_NAMES {
            let prog = synthesize(spec::by_name(name).unwrap(), 7);
            for b in prog.blocks() {
                let adj = BlockId(b.id.0 + 1);
                match &b.term {
                    Terminator::FallThrough { next } => assert_eq!(*next, adj, "{name} {:?}", b.id),
                    Terminator::Cond { not_taken, .. } => {
                        assert_eq!(*not_taken, adj, "{name} {:?}", b.id)
                    }
                    Terminator::Loop { exit, back, trip } => {
                        assert_eq!(*exit, adj, "{name} {:?}", b.id);
                        assert_eq!(*back, b.id);
                        assert!(*trip > 0);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn all_spec_programs_validate() {
        for p in spec::all_benchmarks() {
            let prog = synthesize(p, 123);
            prog.validate().unwrap();
            assert!(prog.len_insts() > 0);
        }
    }

    #[test]
    fn functions_end_in_return_and_are_call_reachable_only() {
        let p = test_profile();
        let prog = synthesize(&p, 5);
        let n_main = p.blocks as usize;
        // Every callee id is >= n_main; every Return block id is >= n_main.
        for b in prog.blocks() {
            if let Terminator::Call { callee, ret_to } = &b.term {
                assert!(callee.index() >= n_main, "calls must target function blocks");
                assert!(ret_to.index() < n_main, "returns come back to the main chain");
            }
            if matches!(b.term, Terminator::Return) {
                assert!(b.id.index() >= n_main);
            }
        }
    }

    #[test]
    fn instruction_mix_tracks_profile() {
        let p = test_profile();
        let prog = synthesize(&p, 99);
        let s = prog.stats();
        let body = s.insts - s.branches;
        let load_frac = s.loads as f32 / body as f32;
        // Generated mix should be within a few points of the knob.
        assert!(
            (load_frac - p.frac_load).abs() < 0.06,
            "load fraction {load_frac} vs profile {}",
            p.frac_load
        );
        let store_frac = s.stores as f32 / body as f32;
        assert!((store_frac - p.frac_store).abs() < 0.06);
    }
}
