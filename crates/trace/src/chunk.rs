//! [`ChunkBuf`]: the reusable instruction chunk the batched front-end
//! generation fills and the fetch engine drains.
//!
//! The processor holds each thread's stream behind a `Box<dyn
//! TraceSource>`, which put a virtual call (and, for the RV64I emulator, a
//! full emulator re-entry) on every fetched instruction. The chunk buffer
//! amortizes that seam: fetch pops plain records from a per-thread
//! `ChunkBuf` and crosses the trait object only when it runs dry — one
//! [`TraceSource::fill`](crate::TraceSource::fill) call per
//! [`CHUNK_INSTS`] instructions, inside which the concrete source runs a
//! tight, fully devirtualized block-at-a-time loop.
//!
//! A `ChunkBuf` is drain-then-refill, not a ring: the consumer pops until
//! empty, then [`reset`](ChunkBuf::reset)s and refills. The backing
//! storage is allocated once and reused for the life of the thread, so
//! the steady-state fetch path still allocates nothing.

use crate::dyninst::DynInst;

/// Default chunk capacity: one `fill` call amortizes the trait-object
/// dispatch (and emulator/program re-entry) across this many
/// instructions. Big enough that the seam vanishes from profiles, small
/// enough that a chunk stays a couple of cache lines of `DynInst`s.
pub const CHUNK_INSTS: usize = 64;

/// A reusable, bounded buffer of dynamic instructions in stream order.
#[derive(Debug)]
pub struct ChunkBuf {
    items: Vec<DynInst>,
    /// Index of the next instruction to pop (`== items.len()` ⇒ empty).
    head: usize,
    cap: usize,
}

impl ChunkBuf {
    /// A buffer of the default [`CHUNK_INSTS`] capacity.
    pub fn new() -> Self {
        Self::with_capacity(CHUNK_INSTS)
    }

    /// A buffer holding up to `cap` instructions per fill.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "a chunk must hold at least one instruction");
        ChunkBuf { items: Vec::with_capacity(cap), head: 0, cap }
    }

    /// Pop the next instruction in stream order.
    #[inline]
    pub fn pop(&mut self) -> Option<DynInst> {
        let d = *self.items.get(self.head)?;
        self.head += 1;
        Some(d)
    }

    /// Append one instruction. Fill implementations must not exceed
    /// [`Self::room`].
    #[inline]
    pub fn push(&mut self, d: DynInst) {
        debug_assert!(self.items.len() < self.cap, "fill overran the chunk capacity");
        self.items.push(d);
    }

    /// Instructions a fill may still append.
    #[inline]
    pub fn room(&self) -> usize {
        self.cap - self.items.len()
    }

    /// Instructions still to be popped.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len() - self.head
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == self.items.len()
    }

    /// Maximum instructions per fill.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Discard consumed state before a refill, keeping the allocation.
    #[inline]
    pub fn reset(&mut self) {
        self.items.clear();
        self.head = 0;
    }
}

impl Default for ChunkBuf {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsmt_isa::{Op, Pc, StaticInst};

    fn inst(n: u64) -> DynInst {
        DynInst {
            pc: Pc(n * 4),
            sinst: StaticInst { op: Op::IntAlu, dst: None, srcs: [None, None], mem: None },
            addr: 0,
            ctrl: None,
        }
    }

    #[test]
    fn fifo_order_and_reuse() {
        let mut b = ChunkBuf::with_capacity(4);
        assert!(b.is_empty());
        assert_eq!(b.room(), 4);
        for n in 0..3 {
            b.push(inst(n));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.room(), 1);
        assert_eq!(b.pop().unwrap().pc, Pc(0));
        assert_eq!(b.pop().unwrap().pc, Pc(4));
        assert_eq!(b.len(), 1);
        assert_eq!(b.pop().unwrap().pc, Pc(8));
        assert!(b.pop().is_none());
        assert!(b.is_empty());
        // Refill after reset reuses the buffer from the start.
        b.reset();
        assert_eq!(b.room(), 4);
        b.push(inst(9));
        assert_eq!(b.pop().unwrap().pc, Pc(36));
    }
}
