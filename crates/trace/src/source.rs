//! The [`TraceSource`] abstraction: anything that can feed the processor
//! model a deterministic dynamic instruction stream.
//!
//! Two front-ends implement it today:
//!
//! * [`crate::TraceStream`] — the statistically synthesized SPECint2000
//!   benchmark models (this crate);
//! * `hdsmt_riscv::RvTraceSource` — a functional RV64I(+M) emulator that
//!   executes real assembly programs architecturally and emits their
//!   dynamic instruction stream (real PCs, real branch outcomes, real
//!   effective addresses).
//!
//! # Contract
//!
//! The processor model holds one boxed source per hardware thread and
//! relies on the following properties; new implementations must uphold
//! all of them (the synthetic stream's tests show the pattern):
//!
//! * **Determinism.** Two sources constructed with identical parameters
//!   produce identical [`DynInst`] sequences. The campaign result cache
//!   assumes simulations are pure functions of their spec.
//! * **Endlessness.** [`next_inst`](TraceSource::next_inst) never runs
//!   dry: the simulator halts on retire budgets, not on end-of-program.
//!   Finite programs must wrap around (the RISC-V front-end emits a
//!   restart jump and resets its architectural state).
//! * **Wrong-path isolation.** [`wrong_path_addr`]
//!   (TraceSource::wrong_path_addr) fabricates addresses for
//!   mis-speculated instructions and must never perturb the
//!   architecturally-correct stream, no matter how often it is called.
//! * **Static dictionary.** [`program`](TraceSource::program) exposes the
//!   static code image as a basic-block CFG. The fetch engine decodes
//!   real static instructions down mispredicted paths from it and derives
//!   predicted-taken targets from its terminators.
//! * **Self-describing layout.** [`code_range`](TraceSource::code_range)
//!   and [`region_layout`](TraceSource::region_layout) describe the
//!   address-space image so scaled runs can pre-warm caches to
//!   steady-state residency. Unused region slots report `(0, 0)`.
//! * **Control outcomes.** Every emitted instruction whose op
//!   `is_control()` carries `Some(ctrl)`, with `target == pc.next()` when
//!   not taken.
//! * **Batched generation.** [`fill`](TraceSource::fill) appends exactly
//!   the instructions repeated `next_inst` calls would produce; the two
//!   entry points are freely interleavable. The fetch engine consumes
//!   streams through a per-thread [`crate::ChunkBuf`], so `fill` is the
//!   hot path and implementations override it with block-at-a-time loops
//!   (the default loops `next_inst`).

use std::sync::Arc;

use hdsmt_isa::{MemGen, Program};

use crate::chunk::ChunkBuf;
use crate::dyninst::DynInst;

/// A deterministic, endless dynamic-instruction source for one hardware
/// thread. See the module docs for the full contract.
pub trait TraceSource: Send {
    /// Produce the next architecturally-correct dynamic instruction.
    fn next_inst(&mut self) -> DynInst;

    /// Produce the next run of architecturally-correct instructions in
    /// bulk: append between 1 and [`buf.room()`](ChunkBuf::room)
    /// instructions, **exactly** the sequence repeated
    /// [`next_inst`](Self::next_inst) calls would have produced
    /// (interleaving the two freely must never change the stream — the
    /// equivalence tests in each implementation pin this).
    ///
    /// The processor buffers fetch through a per-thread [`ChunkBuf`] and
    /// crosses the trait object only on a refill, so this is the hot
    /// generation path: implementations should override the default
    /// (which loops `next_inst`) with a block-at-a-time loop that hoists
    /// per-call setup out of the per-instruction work.
    fn fill(&mut self, buf: &mut ChunkBuf) {
        for _ in 0..buf.room() {
            buf.push(self.next_inst());
        }
    }

    /// Fabricate an effective address for a *wrong-path* instruction with
    /// memory-generator annotation `g`. Must not perturb the correct
    /// path.
    fn wrong_path_addr(&mut self, g: MemGen) -> u64;

    /// Re-anchor wrong-path fabrication to the *consumption point*: the
    /// consumer holds `unconsumed` generated-but-not-yet-fetched
    /// instructions (its chunk backlog), and subsequent
    /// [`wrong_path_addr`](Self::wrong_path_addr) calls must behave as if
    /// the stream had generated only up to the last consumed instruction.
    ///
    /// Batched generation runs the source ahead of the machine; a source
    /// whose wrong-path fabrication reads evolving internal state (the
    /// synthetic stream's strided-scan cursors) would otherwise leak the
    /// generation frontier into mis-speculated addresses and diverge
    /// from per-call generation. The processor calls this once per
    /// wrong-path episode (on fetching a mispredicted branch); sources
    /// whose fabrication is frontier-independent (the RV64I emulator)
    /// keep this default no-op.
    fn sync_wrong_path_view(&mut self, unconsumed: u64) {
        let _ = unconsumed;
    }

    /// The static program being executed (the front-end's basic-block
    /// dictionary).
    fn program(&self) -> &Arc<Program>;

    /// Address-space base of the code image; instruction-fetch addresses
    /// are `code_base() + pc`.
    fn code_base(&self) -> u64;

    /// Code-image range `(start address, bytes)` in this thread's address
    /// space.
    fn code_range(&self) -> (u64, u64);

    /// Data-region layout: up to four `(start address, bytes)` regions in
    /// this thread's address space, used to pre-warm caches. Unused slots
    /// are `(0, 0)`.
    fn region_layout(&self) -> [(u64, u64); 4];

    /// Total architecturally-correct instructions emitted so far.
    fn emitted(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use crate::synth::synthesize;
    use crate::TraceStream;

    /// The synthetic stream is usable through the trait object exactly
    /// like through its inherent API.
    #[test]
    fn trace_stream_works_as_a_trait_object() {
        let p = spec::by_name("gzip").unwrap();
        let prog = Arc::new(synthesize(p, spec::program_seed("gzip")));
        let mut a: Box<dyn TraceSource> = Box::new(TraceStream::new(prog.clone(), p, 9, 0));
        let mut b = TraceStream::new(prog, p, 9, 0);
        for _ in 0..5_000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
        assert_eq!(a.emitted(), 5_000);
        assert_eq!(a.code_base(), b.code_base());
        assert_eq!(a.code_range(), b.code_range());
        assert_eq!(a.region_layout(), b.region_layout());
        assert!(Arc::ptr_eq(a.program(), b.program()));
    }

    /// The trait's *default* `fill` (a `next_inst` loop) honours the
    /// batched-generation contract for implementations that never
    /// override it.
    #[test]
    fn default_fill_matches_per_call_generation() {
        /// Delegates everything except `fill`, so the default engages.
        struct NoOverride(TraceStream);
        impl TraceSource for NoOverride {
            fn next_inst(&mut self) -> crate::DynInst {
                self.0.next_inst()
            }
            fn wrong_path_addr(&mut self, g: hdsmt_isa::MemGen) -> u64 {
                self.0.wrong_path_addr(g)
            }
            fn program(&self) -> &Arc<Program> {
                self.0.program()
            }
            fn code_base(&self) -> u64 {
                self.0.code_base()
            }
            fn code_range(&self) -> (u64, u64) {
                self.0.code_range()
            }
            fn region_layout(&self) -> [(u64, u64); 4] {
                self.0.region_layout()
            }
            fn emitted(&self) -> u64 {
                self.0.emitted()
            }
        }

        let p = spec::by_name("twolf").unwrap();
        let prog = Arc::new(synthesize(p, spec::program_seed("twolf")));
        let mut a: Box<dyn TraceSource> =
            Box::new(NoOverride(TraceStream::new(prog.clone(), p, 4, 0)));
        let mut b = TraceStream::new(prog, p, 4, 0);
        let mut buf = ChunkBuf::with_capacity(32);
        for _ in 0..200 {
            buf.reset();
            a.fill(&mut buf);
            assert_eq!(buf.len(), 32, "the default fill tops the chunk up");
            while let Some(d) = buf.pop() {
                assert_eq!(d, b.next_inst());
            }
        }
    }
}
