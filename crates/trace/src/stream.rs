//! The dynamic instruction stream: a deterministic walk of a synthetic
//! program.
//!
//! One [`TraceStream`] per hardware thread context. The walk is infinite
//! (programs are closed rings) and fully determined by the seed; the
//! processor model consumes instructions at fetch and replays squashed
//! correct-path instructions itself (FLUSH recovery), so the stream never
//! needs to rewind.
//!
//! Two RNGs keep speculation honest: `rng` drives architecturally-correct
//! outcomes and addresses, while `wp_rng` fabricates addresses for
//! wrong-path instructions, so the amount of mis-speculated work can never
//! perturb the correct path (verified by tests).

use std::sync::Arc;

use hdsmt_isa::{BlockId, MemGen, Pc, Program, Terminator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::chunk::ChunkBuf;
use crate::dyninst::{CtrlOutcome, DynInst};
use crate::profile::BenchProfile;

/// Maximum modelled call depth (the generator only produces depth-1 calls;
/// the cap is pure robustness against malformed inputs).
const CALL_DEPTH: usize = 64;

/// Virtual-address layout of one synthetic process.
const STACK_BASE: u64 = 0x7F00_0000;
const REGION_BASES: [u64; 4] = [STACK_BASE, 0x2000_0000, 0x4000_0000, 0x6000_0000];
/// Hot stack-frame size: far below L1 capacity, so stack traffic ~always
/// hits.
const STACK_BYTES: u64 = 2048;
/// Strided scans traverse a bounded window repeatedly (loop blocking /
/// array reuse, as real code does) rather than streaming the whole region.
const STRIDE_WINDOW: u64 = 16 * 1024;
/// Probability that a completed window lap relocates the window elsewhere
/// in the region (fresh data → compulsory misses at a controlled rate).
const WINDOW_JUMP_P: f32 = 0.10;
/// Random accesses are hot-skewed (the 90/10 law): this fraction of draws
/// lands in the region's hot prefix of `1/HOT_DIVISOR` of its size. The
/// tail keeps the TLB/L2 pressure that makes big-region benchmarks
/// memory-bound without the unrealistic uniform-thrash of the full region.
const HOT_P: f32 = 0.75;
const HOT_DIVISOR: u64 = 8;
/// Instructions of cursor-mutation history kept for
/// [`TraceStream::sync_wrong_path_view`] rewinds — comfortably above any
/// sane chunk capacity (the default is 64).
const WP_VIEW_HORIZON: u64 = 4096;

/// Deterministic dynamic-instruction source for one thread.
pub struct TraceStream {
    program: Arc<Program>,
    rng: SmallRng,
    wp_rng: SmallRng,
    cur: BlockId,
    off: usize,
    /// Per-block counted-loop progress.
    trips: Vec<u16>,
    call_stack: Vec<BlockId>,
    /// Per-region strided-scan state: (window base, cursor within window).
    cursors: [(u64, u64); 4],
    region_size: [u64; 4],
    /// Per-(thread, region) start addresses, page-colored so co-running
    /// threads do not alias set-for-set in the physically-indexed caches
    /// (the job an OS page allocator does).
    region_start: [u64; 4],
    /// Undo log of scan-cursor mutations made by batched generation:
    /// `(instruction index that mutated, region, prior state)`. Lets
    /// [`Self::sync_wrong_path_view`] reconstruct the cursors as of any
    /// recently consumed instruction, so wrong-path fabrication never
    /// sees the generation frontier the chunk buffer runs ahead by.
    /// Only [`Self::fill`] logs (per-call generation never outruns its
    /// consumer); pruned to a bounded horizon.
    cursor_log: std::collections::VecDeque<(u64, u8, (u64, u64))>,
    /// Frozen cursor view for the current wrong-path episode (`None` ⇒
    /// the consumption point is the frontier; peek live cursors).
    wp_view: Option<[(u64, u64); 4]>,
    code_start: u64,
    /// Dynamic heap-region selection weights (from the benchmark profile).
    region_weights: [f32; 3],
    /// Cached `region_weights` sum (same f32 fold, computed once).
    region_weight_total: f32,
    emitted: u64,
}

impl TraceStream {
    /// Create a stream over `program` with the region geometry of `profile`.
    /// `asid` distinguishes address spaces of co-scheduled threads.
    pub fn new(program: Arc<Program>, profile: &BenchProfile, seed: u64, asid: u8) -> Self {
        let n = program.blocks().len();
        let region_size = [
            STACK_BYTES,
            profile.ws_kb[0] as u64 * 1024,
            profile.ws_kb[1] as u64 * 1024,
            profile.ws_kb[2] as u64 * 1024,
        ];
        let entry = program.entry();
        let asid_base = (asid as u64 + 1) << 40;
        // Page-colored layout: deterministic per (asid, region), 8 KB
        // granular, up to 4 MB of shift.
        let color = |r: u64| -> u64 {
            let mut z = (asid as u64 * 4 + r).wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z % 512) * 8192
        };
        let mut region_start = [0u64; 4];
        for (r, s) in region_start.iter_mut().enumerate() {
            *s = asid_base + REGION_BASES[r] + color(r as u64);
        }
        TraceStream {
            program,
            rng: SmallRng::seed_from_u64(seed ^ 0x243f_6a88_85a3_08d3),
            wp_rng: SmallRng::seed_from_u64(seed ^ 0x1319_8a2e_0370_7344),
            cur: entry,
            off: 0,
            trips: vec![0; n],
            call_stack: Vec::with_capacity(CALL_DEPTH),
            cursors: [(0, 0); 4],
            region_size,
            region_start,
            cursor_log: std::collections::VecDeque::new(),
            wp_view: None,
            code_start: asid_base + color(997),
            region_weights: profile.region_weights,
            region_weight_total: profile.region_weights.iter().sum(),
            emitted: 0,
        }
    }

    /// Weighted draw of a heap region (1–3) from the profile distribution.
    /// `total` is the caller's cached weight sum (identical f32 fold).
    fn draw_region(weights: [f32; 3], total: f32, rng: &mut SmallRng) -> usize {
        let mut x = rng.gen::<f32>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i + 1;
            }
            x -= w;
        }
        3
    }

    /// The static program being walked.
    #[inline]
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Address-space base; instruction-fetch addresses are
    /// `code_base() + pc`.
    #[inline]
    pub fn code_base(&self) -> u64 {
        self.code_start
    }

    /// Data-region layout: `(start address, bytes)` for the stack and the
    /// three heap regions, in this thread's address space. Used to pre-warm
    /// caches to steady-state residency on scaled runs.
    pub fn region_layout(&self) -> [(u64, u64); 4] {
        let mut out = [(0, 0); 4];
        for (i, o) in out.iter_mut().enumerate() {
            *o = (self.region_start[i], self.region_size[i]);
        }
        out
    }

    /// Code-image range `(start address, bytes)` in this thread's address
    /// space.
    pub fn code_range(&self) -> (u64, u64) {
        let start = self.program.block(self.program.entry()).start;
        (self.code_start + start.0, self.program.len_insts() * hdsmt_isa::Pc::INST_BYTES)
    }

    /// Total architecturally-correct instructions emitted so far.
    #[inline]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Produce the next architecturally-correct dynamic instruction.
    pub fn next_inst(&mut self) -> DynInst {
        let cur = self.cur;
        let b = self.program.block(cur);
        let sinst = b.insts[self.off];
        let pc = b.pc_at(self.off);
        let is_last = self.off + 1 == b.len();

        let addr = match sinst.mem {
            Some(g) => self.correct_addr(g),
            None => 0,
        };

        let mut ctrl = None;
        if !is_last {
            self.off += 1;
        } else {
            let (next, outcome) = self.resolve_terminator(cur, pc);
            self.cur = next;
            self.off = 0;
            ctrl = outcome;
        }
        self.emitted += 1;
        DynInst { pc, sinst, addr, ctrl }
    }

    /// Produce the next run of instructions block-at-a-time: one block
    /// lookup per basic block instead of one per instruction, with the
    /// per-instruction work reduced to the address draw and the record
    /// write. Emits exactly the sequence repeated [`Self::next_inst`]
    /// calls would (same RNG draw order), which the equivalence test
    /// pins.
    pub fn fill(&mut self, buf: &mut ChunkBuf) {
        // Keep the cursor-undo log bounded: nothing older than the
        // rewind horizon can ever be asked for again.
        while self
            .cursor_log
            .front()
            .is_some_and(|&(stamp, _, _)| stamp + WP_VIEW_HORIZON < self.emitted)
        {
            self.cursor_log.pop_front();
        }
        // A second handle on the program so block borrows don't conflict
        // with the RNG/cursor state `correct_addr_impl` mutates.
        let program = Arc::clone(&self.program);
        while buf.room() > 0 {
            let cur = self.cur;
            let b = program.block(cur);
            let len = b.len();
            // Body instructions (everything before the block's last slot).
            while self.off + 1 < len && buf.room() > 0 {
                let sinst = b.insts[self.off];
                let pc = b.pc_at(self.off);
                let addr = match sinst.mem {
                    Some(g) => self.correct_addr_impl(g, true),
                    None => 0,
                };
                self.off += 1;
                self.emitted += 1;
                buf.push(DynInst { pc, sinst, addr, ctrl: None });
            }
            if buf.room() == 0 {
                return;
            }
            // The block's last instruction resolves the terminator.
            let sinst = b.insts[self.off];
            let pc = b.pc_at(self.off);
            let addr = match sinst.mem {
                Some(g) => self.correct_addr_impl(g, true),
                None => 0,
            };
            let (next, ctrl) = self.resolve_terminator(cur, pc);
            self.cur = next;
            self.off = 0;
            self.emitted += 1;
            buf.push(DynInst { pc, sinst, addr, ctrl });
        }
    }

    /// Freeze the wrong-path cursor view at the consumption point: the
    /// machine has consumed everything generated except the last
    /// `unconsumed` instructions (its chunk backlog). See
    /// [`crate::TraceSource::sync_wrong_path_view`].
    pub fn sync_wrong_path_view(&mut self, unconsumed: u64) {
        if unconsumed == 0 {
            self.wp_view = None;
            return;
        }
        debug_assert!(unconsumed <= WP_VIEW_HORIZON, "chunk backlog outran the undo log");
        let consumed = self.emitted - unconsumed;
        let mut view = self.cursors;
        // Newest-to-oldest: the final write per region is its *oldest*
        // unconsumed mutation's prior state — the state at `consumed`.
        for &(stamp, r, prev) in self.cursor_log.iter().rev() {
            if stamp < consumed {
                break; // stamps ascend: everything earlier is consumed
            }
            view[r as usize] = prev;
        }
        self.wp_view = Some(view);
    }

    /// Fabricate an effective address for a *wrong-path* instruction with
    /// memory-generator `g`. Uses the dedicated wrong-path RNG and never
    /// mutates scan cursors, so correct-path determinism is preserved no
    /// matter how much mis-speculated work the pipeline performs.
    pub fn wrong_path_addr(&mut self, g: MemGen) -> u64 {
        match g {
            MemGen::Stack => {
                let off = self.wp_rng.gen_range(0..STACK_BYTES / 8) * 8;
                self.region_start[0] + off
            }
            MemGen::Stride { stride } => {
                let r = Self::draw_region(
                    self.region_weights,
                    self.region_weight_total,
                    &mut self.wp_rng,
                );
                // Peek the scan state without committing it — through the
                // consumption-point view when batched generation has run
                // the live cursors ahead of the machine.
                let (base, cursor) = match self.wp_view {
                    Some(view) => view[r],
                    None => self.cursors[r],
                };
                let window = STRIDE_WINDOW.min(self.region_size[r]);
                let next = base + (cursor + stride as u64) % window;
                self.region_start[r] + next
            }
            MemGen::Random => {
                let r = Self::draw_region(
                    self.region_weights,
                    self.region_weight_total,
                    &mut self.wp_rng,
                );
                let span = if self.wp_rng.gen::<f32>() < HOT_P {
                    (self.region_size[r] / HOT_DIVISOR).max(8)
                } else {
                    self.region_size[r]
                };
                let off = self.wp_rng.gen_range(0..span / 8) * 8;
                self.region_start[r] + off
            }
        }
    }

    fn correct_addr(&mut self, g: MemGen) -> u64 {
        self.correct_addr_impl(g, false)
    }

    /// `log`: batched generation records cursor mutations (with the index
    /// of the mutating instruction) so [`Self::sync_wrong_path_view`] can
    /// rewind to a consumption point. Per-call generation never outruns
    /// its consumer, so it skips the log.
    fn correct_addr_impl(&mut self, g: MemGen, log: bool) -> u64 {
        match g {
            MemGen::Stack => {
                let off = self.rng.gen_range(0..STACK_BYTES / 8) * 8;
                self.region_start[0] + off
            }
            MemGen::Stride { stride } => {
                let r =
                    Self::draw_region(self.region_weights, self.region_weight_total, &mut self.rng);
                let window = STRIDE_WINDOW.min(self.region_size[r]);
                let (mut base, mut cursor) = self.cursors[r];
                if log {
                    self.cursor_log.push_back((self.emitted, r as u8, (base, cursor)));
                }
                cursor += stride as u64;
                if cursor >= window {
                    // Lap complete: usually rescan (temporal reuse), but
                    // occasionally move on to fresh data.
                    cursor = 0;
                    if self.rng.gen::<f32>() < WINDOW_JUMP_P && self.region_size[r] > window {
                        let slots = self.region_size[r] / window;
                        base = self.rng.gen_range(0..slots) * window;
                    }
                }
                self.cursors[r] = (base, cursor);
                self.region_start[r] + base + cursor
            }
            MemGen::Random => {
                let r =
                    Self::draw_region(self.region_weights, self.region_weight_total, &mut self.rng);
                let span = if self.rng.gen::<f32>() < HOT_P {
                    (self.region_size[r] / HOT_DIVISOR).max(8)
                } else {
                    self.region_size[r]
                };
                let off = self.rng.gen_range(0..span / 8) * 8;
                self.region_start[r] + off
            }
        }
    }

    /// Resolve the terminator of `block` (whose control instruction sits at
    /// `pc`), returning the next block and the control outcome (if the
    /// terminator has a control instruction).
    fn resolve_terminator(&mut self, block: BlockId, pc: Pc) -> (BlockId, Option<CtrlOutcome>) {
        // Clone of the terminator data we need, to appease the borrow of
        // `self.program` while we mutate walk state.
        let term = self.program.block(block).term.clone();
        match term {
            Terminator::FallThrough { next } => (next, None),
            Terminator::Loop { back, exit, trip } => {
                let c = &mut self.trips[block.index()];
                if *c < trip {
                    *c += 1;
                    let target = self.program.block(back).start;
                    (back, Some(CtrlOutcome { taken: true, target }))
                } else {
                    *c = 0;
                    (exit, Some(CtrlOutcome { taken: false, target: pc.next() }))
                }
            }
            Terminator::Cond { taken, not_taken, p_taken } => {
                if self.rng.gen::<f32>() < p_taken {
                    let target = self.program.block(taken).start;
                    (taken, Some(CtrlOutcome { taken: true, target }))
                } else {
                    (not_taken, Some(CtrlOutcome { taken: false, target: pc.next() }))
                }
            }
            Terminator::Jump { target } => {
                let t = self.program.block(target).start;
                (target, Some(CtrlOutcome { taken: true, target: t }))
            }
            Terminator::Call { callee, ret_to } => {
                if self.call_stack.len() < CALL_DEPTH {
                    self.call_stack.push(ret_to);
                }
                let t = self.program.block(callee).start;
                (callee, Some(CtrlOutcome { taken: true, target: t }))
            }
            Terminator::Return => {
                let target = self.call_stack.pop().unwrap_or_else(|| self.program.entry());
                let t = self.program.block(target).start;
                (target, Some(CtrlOutcome { taken: true, target: t }))
            }
            Terminator::Indirect { targets } => {
                let total: f32 = targets.iter().map(|(_, w)| w).sum();
                let mut x = self.rng.gen::<f32>() * total;
                let mut chosen = targets[targets.len() - 1].0;
                for (t, w) in &targets {
                    if x < *w {
                        chosen = *t;
                        break;
                    }
                    x -= w;
                }
                let t = self.program.block(chosen).start;
                (chosen, Some(CtrlOutcome { taken: true, target: t }))
            }
        }
    }
}

/// The synthetic stream is one of the two [`crate::TraceSource`]
/// front-ends (the other is the RV64I emulator in `hdsmt-riscv`); the
/// trait methods delegate to the inherent API above.
impl crate::TraceSource for TraceStream {
    #[inline]
    fn next_inst(&mut self) -> DynInst {
        TraceStream::next_inst(self)
    }

    #[inline]
    fn fill(&mut self, buf: &mut ChunkBuf) {
        TraceStream::fill(self, buf)
    }

    #[inline]
    fn wrong_path_addr(&mut self, g: MemGen) -> u64 {
        TraceStream::wrong_path_addr(self, g)
    }

    #[inline]
    fn sync_wrong_path_view(&mut self, unconsumed: u64) {
        TraceStream::sync_wrong_path_view(self, unconsumed)
    }

    #[inline]
    fn program(&self) -> &Arc<Program> {
        TraceStream::program(self)
    }

    #[inline]
    fn code_base(&self) -> u64 {
        TraceStream::code_base(self)
    }

    #[inline]
    fn code_range(&self) -> (u64, u64) {
        TraceStream::code_range(self)
    }

    #[inline]
    fn region_layout(&self) -> [(u64, u64); 4] {
        TraceStream::region_layout(self)
    }

    #[inline]
    fn emitted(&self) -> u64 {
        TraceStream::emitted(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use crate::synth::synthesize;
    use hdsmt_isa::{ArchReg, BasicBlock, Op, StaticInst};

    fn stream_for(name: &str, seed: u64, asid: u8) -> TraceStream {
        let p = spec::by_name(name).unwrap();
        let prog = Arc::new(synthesize(p, spec::program_seed(name)));
        TraceStream::new(prog, p, seed, asid)
    }

    #[test]
    fn deterministic_replay() {
        let mut a = stream_for("gzip", 11, 0);
        let mut b = stream_for("gzip", 11, 0);
        for _ in 0..20_000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
        assert_eq!(a.emitted(), 20_000);
    }

    #[test]
    fn block_at_a_time_fill_matches_per_call_generation() {
        // The batched path must emit exactly the per-call sequence, for
        // chunk capacities that land refills on every possible offset
        // within a block — and stay equivalent when the two entry points
        // interleave mid-block.
        for cap in [1, 3, 7, 64] {
            let mut a = stream_for("gcc", 17, 1);
            let mut b = stream_for("gcc", 17, 1);
            let mut buf = ChunkBuf::with_capacity(cap);
            let mut produced = 0u64;
            while produced < 20_000 {
                buf.reset();
                a.fill(&mut buf);
                assert!(!buf.is_empty(), "fill must emit at least one instruction");
                while let Some(d) = buf.pop() {
                    assert_eq!(d, b.next_inst(), "cap {cap}, inst {produced}");
                    produced += 1;
                }
                if produced.is_multiple_of(640) {
                    // Interleave a direct call between refills.
                    assert_eq!(a.next_inst(), b.next_inst());
                    produced += 1;
                }
            }
            assert_eq!(a.emitted(), b.emitted());
        }
    }

    #[test]
    fn synced_wrong_path_view_matches_per_call_generation() {
        // A chunked consumer that anchors the wrong-path view at each
        // episode start must fabricate exactly the addresses a per-call
        // consumer sees, even though its generation frontier runs a
        // chunk ahead of the machine.
        let mut per_call = stream_for("mcf", 23, 0);
        let mut chunked = stream_for("mcf", 23, 0);
        let mut buf = ChunkBuf::with_capacity(48);
        let g = hdsmt_isa::MemGen::Stride { stride: 64 };
        let mut consumed = 0u64;
        while consumed < 30_000 {
            buf.reset();
            chunked.fill(&mut buf);
            while let Some(d) = buf.pop() {
                assert_eq!(d, per_call.next_inst());
                consumed += 1;
                if consumed.is_multiple_of(97) {
                    // Wrong-path episode opens at this instruction.
                    chunked.sync_wrong_path_view(buf.len() as u64);
                    for _ in 0..4 {
                        assert_eq!(
                            chunked.wrong_path_addr(g),
                            per_call.wrong_path_addr(g),
                            "stride fabrication diverged at inst {consumed}"
                        );
                        assert_eq!(
                            chunked.wrong_path_addr(hdsmt_isa::MemGen::Random),
                            per_call.wrong_path_addr(hdsmt_isa::MemGen::Random)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wrong_path_does_not_perturb_correct_path() {
        let mut a = stream_for("vpr", 3, 0);
        let mut b = stream_for("vpr", 3, 0);
        let g = hdsmt_isa::MemGen::Random;
        for i in 0..10_000 {
            if i % 3 == 0 {
                // Arbitrary amounts of wrong-path traffic on `a` only.
                for _ in 0..5 {
                    let _ = a.wrong_path_addr(g);
                    let _ = a.wrong_path_addr(hdsmt_isa::MemGen::Stack);
                }
            }
            assert_eq!(a.next_inst(), b.next_inst(), "diverged at {i}");
        }
    }

    #[test]
    fn control_outcomes_are_consistent() {
        let mut s = stream_for("gcc", 5, 0);
        for _ in 0..50_000 {
            let d = s.next_inst();
            assert_eq!(d.sinst.op.is_control(), d.ctrl.is_some(), "{:?}", d.sinst.op);
            if let Some(c) = d.ctrl {
                if !c.taken {
                    assert_eq!(c.target, d.pc.next(), "not-taken must fall through");
                } else {
                    assert_ne!(c.target, Pc(0));
                }
            }
        }
    }

    #[test]
    fn addresses_live_in_declared_regions() {
        let mut s = stream_for("mcf", 9, 3);
        assert_eq!(s.code_base() >> 40, 4, "asid 3 occupies the fourth address-space slot");
        let layout = s.region_layout();
        for _ in 0..50_000 {
            let d = s.next_inst();
            if d.sinst.op.is_mem() {
                assert_eq!(d.addr & 7, 0, "addresses are 8-byte aligned");
                let ok =
                    layout.iter().any(|&(start, bytes)| (start..start + bytes).contains(&d.addr));
                assert!(ok, "address {:#x} outside every region", d.addr);
            }
        }
    }

    #[test]
    fn loop_pattern_taken_trip_times() {
        // Hand-built: b0 body+loop(trip=3) -> b1 jump back to b0.
        let alu = StaticInst::alu(Op::IntAlu, ArchReg::int(1), [Some(ArchReg::int(2)), None]);
        let b0 = BasicBlock {
            id: BlockId(0),
            start: Pc(0),
            insts: vec![alu, StaticInst::control(Op::CondBranch, Some(ArchReg::int(1)))],
            term: Terminator::Loop { back: BlockId(0), exit: BlockId(1), trip: 3 },
        };
        let b1 = BasicBlock {
            id: BlockId(1),
            start: Pc(0),
            insts: vec![alu, StaticInst::control(Op::Jump, None)],
            term: Terminator::Jump { target: BlockId(0) },
        };
        let prog = Arc::new(Program::build(vec![b0, b1], BlockId(0)).unwrap());
        let profile = spec::by_name("gzip").unwrap();
        let mut s = TraceStream::new(prog, profile, 1, 0);
        let mut outcomes = Vec::new();
        for _ in 0..40 {
            let d = s.next_inst();
            if d.sinst.op == Op::CondBranch {
                outcomes.push(d.ctrl.unwrap().taken);
            }
        }
        // Pattern must be T T T NT repeating.
        for chunk in outcomes.chunks_exact(4) {
            assert_eq!(chunk, &[true, true, true, false]);
        }
    }

    #[test]
    fn calls_return_to_call_site() {
        let mut s = stream_for("vortex", 21, 0);
        let mut expected_returns: Vec<Pc> = Vec::new();
        for _ in 0..200_000 {
            let d = s.next_inst();
            match d.sinst.op {
                Op::Call => {
                    // Architectural return address: target of the matching
                    // return is the ret_to block, recorded via the program.
                    let (b, _) = s.program().lookup(d.pc).unwrap();
                    if let Terminator::Call { ret_to, .. } = b.term {
                        expected_returns.push(s.program().block(ret_to).start);
                    } else {
                        panic!("call not at a call terminator");
                    }
                }
                Op::Return => {
                    let want = expected_returns.pop().expect("return without a call");
                    assert_eq!(d.ctrl.unwrap().target, want);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn distinct_asids_never_alias() {
        let mut a = stream_for("gzip", 1, 0);
        let mut b = stream_for("gzip", 1, 1);
        for _ in 0..5_000 {
            let (x, y) = (a.next_inst(), b.next_inst());
            if x.sinst.op.is_mem() {
                assert_ne!(x.addr, y.addr);
                assert_ne!(x.addr >> 40, y.addr >> 40);
            }
        }
    }

    #[test]
    fn dynamic_mix_roughly_matches_profile() {
        let p = spec::by_name("gzip").unwrap();
        let mut s = stream_for("gzip", 2, 0);
        let n = 200_000;
        let mut loads = 0u64;
        let mut branches = 0u64;
        for _ in 0..n {
            let d = s.next_inst();
            if d.sinst.op.is_load() {
                loads += 1;
            }
            if d.sinst.op.is_control() {
                branches += 1;
            }
        }
        let load_frac = loads as f32 / n as f32;
        // Dynamic load fraction tracks the knob over body instructions
        // (branch terminators dilute it slightly).
        assert!((load_frac - p.frac_load * (1.0 - branches as f32 / n as f32)).abs() < 0.05);
        // Synthetic SPECint has the usual branch density ballpark.
        let br_frac = branches as f32 / n as f32;
        assert!((0.05..0.30).contains(&br_frac), "branch fraction {br_frac}");
    }
}
