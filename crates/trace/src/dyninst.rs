//! Dynamic instruction records produced by a [`crate::TraceStream`].

use hdsmt_isa::{Pc, StaticInst};

/// Architecturally-correct outcome of a control instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CtrlOutcome {
    /// Whether the branch is taken (always true for unconditional
    /// transfers).
    pub taken: bool,
    /// PC control transfers to (the fall-through PC when not taken).
    pub target: Pc,
}

/// One dynamic instruction on the architecturally-correct path.
///
/// Wrong-path instructions reuse the same record shape but are fabricated by
/// the front-end from the basic-block dictionary, with addresses from the
/// wrong-path RNG and no authoritative `ctrl` outcome.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DynInst {
    pub pc: Pc,
    /// Copy of the static instruction (op, registers, memory-generator
    /// annotation).
    pub sinst: StaticInst,
    /// Effective address for loads/stores (0 otherwise). Already includes
    /// the per-thread address-space base.
    pub addr: u64,
    /// Control outcome; `Some` iff `sinst.op.is_control()`.
    pub ctrl: Option<CtrlOutcome>,
}

impl DynInst {
    /// The PC the thread architecturally executes after this instruction.
    #[inline]
    pub fn next_pc(&self) -> Pc {
        match self.ctrl {
            Some(c) if c.taken => c.target,
            _ => self.pc.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsmt_isa::{ArchReg, Op};

    #[test]
    fn next_pc_follows_taken_branches() {
        let sinst = StaticInst::control(Op::CondBranch, Some(ArchReg::int(1)));
        let taken = DynInst {
            pc: Pc(0x1000),
            sinst,
            addr: 0,
            ctrl: Some(CtrlOutcome { taken: true, target: Pc(0x2000) }),
        };
        assert_eq!(taken.next_pc(), Pc(0x2000));
        let not_taken =
            DynInst { ctrl: Some(CtrlOutcome { taken: false, target: Pc(0x1004) }), ..taken };
        assert_eq!(not_taken.next_pc(), Pc(0x1004));
        let plain = DynInst {
            pc: Pc(0x1000),
            sinst: StaticInst::alu(Op::IntAlu, ArchReg::int(1), [None, None]),
            addr: 0,
            ctrl: None,
        };
        assert_eq!(plain.next_pc(), Pc(0x1004));
    }
}
