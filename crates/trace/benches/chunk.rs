//! Microbenchmarks for batched (chunked) vs per-call trace generation.
//!
//! The processor fetches through a per-thread [`ChunkBuf`] and crosses
//! the `Box<dyn TraceSource>` seam once per chunk; these benches measure
//! exactly that seam for both front-ends — the synthetic SPECint2000
//! models (RNG-driven walks) and the RV64I emulator (`rv:matmul`,
//! architectural execution per instruction) — so a regression in the
//! block-at-a-time `fill` paths shows up here without a simulator run.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use hdsmt_trace::{spec, synthesize, ChunkBuf, TraceSource, TraceStream, CHUNK_INSTS};

fn synth_source(name: &str) -> Box<dyn TraceSource> {
    let p = spec::by_name(name).expect("known benchmark");
    let prog = Arc::new(synthesize(p, spec::program_seed(name)));
    Box::new(TraceStream::new(prog, p, 42, 0))
}

fn rv_source(name: &str) -> Box<dyn TraceSource> {
    let image = hdsmt_riscv::by_name(name).expect("bundled rv kernel");
    Box::new(hdsmt_riscv::RvTraceSource::new(image, 42, 0))
}

fn bench_generation(c: &mut Criterion) {
    // One batch worth of instructions per iteration, both ways, so the
    // per-instruction cost is directly comparable.
    for (label, make) in [
        ("synth_gzip", synth_source as fn(&str) -> Box<dyn TraceSource>),
        ("synth_mcf", synth_source),
        ("rv_matmul", rv_source),
    ] {
        let name = match label {
            "synth_gzip" => "gzip",
            "synth_mcf" => "mcf",
            _ => "matmul",
        };
        let mut g = c.benchmark_group(format!("trace_gen_{label}"));
        g.throughput(Throughput::Elements(CHUNK_INSTS as u64));

        g.bench_function("per_call", |b| {
            let mut src = make(name);
            b.iter(|| {
                for _ in 0..CHUNK_INSTS {
                    black_box(src.next_inst());
                }
            });
        });

        g.bench_function("chunked_fill", |b| {
            let mut src = make(name);
            let mut buf = ChunkBuf::new();
            b.iter(|| {
                buf.reset();
                src.fill(&mut buf);
                while let Some(d) = buf.pop() {
                    black_box(d);
                }
            });
        });

        g.finish();
    }
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
