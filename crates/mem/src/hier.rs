//! The assembled memory hierarchy shared by every pipeline.

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::mshr::MshrFile;
use crate::tlb::Tlb;

/// Deepest level an access had to travel to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitLevel {
    L1,
    L2,
    Mem,
}

/// Access class (statistics bucketing).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    Load,
    Store,
    IFetch,
}

/// Outcome of one hierarchy access.
#[derive(Clone, Copy, Debug)]
pub struct AccessResult {
    /// Cycles until the data/line is usable (includes L1 access time).
    pub latency: u32,
    pub level: HitLevel,
    pub tlb_miss: bool,
    /// Structural stall: the MSHR file is full, the access must be
    /// replayed. `latency` is the suggested retry delay.
    pub mshr_stall: bool,
}

/// Aggregate statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemHierStats {
    pub loads: u64,
    pub load_l1_misses: u64,
    pub load_l2_misses: u64,
    pub stores: u64,
    pub store_l1_misses: u64,
    pub ifetches: u64,
    pub ifetch_l1_misses: u64,
    pub dtlb_misses: u64,
    pub itlb_misses: u64,
}

impl MemHierStats {
    /// Data-cache misses per 1000 data accesses — the profile statistic the
    /// paper's mapping heuristic sorts threads by.
    pub fn dl1_mpka(&self) -> f64 {
        let acc = self.loads + self.stores;
        if acc == 0 {
            0.0
        } else {
            (self.load_l1_misses + self.store_l1_misses) as f64 * 1000.0 / acc as f64
        }
    }
}

/// L1I + L1D + unified L2 + TLBs + MSHRs, with Table 1 timing.
pub struct MemHier {
    cfg: MemConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    d_mshrs: MshrFile,
    i_mshrs: MshrFile,
    stats: MemHierStats,
}

impl MemHier {
    pub fn new(cfg: MemConfig) -> Self {
        cfg.validate().expect("invalid memory configuration");
        MemHier {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            itlb: Tlb::new(cfg.itlb_entries, cfg.page_bytes),
            dtlb: Tlb::new(cfg.dtlb_entries, cfg.page_bytes),
            d_mshrs: MshrFile::new(cfg.mshrs),
            i_mshrs: MshrFile::new(cfg.mshrs),
            stats: MemHierStats::default(),
            cfg,
        }
    }

    #[inline]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Data load at cycle `now`. Fill-on-access with MSHR-coalesced timing.
    pub fn load(&mut self, addr: u64, now: u64) -> AccessResult {
        self.stats.loads += 1;
        let tlb_miss = !self.dtlb.access(addr);
        if tlb_miss {
            self.stats.dtlb_misses += 1;
        }
        let tlb_extra = if tlb_miss { self.cfg.tlb_miss_penalty } else { 0 };

        // A miss already in flight for this line: data arrives with the
        // original fill.
        let line = self.l1d.line_addr(addr);
        if let Some(ready) = self.d_mshrs.lookup(line, now) {
            self.stats.load_l1_misses += 1;
            let lat = (ready.saturating_sub(now) as u32).max(self.cfg.l1_lat) + tlb_extra;
            return AccessResult { latency: lat, level: HitLevel::L2, tlb_miss, mshr_stall: false };
        }

        if self.l1d.access(addr) {
            return AccessResult {
                latency: self.cfg.l1_lat + tlb_extra,
                level: HitLevel::L1,
                tlb_miss,
                mshr_stall: false,
            };
        }
        self.stats.load_l1_misses += 1;

        // Structural limit on outstanding misses.
        let (lat, level) = if self.l2.access(addr) {
            (self.cfg.l2_hit_latency(), HitLevel::L2)
        } else {
            self.stats.load_l2_misses += 1;
            self.l2.fill(addr);
            (self.cfg.mem_latency(), HitLevel::Mem)
        };
        // The fill cannot start until translation completes, so a cold page
        // delays the line's arrival too.
        let total = lat + tlb_extra;
        if !self.d_mshrs.allocate(line, now + total as u64, now) {
            return AccessResult { latency: 1, level, tlb_miss, mshr_stall: true };
        }
        self.l1d.fill(addr);
        AccessResult { latency: total, level, tlb_miss, mshr_stall: false }
    }

    /// Store performed at commit. Write-allocate, write-back; the paper's
    /// pipeline never stalls commit on store misses (write buffering), so
    /// callers typically ignore the latency but the hierarchy state and
    /// statistics update either way.
    pub fn store(&mut self, addr: u64, _now: u64) -> AccessResult {
        self.stats.stores += 1;
        let tlb_miss = !self.dtlb.access(addr);
        if tlb_miss {
            self.stats.dtlb_misses += 1;
        }
        if self.l1d.access(addr) {
            return AccessResult {
                latency: self.cfg.l1_lat,
                level: HitLevel::L1,
                tlb_miss,
                mshr_stall: false,
            };
        }
        self.stats.store_l1_misses += 1;
        let (lat, level) = if self.l2.access(addr) {
            (self.cfg.l2_hit_latency(), HitLevel::L2)
        } else {
            self.l2.fill(addr);
            (self.cfg.mem_latency(), HitLevel::Mem)
        };
        self.l1d.fill(addr);
        AccessResult { latency: lat, level, tlb_miss, mshr_stall: false }
    }

    /// Instruction fetch of the line containing `addr`.
    pub fn ifetch(&mut self, addr: u64, now: u64) -> AccessResult {
        self.stats.ifetches += 1;
        let tlb_miss = !self.itlb.access(addr);
        if tlb_miss {
            self.stats.itlb_misses += 1;
        }
        let tlb_extra = if tlb_miss { self.cfg.tlb_miss_penalty } else { 0 };

        let line = self.l1i.line_addr(addr);
        if let Some(ready) = self.i_mshrs.lookup(line, now) {
            self.stats.ifetch_l1_misses += 1;
            let lat = (ready.saturating_sub(now) as u32).max(self.cfg.l1_lat) + tlb_extra;
            return AccessResult { latency: lat, level: HitLevel::L2, tlb_miss, mshr_stall: false };
        }

        if self.l1i.access(addr) {
            // L1I hits are the pipelined common case; fetch charges no
            // extra latency for them.
            return AccessResult { latency: 0, level: HitLevel::L1, tlb_miss, mshr_stall: false };
        }
        self.stats.ifetch_l1_misses += 1;
        let (lat, level) = if self.l2.access(addr) {
            (self.cfg.l2_hit_latency(), HitLevel::L2)
        } else {
            self.l2.fill(addr);
            (self.cfg.mem_latency(), HitLevel::Mem)
        };
        let total = lat + tlb_extra;
        if !self.i_mshrs.allocate(line, now + total as u64, now) {
            return AccessResult { latency: 1, level, tlb_miss, mshr_stall: true };
        }
        self.l1i.fill(addr);
        AccessResult { latency: total, level, tlb_miss, mshr_stall: false }
    }

    /// Which L1D bank `addr` maps to (for bank-conflict modelling).
    #[inline]
    pub fn dbank_of(&self, addr: u64) -> usize {
        self.l1d.bank_of(addr)
    }

    /// Functionally pre-load a data byte range into the L2 (and optionally
    /// the L1D), without touching statistics or timing. Scaled runs use
    /// this to start from the steady-state residency a 300 M-instruction
    /// run would have established.
    pub fn prewarm_data(&mut self, start: u64, bytes: u64, also_l1: bool) {
        let step = self.cfg.l2.line_bytes;
        let mut addr = start;
        while addr < start + bytes {
            self.l2.fill(addr);
            if also_l1 {
                self.l1d.fill(addr);
            }
            addr += step;
        }
    }

    /// Functionally pre-load a code byte range into the L2 and L1I.
    pub fn prewarm_code(&mut self, start: u64, bytes: u64) {
        let step = self.cfg.l1i.line_bytes;
        let mut addr = start;
        while addr < start + bytes {
            self.l2.fill(addr);
            self.l1i.fill(addr);
            addr += step;
        }
    }

    /// Earliest cycle after `now` at which any outstanding miss fill (data
    /// or instruction MSHRs) completes, or `u64::MAX` when none is
    /// outstanding. Diagnostics only — deliberately **not** a reporter
    /// into the processor's quiescence `Timeline`: a fill expiry on its
    /// own wakes no pipeline stage (it only frees capacity that a later,
    /// separately-scheduled access exploits), so reporting it would just
    /// truncate warps short of the completion that actually wakes the
    /// machine (see `hdsmt_core::timeline`). Expires completed entries
    /// first, the same lazy sweep every access performs, so calling this
    /// on an arbitrary schedule cannot change observable behaviour.
    pub fn next_mshr_expiry(&mut self, now: u64) -> u64 {
        self.d_mshrs.expire(now);
        self.i_mshrs.expire(now);
        self.d_mshrs.next_expiry().min(self.i_mshrs.next_expiry())
    }

    #[inline]
    pub fn stats(&self) -> MemHierStats {
        self.stats
    }

    /// Raw MSHR statistics `((data coalesced, data full-stalls),
    /// (ifetch coalesced, ifetch full-stalls))` — diagnostics only, not
    /// part of the serialized statistics.
    pub fn mshr_stats(&self) -> ((u64, u64), (u64, u64)) {
        (self.d_mshrs.stats(), self.i_mshrs.stats())
    }

    /// Per-cache raw statistics `(l1i, l1d, l2)`.
    pub fn cache_stats(&self) -> (crate::CacheStats, crate::CacheStats, crate::CacheStats) {
        (self.l1i.stats(), self.l1d.stats(), self.l2.stats())
    }

    pub fn reset_stats(&mut self) {
        self.stats = MemHierStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> MemHier {
        MemHier::new(MemConfig::default())
    }

    #[test]
    fn load_latency_ladder() {
        let mut m = hier();
        // Prime the TLB so the ladder is clean.
        m.load(0x1_0000, 0);
        // Cold: full miss to memory.
        let r = m.load(0x100_0000, 100);
        assert_eq!(r.level, HitLevel::Mem);
        assert_eq!(r.latency, 275 + 300, "mem latency + cold DTLB walk");
        // Second touch: L1 hit.
        let r = m.load(0x100_0000, 1000);
        assert_eq!(r.level, HitLevel::L1);
        assert_eq!(r.latency, 3);
        // Evicting nothing; a distinct line in the same (now warm) page
        // that's L2 resident: not possible without eviction, so check L2 by
        // invalidation path instead: new line in same page is a fresh mem
        // miss.
        let r = m.load(0x100_0040, 2000);
        assert_eq!(r.level, HitLevel::Mem);
        assert_eq!(r.latency, 275);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = hier();
        let base = 0x200_0000u64;
        m.load(base, 0);
        // L1D is 64 KB 2-way with 32 B lines: 1024 sets, set stride 32 KB.
        // Two more lines in the same set evict the first from L1 but leave
        // it in L2 (512 KB, 64 B lines, 4096 sets — different geometry).
        m.load(base + 32 * 1024, 600);
        m.load(base + 64 * 1024, 1200);
        let r = m.load(base, 2000);
        assert_eq!(r.level, HitLevel::L2, "line must still be L2 resident");
        assert_eq!(r.latency, 25);
    }

    #[test]
    fn mshr_coalescing_timing() {
        let mut m = hier();
        m.load(0x1_0000, 0); // warm TLB page for the target region
        let r1 = m.load(0x300_0000, 100);
        assert_eq!(r1.level, HitLevel::Mem);
        // Same line 10 cycles later: completes with the original fill.
        let r2 = m.load(0x300_0008, 110);
        assert!(r2.latency < r1.latency);
        // Original ready at 100 + 275 + 300(tlb); second pays the remainder
        // from cycle 110.
        assert_eq!(r2.latency, (100 + r1.latency as u64 - 110) as u32);
    }

    #[test]
    fn store_write_allocates() {
        let mut m = hier();
        let r = m.store(0x400_0000, 0);
        assert_eq!(r.level, HitLevel::Mem);
        let r = m.load(0x400_0000, 10);
        assert_eq!(r.level, HitLevel::L1, "store must have allocated the line");
        assert_eq!(m.stats().stores, 1);
        assert_eq!(m.stats().store_l1_misses, 1);
    }

    #[test]
    fn ifetch_hits_are_free_misses_are_not() {
        let mut m = hier();
        let r = m.ifetch(0x50_0000, 0);
        assert!(r.latency > 0);
        let r = m.ifetch(0x50_0000, 1000);
        assert_eq!(r.latency, 0, "pipelined L1I hit");
        assert_eq!(m.stats().ifetches, 2);
        assert_eq!(m.stats().ifetch_l1_misses, 1);
    }

    #[test]
    fn mshr_back_pressure_reports_stall() {
        let cfg = MemConfig { mshrs: 2, ..MemConfig::default() };
        let mut m = MemHier::new(cfg);
        m.load(0x1_0000, 0); // warm-up miss; its fill completes by cycle 600
                             // Three distinct-line misses in the same cycle window, after the
                             // warm-up fill has drained.
        let a = m.load(0x500_0000, 1000);
        let b = m.load(0x600_0000, 1000);
        let c = m.load(0x700_0000, 1000);
        assert!(!a.mshr_stall && !b.mshr_stall);
        assert!(c.mshr_stall, "third concurrent miss must be replayed");
        assert_eq!(c.latency, 1);
    }

    #[test]
    fn dl1_mpka_statistic() {
        let mut m = hier();
        m.load(0x1_0000, 0);
        // Spaced far enough apart that every fill completes before the next
        // access (otherwise coalesced accesses also count as misses).
        for i in 0..99 {
            m.load(0x1_0000 + i * 8, 1000 + i * 600);
        }
        let mpka = m.stats().dl1_mpka();
        // 100 loads covering 25 distinct 32 B lines → 25 misses → 250 MPKA.
        assert!((200.0..300.0).contains(&mpka), "mpka {mpka}");
        assert!(m.stats().loads == 100);
    }

    #[test]
    fn next_mshr_expiry_reports_the_earliest_outstanding_fill() {
        let mut m = hier();
        assert_eq!(m.next_mshr_expiry(0), u64::MAX, "no outstanding misses");
        m.load(0x1_0000, 0); // warm the TLB page
        let r = m.load(0x900_0000, 100);
        assert_eq!(r.level, HitLevel::Mem);
        let fill = 100 + r.latency as u64;
        let next = m.next_mshr_expiry(150);
        assert!(next > 150 && next <= fill, "next expiry {next} vs fill {fill}");
        assert_eq!(m.next_mshr_expiry(fill), u64::MAX, "completed fills expire");
    }

    #[test]
    fn tlb_miss_penalty_applied_once_page_is_cold() {
        let mut m = hier();
        let r1 = m.load(0x800_0000, 0);
        assert!(r1.tlb_miss);
        let r2 = m.load(0x800_0100, 10);
        assert!(!r2.tlb_miss, "same page now warm");
    }
}
