//! # hdsmt-mem — the shared memory hierarchy
//!
//! In both the monolithic SMT baseline and every hdSMT configuration, *all*
//! pipelines share the memory subsystem — "Besides the fetch engine, all the
//! pipelines share the memory subsystem — including L1 caches — and the
//! register file" (§1). This crate implements that subsystem with the
//! parameters of Table 1:
//!
//! | Structure | Configuration |
//! |---|---|
//! | L1 I-cache | 64 KB, 2-way, 8 banks |
//! | L1 D-cache | 64 KB, 2-way, 8 banks |
//! | L1 latency / miss penalty | 3 / 22 cycles |
//! | L2 | 512 KB, 2-way, 8 banks, 12-cycle access |
//! | Main memory | 250 cycles |
//! | I-TLB / D-TLB | 48 / 128 entries, 300-cycle miss penalty |
//!
//! ## Timing model
//!
//! Latencies are *returned* rather than scheduled: an access immediately
//! updates tags (fill-on-access) and reports the cycle count until its data
//! is usable. MSHR files provide miss coalescing — a second access to a
//! line with an outstanding miss completes when the first fill arrives
//! rather than paying the full penalty again — and bound the number of
//! outstanding misses, applying back-pressure to the load/store units.

#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod hier;
pub mod mshr;
pub mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use config::MemConfig;
pub use hier::{AccessKind, AccessResult, HitLevel, MemHier, MemHierStats};
pub use mshr::MshrFile;
pub use tlb::Tlb;
