//! Memory-hierarchy configuration (defaults = Table 1 of the paper).

use crate::cache::CacheConfig;

/// Full parameter set for [`crate::MemHier`].
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemConfig {
    pub l1i: CacheConfig,
    pub l1d: CacheConfig,
    pub l2: CacheConfig,
    /// L1 hit latency (cycles): "L1 lat./misspenalty 3/22 cyc."
    pub l1_lat: u32,
    /// Added cycles for an L1 miss that hits in L2 (includes the 12-cycle
    /// L2 access plus transfer).
    pub l1_miss_penalty: u32,
    /// Added cycles for an L2 miss: "Main Memory Latency 250 cyc."
    pub mem_lat: u32,
    /// Page size in bytes (Alpha-style 8 KB pages).
    pub page_bytes: u64,
    /// I-TLB entries ("48 ent.").
    pub itlb_entries: usize,
    /// D-TLB entries ("128 ent.").
    pub dtlb_entries: usize,
    /// TLB miss penalty ("300 cyc.").
    pub tlb_miss_penalty: u32,
    /// Outstanding-miss capacity per L1 cache (MSHR file size).
    pub mshrs: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1i: CacheConfig { size_bytes: 64 * 1024, line_bytes: 32, ways: 2, banks: 8 },
            l1d: CacheConfig { size_bytes: 64 * 1024, line_bytes: 32, ways: 2, banks: 8 },
            l2: CacheConfig { size_bytes: 512 * 1024, line_bytes: 64, ways: 2, banks: 8 },
            l1_lat: 3,
            l1_miss_penalty: 22,
            mem_lat: 250,
            page_bytes: 8 * 1024,
            itlb_entries: 48,
            dtlb_entries: 128,
            tlb_miss_penalty: 300,
            mshrs: 16,
        }
    }
}

impl MemConfig {
    /// Total load-to-use latency of an L2 hit — the FLUSH fetch policy's
    /// threshold: a load outstanding longer than this is predicted to be an
    /// L2 miss (Tullsen & Brown, MICRO-34).
    #[inline]
    pub fn l2_hit_latency(&self) -> u32 {
        self.l1_lat + self.l1_miss_penalty
    }

    /// Total latency of a full miss to memory.
    #[inline]
    pub fn mem_latency(&self) -> u32 {
        self.l2_hit_latency() + self.mem_lat
    }

    pub fn validate(&self) -> Result<(), String> {
        self.l1i.validate()?;
        self.l1d.validate()?;
        self.l2.validate()?;
        if !self.page_bytes.is_power_of_two() {
            return Err("page size must be a power of two".into());
        }
        if self.itlb_entries == 0 || self.dtlb_entries == 0 {
            return Err("TLBs must have at least one entry".into());
        }
        if self.mshrs == 0 {
            return Err("need at least one MSHR".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = MemConfig::default();
        c.validate().unwrap();
        assert_eq!(c.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.l1d.ways, 2);
        assert_eq!(c.l1d.banks, 8);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l1_lat, 3);
        assert_eq!(c.l1_miss_penalty, 22);
        assert_eq!(c.mem_lat, 250);
        assert_eq!(c.itlb_entries, 48);
        assert_eq!(c.dtlb_entries, 128);
        assert_eq!(c.tlb_miss_penalty, 300);
    }

    #[test]
    fn derived_latencies() {
        let c = MemConfig::default();
        assert_eq!(c.l2_hit_latency(), 25);
        assert_eq!(c.mem_latency(), 275);
    }

    #[test]
    fn validation_catches_bad_params() {
        let c = MemConfig { page_bytes: 3000, ..MemConfig::default() };
        assert!(c.validate().is_err());
        let c = MemConfig { mshrs: 0, ..MemConfig::default() };
        assert!(c.validate().is_err());
    }
}
