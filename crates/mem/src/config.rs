//! Memory-hierarchy configuration (defaults = Table 1 of the paper).

use crate::cache::CacheConfig;

/// Full parameter set for [`crate::MemHier`].
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemConfig {
    pub l1i: CacheConfig,
    pub l1d: CacheConfig,
    pub l2: CacheConfig,
    /// L1 hit latency (cycles): "L1 lat./misspenalty 3/22 cyc."
    pub l1_lat: u32,
    /// Added cycles for an L1 miss that hits in L2 (includes the 12-cycle
    /// L2 access plus transfer).
    pub l1_miss_penalty: u32,
    /// Added cycles for an L2 miss: "Main Memory Latency 250 cyc."
    pub mem_lat: u32,
    /// Page size in bytes (Alpha-style 8 KB pages).
    pub page_bytes: u64,
    /// I-TLB entries ("48 ent.").
    pub itlb_entries: usize,
    /// D-TLB entries ("128 ent.").
    pub dtlb_entries: usize,
    /// TLB miss penalty ("300 cyc.").
    pub tlb_miss_penalty: u32,
    /// Outstanding-miss capacity per L1 cache (MSHR file size).
    pub mshrs: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1i: CacheConfig { size_bytes: 64 * 1024, line_bytes: 32, ways: 2, banks: 8 },
            l1d: CacheConfig { size_bytes: 64 * 1024, line_bytes: 32, ways: 2, banks: 8 },
            l2: CacheConfig { size_bytes: 512 * 1024, line_bytes: 64, ways: 2, banks: 8 },
            l1_lat: 3,
            l1_miss_penalty: 22,
            mem_lat: 250,
            page_bytes: 8 * 1024,
            itlb_entries: 48,
            dtlb_entries: 128,
            tlb_miss_penalty: 300,
            mshrs: 16,
        }
    }
}

impl MemConfig {
    /// Total load-to-use latency of an L2 hit — the FLUSH fetch policy's
    /// threshold: a load outstanding longer than this is predicted to be an
    /// L2 miss (Tullsen & Brown, MICRO-34).
    #[inline]
    pub fn l2_hit_latency(&self) -> u32 {
        self.l1_lat + self.l1_miss_penalty
    }

    /// Total latency of a full miss to memory.
    #[inline]
    pub fn mem_latency(&self) -> u32 {
        self.l2_hit_latency() + self.mem_lat
    }

    pub fn validate(&self) -> Result<(), String> {
        self.l1i.validate()?;
        self.l1d.validate()?;
        self.l2.validate()?;
        if !self.page_bytes.is_power_of_two() {
            return Err("page size must be a power of two".into());
        }
        // A cache line must not span pages: the hierarchy translates
        // once per access, so a line crossing a page boundary would get
        // one page's translation silently applied to the next page's
        // bytes (and prewarm would touch pages the TLB never saw).
        for (name, c) in [("L1I", &self.l1i), ("L1D", &self.l1d), ("L2", &self.l2)] {
            if c.line_bytes > self.page_bytes {
                return Err(format!(
                    "{name} line ({} B) exceeds the page size ({} B)",
                    c.line_bytes, self.page_bytes
                ));
            }
        }
        // An L1 fill brings exactly one L2 line along with it (`load`
        // touches the L2 once per L1 miss). An L1 line wider than the L2
        // line would silently leave the tail of every fill untracked in
        // the L2 — mis-modelled inclusion rather than a crash, which is
        // worse.
        if self.l1i.line_bytes > self.l2.line_bytes || self.l1d.line_bytes > self.l2.line_bytes {
            return Err(format!(
                "L1 lines ({} B I / {} B D) must not exceed the L2 line ({} B)",
                self.l1i.line_bytes, self.l1d.line_bytes, self.l2.line_bytes
            ));
        }
        if self.itlb_entries == 0 || self.dtlb_entries == 0 {
            return Err("TLBs must have at least one entry".into());
        }
        if self.mshrs == 0 {
            return Err("need at least one MSHR".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = MemConfig::default();
        c.validate().unwrap();
        assert_eq!(c.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.l1d.ways, 2);
        assert_eq!(c.l1d.banks, 8);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l1_lat, 3);
        assert_eq!(c.l1_miss_penalty, 22);
        assert_eq!(c.mem_lat, 250);
        assert_eq!(c.itlb_entries, 48);
        assert_eq!(c.dtlb_entries, 128);
        assert_eq!(c.tlb_miss_penalty, 300);
    }

    #[test]
    fn rejects_lines_spanning_pages() {
        // A line wider than a page would reuse one page's translation
        // for the next page's bytes.
        let c = MemConfig {
            page_bytes: 1024,
            l2: CacheConfig { size_bytes: 512 * 1024, line_bytes: 2048, ways: 2, banks: 8 },
            ..Default::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("page size"), "{err}");
    }

    #[test]
    fn rejects_l1_lines_wider_than_l2_lines() {
        // One L1 miss fills exactly one L2 line; a wider L1 line would
        // leave its tail untracked in the L2 (silent mis-modelling).
        let c = MemConfig {
            l1d: CacheConfig { size_bytes: 64 * 1024, line_bytes: 128, ways: 2, banks: 8 },
            ..Default::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("must not exceed the L2 line"), "{err}");
        // Equal lines are fine.
        let mut c = MemConfig::default();
        c.l1d.line_bytes = 64;
        c.l1i.line_bytes = 64;
        c.validate().unwrap();
    }

    #[test]
    fn derived_latencies() {
        let c = MemConfig::default();
        assert_eq!(c.l2_hit_latency(), 25);
        assert_eq!(c.mem_latency(), 275);
    }

    #[test]
    fn validation_catches_bad_params() {
        let c = MemConfig { page_bytes: 3000, ..MemConfig::default() };
        assert!(c.validate().is_err());
        let c = MemConfig { mshrs: 0, ..MemConfig::default() };
        assert!(c.validate().is_err());
    }
}
