//! Translation lookaside buffers: fully-associative, LRU, sized per
//! Table 1 (48-entry I-TLB, 128-entry D-TLB, 300-cycle miss penalty).

/// Fully-associative TLB over virtual page numbers.
///
/// True LRU via per-entry use stamps: a hit bumps the entry's stamp, a
/// fill on a full TLB evicts the minimum-stamp entry (stamps are unique,
/// so the victim is deterministic — exactly the recency-list victim). The
/// old implementation kept the entries recency-ordered, paying a
/// `rotate_right` memmove on every single translation; stamps make the
/// common case (hit) a pure scan, and consecutive same-page accesses —
/// the overwhelmingly common pattern for instruction fetch and stack
/// traffic — short-circuit on a one-entry memo.
/// Recent-translation memo slots (power of two). Purely an accelerator:
/// it can only point at a slot, never decide a hit — the authoritative
/// entry is always re-verified, so sizing affects host speed only. 256
/// slots (1 KB) keep the D-TLB's 128-entry full scans rare even with
/// four threads' page working sets hashed into the memo.
const MEMO_SLOTS: usize = 256;

pub struct Tlb {
    /// Resident page numbers, unordered (slot-stable between evictions).
    vpns: Vec<u64>,
    /// Last-use stamp per slot (parallel to `vpns`).
    stamps: Vec<u64>,
    /// vpn-hash → probable slot. Stale entries are caught by verifying
    /// `vpns[slot]` before use.
    memo: [u32; MEMO_SLOTS],
    clock: u64,
    capacity: usize,
    page_shift: u32,
    hits: u64,
    misses: u64,
}

impl Tlb {
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        assert!(entries > 0);
        assert!(page_bytes.is_power_of_two());
        Tlb {
            vpns: Vec::with_capacity(entries),
            stamps: Vec::with_capacity(entries),
            memo: [u32::MAX; MEMO_SLOTS],
            clock: 0,
            capacity: entries,
            page_shift: page_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn vpn(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    #[inline]
    fn memo_slot(vpn: u64) -> usize {
        // Fibonacci hash: pages are region-clustered, low bits alone alias.
        (vpn.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 56) as usize & (MEMO_SLOTS - 1)
    }

    /// Translate `addr`: returns `true` on TLB hit. A miss walks (modelled
    /// by the caller's latency charge) and fills.
    pub fn access(&mut self, addr: u64) -> bool {
        let vpn = self.vpn(addr);
        self.clock += 1;
        // Memo fast path: recently used pages resolve without a scan.
        let m = Self::memo_slot(vpn);
        let cached = self.memo[m] as usize;
        if let Some(&p) = self.vpns.get(cached) {
            if p == vpn {
                self.stamps[cached] = self.clock;
                self.hits += 1;
                return true;
            }
        }
        if let Some(pos) = self.vpns.iter().position(|&p| p == vpn) {
            self.stamps[pos] = self.clock;
            self.memo[m] = pos as u32;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.vpns.len() < self.capacity {
            self.memo[m] = self.vpns.len() as u32;
            self.vpns.push(vpn);
            self.stamps.push(self.clock);
        } else {
            // Evict the least recently used entry (unique minimum stamp).
            let victim = self
                .stamps
                .iter()
                .enumerate()
                .min_by_key(|&(_, &stamp)| stamp)
                .map(|(i, _)| i)
                .expect("full TLB is non-empty");
            self.vpns[victim] = vpn;
            self.stamps[victim] = self.clock;
            self.memo[m] = victim as u32;
        }
        false
    }

    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4, 8192);
        assert!(!t.access(0x0000));
        assert!(t.access(0x1000), "same 8K page");
        assert!(!t.access(0x2000), "next page");
        assert!(t.access(0x2001));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 8192);
        t.access(0x0000); // page 0
        t.access(0x2000); // page 1
        t.access(0x0000); // page 0 MRU
        t.access(0x4000); // page 2 evicts page 1
        assert!(t.access(0x0000));
        assert!(!t.access(0x2000), "page 1 was LRU");
    }

    #[test]
    fn working_set_behaviour() {
        // 128-entry D-TLB with 8K pages covers 1 MB: a 512 KB set fits…
        let mut t = Tlb::new(128, 8192);
        let pages: Vec<u64> = (0..64).map(|i| i * 8192).collect();
        for &a in &pages {
            t.access(a);
        }
        let before = t.stats().0;
        for &a in &pages {
            assert!(t.access(a));
        }
        assert_eq!(t.stats().0, before + 64);
        // …while an 8 MB random set keeps missing.
        let mut t = Tlb::new(128, 8192);
        let mut miss = 0;
        for i in 0..10_000u64 {
            let page = (i.wrapping_mul(0x9e3779b97f4a7c15) >> 32) % 1024;
            if !t.access(page * 8192) {
                miss += 1;
            }
        }
        assert!(miss > 8000, "large random set must thrash a 128-entry TLB (missed {miss})");
    }

    #[test]
    fn stats_accumulate() {
        let mut t = Tlb::new(4, 8192);
        t.access(0);
        t.access(0);
        t.access(0x2000);
        assert_eq!(t.stats(), (1, 2));
    }
}
