//! Translation lookaside buffers: fully-associative, LRU, sized per
//! Table 1 (48-entry I-TLB, 128-entry D-TLB, 300-cycle miss penalty).

/// Fully-associative TLB over virtual page numbers.
pub struct Tlb {
    /// Valid page numbers, most-recently-used first. A `Vec` scan over at
    /// most 128 `u64`s is cheaper than pointer-chasing map structures at
    /// these sizes.
    pages: Vec<u64>,
    capacity: usize,
    page_shift: u32,
    hits: u64,
    misses: u64,
}

impl Tlb {
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        assert!(entries > 0);
        assert!(page_bytes.is_power_of_two());
        Tlb {
            pages: Vec::with_capacity(entries),
            capacity: entries,
            page_shift: page_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn vpn(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    /// Translate `addr`: returns `true` on TLB hit. A miss walks (modelled
    /// by the caller's latency charge) and fills.
    pub fn access(&mut self, addr: u64) -> bool {
        let vpn = self.vpn(addr);
        if let Some(pos) = self.pages.iter().position(|&p| p == vpn) {
            // Move to front (MRU).
            self.pages[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            if self.pages.len() == self.capacity {
                self.pages.pop();
            }
            self.pages.insert(0, vpn);
            false
        }
    }

    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4, 8192);
        assert!(!t.access(0x0000));
        assert!(t.access(0x1000), "same 8K page");
        assert!(!t.access(0x2000), "next page");
        assert!(t.access(0x2001));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 8192);
        t.access(0x0000); // page 0
        t.access(0x2000); // page 1
        t.access(0x0000); // page 0 MRU
        t.access(0x4000); // page 2 evicts page 1
        assert!(t.access(0x0000));
        assert!(!t.access(0x2000), "page 1 was LRU");
    }

    #[test]
    fn working_set_behaviour() {
        // 128-entry D-TLB with 8K pages covers 1 MB: a 512 KB set fits…
        let mut t = Tlb::new(128, 8192);
        let pages: Vec<u64> = (0..64).map(|i| i * 8192).collect();
        for &a in &pages {
            t.access(a);
        }
        let before = t.stats().0;
        for &a in &pages {
            assert!(t.access(a));
        }
        assert_eq!(t.stats().0, before + 64);
        // …while an 8 MB random set keeps missing.
        let mut t = Tlb::new(128, 8192);
        let mut miss = 0;
        for i in 0..10_000u64 {
            let page = (i.wrapping_mul(0x9e3779b97f4a7c15) >> 32) % 1024;
            if !t.access(page * 8192) {
                miss += 1;
            }
        }
        assert!(miss > 8000, "large random set must thrash a 128-entry TLB (missed {miss})");
    }

    #[test]
    fn stats_accumulate() {
        let mut t = Tlb::new(4, 8192);
        t.access(0);
        t.access(0);
        t.access(0x2000);
        assert_eq!(t.stats(), (1, 2));
    }
}
