//! Miss-status holding registers: outstanding-miss tracking with
//! coalescing and structural back-pressure.

/// One MSHR file (per cache level).
pub struct MshrFile {
    /// (line address, fill-completion cycle) for each outstanding miss.
    entries: Vec<(u64, u64)>,
    capacity: usize,
    /// Earliest outstanding fill completion (`u64::MAX` when empty): the
    /// per-access expiry sweep — which runs on *every* load and ifetch —
    /// is skipped entirely while nothing can have completed yet.
    next_expiry: u64,
    /// Coalesced (secondary) misses observed.
    coalesced: u64,
    /// Allocation failures due to a full file.
    full_stalls: u64,
}

impl MshrFile {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            next_expiry: u64::MAX,
            coalesced: 0,
            full_stalls: 0,
        }
    }

    /// Drop entries whose fills have completed by `now`.
    pub fn expire(&mut self, now: u64) {
        if self.next_expiry > now {
            return; // nothing outstanding can have completed
        }
        self.entries.retain(|&(_, ready)| ready > now);
        self.next_expiry = self.entries.iter().map(|&(_, ready)| ready).min().unwrap_or(u64::MAX);
    }

    /// Is a miss for `line` already outstanding at `now`? Returns its
    /// completion cycle (coalescing).
    pub fn lookup(&mut self, line: u64, now: u64) -> Option<u64> {
        self.expire(now);
        let hit = self.entries.iter().find(|&&(l, _)| l == line).map(|&(_, r)| r);
        if hit.is_some() {
            self.coalesced += 1;
        }
        hit
    }

    /// Try to allocate an entry for a new miss on `line` completing at
    /// `ready`. Returns `false` (and records a stall) when the file is full
    /// — the caller must replay the access later.
    pub fn allocate(&mut self, line: u64, ready: u64, now: u64) -> bool {
        self.expire(now);
        if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            return false;
        }
        self.entries.push((line, ready));
        self.next_expiry = self.next_expiry.min(ready);
        true
    }

    /// Earliest outstanding fill-completion cycle (`u64::MAX` when
    /// nothing is outstanding). Call [`Self::expire`] first for a value
    /// guaranteed to be in the future — this is the file's next-activity
    /// report into the processor's `Timeline`.
    #[inline]
    pub fn next_expiry(&self) -> u64 {
        self.next_expiry
    }

    /// Outstanding misses at `now`.
    pub fn outstanding(&mut self, now: u64) -> usize {
        self.expire(now);
        self.entries.len()
    }

    /// (coalesced hits, full-file stalls).
    pub fn stats(&self) -> (u64, u64) {
        (self.coalesced, self.full_stalls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_same_line() {
        let mut m = MshrFile::new(4);
        assert!(m.allocate(10, 100, 0));
        assert_eq!(m.lookup(10, 5), Some(100));
        assert_eq!(m.lookup(11, 5), None);
        assert_eq!(m.stats().0, 1);
    }

    #[test]
    fn entries_expire_at_completion() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(10, 100, 0));
        assert_eq!(m.lookup(10, 99), Some(100));
        assert_eq!(m.lookup(10, 100), None, "fill completed at cycle 100");
        assert_eq!(m.outstanding(100), 0);
    }

    #[test]
    fn full_file_applies_back_pressure() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(1, 50, 0));
        assert!(m.allocate(2, 50, 0));
        assert!(!m.allocate(3, 50, 0), "third concurrent miss must stall");
        assert_eq!(m.stats().1, 1);
        // After the fills complete, capacity frees up.
        assert!(m.allocate(3, 120, 60));
    }
}
