//! Generic banked, set-associative cache array with true LRU.
//!
//! The array models tags only (this is a performance simulator — data
//! values never matter). Timing is owned by [`crate::MemHier`]; this type
//! answers hit/miss and performs fills/evictions.

/// Geometry of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheConfig {
    pub size_bytes: u64,
    pub line_bytes: u64,
    pub ways: usize,
    /// Number of banks (consecutive lines interleave across banks).
    pub banks: usize,
}

impl CacheConfig {
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize / self.ways
    }

    pub fn validate(&self) -> Result<(), String> {
        if !self.size_bytes.is_power_of_two() || !self.line_bytes.is_power_of_two() {
            return Err("cache size and line size must be powers of two".into());
        }
        if self.ways == 0 || self.banks == 0 {
            return Err("ways and banks must be positive".into());
        }
        // A line narrower than one 8-byte word breaks every consumer's
        // geometry arithmetic (fetch derives instructions-per-line from
        // it; data accesses are word-granular): the old silent acceptance
        // surfaced as a zero-length fetch burst that hung the simulation
        // at the cycle cap.
        if self.line_bytes < 8 {
            return Err(format!("line size {} is below one 8-byte word", self.line_bytes));
        }
        // Per-way LRU ranks are stored as `u8` (0 = MRU, one rank per way in
        // the set): more than 256 ways cannot be ranked distinctly, and the
        // old silent acceptance corrupted replacement order. 256 itself is
        // excluded too — `fill` ages every way with `saturating_add(1)`, so
        // rank 255 must remain reachable only as the oldest rank.
        if self.ways > u8::MAX as usize {
            return Err(format!(
                "ways = {} exceeds {} (per-way LRU ranks are u8)",
                self.ways,
                u8::MAX
            ));
        }
        if self.size_bytes < self.line_bytes * self.ways as u64 {
            return Err("cache smaller than one set".into());
        }
        if !self.num_sets().is_power_of_two() {
            return Err("set count must be a power of two".into());
        }
        if !self.banks.is_power_of_two() {
            return Err("bank count must be a power of two".into());
        }
        Ok(())
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One way of one set: tag, valid bit and LRU rank interleaved, so a
/// whole low-associativity set sits on one host cache line. (The old
/// layout kept three parallel arrays — every simulated access touched a
/// tag line, a valid line *and* an LRU line; this is the simulator's
/// single hottest leaf, hit several times per cycle.)
#[derive(Clone, Copy)]
struct WayEntry {
    /// Line-granular address; meaningful only while `valid`.
    tag: u64,
    valid: bool,
    /// LRU rank within the set (0 = MRU).
    lru: u8,
}

/// Tag array of one cache level.
pub struct Cache {
    cfg: CacheConfig,
    line_shift: u32,
    set_mask: u64,
    /// Flattened `[set][way]` store.
    ways: Vec<WayEntry>,
    stats: CacheStats,
}

impl Cache {
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache configuration");
        let n = cfg.num_sets() * cfg.ways;
        Cache {
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (cfg.num_sets() - 1) as u64,
            ways: vec![WayEntry { tag: 0, valid: false, lru: 0 }; n],
            stats: CacheStats::default(),
            cfg,
        }
    }

    #[inline]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line-granular address (tag) for `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Which bank services `addr` (consecutive lines interleave).
    #[inline]
    pub fn bank_of(&self, addr: u64) -> usize {
        (self.line_addr(addr) as usize) & (self.cfg.banks - 1)
    }

    #[inline]
    fn set_base(&self, line: u64) -> usize {
        ((line & self.set_mask) as usize) * self.cfg.ways
    }

    /// Access `addr`: returns `true` on hit (and promotes the line to MRU).
    /// A miss records the statistic but does **not** allocate — call
    /// [`Self::fill`] when modelling the fill.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let base = self.set_base(line);
        self.stats.accesses += 1;
        let ways = self.cfg.ways;
        // One bounds check for the whole set; the scan and the promotion
        // share the slice.
        let set = &mut self.ways[base..base + ways];
        let Some(way) = set.iter().position(|e| e.valid && e.tag == line) else {
            self.stats.misses += 1;
            return false;
        };
        let old = set[way].lru;
        if old != 0 {
            // Promote to MRU. Hitting the MRU way again — the dominant
            // pattern: sequential fetch walking one I-line, a replayed
            // load re-probing the same L2 line — skips the re-rank pass
            // entirely (promoting rank 0 is a no-op).
            for e in set.iter_mut() {
                if e.lru < old {
                    e.lru += 1;
                }
            }
            set[way].lru = 0;
        }
        self.stats.hits += 1;
        true
    }

    /// Tag probe without statistics or LRU update.
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let base = self.set_base(line);
        self.ways[base..base + self.cfg.ways].iter().any(|e| e.valid && e.tag == line)
    }

    /// Allocate the line containing `addr`, evicting the LRU way if needed.
    /// Returns the evicted line address, if any.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        let line = self.line_addr(addr);
        let base = self.set_base(line);
        let ways = self.cfg.ways;
        // Already present (e.g. race between coalesced misses): just touch.
        for w in 0..ways {
            let e = self.ways[base + w];
            if e.valid && e.tag == line {
                self.touch(base, w);
                return None;
            }
        }
        // Prefer an invalid way, else evict the max-LRU way.
        let mut victim = 0;
        let mut best = 0u16;
        for w in 0..ways {
            let e = self.ways[base + w];
            let score = if e.valid { e.lru as u16 } else { u16::MAX };
            if score >= best {
                best = score;
                victim = w;
            }
        }
        let v = self.ways[base + victim];
        let evicted = if v.valid { Some(v.tag) } else { None };
        self.ways[base + victim].tag = line;
        self.ways[base + victim].valid = true;
        // A fresh fill is least-recent history-wise: age everyone, then MRU.
        for w in 0..ways {
            let r = &mut self.ways[base + w].lru;
            *r = r.saturating_add(1);
        }
        self.ways[base + victim].lru = 0;
        evicted
    }

    /// Invalidate the line containing `addr` (if present).
    pub fn invalidate(&mut self, addr: u64) {
        let line = self.line_addr(addr);
        let base = self.set_base(line);
        for e in &mut self.ways[base..base + self.cfg.ways] {
            if e.valid && e.tag == line {
                e.valid = false;
            }
        }
    }

    fn touch(&mut self, base: usize, way: usize) {
        let old = self.ways[base + way].lru;
        for w in 0..self.cfg.ways {
            let e = &mut self.ways[base + w];
            if e.lru < old {
                e.lru += 1;
            }
        }
        self.ways[base + way].lru = 0;
    }

    #[inline]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 32 B lines = 256 B.
        Cache::new(CacheConfig { size_bytes: 256, line_bytes: 32, ways: 2, banks: 2 })
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x1000));
        c.fill(0x1000);
        assert!(c.access(0x1000));
        assert!(c.access(0x101f), "same line");
        assert!(!c.access(0x1020), "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = sets*line = 128).
        let (a, b, d) = (0x0u64, 0x80, 0x100);
        c.fill(a);
        c.fill(b);
        assert!(c.access(a)); // a = MRU, b = LRU
        c.fill(d); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b));
        assert!(c.access(d));
    }

    #[test]
    fn fill_returns_evicted_line() {
        let mut c = small();
        assert_eq!(c.fill(0x0), None);
        assert_eq!(c.fill(0x80), None);
        let evicted = c.fill(0x100);
        assert_eq!(evicted, Some(0x0 >> 5));
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut c = small();
        c.fill(0x40);
        let s = c.stats();
        assert!(c.probe(0x40));
        assert!(!c.probe(0x4000));
        assert_eq!(c.stats(), s);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(0x40);
        c.invalidate(0x40);
        assert!(!c.probe(0x40));
    }

    #[test]
    fn banks_interleave_lines() {
        let c = small();
        assert_ne!(c.bank_of(0x00), c.bank_of(0x20), "adjacent lines use different banks");
        assert_eq!(c.bank_of(0x00), c.bank_of(0x40), "wraps around 2 banks");
        assert_eq!(c.bank_of(0x00), c.bank_of(0x1f), "same line, same bank");
    }

    #[test]
    fn capacity_and_conflict_behaviour() {
        // Working set ≤ capacity: second pass all hits.
        let mut c = small();
        let lines: Vec<u64> = (0..8).map(|i| i * 32).collect();
        for &a in &lines {
            if !c.access(a) {
                c.fill(a);
            }
        }
        for &a in &lines {
            assert!(c.access(a), "{a:#x} should hit on the second pass");
        }
        // Working set 2× capacity with LRU and a sequential scan: every
        // access misses (classic LRU worst case).
        let mut c = small();
        let lines: Vec<u64> = (0..16).map(|i| i * 32).collect();
        for _ in 0..3 {
            for &a in &lines {
                if !c.access(a) {
                    c.fill(a);
                }
            }
        }
        let s = c.stats();
        assert_eq!(s.hits, 0, "sequential over-capacity scan must thrash");
    }

    #[test]
    fn paper_l1_geometry() {
        let c =
            Cache::new(CacheConfig { size_bytes: 64 * 1024, line_bytes: 32, ways: 2, banks: 8 });
        assert_eq!(c.config().num_sets(), 1024);
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_geometry() {
        let _ = Cache::new(CacheConfig { size_bytes: 100, line_bytes: 32, ways: 2, banks: 1 });
    }

    #[test]
    fn rejects_sub_word_lines() {
        // A 4-byte line used to validate and then hang fetch (zero
        // instructions per line → empty bursts forever).
        for line in [1u64, 2, 4] {
            let cfg = CacheConfig { size_bytes: 1 << 14, line_bytes: line, ways: 2, banks: 1 };
            let err = cfg.validate().unwrap_err();
            assert!(err.contains("8-byte word"), "line {line}: {err}");
        }
        CacheConfig { size_bytes: 1 << 14, line_bytes: 8, ways: 2, banks: 1 }.validate().unwrap();
    }

    #[test]
    fn rejects_ways_beyond_u8_lru_ranks() {
        // 512 ways would silently wrap the u8 per-way LRU ranks; the
        // validator must reject it rather than corrupt replacement order.
        let cfg = CacheConfig { size_bytes: 1 << 20, line_bytes: 32, ways: 512, banks: 1 };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("ways = 512"), "unclear error: {err}");
        // High-but-representable associativity still validates.
        let ok = CacheConfig { size_bytes: 1 << 13, line_bytes: 32, ways: 128, banks: 1 };
        ok.validate().unwrap();
    }
}
