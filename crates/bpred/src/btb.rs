//! Branch target buffer: 256 entries, 4-way set associative (Table 1),
//! true-LRU within each set.
//!
//! Direct targets are available from the instruction at fetch in this
//! model, so the BTB serves *indirect* control transfers (indirect jumps;
//! returns go through the RAS).

use hdsmt_isa::Pc;

const WAYS: usize = 4;

#[derive(Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u64,
    target: u64,
    /// Lower = more recently used.
    lru: u8,
}

/// Set-associative branch target buffer.
pub struct Btb {
    sets: usize,
    entries: Vec<Entry>,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// `entries` must be a multiple of the associativity (4).
    pub fn new(entries: usize) -> Self {
        assert!(
            entries >= WAYS && entries.is_multiple_of(WAYS),
            "BTB size must be a multiple of {WAYS}"
        );
        let sets = entries / WAYS;
        Btb { sets, entries: vec![Entry::default(); entries], hits: 0, misses: 0 }
    }

    /// The paper's configuration: 256 entries, 4-way.
    pub fn paper_config() -> Self {
        Self::new(256)
    }

    #[inline]
    fn set_range(&self, key: u64) -> std::ops::Range<usize> {
        let set = (key as usize) % self.sets;
        set * WAYS..(set + 1) * WAYS
    }

    /// Look up the predicted target for the branch identified by `key`,
    /// updating LRU on a hit.
    pub fn lookup(&mut self, key: u64) -> Option<Pc> {
        let r = self.set_range(key);
        let set = &mut self.entries[r];
        let hit = set.iter().position(|e| e.valid && e.tag == key);
        match hit {
            Some(w) => {
                let old = set[w].lru;
                for e in set.iter_mut() {
                    if e.lru < old {
                        e.lru += 1;
                    }
                }
                set[w].lru = 0;
                self.hits += 1;
                Some(Pc(set[w].target))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Install/update the resolved target for `key` (LRU victim on fill).
    pub fn update(&mut self, key: u64, target: Pc) {
        let r = self.set_range(key);
        let set = &mut self.entries[r];
        let existing = set.iter().position(|e| e.valid && e.tag == key);
        let way = existing.unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .max_by_key(|(_, e)| if e.valid { e.lru } else { u8::MAX })
                .map(|(i, _)| i)
                .unwrap()
        });
        // Age every way that was more recent than the claimed one. A fresh
        // fill (invalid entry or eviction) counts as least-recent, so all
        // other ways age.
        let old = if existing.is_some() { set[way].lru } else { u8::MAX };
        for e in set.iter_mut() {
            if e.lru < old {
                e.lru = e.lru.saturating_add(1);
            }
        }
        set[way] = Entry { valid: true, tag: key, target: target.0, lru: 0 };
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_update() {
        let mut btb = Btb::paper_config();
        assert_eq!(btb.lookup(42), None);
        btb.update(42, Pc(0x2000));
        assert_eq!(btb.lookup(42), Some(Pc(0x2000)));
        assert_eq!(btb.stats(), (1, 1));
    }

    #[test]
    fn update_overwrites_target() {
        let mut btb = Btb::paper_config();
        btb.update(42, Pc(0x2000));
        btb.update(42, Pc(0x3000));
        assert_eq!(btb.lookup(42), Some(Pc(0x3000)));
    }

    #[test]
    fn lru_evicts_least_recent_within_set() {
        let mut btb = Btb::new(4); // one set of 4 ways
        for k in 0..4u64 {
            btb.update(k, Pc(k * 0x100));
        }
        // Touch 0..3 except 1; then a 5th key must evict key 1.
        assert!(btb.lookup(0).is_some());
        assert!(btb.lookup(2).is_some());
        assert!(btb.lookup(3).is_some());
        btb.update(4, Pc(0x400));
        assert_eq!(btb.lookup(1), None, "LRU way should have been evicted");
        assert!(btb.lookup(0).is_some());
        assert!(btb.lookup(4).is_some());
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut btb = Btb::new(8); // 2 sets × 4 ways
        for k in (0..8u64).map(|i| i * 2) {
            // even keys -> set 0
            btb.update(k, Pc(k));
        }
        btb.update(1, Pc(0x999)); // set 1
        assert_eq!(btb.lookup(1), Some(Pc(0x999)));
    }

    #[test]
    #[should_panic]
    fn rejects_non_multiple_of_ways() {
        let _ = Btb::new(6);
    }
}
