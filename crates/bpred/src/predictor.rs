//! Unified direction-predictor front: enum dispatch over the concrete
//! predictors (per the hpc-parallel guide, no boxed trait objects on the
//! per-branch hot path).

use crate::{Gshare, PerceptronPredictor};

/// Snapshot of predictor state captured at prediction time; carried with
/// the in-flight branch for training and history recovery.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DirSnapshot {
    /// Global history at prediction.
    pub ghr: u64,
    /// Local history at prediction (perceptron only).
    pub local: u16,
    /// Raw predictor output (perceptron dot product / gshare counter).
    pub y: i32,
}

/// Which direction predictor to instantiate.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize, Default)]
pub enum DirPredictorKind {
    /// Paper configuration (Table 1).
    #[default]
    Perceptron,
    /// Ablation baseline.
    Gshare,
}

/// Enum-dispatched direction predictor.
pub enum DirectionPredictor {
    Perceptron(PerceptronPredictor),
    Gshare(Gshare),
}

impl DirectionPredictor {
    pub fn new(kind: DirPredictorKind, threads: usize) -> Self {
        match kind {
            DirPredictorKind::Perceptron => {
                DirectionPredictor::Perceptron(PerceptronPredictor::new(threads))
            }
            DirPredictorKind::Gshare => DirectionPredictor::Gshare(Gshare::new(threads)),
        }
    }

    /// Predict direction for thread `tid` at lookup key `key`.
    #[inline]
    pub fn predict(&mut self, tid: usize, key: u64) -> (bool, DirSnapshot) {
        match self {
            DirectionPredictor::Perceptron(p) => p.predict(tid, key),
            DirectionPredictor::Gshare(p) => p.predict(tid, key),
        }
    }

    /// Shift the speculative outcome into the thread's global history.
    #[inline]
    pub fn spec_update(&mut self, tid: usize, taken: bool) {
        match self {
            DirectionPredictor::Perceptron(p) => p.spec_update(tid, taken),
            DirectionPredictor::Gshare(p) => p.spec_update(tid, taken),
        }
    }

    /// Repair the thread's history after a misprediction.
    #[inline]
    pub fn recover(&mut self, tid: usize, snap: &DirSnapshot, actual_taken: bool) {
        match self {
            DirectionPredictor::Perceptron(p) => p.recover(tid, snap, actual_taken),
            DirectionPredictor::Gshare(p) => p.recover(tid, snap, actual_taken),
        }
    }

    /// Train with the resolution outcome.
    #[inline]
    pub fn train(&mut self, key: u64, snap: &DirSnapshot, actual_taken: bool) {
        match self {
            DirectionPredictor::Perceptron(p) => p.train(key, snap, actual_taken),
            DirectionPredictor::Gshare(p) => p.train(key, snap, actual_taken),
        }
    }

    /// Current speculative global history of a thread.
    #[inline]
    pub fn history(&self, tid: usize) -> u64 {
        match self {
            DirectionPredictor::Perceptron(p) => p.history(tid),
            DirectionPredictor::Gshare(p) => p.history(tid),
        }
    }

    /// Force a thread's global history (checkpoint restore after a
    /// non-branch squash).
    #[inline]
    pub fn set_history(&mut self, tid: usize, ghr: u64) {
        match self {
            DirectionPredictor::Perceptron(p) => p.set_history(tid, ghr),
            DirectionPredictor::Gshare(p) => p.set_history(tid, ghr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_kinds_learn_a_bias_through_the_common_interface() {
        for kind in [DirPredictorKind::Perceptron, DirPredictorKind::Gshare] {
            let mut p = DirectionPredictor::new(kind, 1);
            let key = 77;
            let mut hits = 0;
            let n = 2000;
            for i in 0..n {
                let actual = true;
                let (pred, snap) = p.predict(0, key);
                p.spec_update(0, pred);
                if pred != actual {
                    p.recover(0, &snap, actual);
                }
                p.train(key, &snap, actual);
                if i >= n / 2 && pred == actual {
                    hits += 1;
                }
            }
            assert!(hits as f64 / (n / 2) as f64 > 0.99, "{kind:?}");
        }
    }

    #[test]
    fn default_kind_is_the_paper_config() {
        assert_eq!(DirPredictorKind::default(), DirPredictorKind::Perceptron);
    }
}
