//! Return address stack: 256 entries, replicated per thread (Table 1).
//!
//! The RAS is speculatively updated at fetch (push on call, pop on return),
//! so it corrupts on wrong paths. Recovery uses the standard
//! top-of-stack-pointer + top-value checkpoint: every control instruction
//! carries a [`RasSnapshot`] of the post-action state, and a squash restores
//! the snapshot of the newest surviving instruction.

use hdsmt_isa::Pc;

/// Checkpoint of RAS state (top pointer and the value it points at).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RasSnapshot {
    pub tos: u16,
    pub top: u64,
}

/// Circular return-address stack for one thread.
pub struct Ras {
    stack: Vec<u64>,
    tos: u16,
}

impl Ras {
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "RAS size must be a power of two");
        Ras { stack: vec![0; entries], tos: 0 }
    }

    /// Paper configuration: 256 entries.
    pub fn paper_config() -> Self {
        Self::new(256)
    }

    #[inline]
    fn mask(&self) -> u16 {
        (self.stack.len() - 1) as u16
    }

    /// Push a return address (speculative, at fetch of a call).
    pub fn push(&mut self, ret: Pc) {
        self.tos = (self.tos + 1) & self.mask();
        self.stack[self.tos as usize] = ret.0;
    }

    /// Pop the predicted return target (speculative, at fetch of a return).
    pub fn pop(&mut self) -> Pc {
        let v = self.stack[self.tos as usize];
        self.tos = self.tos.wrapping_sub(1) & self.mask();
        Pc(v)
    }

    /// Capture the current state.
    #[inline]
    pub fn snapshot(&self) -> RasSnapshot {
        RasSnapshot { tos: self.tos, top: self.stack[self.tos as usize] }
    }

    /// Restore a previously captured state.
    #[inline]
    pub fn restore(&mut self, snap: RasSnapshot) {
        self.tos = snap.tos;
        self.stack[self.tos as usize] = snap.top;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut r = Ras::new(8);
        r.push(Pc(0x100));
        r.push(Pc(0x200));
        r.push(Pc(0x300));
        assert_eq!(r.pop(), Pc(0x300));
        assert_eq!(r.pop(), Pc(0x200));
        assert_eq!(r.pop(), Pc(0x100));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut r = Ras::new(8);
        r.push(Pc(0x100));
        let snap = r.snapshot();
        // Wrong-path speculation corrupts the stack…
        r.push(Pc(0xbad));
        r.pop();
        r.pop();
        r.restore(snap);
        assert_eq!(r.pop(), Pc(0x100));
    }

    #[test]
    fn overflow_wraps_keeping_newest() {
        let mut r = Ras::new(4);
        for i in 0..6u64 {
            r.push(Pc(0x100 * (i + 1)));
        }
        // Newest 4 survive: 0x600, 0x500, 0x400, 0x300.
        assert_eq!(r.pop(), Pc(0x600));
        assert_eq!(r.pop(), Pc(0x500));
        assert_eq!(r.pop(), Pc(0x400));
        assert_eq!(r.pop(), Pc(0x300));
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        let _ = Ras::new(6);
    }

    #[test]
    fn paper_config_has_256_entries() {
        let r = Ras::paper_config();
        assert_eq!(r.stack.len(), 256);
    }
}
