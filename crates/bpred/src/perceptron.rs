//! Perceptron direction predictor (Jiménez & Lin, HPCA 2001), in the
//! paper's configuration: 256 perceptrons, 4K-entry local-history table.
//!
//! Each perceptron holds a bias weight plus one signed-byte weight per
//! history bit (global and local). Prediction is the sign of the dot
//! product of weights with the ±1-encoded history; training bumps weights
//! toward the outcome whenever the prediction was wrong or the magnitude
//! was below the threshold θ = ⌊1.93·h + 14⌋.

use crate::predictor::DirSnapshot;

/// Number of perceptrons ("256 perceps").
const N_PERCEPTRONS: usize = 256;
/// Local-history table entries ("4K local").
const N_LOCAL: usize = 4096;
/// Global history bits fed to each perceptron.
const G_BITS: usize = 24;
/// Local history bits fed to each perceptron.
const L_BITS: usize = 14;
/// Weights per perceptron: bias + global + local.
const W_PER: usize = 1 + G_BITS + L_BITS;

/// The perceptron predictor. Weight and local-history tables are shared
/// across threads; the global-history register is per thread.
pub struct PerceptronPredictor {
    /// `N_PERCEPTRONS × W_PER` signed weights, flattened.
    weights: Vec<i8>,
    /// 4K local histories (low `L_BITS` bits live).
    lht: Vec<u16>,
    /// Per-thread speculative global history.
    ghr: Vec<u64>,
    /// Training threshold.
    theta: i32,
}

impl PerceptronPredictor {
    pub fn new(threads: usize) -> Self {
        PerceptronPredictor {
            weights: vec![0; N_PERCEPTRONS * W_PER],
            lht: vec![0; N_LOCAL],
            ghr: vec![0; threads],
            theta: (1.93 * (G_BITS + L_BITS) as f64 + 14.0) as i32,
        }
    }

    #[inline]
    fn pidx(key: u64) -> usize {
        (key as usize) % N_PERCEPTRONS
    }

    #[inline]
    fn lidx(key: u64) -> usize {
        (key as usize) % N_LOCAL
    }

    /// Dot product of the selected perceptron with the ±1-encoded histories.
    ///
    /// The ±1 encoding is computed arithmetically (`2·bit − 1`), not with a
    /// branch per bit: history bits are close to random, so a branchy
    /// encoding costs the *host* a branch mispredict per bit. Identical
    /// integer results either way.
    fn output(&self, key: u64, ghr: u64, local: u16) -> i32 {
        let w = &self.weights[Self::pidx(key) * W_PER..(Self::pidx(key) + 1) * W_PER];
        let mut y = w[0] as i32;
        for i in 0..G_BITS {
            let x = (((ghr >> i) & 1) as i32) * 2 - 1;
            y += w[1 + i] as i32 * x;
        }
        for i in 0..L_BITS {
            let x = (((local >> i) & 1) as i32) * 2 - 1;
            y += w[1 + G_BITS + i] as i32 * x;
        }
        y
    }

    /// Predict the direction of the conditional branch at `key` for thread
    /// `tid`. Returns the prediction and the snapshot needed for training
    /// and recovery. Does *not* update history — call
    /// [`Self::spec_update`] afterwards with the predicted direction.
    pub fn predict(&mut self, tid: usize, key: u64) -> (bool, DirSnapshot) {
        let ghr = self.ghr[tid];
        let local = self.lht[Self::lidx(key)];
        let y = self.output(key, ghr, local);
        (y >= 0, DirSnapshot { ghr, local, y })
    }

    /// Speculatively shift the predicted direction into the thread's global
    /// history (fetch time).
    #[inline]
    pub fn spec_update(&mut self, tid: usize, taken: bool) {
        self.ghr[tid] = (self.ghr[tid] << 1) | taken as u64;
    }

    /// Restore the thread's global history after a misprediction: history
    /// becomes the pre-branch snapshot extended with the actual outcome.
    #[inline]
    pub fn recover(&mut self, tid: usize, snap: &DirSnapshot, actual_taken: bool) {
        self.ghr[tid] = (snap.ghr << 1) | actual_taken as u64;
    }

    /// Train at branch resolution with the snapshot captured at prediction.
    /// Also retires the outcome into the (non-speculative) local history.
    pub fn train(&mut self, key: u64, snap: &DirSnapshot, actual_taken: bool) {
        let predicted_taken = snap.y >= 0;
        if predicted_taken != actual_taken || snap.y.abs() <= self.theta {
            let t: i32 = if actual_taken { 1 } else { -1 };
            let base = Self::pidx(key) * W_PER;
            let w = &mut self.weights[base..base + W_PER];
            w[0] = (w[0] as i32 + t).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
            for i in 0..G_BITS {
                let x = (((snap.ghr >> i) & 1) as i32) * 2 - 1;
                let wi = &mut w[1 + i];
                *wi = (*wi as i32 + t * x).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
            }
            for i in 0..L_BITS {
                let x = (((snap.local >> i) & 1) as i32) * 2 - 1;
                let wi = &mut w[1 + G_BITS + i];
                *wi = (*wi as i32 + t * x).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
            }
        }
        let l = Self::lidx(key);
        self.lht[l] = ((self.lht[l] << 1) | actual_taken as u16) & ((1 << L_BITS) - 1);
    }

    /// Current speculative global history of a thread (test hook).
    #[inline]
    pub fn history(&self, tid: usize) -> u64 {
        self.ghr[tid]
    }

    /// Force a thread's global history (checkpoint restore after a
    /// non-branch squash, e.g. the FLUSH fetch policy).
    #[inline]
    pub fn set_history(&mut self, tid: usize, ghr: u64) {
        self.ghr[tid] = ghr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `n` predict/update/train rounds of `outcome(i)` on one static
    /// branch and return the hit-rate of the last half.
    fn accuracy(outcomes: impl Fn(usize) -> bool, n: usize) -> f64 {
        let mut p = PerceptronPredictor::new(1);
        let key = 0xdead_beef;
        let mut hits = 0;
        let half = n / 2;
        for i in 0..n {
            let actual = outcomes(i);
            let (pred, snap) = p.predict(0, key);
            p.spec_update(0, pred);
            if pred != actual {
                p.recover(0, &snap, actual);
            }
            p.train(key, &snap, actual);
            if i >= half && pred == actual {
                hits += 1;
            }
        }
        hits as f64 / half as f64
    }

    #[test]
    fn learns_always_taken() {
        assert!(accuracy(|_| true, 2000) > 0.99);
    }

    #[test]
    fn learns_strong_bias() {
        // 90 % taken: steady-state accuracy should approach the bias.
        let acc = accuracy(|i| (i * 7 + 3) % 10 != 0, 4000);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn learns_loop_pattern() {
        // T T T T NT repeating (trip-4 loop): local history makes this
        // nearly perfectly predictable — the perceptron's advantage.
        let acc = accuracy(|i| i % 5 != 4, 6000);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn learns_alternating_pattern() {
        let acc = accuracy(|i| i % 2 == 0, 4000);
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn coin_flips_stay_near_half() {
        // splitmix64-hashed outcomes: statistically random, so nothing for
        // the history-based predictor to exploit.
        let flip = |i: usize| {
            let mut z = (i as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) & 1 == 1
        };
        let acc = accuracy(flip, 8000);
        assert!((0.35..0.65).contains(&acc), "accuracy {acc}");
    }

    #[test]
    fn training_converges_and_stops() {
        // With a constant outcome the perceptron must converge (|y| > θ and
        // correct), after which weights stop changing — this is the
        // threshold rule that keeps weights from needless saturation.
        let mut p = PerceptronPredictor::new(1);
        let key = 1234;
        for _ in 0..50_000 {
            let (pred, snap) = p.predict(0, key);
            p.spec_update(0, pred);
            p.train(key, &snap, true);
        }
        let frozen = p.weights.clone();
        for _ in 0..50_000 {
            let (pred, snap) = p.predict(0, key);
            p.spec_update(0, pred);
            p.train(key, &snap, true);
        }
        assert_eq!(frozen, p.weights, "weights must be stable after convergence");
        let (pred, _) = p.predict(0, key);
        assert!(pred);
    }

    #[test]
    fn recover_restores_history() {
        let mut p = PerceptronPredictor::new(2);
        p.spec_update(0, true);
        p.spec_update(0, true);
        let (_, snap) = p.predict(0, 1);
        p.spec_update(0, true); // wrong speculation
        p.recover(0, &snap, false);
        assert_eq!(p.history(0), 0b110);
        // Thread 1 untouched.
        assert_eq!(p.history(1), 0);
    }

    #[test]
    fn threads_have_independent_history() {
        let mut p = PerceptronPredictor::new(2);
        p.spec_update(0, true);
        assert_eq!(p.history(0), 1);
        assert_eq!(p.history(1), 0);
    }
}
