//! # hdsmt-bpred — branch prediction
//!
//! The paper's front-end (Table 1) uses:
//!
//! * a **perceptron** direction predictor — "perceptron (4K local, 256
//!   perceps)": 256 weight vectors over a 4K-entry local-history table plus
//!   a global history register (Jiménez & Lin style);
//! * a **256-entry, 4-way BTB** — needed here for *indirect* jumps
//!   (direct targets are available from the instruction at fetch);
//! * a **256-entry RAS**, replicated per thread.
//!
//! Tables are shared between hardware contexts (per Table 1 only RAS and
//! ROB are replicated); per-thread state is limited to the global-history
//! registers and the RAS. Callers fold the thread's address-space id into
//! the lookup key so different programs do not systematically alias.
//!
//! A `gshare` predictor is included as the ablation baseline
//! (`reproduce ablate-bpred`).
//!
//! ## Speculation protocol
//!
//! Direction predictors speculatively update the global history at fetch
//! ([`DirectionPredictor::spec_update`]) and hand back a [`DirSnapshot`]
//! carrying the inputs used; on a squash the core restores history from the
//! snapshot ([`DirectionPredictor::recover`]), and at resolution it trains
//! with the snapshot ([`DirectionPredictor::train`]). The RAS hands out
//! post-action snapshots for the same purpose.

#![forbid(unsafe_code)]

pub mod btb;
pub mod gshare;
pub mod perceptron;
pub mod predictor;
pub mod ras;

pub use btb::Btb;
pub use gshare::Gshare;
pub use perceptron::PerceptronPredictor;
pub use predictor::{DirPredictorKind, DirSnapshot, DirectionPredictor};
pub use ras::{Ras, RasSnapshot};

/// Fold a PC and an address-space id into a table lookup key.
#[inline]
pub fn branch_key(pc: hdsmt_isa::Pc, asid: u8) -> u64 {
    // Drop the always-zero byte-offset bits and spread the asid across the
    // index range so co-running programs don't line up set-for-set.
    (pc.0 >> 2) ^ ((asid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsmt_isa::Pc;

    #[test]
    fn branch_keys_distinguish_asids() {
        let pc = Pc(0x1_0000);
        assert_ne!(branch_key(pc, 0), branch_key(pc, 1));
        assert_eq!(branch_key(pc, 3), branch_key(pc, 3));
    }

    #[test]
    fn branch_keys_distinguish_pcs() {
        assert_ne!(branch_key(Pc(0x1000), 0), branch_key(Pc(0x1004), 0));
    }
}
