//! gshare direction predictor — the classic 2-bit-counter baseline used by
//! the `ablate-bpred` experiment to quantify what the perceptron buys.

use crate::predictor::DirSnapshot;

/// History bits / table index width.
const H_BITS: usize = 12;
const TABLE: usize = 1 << H_BITS;

/// gshare: a table of 2-bit saturating counters indexed by
/// `pc ⊕ global-history`.
pub struct Gshare {
    counters: Vec<u8>,
    ghr: Vec<u64>,
}

impl Gshare {
    pub fn new(threads: usize) -> Self {
        // Initialise to weakly taken (2) — conventional.
        Gshare { counters: vec![2; TABLE], ghr: vec![0; threads] }
    }

    #[inline]
    fn index(key: u64, ghr: u64) -> usize {
        ((key ^ ghr) as usize) & (TABLE - 1)
    }

    /// Predict; snapshot carries the history used (for index recompute at
    /// training) — `local` and `y` are unused by gshare.
    pub fn predict(&mut self, tid: usize, key: u64) -> (bool, DirSnapshot) {
        let ghr = self.ghr[tid];
        let c = self.counters[Self::index(key, ghr)];
        (c >= 2, DirSnapshot { ghr, local: 0, y: c as i32 })
    }

    #[inline]
    pub fn spec_update(&mut self, tid: usize, taken: bool) {
        self.ghr[tid] = (self.ghr[tid] << 1) | taken as u64;
    }

    #[inline]
    pub fn recover(&mut self, tid: usize, snap: &DirSnapshot, actual_taken: bool) {
        self.ghr[tid] = (snap.ghr << 1) | actual_taken as u64;
    }

    pub fn train(&mut self, key: u64, snap: &DirSnapshot, actual_taken: bool) {
        let c = &mut self.counters[Self::index(key, snap.ghr)];
        if actual_taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    #[inline]
    pub fn history(&self, tid: usize) -> u64 {
        self.ghr[tid]
    }

    /// Force a thread's global history (checkpoint restore).
    #[inline]
    pub fn set_history(&mut self, tid: usize, ghr: u64) {
        self.ghr[tid] = ghr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy(outcomes: impl Fn(usize) -> bool, n: usize) -> f64 {
        let mut p = Gshare::new(1);
        let key = 0xabcd;
        let mut hits = 0;
        let half = n / 2;
        for i in 0..n {
            let actual = outcomes(i);
            let (pred, snap) = p.predict(0, key);
            p.spec_update(0, pred);
            if pred != actual {
                p.recover(0, &snap, actual);
            }
            p.train(key, &snap, actual);
            if i >= half && pred == actual {
                hits += 1;
            }
        }
        hits as f64 / half as f64
    }

    #[test]
    fn learns_always_taken() {
        assert!(accuracy(|_| true, 1000) > 0.99);
    }

    #[test]
    fn learns_short_loop() {
        assert!(accuracy(|i| i % 4 != 3, 4000) > 0.9);
    }

    #[test]
    fn counters_saturate() {
        let mut p = Gshare::new(1);
        for _ in 0..100 {
            let (_, snap) = p.predict(0, 5);
            p.train(5, &snap, false);
        }
        let (pred, _) = p.predict(0, 5);
        assert!(!pred);
        assert!(p.counters.iter().all(|&c| c <= 3));
    }
}
