//! # hdsmt-area — the area cost model (§3)
//!
//! The paper measures "complexity" as processor area in mm² at 0.18 µm,
//! estimated with the Karlsruhe Simultaneous Multithreaded Simulator's
//! transistor-count tooling and Burns & Gaudiot's SMT layout-overhead data.
//! Register file and caches are *excluded* ("Since both hdSMT and SMT
//! approaches share the same register file and caches, we have removed
//! them from the model"), but the sharing logic is charged back:
//!
//! * **+10 %** on each pipeline's execution core in multipipeline
//!   configurations (shared cache/register-file data access logic);
//! * **+20 %** on the fetch engine in multipipeline configurations
//!   (multipipeline steering support).
//!
//! We do not have the Karlsruhe tool, so this is a *parametric* model
//! (DESIGN.md §3) whose constants are calibrated against the two anchors
//! the paper publishes: the per-model stacked areas of Fig 2(b) (M8 total
//! ≈ 170 mm²) and the microarchitecture deltas of Fig 3 (3M4 ≈ −17 %,
//! 4M4 ≈ +10.14 %, 2M4+2M2 ≈ −27 %, 3M4+2M2 ≈ −1 %, 1M6+2M4+2M2 ≈ +2 %
//! versus the M8 baseline). The fit reproduces all five deltas within
//! ~1.5 points (asserted by tests). Structurally:
//!
//! * execution core ∝ functional-unit areas (int 2.0, fp 4.5, ld/st
//!   3.2 mm²);
//! * each queue (decode/dispatch/completion) ∝ entries² — wakeup/select
//!   CAM logic dominates at these sizes, and the quadratic term is what
//!   the Fig 3 deltas demand;
//! * SMT context replication: a (contexts−1)² term plus a multiplicative
//!   per-context overhead (Burns & Gaudiot measure super-linear SMT
//!   layout overhead);
//! * width appears only through the FU mix — the paper's own numbers make
//!   M6 barely larger than M4 (same queues, same contexts, one more int
//!   unit), which rules out strong width-superlinear terms.

#![forbid(unsafe_code)]

pub mod microarch;
pub mod model;

pub use microarch::{microarch_area, paper_area_table, MicroArchArea};
pub use model::{pipeline_area, FetchArea, PipelineArea, StageAreas};

#[cfg(test)]
mod tests {
    use super::*;
    use hdsmt_pipeline::MicroArch;

    #[test]
    fn fig3_deltas_match_paper() {
        // (name, paper delta %) from Fig 3; tolerance ±1.6 points.
        let expected = [
            ("3M4", -17.0),
            ("4M4", 10.14),
            ("2M4+2M2", -27.0),
            ("3M4+2M2", -1.0),
            ("1M6+2M4+2M2", 2.0),
        ];
        let base = microarch_area(&MicroArch::baseline()).total();
        for (name, paper_delta) in expected {
            let a = microarch_area(&MicroArch::parse(name).unwrap()).total();
            let delta = (a / base - 1.0) * 100.0;
            assert!(
                (delta - paper_delta).abs() < 1.6,
                "{name}: model {delta:.1}% vs paper {paper_delta}%"
            );
        }
    }

    #[test]
    fn m8_total_near_170mm2() {
        let a = microarch_area(&MicroArch::baseline()).total();
        assert!((165.0..175.0).contains(&a), "M8 area {a:.1} mm²");
    }
}
