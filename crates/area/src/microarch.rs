//! Whole-microarchitecture area composition (Fig 3).

use hdsmt_pipeline::MicroArch;

use crate::model::{fetch_area, pipeline_area, FetchArea, PipelineArea};

/// Area of a complete microarchitecture: one fetch engine plus all
/// pipeline bodies.
#[derive(Clone, Debug, serde::Serialize)]
pub struct MicroArchArea {
    pub name: String,
    pub fetch: FetchArea,
    pub pipes: Vec<PipelineArea>,
}

impl MicroArchArea {
    /// Total area in mm².
    pub fn total(&self) -> f64 {
        self.fetch.mm2 + self.pipes.iter().map(|p| p.total()).sum::<f64>()
    }

    /// Delta versus a baseline total, in percent.
    pub fn delta_vs(&self, baseline: f64) -> f64 {
        (self.total() / baseline - 1.0) * 100.0
    }
}

/// Compute the Fig 3 area of `arch` ("only one instruction fetch stage is
/// included in the total area calculus", §3).
pub fn microarch_area(arch: &MicroArch) -> MicroArchArea {
    let multipipe = !arch.is_monolithic();
    MicroArchArea {
        name: arch.name.clone(),
        fetch: fetch_area(multipipe),
        pipes: arch.pipes.iter().map(|m| pipeline_area(m, multipipe)).collect(),
    }
}

/// The full Fig 3 table: every evaluated microarchitecture with its area
/// and delta versus the M8 baseline.
pub fn paper_area_table() -> Vec<(String, f64, f64)> {
    let archs = MicroArch::paper_set();
    let base = microarch_area(&archs[0]).total();
    archs
        .iter()
        .map(|a| {
            let area = microarch_area(a);
            (a.name.clone(), area.total(), area.delta_vs(base))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_one_fetch_engine_counted() {
        let a = microarch_area(&MicroArch::parse("4M4").unwrap());
        let pipe_body = crate::model::pipeline_area(&hdsmt_pipeline::M4, true).total();
        let expected = crate::model::fetch_area(true).mm2 + 4.0 * pipe_body;
        assert!((a.total() - expected).abs() < 1e-9);
    }

    #[test]
    fn paper_table_signs() {
        let table = paper_area_table();
        let get = |n: &str| table.iter().find(|(name, _, _)| name == n).unwrap().2;
        assert_eq!(get("M8"), 0.0);
        // "all but two microarchitectures (4M4 and 1M6+2M4+2M2) require
        // less area than the monolithic SMT baseline" (§4.1).
        assert!(get("3M4") < 0.0);
        assert!(get("2M4+2M2") < 0.0);
        assert!(get("3M4+2M2") < 1.0);
        assert!(get("4M4") > 0.0);
        assert!(get("1M6+2M4+2M2") > 0.0);
        // 2M4+2M2 is the smallest machine evaluated.
        let min = table.iter().skip(1).map(|(_, a, _)| *a).fold(f64::MAX, f64::min);
        let (_, area_2m4, _) = table.iter().find(|(n, _, _)| n == "2M4+2M2").unwrap();
        assert!((area_2m4 - min).abs() < 1e-9);
    }

    #[test]
    fn totals_are_positive_and_ordered() {
        let table = paper_area_table();
        for (name, total, _) in &table {
            assert!(*total > 50.0 && *total < 250.0, "{name}: {total}");
        }
        let get = |n: &str| table.iter().find(|(name, _, _)| name == n).unwrap().1;
        assert!(get("4M4") > get("3M4"));
        assert!(get("3M4+2M2") > get("2M4+2M2"));
        assert!(get("1M6+2M4+2M2") > get("3M4+2M2"));
    }
}
