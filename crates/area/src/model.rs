//! Per-pipeline area model: the stage decomposition of Fig 2(b).

use hdsmt_pipeline::PipeModel;

/// Functional-unit areas in mm² at 0.18 µm.
pub const INT_UNIT_MM2: f64 = 2.0;
pub const FP_UNIT_MM2: f64 = 4.5;
pub const LDST_UNIT_MM2: f64 = 3.2;

/// Queue area coefficient: each of the decode/dispatch/completion queues
/// costs `KQ · entries²` (wakeup/select CAM logic).
pub const KQ: f64 = 0.001_067_7;
/// SMT replication term: `KC · (contexts − 1)²`.
pub const KC: f64 = 1.87;
/// Fixed per-pipeline control logic.
pub const C0: f64 = 3.11;
/// Multiplicative per-context layout overhead (Burns & Gaudiot):
/// `1 + CTX_OVERHEAD · (contexts − 1)`.
pub const CTX_OVERHEAD: f64 = 0.45;
/// Monolithic fetch-engine area.
pub const FETCH_MM2: f64 = 2.26;
/// §3: multipipeline fetch engines are "a 20% bigger".
pub const FETCH_MULTIPIPE_OVERHEAD: f64 = 0.20;
/// §3: execution-core overhead for shared cache/regfile access in a
/// multipipeline environment is "estimated … in a 10%".
pub const EX_MULTIPIPE_OVERHEAD: f64 = 0.10;

/// Split of the control-logic constant `C0` across the decode, dispatch
/// and completion stages (Fig 2(b) stack shape).
const C0_SPLIT: (f64, f64, f64) = (0.35, 0.40, 0.25);

/// Per-stage areas of one pipeline (the Fig 2(b) stack), mm².
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize)]
pub struct StageAreas {
    /// Instruction decode (DE).
    pub decode: f64,
    /// Instruction dispatch / rename (DI).
    pub dispatch: f64,
    /// Execution core (EX), including multipipeline data-access overhead.
    pub execute: f64,
    /// Instruction completion (IC).
    pub completion: f64,
    /// Decode queue (DEQ).
    pub decode_q: f64,
    /// Dispatch queue (DIQ).
    pub dispatch_q: f64,
    /// Completion queue (CQ).
    pub completion_q: f64,
}

impl StageAreas {
    pub fn total(&self) -> f64 {
        self.decode
            + self.dispatch
            + self.execute
            + self.completion
            + self.decode_q
            + self.dispatch_q
            + self.completion_q
    }
}

/// Area of one pipeline body (everything but the shared fetch engine).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct PipelineArea {
    pub model: &'static str,
    pub stages: StageAreas,
}

impl PipelineArea {
    pub fn total(&self) -> f64 {
        self.stages.total()
    }
}

/// Fetch-engine area (one per chip).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct FetchArea {
    pub mm2: f64,
    pub multipipe: bool,
}

/// Fetch-engine area for a monolithic or multipipeline chip.
pub fn fetch_area(multipipe: bool) -> FetchArea {
    let mm2 = if multipipe { FETCH_MM2 * (1.0 + FETCH_MULTIPIPE_OVERHEAD) } else { FETCH_MM2 };
    FetchArea { mm2, multipipe }
}

/// Stage-decomposed area of one pipeline of model `m`.
///
/// `multipipe` selects the §3 execution-core overhead (+10 %) charged when
/// the pipeline shares caches/register file with siblings — which is also
/// how Fig 2(b) reports M6/M4/M2 ("Each of them represent in fact an hdSMT
/// processor with a single pipeline").
pub fn pipeline_area(m: &PipeModel, multipipe: bool) -> PipelineArea {
    let t = m.contexts as f64;
    let ctx_mult = 1.0 + CTX_OVERHEAD * (t - 1.0);

    let fu = m.int_units as f64 * INT_UNIT_MM2
        + m.fp_units as f64 * FP_UNIT_MM2
        + m.ldst_units as f64 * LDST_UNIT_MM2;
    let ex_overhead = if multipipe { 1.0 + EX_MULTIPIPE_OVERHEAD } else { 1.0 };

    let q = |entries: u16| KQ * (entries as f64) * (entries as f64);
    let smt_repl = KC * (t - 1.0) * (t - 1.0);

    let stages = StageAreas {
        decode: C0_SPLIT.0 * C0 * ctx_mult,
        dispatch: (C0_SPLIT.1 * C0 + smt_repl) * ctx_mult,
        execute: fu * ex_overhead * ctx_mult,
        completion: C0_SPLIT.2 * C0 * ctx_mult,
        decode_q: q(m.iq) * ctx_mult,
        dispatch_q: q(m.fq) * ctx_mult,
        completion_q: q(m.lq) * ctx_mult,
    };
    PipelineArea { model: m.name, stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsmt_pipeline::{M2, M4, M6, M8};

    #[test]
    fn fig2b_pipeline_bodies() {
        // Calibration anchors (see crate docs): bodies in mm².
        let m8 = pipeline_area(&M8, false).total();
        let m6 = pipeline_area(&M6, true).total();
        let m4 = pipeline_area(&M4, true).total();
        let m2 = pipeline_area(&M2, true).total();
        assert!((m8 - 167.7).abs() < 1.0, "M8 body {m8:.1}");
        assert!((m6 - 49.3).abs() < 1.0, "M6 body {m6:.1}");
        assert!((m4 - 46.1).abs() < 1.0, "M4 body {m4:.1}");
        assert!((m2 - 14.6).abs() < 1.0, "M2 body {m2:.1}");
    }

    #[test]
    fn ordering_matches_resources() {
        let m8 = pipeline_area(&M8, true).total();
        let m6 = pipeline_area(&M6, true).total();
        let m4 = pipeline_area(&M4, true).total();
        let m2 = pipeline_area(&M2, true).total();
        assert!(m8 > m6 && m6 > m4 && m4 > m2);
        // The paper's own numbers make M6 only slightly above M4.
        assert!((m6 - m4) / m4 < 0.10, "M6 must sit just above M4");
    }

    #[test]
    fn multipipe_overheads_apply() {
        let mono = pipeline_area(&M4, false);
        let multi = pipeline_area(&M4, true);
        let ratio = multi.stages.execute / mono.stages.execute;
        assert!((ratio - 1.10).abs() < 1e-9, "§3: +10% execution core");
        assert_eq!(mono.stages.decode, multi.stages.decode);

        let f_mono = fetch_area(false).mm2;
        let f_multi = fetch_area(true).mm2;
        assert!((f_multi / f_mono - 1.20).abs() < 1e-9, "§3: +20% fetch engine");
    }

    #[test]
    fn stage_stack_sums_to_total() {
        for m in [M8, M6, M4, M2] {
            let a = pipeline_area(&m, true);
            let s = a.stages;
            let sum = s.decode
                + s.dispatch
                + s.execute
                + s.completion
                + s.decode_q
                + s.dispatch_q
                + s.completion_q;
            assert!((sum - a.total()).abs() < 1e-9);
            assert!(s.execute > s.decode, "execution core dominates decode");
        }
    }

    #[test]
    fn queue_area_is_quadratic() {
        // 64-entry queue = 4× a 32-entry queue.
        let a64 = KQ * 64.0 * 64.0;
        let a32 = KQ * 32.0 * 32.0;
        assert!((a64 / a32 - 4.0).abs() < 1e-9);
    }
}
