//! The paper's experiment engine: BEST / HEUR / WORST mapping envelopes
//! per (microarchitecture, workload) — the data behind Figs 4 and 5.
//!
//! For every multipipeline machine the oracle envelope is found exactly as
//! in the paper: evaluate *every* distinct thread-to-pipeline mapping and
//! keep the maximum (BEST) and minimum (WORST); HEUR is the §2.1 heuristic.
//! Mapping search runs at a reduced instruction budget, then the three
//! chosen mappings are re-simulated at full length (DESIGN.md §3).
//!
//! Since the campaign engine landed, both phases execute as
//! [`hdsmt_campaign::JobSpec`] batches on the shared work-stealing
//! [`JobRunner`] — optionally backed by the content-addressed result
//! cache (`cache_dir`), which makes interrupted or repeated figure
//! regeneration incremental.

use hdsmt_campaign::{best_worst, JobRunner, JobSpec, JobThread, ResultCache};
use hdsmt_core::{enumerate_mappings, heuristic_mapping, MissProfile, SimResult};
use hdsmt_pipeline::MicroArch;

use crate::runner::default_workers;
use crate::tables::{all_workloads, Workload, WorkloadClass};

/// Scale parameters for one experiment campaign.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ExperimentConfig {
    /// Per-thread retire target for the measured envelope runs (the paper
    /// uses 300 M; see EXPERIMENTS.md for the scaling argument).
    pub measure_insts: u64,
    /// Total committed instructions before statistics reset.
    pub warmup_insts: u64,
    /// Per-thread retire target for oracle mapping-search runs.
    pub search_insts: u64,
    /// Worker threads for the parallel sweep.
    pub workers: usize,
    /// Base seed for workload streams.
    pub seed: u64,
    /// Content-addressed result cache (None = always simulate).
    pub cache_dir: Option<String>,
}

impl ExperimentConfig {
    /// Full reproduction scale (the `reproduce` binary).
    pub fn paper() -> Self {
        ExperimentConfig {
            measure_insts: 120_000,
            warmup_insts: 60_000,
            search_insts: 25_000,
            workers: default_workers(),
            seed: 0x5eed,
            cache_dir: None,
        }
    }

    /// Reduced scale for tests and smoke benches.
    pub fn quick() -> Self {
        ExperimentConfig {
            measure_insts: 12_000,
            warmup_insts: 8_000,
            search_insts: 5_000,
            workers: default_workers(),
            seed: 0x5eed,
            cache_dir: None,
        }
    }

    fn runner(&self) -> JobRunner {
        let cache = self.cache_dir.as_ref().and_then(|dir| match ResultCache::open(dir) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!("warning: result cache at {dir} unavailable ({e}); running uncached");
                None
            }
        });
        JobRunner::new(self.workers, cache)
    }
}

/// BEST/HEUR/WORST outcome for one (microarchitecture, workload) cell.
#[derive(Clone, Debug, serde::Serialize)]
pub struct EnvelopeResult {
    pub arch: String,
    pub workload: String,
    pub class: WorkloadClass,
    pub threads: usize,
    pub best_ipc: f64,
    pub best_mapping: Vec<u8>,
    pub heur_ipc: f64,
    pub heur_mapping: Vec<u8>,
    pub worst_ipc: f64,
    pub worst_mapping: Vec<u8>,
    /// Size of the oracle search space (distinct mappings).
    pub n_mappings: usize,
}

impl EnvelopeResult {
    /// HEUR accuracy relative to the oracle (the paper's "92% average
    /// accuracy" metric).
    pub fn heur_accuracy(&self) -> f64 {
        if self.best_ipc == 0.0 {
            1.0
        } else {
            self.heur_ipc / self.best_ipc
        }
    }
}

/// Deterministic per-thread stream seed (shared with the campaign matrix
/// expander, so envelope runs and campaign runs hit the same cache keys).
fn thread_seed(base: u64, workload: &str, position: usize) -> u64 {
    hdsmt_campaign::matrix::thread_seed(base, workload, position)
}

fn job_threads(w: &Workload, seed: u64) -> Vec<JobThread> {
    w.benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| JobThread { bench: b.to_string(), seed: thread_seed(seed, w.id, i) })
        .collect()
}

fn search_job(arch: &MicroArch, w: &Workload, mapping: Vec<u8>, cfg: &ExperimentConfig) -> JobSpec {
    JobSpec {
        arch: arch.name.clone(),
        threads: job_threads(w, cfg.seed),
        mapping,
        max_insts: cfg.search_insts,
        warmup_insts: cfg.warmup_insts / 2,
        fetch_policy: None,
        regfile_lat: None,
    }
}

fn measure_job(
    arch: &MicroArch,
    w: &Workload,
    mapping: Vec<u8>,
    cfg: &ExperimentConfig,
) -> JobSpec {
    JobSpec {
        arch: arch.name.clone(),
        threads: job_threads(w, cfg.seed),
        mapping,
        max_insts: cfg.measure_insts,
        warmup_insts: cfg.warmup_insts,
        fetch_policy: None,
        regfile_lat: None,
    }
}

fn run_jobs(runner: &JobRunner, jobs: Vec<JobSpec>) -> Vec<SimResult> {
    // Jobs are valid by construction, but run_all can also fail on cache
    // I/O (e.g. full disk) — surface the real error, not a misleading one.
    runner.run_all(&jobs).unwrap_or_else(|e| panic!("envelope job batch failed: {e}"))
}

/// Compute the envelope for one (arch, workload) cell. Convenient for
/// examples and tests; the full campaign uses [`run_paper_experiments`],
/// which parallelises across cells *and* mappings.
pub fn envelope_for(
    arch: &MicroArch,
    w: &Workload,
    profile: &MissProfile,
    cfg: &ExperimentConfig,
) -> EnvelopeResult {
    let runner = cfg.runner();
    let mappings = enumerate_mappings(arch, w.threads());
    let heur = heuristic_mapping(arch, w.benchmarks, profile);

    let search_jobs: Vec<JobSpec> =
        mappings.iter().map(|m| search_job(arch, w, m.clone(), cfg)).collect();
    let scores: Vec<f64> = run_jobs(&runner, search_jobs).iter().map(SimResult::ipc).collect();
    let (bi, wi) = best_worst(&mappings, &scores);

    let jobs = [mappings[bi].clone(), heur.clone(), mappings[wi].clone()];
    let measure_jobs: Vec<JobSpec> =
        jobs.iter().map(|m| measure_job(arch, w, m.clone(), cfg)).collect();
    let measured: Vec<f64> = run_jobs(&runner, measure_jobs).iter().map(SimResult::ipc).collect();

    finish_envelope(arch, w, mappings.len(), jobs, measured)
}

fn finish_envelope(
    arch: &MicroArch,
    w: &Workload,
    n_mappings: usize,
    jobs: [Vec<u8>; 3],
    measured: Vec<f64>,
) -> EnvelopeResult {
    let [best_mapping, heur_mapping, worst_mapping] = jobs;
    // The measured (full-length) envelope must stay ordered even if the
    // short search mispicked: clamp so BEST ≥ HEUR ≥ WORST holds by
    // definition of an envelope.
    let best_ipc = measured[0].max(measured[1]);
    let worst_ipc = measured[2].min(measured[1]);
    EnvelopeResult {
        arch: arch.name.clone(),
        workload: w.id.to_string(),
        class: w.class,
        threads: w.threads(),
        best_ipc,
        best_mapping,
        heur_ipc: measured[1],
        heur_mapping,
        worst_ipc,
        worst_mapping,
        n_mappings,
    }
}

/// Metric selector for aggregation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    Best,
    Heur,
    Worst,
}

/// Results of the full campaign: every (arch, workload) envelope plus the
/// area table.
#[derive(Clone, Debug, serde::Serialize)]
pub struct PaperResults {
    pub envelopes: Vec<EnvelopeResult>,
    /// (arch name, total mm²).
    pub areas: Vec<(String, f64)>,
    pub config: ExperimentConfig,
}

impl PaperResults {
    pub fn area_of(&self, arch: &str) -> f64 {
        self.areas.iter().find(|(n, _)| n == arch).map(|(_, a)| *a).unwrap_or(f64::NAN)
    }

    pub fn cell(&self, arch: &str, workload: &str) -> Option<&EnvelopeResult> {
        self.envelopes.iter().find(|e| e.arch == arch && e.workload == workload)
    }

    fn pick(e: &EnvelopeResult, m: Metric) -> f64 {
        match m {
            Metric::Best => e.best_ipc,
            Metric::Heur => e.heur_ipc,
            Metric::Worst => e.worst_ipc,
        }
    }

    /// Harmonic mean of IPC over the workloads of `class` (all sizes if
    /// `threads` is `None`), for one arch and metric — one bar of Fig 4.
    pub fn hmean_ipc(
        &self,
        arch: &str,
        class: WorkloadClass,
        threads: Option<usize>,
        metric: Metric,
    ) -> f64 {
        let vals: Vec<f64> = self
            .envelopes
            .iter()
            .filter(|e| {
                e.arch == arch && e.class == class && threads.is_none_or(|t| e.threads == t)
            })
            .map(|e| Self::pick(e, metric))
            .collect();
        hdsmt_core::stats::harmonic_mean(&vals)
    }

    /// Same, in IPC per mm² — one bar of Fig 5.
    pub fn hmean_ipc_per_area(
        &self,
        arch: &str,
        class: WorkloadClass,
        threads: Option<usize>,
        metric: Metric,
    ) -> f64 {
        self.hmean_ipc(arch, class, threads, metric) / self.area_of(arch)
    }

    /// Harmonic-mean IPC over *all* workloads (the paper's global
    /// comparisons).
    pub fn hmean_ipc_all(&self, arch: &str, metric: Metric) -> f64 {
        let vals: Vec<f64> = self
            .envelopes
            .iter()
            .filter(|e| e.arch == arch)
            .map(|e| Self::pick(e, metric))
            .collect();
        hdsmt_core::stats::harmonic_mean(&vals)
    }
}

/// Run the full campaign: 6 microarchitectures × 22 workloads, mapping
/// search and envelope measurement globally parallelised (and cached,
/// when `cfg.cache_dir` is set).
pub fn run_paper_experiments(cfg: &ExperimentConfig) -> PaperResults {
    run_experiments_on(&MicroArch::paper_set(), all_workloads(), cfg)
}

/// Run a campaign over explicit architectures/workloads (ablations use
/// subsets).
pub fn run_experiments_on(
    archs: &[MicroArch],
    workloads: &[Workload],
    cfg: &ExperimentConfig,
) -> PaperResults {
    let profile = MissProfile::build();
    let runner = cfg.runner();

    // ---- phase 1: oracle mapping search, globally flattened ----
    let mut cell_mappings: Vec<Vec<Vec<Vec<u8>>>> = Vec::new(); // [arch][wl] -> mappings
    let mut search_jobs: Vec<JobSpec> = Vec::new();
    let mut job_cell: Vec<(usize, usize)> = Vec::new();
    for (ai, arch) in archs.iter().enumerate() {
        cell_mappings.push(Vec::new());
        for (wi, w) in workloads.iter().enumerate() {
            let mappings = enumerate_mappings(arch, w.threads());
            for m in &mappings {
                search_jobs.push(search_job(arch, w, m.clone(), cfg));
                job_cell.push((ai, wi));
            }
            cell_mappings[ai].push(mappings);
        }
    }
    let search_scores: Vec<f64> =
        run_jobs(&runner, search_jobs).iter().map(SimResult::ipc).collect();

    // ---- reduce: pick best/worst per cell ----
    let mut per_cell_scores: Vec<Vec<Vec<f64>>> = cell_mappings
        .iter()
        .map(|per_wl| per_wl.iter().map(|ms| Vec::with_capacity(ms.len())).collect())
        .collect();
    for (&(ai, wi), score) in job_cell.iter().zip(search_scores.iter()) {
        per_cell_scores[ai][wi].push(*score);
    }

    // ---- phase 2: measured envelope runs, globally flattened ----
    struct MeasureCell {
        arch_i: usize,
        wl_i: usize,
        mappings: [Vec<u8>; 3],
    }
    let mut cells = Vec::new();
    let mut measure_jobs = Vec::new();
    for (ai, arch) in archs.iter().enumerate() {
        for (wi, w) in workloads.iter().enumerate() {
            let mappings = &cell_mappings[ai][wi];
            let scores = &per_cell_scores[ai][wi];
            let (bi, worsti) = best_worst(mappings, scores);
            let heur = heuristic_mapping(arch, w.benchmarks, &profile);
            let chosen = [mappings[bi].clone(), heur, mappings[worsti].clone()];
            for m in &chosen {
                measure_jobs.push(measure_job(arch, w, m.clone(), cfg));
            }
            cells.push(MeasureCell { arch_i: ai, wl_i: wi, mappings: chosen });
        }
    }
    let measured: Vec<f64> = run_jobs(&runner, measure_jobs).iter().map(SimResult::ipc).collect();

    let mut envelopes = Vec::with_capacity(cells.len());
    for (ci, cell) in cells.into_iter().enumerate() {
        let arch = &archs[cell.arch_i];
        let w = &workloads[cell.wl_i];
        envelopes.push(finish_envelope(
            arch,
            w,
            cell_mappings[cell.arch_i][cell.wl_i].len(),
            cell.mappings,
            measured[ci * 3..ci * 3 + 3].to_vec(),
        ));
    }

    let areas =
        archs.iter().map(|a| (a.name.clone(), hdsmt_area::microarch_area(a).total())).collect();
    PaperResults { envelopes, areas, config: cfg.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::WORKLOADS;

    #[test]
    fn envelope_ordering_holds() {
        let profile = MissProfile::build_with_len(50_000);
        let cfg = ExperimentConfig::quick();
        let arch = MicroArch::parse("2M4+2M2").unwrap();
        let w = &WORKLOADS[6]; // 2W7 gzip+twolf (MIX)
        let e = envelope_for(&arch, w, &profile, &cfg);
        assert!(e.best_ipc >= e.heur_ipc, "{e:?}");
        assert!(e.heur_ipc >= e.worst_ipc, "{e:?}");
        assert!(e.n_mappings > 1);
        assert!(e.heur_accuracy() <= 1.0 + 1e-12);
    }

    #[test]
    fn monolithic_envelope_is_degenerate() {
        let profile = MissProfile::build_with_len(50_000);
        let cfg = ExperimentConfig::quick();
        let arch = MicroArch::baseline();
        let e = envelope_for(&arch, &WORKLOADS[0], &profile, &cfg);
        assert_eq!(e.n_mappings, 1);
        assert_eq!(e.best_ipc, e.heur_ipc);
        assert_eq!(e.heur_ipc, e.worst_ipc);
    }

    #[test]
    fn thread_seeds_are_stable_and_distinct() {
        assert_eq!(thread_seed(1, "2W1", 0), thread_seed(1, "2W1", 0));
        assert_ne!(thread_seed(1, "2W1", 0), thread_seed(1, "2W1", 1));
        assert_ne!(thread_seed(1, "2W1", 0), thread_seed(1, "2W2", 0));
    }

    #[test]
    fn cached_envelope_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("hdsmt-envelope-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let profile = MissProfile::build_with_len(50_000);
        let mut cfg = ExperimentConfig::quick();
        cfg.measure_insts = 3_000;
        cfg.search_insts = 1_500;
        cfg.warmup_insts = 1_000;
        cfg.cache_dir = Some(dir.to_string_lossy().into_owned());
        let arch = MicroArch::parse("2M4+2M2").unwrap();
        let cold = envelope_for(&arch, &WORKLOADS[6], &profile, &cfg);
        let warm = envelope_for(&arch, &WORKLOADS[6], &profile, &cfg);
        assert_eq!(cold.best_ipc.to_bits(), warm.best_ipc.to_bits());
        assert_eq!(cold.heur_ipc.to_bits(), warm.heur_ipc.to_bits());
        assert_eq!(cold.worst_ipc.to_bits(), warm.worst_ipc.to_bits());
        assert_eq!(cold.best_mapping, warm.best_mapping);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
