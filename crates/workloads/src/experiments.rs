//! The paper's experiment engine: BEST / HEUR / WORST mapping envelopes
//! per (microarchitecture, workload) — the data behind Figs 4 and 5.
//!
//! For every multipipeline machine the oracle envelope is found exactly as
//! in the paper: evaluate *every* distinct thread-to-pipeline mapping and
//! keep the maximum (BEST) and minimum (WORST); HEUR is the §2.1 heuristic.
//! Mapping search runs at a reduced instruction budget, then the three
//! chosen mappings are re-simulated at full length (DESIGN.md §3).

use hdsmt_core::{
    enumerate_mappings, heuristic_mapping, run_sim, MissProfile, SimConfig, ThreadSpec,
};
use hdsmt_pipeline::MicroArch;

use crate::runner::{default_workers, parallel_map};
use crate::tables::{all_workloads, Workload, WorkloadClass};

/// Scale parameters for one experiment campaign.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ExperimentConfig {
    /// Per-thread retire target for the measured envelope runs (the paper
    /// uses 300 M; see EXPERIMENTS.md for the scaling argument).
    pub measure_insts: u64,
    /// Total committed instructions before statistics reset.
    pub warmup_insts: u64,
    /// Per-thread retire target for oracle mapping-search runs.
    pub search_insts: u64,
    /// Worker threads for the parallel sweep.
    pub workers: usize,
    /// Base seed for workload streams.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Full reproduction scale (the `reproduce` binary).
    pub fn paper() -> Self {
        ExperimentConfig {
            measure_insts: 120_000,
            warmup_insts: 60_000,
            search_insts: 25_000,
            workers: default_workers(),
            seed: 0x5eed,
        }
    }

    /// Reduced scale for tests and smoke benches.
    pub fn quick() -> Self {
        ExperimentConfig {
            measure_insts: 12_000,
            warmup_insts: 8_000,
            search_insts: 5_000,
            workers: default_workers(),
            seed: 0x5eed,
        }
    }
}

/// BEST/HEUR/WORST outcome for one (microarchitecture, workload) cell.
#[derive(Clone, Debug, serde::Serialize)]
pub struct EnvelopeResult {
    pub arch: String,
    pub workload: String,
    pub class: WorkloadClass,
    pub threads: usize,
    pub best_ipc: f64,
    pub best_mapping: Vec<u8>,
    pub heur_ipc: f64,
    pub heur_mapping: Vec<u8>,
    pub worst_ipc: f64,
    pub worst_mapping: Vec<u8>,
    /// Size of the oracle search space (distinct mappings).
    pub n_mappings: usize,
}

impl EnvelopeResult {
    /// HEUR accuracy relative to the oracle (the paper's "92% average
    /// accuracy" metric).
    pub fn heur_accuracy(&self) -> f64 {
        if self.best_ipc == 0.0 {
            1.0
        } else {
            self.heur_ipc / self.best_ipc
        }
    }
}

/// Deterministic per-thread stream seed.
fn thread_seed(base: u64, workload: &str, position: usize) -> u64 {
    let mut h = base ^ 0x9e37_79b9_7f4a_7c15;
    for b in workload.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h ^ (position as u64) << 32
}

fn specs_for(w: &Workload, seed: u64) -> Vec<ThreadSpec> {
    w.benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| ThreadSpec::for_benchmark(b, thread_seed(seed, w.id, i)))
        .collect()
}

fn sim_config(arch: &MicroArch, insts: u64, warmup: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_defaults(arch.clone(), insts);
    cfg.warmup_insts = warmup;
    cfg
}

/// Compute the envelope for one (arch, workload) cell. Convenient for
/// examples and tests; the full campaign uses [`run_paper_experiments`],
/// which parallelises across cells *and* mappings.
pub fn envelope_for(
    arch: &MicroArch,
    w: &Workload,
    profile: &MissProfile,
    cfg: &ExperimentConfig,
) -> EnvelopeResult {
    let specs = specs_for(w, cfg.seed);
    let mappings = enumerate_mappings(arch, w.threads());
    let heur = heuristic_mapping(arch, w.benchmarks, profile);

    let search_cfg = sim_config(arch, cfg.search_insts, cfg.warmup_insts / 2);
    let scores: Vec<f64> =
        parallel_map(&mappings, cfg.workers, |m| run_sim(&search_cfg, &specs, m).ipc());
    let (bi, wi) = best_worst(&mappings, &scores);

    let full_cfg = sim_config(arch, cfg.measure_insts, cfg.warmup_insts);
    let jobs = [mappings[bi].clone(), heur.clone(), mappings[wi].clone()];
    let measured: Vec<f64> =
        parallel_map(&jobs, cfg.workers, |m| run_sim(&full_cfg, &specs, m).ipc());

    finish_envelope(arch, w, mappings.len(), jobs, measured)
}

/// Index of the best and worst mapping by score (ties broken by mapping
/// bytes for determinism).
fn best_worst(mappings: &[Vec<u8>], scores: &[f64]) -> (usize, usize) {
    let mut bi = 0;
    let mut wi = 0;
    for i in 1..scores.len() {
        let better = scores[i] > scores[bi]
            || (scores[i] == scores[bi] && mappings[i] < mappings[bi]);
        if better {
            bi = i;
        }
        let worse = scores[i] < scores[wi]
            || (scores[i] == scores[wi] && mappings[i] < mappings[wi]);
        if worse {
            wi = i;
        }
    }
    (bi, wi)
}

fn finish_envelope(
    arch: &MicroArch,
    w: &Workload,
    n_mappings: usize,
    jobs: [Vec<u8>; 3],
    measured: Vec<f64>,
) -> EnvelopeResult {
    let [best_mapping, heur_mapping, worst_mapping] = jobs;
    // The measured (full-length) envelope must stay ordered even if the
    // short search mispicked: clamp so BEST ≥ HEUR ≥ WORST holds by
    // definition of an envelope.
    let best_ipc = measured[0].max(measured[1]);
    let worst_ipc = measured[2].min(measured[1]);
    EnvelopeResult {
        arch: arch.name.clone(),
        workload: w.id.to_string(),
        class: w.class,
        threads: w.threads(),
        best_ipc,
        best_mapping,
        heur_ipc: measured[1],
        heur_mapping,
        worst_ipc,
        worst_mapping,
        n_mappings,
    }
}

/// Metric selector for aggregation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    Best,
    Heur,
    Worst,
}

/// Results of the full campaign: every (arch, workload) envelope plus the
/// area table.
#[derive(Clone, Debug, serde::Serialize)]
pub struct PaperResults {
    pub envelopes: Vec<EnvelopeResult>,
    /// (arch name, total mm²).
    pub areas: Vec<(String, f64)>,
    pub config: ExperimentConfig,
}

impl PaperResults {
    pub fn area_of(&self, arch: &str) -> f64 {
        self.areas.iter().find(|(n, _)| n == arch).map(|(_, a)| *a).unwrap_or(f64::NAN)
    }

    pub fn cell(&self, arch: &str, workload: &str) -> Option<&EnvelopeResult> {
        self.envelopes.iter().find(|e| e.arch == arch && e.workload == workload)
    }

    fn pick(e: &EnvelopeResult, m: Metric) -> f64 {
        match m {
            Metric::Best => e.best_ipc,
            Metric::Heur => e.heur_ipc,
            Metric::Worst => e.worst_ipc,
        }
    }

    /// Harmonic mean of IPC over the workloads of `class` (all sizes if
    /// `threads` is `None`), for one arch and metric — one bar of Fig 4.
    pub fn hmean_ipc(
        &self,
        arch: &str,
        class: WorkloadClass,
        threads: Option<usize>,
        metric: Metric,
    ) -> f64 {
        let vals: Vec<f64> = self
            .envelopes
            .iter()
            .filter(|e| {
                e.arch == arch && e.class == class && threads.map_or(true, |t| e.threads == t)
            })
            .map(|e| Self::pick(e, metric))
            .collect();
        hdsmt_core::stats::harmonic_mean(&vals)
    }

    /// Same, in IPC per mm² — one bar of Fig 5.
    pub fn hmean_ipc_per_area(
        &self,
        arch: &str,
        class: WorkloadClass,
        threads: Option<usize>,
        metric: Metric,
    ) -> f64 {
        self.hmean_ipc(arch, class, threads, metric) / self.area_of(arch)
    }

    /// Harmonic-mean IPC over *all* workloads (the paper's global
    /// comparisons).
    pub fn hmean_ipc_all(&self, arch: &str, metric: Metric) -> f64 {
        let vals: Vec<f64> = self
            .envelopes
            .iter()
            .filter(|e| e.arch == arch)
            .map(|e| Self::pick(e, metric))
            .collect();
        hdsmt_core::stats::harmonic_mean(&vals)
    }
}

/// Run the full campaign: 6 microarchitectures × 22 workloads, mapping
/// search and envelope measurement globally parallelised.
pub fn run_paper_experiments(cfg: &ExperimentConfig) -> PaperResults {
    run_experiments_on(&MicroArch::paper_set(), all_workloads(), cfg)
}

/// Run a campaign over explicit architectures/workloads (ablations use
/// subsets).
pub fn run_experiments_on(
    archs: &[MicroArch],
    workloads: &[Workload],
    cfg: &ExperimentConfig,
) -> PaperResults {
    let profile = MissProfile::build();

    // ---- phase 1: oracle mapping search, globally flattened ----
    struct SearchJob {
        arch_i: usize,
        wl_i: usize,
        mapping: Vec<u8>,
    }
    type Mapping = Vec<u8>;
    let mut jobs = Vec::new();
    let mut cell_mappings: Vec<Vec<Vec<Mapping>>> = Vec::new(); // [arch][wl] -> mappings
    for (ai, arch) in archs.iter().enumerate() {
        cell_mappings.push(Vec::new());
        for (wi, w) in workloads.iter().enumerate() {
            let mappings = enumerate_mappings(arch, w.threads());
            for m in &mappings {
                jobs.push(SearchJob { arch_i: ai, wl_i: wi, mapping: m.clone() });
            }
            cell_mappings[ai].push(mappings);
        }
    }
    let search_scores: Vec<f64> = parallel_map(&jobs, cfg.workers, |j| {
        let arch = &archs[j.arch_i];
        let w = &workloads[j.wl_i];
        let specs = specs_for(w, cfg.seed);
        let scfg = sim_config(arch, cfg.search_insts, cfg.warmup_insts / 2);
        run_sim(&scfg, &specs, &j.mapping).ipc()
    });

    // ---- reduce: pick best/worst per cell ----
    let mut per_cell_scores: Vec<Vec<Vec<f64>>> = archs
        .iter()
        .enumerate()
        .map(|(ai, _)| cell_mappings[ai].iter().map(|ms| vec![0.0; ms.len()]).collect())
        .collect();
    {
        let mut counters: Vec<Vec<usize>> =
            cell_mappings.iter().map(|per_wl| vec![0; per_wl.len()]).collect();
        for (j, score) in jobs.iter().zip(search_scores.iter()) {
            let k = counters[j.arch_i][j.wl_i];
            per_cell_scores[j.arch_i][j.wl_i][k] = *score;
            counters[j.arch_i][j.wl_i] += 1;
        }
    }

    // ---- phase 2: measured envelope runs, globally flattened ----
    struct MeasureJob {
        arch_i: usize,
        wl_i: usize,
        mappings: [Vec<u8>; 3],
    }
    let mut mjobs = Vec::new();
    for (ai, arch) in archs.iter().enumerate() {
        for (wi, w) in workloads.iter().enumerate() {
            let mappings = &cell_mappings[ai][wi];
            let scores = &per_cell_scores[ai][wi];
            let (bi, worsti) = best_worst(mappings, scores);
            let heur = heuristic_mapping(arch, w.benchmarks, &profile);
            mjobs.push(MeasureJob {
                arch_i: ai,
                wl_i: wi,
                mappings: [mappings[bi].clone(), heur, mappings[worsti].clone()],
            });
        }
    }
    let measured: Vec<[f64; 3]> = parallel_map(&mjobs, cfg.workers, |j| {
        let arch = &archs[j.arch_i];
        let w = &workloads[j.wl_i];
        let specs = specs_for(w, cfg.seed);
        let fcfg = sim_config(arch, cfg.measure_insts, cfg.warmup_insts);
        let mut out = [0.0; 3];
        for (o, m) in out.iter_mut().zip(j.mappings.iter()) {
            *o = run_sim(&fcfg, &specs, m).ipc();
        }
        out
    });

    let mut envelopes = Vec::with_capacity(mjobs.len());
    for (j, m) in mjobs.into_iter().zip(measured.into_iter()) {
        let arch = &archs[j.arch_i];
        let w = &workloads[j.wl_i];
        envelopes.push(finish_envelope(
            arch,
            w,
            cell_mappings[j.arch_i][j.wl_i].len(),
            j.mappings,
            m.to_vec(),
        ));
    }

    let areas = archs
        .iter()
        .map(|a| (a.name.clone(), hdsmt_area::microarch_area(a).total()))
        .collect();
    PaperResults { envelopes, areas, config: cfg.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::WORKLOADS;

    #[test]
    fn envelope_ordering_holds() {
        let profile = MissProfile::build_with_len(50_000);
        let cfg = ExperimentConfig::quick();
        let arch = MicroArch::parse("2M4+2M2").unwrap();
        let w = &WORKLOADS[6]; // 2W7 gzip+twolf (MIX)
        let e = envelope_for(&arch, w, &profile, &cfg);
        assert!(e.best_ipc >= e.heur_ipc, "{e:?}");
        assert!(e.heur_ipc >= e.worst_ipc, "{e:?}");
        assert!(e.n_mappings > 1);
        assert!(e.heur_accuracy() <= 1.0 + 1e-12);
    }

    #[test]
    fn monolithic_envelope_is_degenerate() {
        let profile = MissProfile::build_with_len(50_000);
        let cfg = ExperimentConfig::quick();
        let arch = MicroArch::baseline();
        let e = envelope_for(&arch, &WORKLOADS[0], &profile, &cfg);
        assert_eq!(e.n_mappings, 1);
        assert_eq!(e.best_ipc, e.heur_ipc);
        assert_eq!(e.heur_ipc, e.worst_ipc);
    }

    #[test]
    fn thread_seeds_are_stable_and_distinct() {
        assert_eq!(thread_seed(1, "2W1", 0), thread_seed(1, "2W1", 0));
        assert_ne!(thread_seed(1, "2W1", 0), thread_seed(1, "2W1", 1));
        assert_ne!(thread_seed(1, "2W1", 0), thread_seed(1, "2W2", 0));
    }
}
