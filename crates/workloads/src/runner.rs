//! Deterministic parallel execution of independent simulations.
//!
//! Each simulation is single-threaded and deterministic, so the natural
//! parallelism is *across* runs (mapping search, workload sweeps). Jobs are
//! claimed from an atomic counter by a crossbeam scoped pool; results land
//! at their input index, so output order is independent of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Apply `f` to every item on up to `workers` threads, preserving order.
pub fn parallel_map<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers.max(1).min(items.len());
    if workers == 1 {
        return items.iter().map(|i| f(i)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<O>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                results.lock()[i] = Some(out);
            });
        }
    })
    .expect("worker panicked");
    results.into_inner().into_iter().map(|o| o.expect("job completed")).collect()
}

/// Default worker count: leave a couple of cores for the OS.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get().saturating_sub(2).max(1)).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(*o, (i * i) as u64);
        }
    }

    #[test]
    fn single_worker_and_empty() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
        let out = parallel_map(&[1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = parallel_map(&[5u32], 16, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }
}
