//! Deterministic parallel execution of independent simulations.
//!
//! Each simulation is single-threaded and deterministic, so the natural
//! parallelism is *across* runs (mapping search, workload sweeps). Since
//! the campaign engine landed, this module is a thin façade over its
//! work-stealing sharded scheduler (`hdsmt_campaign::sched`) — kept so
//! existing callers and examples have a stable, workload-local name.

pub use hdsmt_campaign::sched::{default_workers, parallel_map, parallel_map_indexed};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(*o, (i * i) as u64);
        }
    }

    #[test]
    fn single_worker_and_empty() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
        let out = parallel_map(&[1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = parallel_map(&[5u32], 16, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }
}
