//! The multiprogrammed workloads of Tables 2 and 3.

/// Workload classification: Tables 2–3 use I = high instruction-level
/// parallelism, M = bad memory behaviour, X = a mix of both. The
/// program-backed extension adds RV (all-real RV64I threads) and XRV
/// (real + synthetic mixes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum WorkloadClass {
    Ilp,
    Mem,
    Mix,
    Rv,
    RvMix,
}

impl WorkloadClass {
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::Ilp => "ILP",
            WorkloadClass::Mem => "MEM",
            WorkloadClass::Mix => "MIX",
            WorkloadClass::Rv => "RV",
            WorkloadClass::RvMix => "XRV",
        }
    }
}

/// One multiprogrammed workload.
#[derive(Clone, Debug, serde::Serialize)]
pub struct Workload {
    pub id: &'static str,
    pub benchmarks: &'static [&'static str],
    pub class: WorkloadClass,
}

impl Workload {
    pub fn threads(&self) -> usize {
        self.benchmarks.len()
    }
}

use WorkloadClass::{Ilp, Mem, Mix};

/// Tables 2 and 3, verbatim.
pub const WORKLOADS: [Workload; 22] = [
    // ---- two-threaded (Table 2, left) ----
    Workload { id: "2W1", benchmarks: &["eon", "gcc"], class: Ilp },
    Workload { id: "2W2", benchmarks: &["crafty", "bzip2"], class: Ilp },
    Workload { id: "2W3", benchmarks: &["gap", "vortex"], class: Ilp },
    Workload { id: "2W4", benchmarks: &["mcf", "twolf"], class: Mem },
    Workload { id: "2W5", benchmarks: &["vpr", "perlbmk"], class: Mem },
    Workload { id: "2W6", benchmarks: &["vpr", "twolf"], class: Mem },
    Workload { id: "2W7", benchmarks: &["gzip", "twolf"], class: Mix },
    Workload { id: "2W8", benchmarks: &["crafty", "perlbmk"], class: Mix },
    Workload { id: "2W9", benchmarks: &["parser", "vpr"], class: Mix },
    // ---- four-threaded (Table 2, right) ----
    Workload { id: "4W1", benchmarks: &["eon", "gcc", "gzip", "bzip2"], class: Ilp },
    Workload { id: "4W2", benchmarks: &["crafty", "bzip2", "eon", "gzip"], class: Ilp },
    Workload { id: "4W3", benchmarks: &["gap", "vortex", "parser", "crafty"], class: Ilp },
    Workload { id: "4W4", benchmarks: &["mcf", "twolf", "vpr", "perlbmk"], class: Mem },
    Workload { id: "4W5", benchmarks: &["vpr", "perlbmk", "mcf", "twolf"], class: Mem },
    Workload { id: "4W6", benchmarks: &["gzip", "twolf", "bzip2", "mcf"], class: Mix },
    Workload { id: "4W7", benchmarks: &["crafty", "perlbmk", "mcf", "bzip2"], class: Mix },
    Workload { id: "4W8", benchmarks: &["parser", "vpr", "vortex", "twolf"], class: Mix },
    Workload { id: "4W9", benchmarks: &["vpr", "twolf", "gap", "vortex"], class: Mix },
    // ---- six-threaded (Table 3) ----
    Workload {
        id: "6W1",
        benchmarks: &["gzip", "gcc", "crafty", "eon", "gap", "bzip2"],
        class: Ilp,
    },
    Workload {
        id: "6W2",
        benchmarks: &["gcc", "crafty", "parser", "eon", "gap", "vortex"],
        class: Ilp,
    },
    Workload {
        id: "6W3",
        benchmarks: &["gzip", "vpr", "mcf", "eon", "perlbmk", "bzip2"],
        class: Mix,
    },
    Workload {
        id: "6W4",
        benchmarks: &["vpr", "mcf", "crafty", "perlbmk", "vortex", "twolf"],
        class: Mix,
    },
];

use WorkloadClass::{Rv, RvMix};

/// Program-backed workloads: real RV64I instruction streams, pure and
/// mixed with the synthetic models. Mirrors the campaign catalog's
/// opt-in RV extension.
pub const RV_WORKLOADS: [Workload; 4] = [
    Workload { id: "RV2", benchmarks: &["rv:matmul", "rv:sort"], class: Rv },
    Workload { id: "RV4", benchmarks: &["rv:matmul", "rv:sort", "rv:prime", "rv:fib"], class: Rv },
    Workload { id: "XRV2", benchmarks: &["gzip", "rv:matmul"], class: RvMix },
    Workload { id: "XRV4", benchmarks: &["mcf", "rv:sort", "gzip", "rv:prime"], class: RvMix },
];

/// Every workload of Tables 2–3.
pub fn all_workloads() -> &'static [Workload] {
    &WORKLOADS
}

/// The program-backed (RV64I) workload extension.
pub fn rv_workloads() -> &'static [Workload] {
    &RV_WORKLOADS
}

/// Workloads of a given class and thread count.
pub fn workloads_by(class: WorkloadClass, threads: usize) -> Vec<&'static Workload> {
    WORKLOADS.iter().filter(|w| w.class == class && w.threads() == threads).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_matches_paper() {
        assert_eq!(WORKLOADS.len(), 22);
        assert_eq!(WORKLOADS.iter().filter(|w| w.threads() == 2).count(), 9);
        assert_eq!(WORKLOADS.iter().filter(|w| w.threads() == 4).count(), 9);
        assert_eq!(WORKLOADS.iter().filter(|w| w.threads() == 6).count(), 4);
        // "MEM workloads are only feasible for 2 and 4 threads" (§4).
        assert!(workloads_by(WorkloadClass::Mem, 6).is_empty());
        assert_eq!(workloads_by(WorkloadClass::Mem, 2).len(), 3);
        assert_eq!(workloads_by(WorkloadClass::Ilp, 6).len(), 2);
        assert_eq!(workloads_by(WorkloadClass::Mix, 6).len(), 2);
    }

    #[test]
    fn all_benchmarks_exist() {
        for w in all_workloads() {
            for b in w.benchmarks {
                assert!(hdsmt_trace::by_name(b).is_some(), "{}: unknown benchmark {b}", w.id);
            }
            // No duplicate benchmark within a workload (each thread runs a
            // distinct program).
            let mut names: Vec<_> = w.benchmarks.to_vec();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), w.benchmarks.len(), "{}", w.id);
        }
    }

    #[test]
    fn matches_campaign_catalog() {
        // The campaign engine ships the same Tables 2-3 as its built-in
        // catalog (plain static data, since it sits below this crate in
        // the dependency graph). The two must never drift.
        let catalog = hdsmt_campaign::Catalog::paper();
        assert_eq!(catalog.entries().len(), WORKLOADS.len());
        for w in all_workloads() {
            let e = catalog.get(w.id).unwrap_or_else(|| panic!("{} missing", w.id));
            assert_eq!(e.benchmarks, w.benchmarks, "{}", w.id);
            assert_eq!(e.class.as_deref(), Some(w.class.label()), "{}", w.id);
        }
    }

    #[test]
    fn rv_workloads_match_campaign_catalog_and_resolve() {
        // Same drift guard as the paper tables: the typed RV table and
        // the campaign catalog extension must agree entry for entry.
        let catalog = hdsmt_campaign::Catalog::paper_with_rv();
        for w in rv_workloads() {
            let e = catalog.get(w.id).unwrap_or_else(|| panic!("{} missing", w.id));
            assert_eq!(e.benchmarks, w.benchmarks, "{}", w.id);
            assert_eq!(e.class.as_deref(), Some(w.class.label()), "{}", w.id);
            for b in w.benchmarks {
                assert!(hdsmt_core::ThreadSpec::exists(b), "{}: unknown benchmark {b}", w.id);
            }
            // Mixed workloads really mix: at least one thread per front-end.
            if w.class == WorkloadClass::RvMix {
                assert!(w.benchmarks.iter().any(|b| b.starts_with("rv:")));
                assert!(w.benchmarks.iter().any(|b| !b.starts_with("rv:")));
            }
        }
    }

    #[test]
    fn mem_workloads_use_mem_benchmarks() {
        for w in all_workloads().iter().filter(|w| w.class == WorkloadClass::Mem) {
            for b in w.benchmarks {
                assert_eq!(
                    hdsmt_trace::by_name(b).unwrap().class,
                    hdsmt_trace::BenchClass::Mem,
                    "{}: {b}",
                    w.id
                );
            }
        }
    }
}
