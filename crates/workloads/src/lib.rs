//! # hdsmt-workloads — workload tables and the experiment engine
//!
//! This crate owns everything between the raw simulator and the paper's
//! figures:
//!
//! * [`tables`] — the multiprogrammed workloads of Tables 2–3 (2W1–2W9,
//!   4W1–4W9, 6W1–6W4, classed ILP / MEM / MIX);
//! * [`runner`] — a deterministic parallel job runner (independent
//!   simulations fan out over a scoped thread pool; results are
//!   order-stable regardless of scheduling);
//! * [`experiments`] — the BEST / HEUR / WORST mapping envelope per
//!   (microarchitecture, workload): the data behind Fig 4 (IPC) and
//!   Fig 5 (IPC/area);
//! * [`summary`] — the §5 headline numbers (performance-per-area
//!   improvements, heuristic accuracy, raw-performance comparisons).

#![forbid(unsafe_code)]

pub mod experiments;
pub mod runner;
pub mod summary;
pub mod tables;

pub use experiments::{
    envelope_for, run_paper_experiments, EnvelopeResult, ExperimentConfig, PaperResults,
};
pub use runner::parallel_map;
pub use summary::{summarize, Summary};
pub use tables::{all_workloads, workloads_by, Workload, WorkloadClass};
