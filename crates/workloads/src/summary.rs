//! §5 headline numbers, computed from a [`PaperResults`] campaign.

use crate::experiments::{Metric, PaperResults};
use crate::tables::WorkloadClass;

/// The paper's summary comparisons.
#[derive(Clone, Debug, serde::Serialize)]
pub struct Summary {
    /// Best heterogeneous configuration by overall IPC/area (the paper's
    /// 2M4+2M2).
    pub best_het_per_area: String,
    /// Performance-per-area improvement of the best heterogeneous hdSMT
    /// over the monolithic baseline, % (paper: 13%).
    pub per_area_vs_mono_pct: f64,
    /// …and over the best homogeneous clustering, % (paper: 14%).
    pub per_area_vs_homo_pct: f64,
    /// Per-class IPC/area improvement of the best heterogeneous machine
    /// over M8, % (paper: ILP 15, MEM 18, MIX 10).
    pub per_area_by_class_pct: Vec<(String, f64)>,
    /// Raw-IPC advantage of the monolithic baseline over the best
    /// heterogeneous machine, % (paper: ~6%).
    pub mono_raw_vs_het_pct: f64,
    /// Raw-IPC advantage of the best heterogeneous machine over the best
    /// homogeneous clustering, % (paper: ~7%).
    pub het_raw_vs_homo_pct: f64,
    /// Mean heuristic accuracy per multipipeline architecture (paper: 92%
    /// on 2M4+2M2, 96% on 1M6+2M4+2M2, 88% on 3M4+2M2).
    pub heuristic_accuracy: Vec<(String, f64)>,
    /// Does some hdSMT beat M8 on raw IPC for 6-thread ILP (paper: yes,
    /// 1M6+2M4+2M2)?
    pub six_thread_ilp_upset: bool,
}

const HET: [&str; 3] = ["2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"];
const HOMO: [&str; 2] = ["3M4", "4M4"];

/// Compute the summary from a campaign. Uses the HEUR results — the
/// configuration a real system would run.
pub fn summarize(r: &PaperResults) -> Summary {
    let per_area_all = |arch: &str| r.hmean_ipc_all(arch, Metric::Heur) / r.area_of(arch);
    let raw_all = |arch: &str| r.hmean_ipc_all(arch, Metric::Heur);

    let best_het = HET
        .iter()
        .max_by(|a, b| per_area_all(a).partial_cmp(&per_area_all(b)).unwrap())
        .unwrap()
        .to_string();
    let best_homo_pa = HOMO.iter().map(|a| per_area_all(a)).fold(f64::MIN, f64::max);
    let best_homo_raw = HOMO.iter().map(|a| raw_all(a)).fold(f64::MIN, f64::max);
    let best_het_raw = HET.iter().map(|a| raw_all(a)).fold(f64::MIN, f64::max);

    let pct = |new: f64, old: f64| (new / old - 1.0) * 100.0;

    let per_area_by_class_pct = [WorkloadClass::Ilp, WorkloadClass::Mem, WorkloadClass::Mix]
        .iter()
        .map(|&c| {
            let het = r.hmean_ipc_per_area(&best_het, c, None, Metric::Heur);
            let mono = r.hmean_ipc_per_area("M8", c, None, Metric::Heur);
            (c.label().to_string(), pct(het, mono))
        })
        .collect();

    let heuristic_accuracy = HET
        .iter()
        .chain(HOMO.iter())
        .map(|arch| {
            let cells: Vec<f64> =
                r.envelopes.iter().filter(|e| e.arch == *arch).map(|e| e.heur_accuracy()).collect();
            (arch.to_string(), cells.iter().sum::<f64>() / cells.len().max(1) as f64)
        })
        .collect();

    let m8_6ilp = r.hmean_ipc("M8", WorkloadClass::Ilp, Some(6), Metric::Best);
    let six_thread_ilp_upset =
        HET.iter().any(|a| r.hmean_ipc(a, WorkloadClass::Ilp, Some(6), Metric::Best) > m8_6ilp);

    Summary {
        per_area_vs_mono_pct: pct(per_area_all(&best_het), per_area_all("M8")),
        per_area_vs_homo_pct: pct(per_area_all(&best_het), best_homo_pa),
        per_area_by_class_pct,
        mono_raw_vs_het_pct: pct(raw_all("M8"), best_het_raw),
        het_raw_vs_homo_pct: pct(best_het_raw, best_homo_raw),
        heuristic_accuracy,
        six_thread_ilp_upset,
        best_het_per_area: best_het,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{EnvelopeResult, ExperimentConfig, PaperResults};

    /// Build a synthetic campaign with known numbers to verify the
    /// summary arithmetic without running simulations.
    fn fake_results() -> PaperResults {
        let archs = ["M8", "3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"];
        // IPCs chosen so 2M4+2M2 wins per-area (its area is smallest).
        let ipc = |arch: &str| match arch {
            "M8" => 3.0,
            "3M4" => 2.5,
            "4M4" => 2.7,
            "2M4+2M2" => 2.6,
            "3M4+2M2" => 2.7,
            _ => 2.8,
        };
        let mut envelopes = Vec::new();
        for arch in archs {
            for (wl, class, threads) in [
                ("2W1", WorkloadClass::Ilp, 2),
                ("2W4", WorkloadClass::Mem, 2),
                ("2W7", WorkloadClass::Mix, 2),
                ("6W1", WorkloadClass::Ilp, 6),
            ] {
                let v = ipc(arch);
                envelopes.push(EnvelopeResult {
                    arch: arch.to_string(),
                    workload: wl.to_string(),
                    class,
                    threads,
                    best_ipc: v * 1.05,
                    best_mapping: vec![],
                    heur_ipc: v,
                    heur_mapping: vec![],
                    worst_ipc: v * 0.8,
                    worst_mapping: vec![],
                    n_mappings: 4,
                });
            }
        }
        let areas = archs
            .iter()
            .map(|a| {
                (
                    a.to_string(),
                    hdsmt_area::microarch_area(&hdsmt_pipeline::MicroArch::parse(a).unwrap())
                        .total(),
                )
            })
            .collect();
        PaperResults { envelopes, areas, config: ExperimentConfig::quick() }
    }

    #[test]
    fn summary_arithmetic() {
        let s = summarize(&fake_results());
        // 2M4+2M2: ipc 2.6 at ~0.73× area vs M8 3.0 → per-area win ~18%.
        assert_eq!(s.best_het_per_area, "2M4+2M2");
        assert!(s.per_area_vs_mono_pct > 10.0, "{}", s.per_area_vs_mono_pct);
        // M8 raw 3.0 vs best het 2.8 → ~7%.
        assert!((s.mono_raw_vs_het_pct - (3.0 / 2.8 - 1.0) * 100.0).abs() < 0.5);
        // Accuracy = heur/best = 1/1.05.
        for (_, acc) in &s.heuristic_accuracy {
            assert!((acc - 1.0 / 1.05).abs() < 1e-9);
        }
    }
}
