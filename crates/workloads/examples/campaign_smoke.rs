use hdsmt_workloads::experiments::Metric;
use hdsmt_workloads::WorkloadClass;
use hdsmt_workloads::{run_paper_experiments, summarize, ExperimentConfig};

fn main() {
    let t0 = std::time::Instant::now();
    let cfg = ExperimentConfig::quick();
    let r = run_paper_experiments(&cfg);
    println!("campaign took {:.1}s, {} envelopes", t0.elapsed().as_secs_f64(), r.envelopes.len());
    for arch in ["M8", "3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"] {
        let ipc = r.hmean_ipc_all(arch, Metric::Heur);
        let pa = ipc / r.area_of(arch);
        println!("{arch:14} hmean-IPC={ipc:.3} IPC/mm2={:.5} (area {:.0})", pa, r.area_of(arch));
    }
    for class in [WorkloadClass::Ilp, WorkloadClass::Mem, WorkloadClass::Mix] {
        print!("{:4}:", class.label());
        for arch in ["M8", "3M4", "2M4+2M2", "1M6+2M4+2M2"] {
            print!(" {arch}={:.2}", r.hmean_ipc(arch, class, None, Metric::Heur));
        }
        println!();
    }
    let s = summarize(&r);
    println!("{s:#?}");
}
