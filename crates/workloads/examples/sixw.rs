use hdsmt_core::MissProfile;
use hdsmt_pipeline::MicroArch;
use hdsmt_workloads::all_workloads;
use hdsmt_workloads::experiments::{envelope_for, ExperimentConfig};

fn main() {
    let profile = MissProfile::build();
    let mut cfg = ExperimentConfig::quick();
    cfg.measure_insts = 20_000;
    for wl in all_workloads().iter().filter(|w| w.threads() == 6) {
        for arch in ["M8", "1M6+2M4+2M2", "3M4+2M2"] {
            let a = MicroArch::parse(arch).unwrap();
            let e = envelope_for(&a, wl, &profile, &cfg);
            println!(
                "{} {arch:14} best={:.3} heur={:.3} worst={:.3} (n={})",
                wl.id, e.best_ipc, e.heur_ipc, e.worst_ipc, e.n_mappings
            );
        }
    }
}
