//! Smoke-scale figure regeneration under `cargo bench`.
//!
//! Each bench regenerates one paper artefact (at reduced scale for the
//! Fig 4/5 cells) and prints the series to stderr, so `cargo bench` output
//! doubles as a quick reproduction check. The full-scale campaign lives in
//! the `reproduce` binary.

use criterion::{criterion_group, criterion_main, Criterion};

use hdsmt_area::{microarch_area, paper_area_table, pipeline_area};
use hdsmt_core::MissProfile;
use hdsmt_pipeline::{MicroArch, M2, M4, M6, M8};
use hdsmt_workloads::all_workloads;
use hdsmt_workloads::experiments::{envelope_for, ExperimentConfig};

fn bench_fig2b(c: &mut Criterion) {
    c.bench_function("fig2b_area_model", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for (m, multi) in [(M8, false), (M6, true), (M4, true), (M2, true)] {
                total += pipeline_area(&m, multi).total();
            }
            total
        })
    });
    eprintln!("[fig2b] pipeline bodies (mm²):");
    for (m, multi) in [(M8, false), (M6, true), (M4, true), (M2, true)] {
        eprintln!("  {:4} {:7.1}", m.name, pipeline_area(&m, multi).total());
    }
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_microarch_areas", |b| {
        b.iter(|| MicroArch::paper_set().iter().map(|a| microarch_area(a).total()).sum::<f64>())
    });
    eprintln!("[fig3] microarchitecture areas:");
    for (name, total, delta) in paper_area_table() {
        eprintln!("  {name:<14} {total:7.1} mm²  {delta:+.1}%");
    }
}

fn bench_fig4_smoke(c: &mut Criterion) {
    // One representative cell at smoke scale; the criterion timing covers
    // a full envelope computation (oracle search + measured runs).
    let profile = MissProfile::build_with_len(50_000);
    let mut cfg = ExperimentConfig::quick();
    cfg.measure_insts = 6_000;
    cfg.search_insts = 3_000;
    let arch = MicroArch::parse("2M4+2M2").unwrap();
    let w = all_workloads().iter().find(|w| w.id == "2W7").unwrap();
    let mut g = c.benchmark_group("fig4_smoke");
    g.sample_size(10);
    g.bench_function("envelope_2M4+2M2_2W7", |b| b.iter(|| envelope_for(&arch, w, &profile, &cfg)));
    g.finish();
    let e = envelope_for(&arch, w, &profile, &cfg);
    eprintln!(
        "[fig4 smoke] 2W7 on 2M4+2M2: BEST {:.2} / HEUR {:.2} / WORST {:.2} over {} mappings",
        e.best_ipc, e.heur_ipc, e.worst_ipc, e.n_mappings
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2b, bench_fig3, bench_fig4_smoke
}
criterion_main!(benches);
