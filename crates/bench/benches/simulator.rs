//! End-to-end simulator throughput: simulated instructions per wall-clock
//! second for representative machine/workload combinations. These are the
//! numbers that bound how large a reproduction campaign can run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hdsmt_core::{run_sim, SimConfig, ThreadSpec};
use hdsmt_pipeline::MicroArch;

const INSTS: u64 = 5_000;

fn run_case(arch: &str, benchmarks: &[&str], mapping: &[u8]) -> f64 {
    let mut cfg = SimConfig::paper_defaults(MicroArch::parse(arch).unwrap(), INSTS);
    cfg.warmup_insts = 1_000;
    let specs: Vec<ThreadSpec> = benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| ThreadSpec::for_benchmark(b, 7 + i as u64))
        .collect();
    run_sim(&cfg, &specs, mapping).ipc()
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.throughput(Throughput::Elements(INSTS));
    let cases: Vec<(&str, Vec<&str>, Vec<u8>)> = vec![
        ("M8", vec!["gzip"], vec![0]),
        ("M8", vec!["gzip", "twolf"], vec![0, 0]),
        ("M8", vec!["mcf", "twolf"], vec![0, 0]),
        ("2M4+2M2", vec!["gzip", "twolf"], vec![0, 2]),
        ("1M6+2M4+2M2", vec!["eon", "gcc", "gzip", "bzip2"], vec![0, 1, 1, 2]),
    ];
    for (arch, benchmarks, mapping) in cases {
        let label = format!("{arch}/{}", benchmarks.join("+"));
        g.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| run_case(arch, &benchmarks, &mapping))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
