//! Component micro-benchmarks: the per-cycle building blocks of the
//! simulator. These guard the "zero allocation on the cycle path" property
//! — a regression here multiplies into every simulated cycle.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

use hdsmt_bpred::{Btb, PerceptronPredictor, Ras};
use hdsmt_isa::Pc;
use hdsmt_mem::{Cache, CacheConfig, MemConfig, MemHier};
use hdsmt_pipeline::{RegFile, Rob};
use hdsmt_trace::{synthesize, TraceStream};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    let cfg = CacheConfig { size_bytes: 64 * 1024, line_bytes: 32, ways: 2, banks: 8 };
    g.bench_function("l1_hit", |b| {
        let mut cache = Cache::new(cfg);
        cache.fill(0x1000);
        b.iter(|| black_box(cache.access(black_box(0x1000))))
    });
    g.bench_function("l1_miss_fill", |b| {
        let mut cache = Cache::new(cfg);
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(4096);
            if !cache.access(addr) {
                cache.fill(addr);
            }
        })
    });
    g.bench_function("hier_load_hit", |b| {
        let mut m = MemHier::new(MemConfig::default());
        m.prewarm_data(0x1_0000, 4096, true);
        let mut now = 0;
        b.iter(|| {
            now += 1;
            black_box(m.load(0x1_0000, now))
        })
    });
    g.finish();
}

fn bench_bpred(c: &mut Criterion) {
    let mut g = c.benchmark_group("bpred");
    g.throughput(Throughput::Elements(1));
    g.bench_function("perceptron_predict", |b| {
        let mut p = PerceptronPredictor::new(2);
        b.iter(|| black_box(p.predict(0, black_box(0xdead_beef))))
    });
    g.bench_function("perceptron_train", |b| {
        let mut p = PerceptronPredictor::new(2);
        let (_, snap) = p.predict(0, 1);
        b.iter(|| p.train(black_box(1), &snap, black_box(true)))
    });
    g.bench_function("btb_lookup", |b| {
        let mut btb = Btb::paper_config();
        btb.update(7, Pc(0x1000));
        b.iter(|| black_box(btb.lookup(black_box(7))))
    });
    g.bench_function("ras_push_pop", |b| {
        let mut ras = Ras::paper_config();
        b.iter(|| {
            ras.push(Pc(0x1234));
            black_box(ras.pop())
        })
    });
    g.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    g.throughput(Throughput::Elements(1));
    for name in ["gzip", "mcf"] {
        let profile = hdsmt_trace::by_name(name).unwrap();
        let program = Arc::new(synthesize(profile, hdsmt_trace::spec::program_seed(name)));
        g.bench_function(format!("stream_next_{name}"), |b| {
            let mut s = TraceStream::new(program.clone(), profile, 1, 0);
            b.iter(|| black_box(s.next_inst()))
        });
    }
    g.bench_function("synthesize_gzip", |b| {
        let profile = hdsmt_trace::by_name("gzip").unwrap();
        b.iter(|| black_box(synthesize(profile, 42)))
    });
    g.finish();
}

fn bench_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("structures");
    g.throughput(Throughput::Elements(1));
    g.bench_function("regfile_alloc_free", |b| {
        let mut rf = RegFile::paper_config(4);
        b.iter(|| {
            let p = rf.alloc(hdsmt_isa::ArchReg::int(5)).unwrap();
            rf.free(black_box(p));
        })
    });
    g.bench_function("rob_push_pop", |b| {
        let mut rob = Rob::paper_config();
        b.iter(|| {
            rob.push_tail(hdsmt_pipeline::InstId(1));
            black_box(rob.pop_head())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_bpred, bench_trace, bench_structures
}
criterion_main!(benches);
