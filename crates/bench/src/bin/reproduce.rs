//! Regenerate every table and figure of the paper.
//!
//! ```text
//! reproduce [all|fig2a|fig2b|fig3|table1|tables23|fig4|fig5|summary|
//!            ablate-fetch|ablate-regfile|ablate-mapping|ablate-bpred|ablate-buffers]
//!            [--quick]
//! ```
//!
//! Printed tables follow the paper's layout; machine-readable copies land
//! in `results/*.json`. Absolute IPCs are not expected to match the
//! paper's (different traces, scaled runs — see EXPERIMENTS.md); shapes
//! and relative orderings are the reproduction targets.

use std::fs;

use hdsmt_area::{paper_area_table, pipeline_area};
use hdsmt_bench::format_figure_panel;
use hdsmt_core::{run_sim, FetchPolicy, MissProfile, SimConfig, ThreadSpec};
use hdsmt_pipeline::{MicroArch, M2, M4, M6, M8};
use hdsmt_workloads::experiments::{run_paper_experiments, ExperimentConfig};
use hdsmt_workloads::{all_workloads, summarize, WorkloadClass};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("all");
    fs::create_dir_all("results").ok();

    match what {
        "fig2a" => fig2a(),
        "fig2b" => fig2b(),
        "fig3" => fig3(),
        "table1" => table1(),
        "tables23" => tables23(),
        "fig4" | "fig5" | "summary" => figs45(quick, what),
        "ablate-fetch" => ablate_fetch(quick),
        "ablate-regfile" => ablate_regfile(quick),
        "ablate-mapping" => ablate_mapping(quick),
        "ablate-bpred" => ablate_bpred(quick),
        "ablate-buffers" => ablate_buffers(quick),
        "ablate-dynmap" => ablate_dynmap(quick),
        "all" => {
            fig2a();
            fig2b();
            fig3();
            table1();
            tables23();
            figs45(quick, "all");
            ablate_fetch(quick);
            ablate_regfile(quick);
            ablate_mapping(quick);
            ablate_bpred(quick);
            ablate_buffers(quick);
            ablate_dynmap(quick);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}

fn experiment_config(quick: bool) -> ExperimentConfig {
    let mut cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::paper() };
    // Route every simulation through the campaign result cache: an
    // interrupted or repeated `reproduce` run only simulates missing
    // cells (`rm -rf results/sim-cache` forces a cold run).
    cfg.cache_dir = Some("results/sim-cache".to_string());
    cfg
}

// ---------------------------------------------------------------- Fig 2(a)
fn fig2a() {
    println!("== Fig 2(a): pipeline model resources ==");
    println!("{:<22}{:>6}{:>6}{:>6}{:>6}", "", "M8", "M6", "M4", "M2");
    let models = [M8, M6, M4, M2];
    let row = |name: &str, f: &dyn Fn(&hdsmt_pipeline::PipeModel) -> u16| {
        print!("{name:<22}");
        for m in &models {
            print!("{:>6}", f(m));
        }
        println!();
    };
    row("Hardware Contexts", &|m| m.contexts as u16);
    row("Max. Instr./cycle", &|m| m.width as u16);
    row("Max. Threads/cycle", &|m| m.fetch_threads as u16);
    row("Queues (IQ/FQ/LQ)", &|m| m.iq);
    row("Integer Func. Units", &|m| m.int_units as u16);
    row("FP Func. Units", &|m| m.fp_units as u16);
    row("LD/ST Units", &|m| m.ldst_units as u16);
    println!();
}

// ---------------------------------------------------------------- Fig 2(b)
fn fig2b() {
    println!("== Fig 2(b): area estimation per pipeline model (mm², 0.18 µm) ==");
    println!("(M6/M4/M2 measured as single-pipeline hdSMT machines: fetch ×1.2, EX ×1.1)");
    let rows: Vec<(&str, bool)> = vec![("M8", false), ("M6", true), ("M4", true), ("M2", true)];
    println!(
        "{:<6}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>9}",
        "model", "IF", "DE", "DI", "EX", "IC", "DEQ", "DIQ", "CQ", "total"
    );
    let mut json = Vec::new();
    for (name, multi) in rows {
        let m = hdsmt_pipeline::PipeModel::by_name(name).unwrap();
        let a = pipeline_area(&m, multi);
        let f = hdsmt_area::model::fetch_area(multi).mm2;
        let s = a.stages;
        let total = f + a.total();
        println!(
            "{name:<6}{f:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>8.2}{total:>9.1}",
            s.decode, s.dispatch, s.execute, s.completion, s.decode_q, s.dispatch_q, s.completion_q
        );
        json.push(serde_json::json!({
            "model": name, "fetch": f, "stages": a.stages, "total": total
        }));
    }
    fs::write("results/fig2b.json", serde_json::to_string_pretty(&json).unwrap()).ok();
    println!();
}

// ------------------------------------------------------------------- Fig 3
fn fig3() {
    println!("== Fig 3: area of evaluated microarchitectures ==");
    let paper = [
        ("M8", 0.0),
        ("3M4", -17.0),
        ("4M4", 10.14),
        ("2M4+2M2", -27.0),
        ("3M4+2M2", -1.0),
        ("1M6+2M4+2M2", 2.0),
    ];
    println!("{:<14}{:>10}{:>12}{:>14}", "microarch", "mm²", "model Δ%", "paper Δ%");
    let table = paper_area_table();
    for ((name, total, delta), (_, paper_delta)) in table.iter().zip(paper.iter()) {
        println!("{name:<14}{total:>10.1}{delta:>+12.1}{paper_delta:>+14.1}");
    }
    fs::write("results/fig3.json", serde_json::to_string_pretty(&table).unwrap()).ok();
    println!();
}

// ------------------------------------------------------------------ Table 1
fn table1() {
    println!("== Table 1: simulation parameters ==");
    let cfg = SimConfig::paper_defaults(MicroArch::baseline(), 1);
    let m = &cfg.mem;
    println!("Branch Predictor       perceptron (4K local, 256 perceps)");
    println!("BTB                    256 entries, 4-way associative");
    println!("RAS*                   256 entries");
    println!("ROB Size*              {} entries", cfg.rob_entries);
    println!("Rename Registers       {} regs.", cfg.rename_regs);
    println!(
        "L1 I-Cache             {}KB, {}-way, {} banks",
        m.l1i.size_bytes / 1024,
        m.l1i.ways,
        m.l1i.banks
    );
    println!(
        "L1 D-Cache             {}KB, {}-way, {} banks",
        m.l1d.size_bytes / 1024,
        m.l1d.ways,
        m.l1d.banks
    );
    println!("L1 lat./misspenalty    {}/{} cyc.", m.l1_lat, m.l1_miss_penalty);
    println!(
        "L2 Cache               {}KB, {}-way, {} banks",
        m.l2.size_bytes / 1024,
        m.l2.ways,
        m.l2.banks
    );
    println!("Main Memory Latency    {} cyc.", m.mem_lat);
    println!(
        "I-TLB/D-TLB/TLB missp. {} ent. / {} ent. / {} cyc.",
        m.itlb_entries, m.dtlb_entries, m.tlb_miss_penalty
    );
    println!("(* replicated per thread)");
    println!();
}

// -------------------------------------------------------------- Tables 2–3
fn tables23() {
    println!("== Tables 2–3: workloads ==");
    for threads in [2usize, 4, 6] {
        for w in all_workloads().iter().filter(|w| w.threads() == threads) {
            println!(
                "{:<5} {:<45} {}",
                w.id,
                w.benchmarks.join(", "),
                match w.class {
                    WorkloadClass::Ilp => "I",
                    WorkloadClass::Mem => "M",
                    // Tables 2–3 only contain the paper's three classes;
                    // the RV extension never appears here.
                    _ => "X",
                }
            );
        }
    }
    println!();
}

// ------------------------------------------------------------- Fig 4/5/§5
fn figs45(quick: bool, what: &str) {
    let cfg = experiment_config(quick);
    eprintln!(
        "running full campaign (6 archs × 22 workloads, oracle mapping search; {} insts/thread)…",
        cfg.measure_insts
    );
    let t0 = std::time::Instant::now();
    let r = run_paper_experiments(&cfg);
    eprintln!(
        "campaign finished in {:.1}s (cache at {})",
        t0.elapsed().as_secs_f64(),
        cfg.cache_dir.as_deref().unwrap_or("-")
    );
    fs::write("results/fig45_campaign.json", serde_json::to_string_pretty(&r).unwrap()).ok();

    if what == "fig4" || what == "all" {
        println!("== Fig 4: performance comparison (IPC) ==");
        for class in [WorkloadClass::Ilp, WorkloadClass::Mem, WorkloadClass::Mix] {
            println!("{}", format_figure_panel(&r, class, false));
        }
    }
    if what == "fig5" || what == "all" {
        println!("== Fig 5: performance-per-area comparison (IPC/mm²) ==");
        for class in [WorkloadClass::Ilp, WorkloadClass::Mem, WorkloadClass::Mix] {
            println!("{}", format_figure_panel(&r, class, true));
        }
    }
    if what == "summary" || what == "all" {
        let s = summarize(&r);
        println!("== §5 summary ==");
        println!("best heterogeneous per-area machine:          {}", s.best_het_per_area);
        println!(
            "perf/area vs monolithic SMT:                  {:+.1}%   (paper: +13%)",
            s.per_area_vs_mono_pct
        );
        println!(
            "perf/area vs homogeneous clustering:          {:+.1}%   (paper: +14%)",
            s.per_area_vs_homo_pct
        );
        for (class, pct) in &s.per_area_by_class_pct {
            println!("  perf/area vs M8, {class} workloads:           {pct:+.1}%");
        }
        println!(
            "monolithic raw-IPC advantage over hdSMT:      {:+.1}%   (paper: ~+6%)",
            s.mono_raw_vs_het_pct
        );
        println!(
            "hdSMT raw-IPC advantage over homogeneous:     {:+.1}%   (paper: ~+7%)",
            s.het_raw_vs_homo_pct
        );
        for (arch, acc) in &s.heuristic_accuracy {
            println!("heuristic accuracy on {arch:<14}             {:.0}%", acc * 100.0);
        }
        println!("6-thread ILP upset (hdSMT beats M8 raw):      {}", s.six_thread_ilp_upset);
        fs::write("results/summary.json", serde_json::to_string_pretty(&s).unwrap()).ok();
        println!();
    }
}

// ------------------------------------------------------------- ablations
fn two_thread_specs() -> Vec<ThreadSpec> {
    vec![ThreadSpec::for_benchmark("gzip", 11), ThreadSpec::for_benchmark("twolf", 12)]
}

fn ablate_fetch(quick: bool) {
    println!("== ablation: fetch policy (gzip+twolf on M8 and 2M4+2M2) ==");
    let insts = if quick { 20_000 } else { 60_000 };
    let specs = two_thread_specs();
    let mut rows = Vec::new();
    for arch_name in ["M8", "2M4+2M2"] {
        let arch = MicroArch::parse(arch_name).unwrap();
        let mapping: Vec<u8> = if arch.is_monolithic() { vec![0, 0] } else { vec![0, 2] };
        for policy in [
            FetchPolicy::RoundRobin,
            FetchPolicy::Icount,
            FetchPolicy::Flush,
            FetchPolicy::L1mcount,
        ] {
            let mut cfg = SimConfig::paper_defaults(arch.clone(), insts);
            cfg.fetch_policy = policy;
            let ipc = run_sim(&cfg, &specs, &mapping).ipc();
            println!("{arch_name:<10} {policy:?}: IPC {ipc:.3}");
            rows.push(
                serde_json::json!({"arch": arch_name, "policy": format!("{policy:?}"), "ipc": ipc}),
            );
        }
    }
    fs::write("results/ablate_fetch.json", serde_json::to_string_pretty(&rows).unwrap()).ok();
    println!();
}

fn ablate_regfile(quick: bool) {
    println!("== ablation: hdSMT shared-regfile latency (2M4+2M2, gzip+twolf) ==");
    let insts = if quick { 20_000 } else { 60_000 };
    let specs = two_thread_specs();
    let arch = MicroArch::parse("2M4+2M2").unwrap();
    let mut rows = Vec::new();
    for lat in [1u32, 2, 3] {
        let mut cfg = SimConfig::paper_defaults(arch.clone(), insts);
        cfg.regfile_lat = Some(lat);
        let ipc = run_sim(&cfg, &specs, &[0, 2]).ipc();
        println!("regfile latency {lat} cycles: IPC {ipc:.3}");
        rows.push(serde_json::json!({"regfile_lat": lat, "ipc": ipc}));
    }
    fs::write("results/ablate_regfile.json", serde_json::to_string_pretty(&rows).unwrap()).ok();
    println!();
}

fn ablate_mapping(quick: bool) {
    println!("== ablation: mapping policy (4W6 on 2M4+2M2) ==");
    let insts = if quick { 15_000 } else { 50_000 };
    let arch = MicroArch::parse("2M4+2M2").unwrap();
    let w = all_workloads().iter().find(|w| w.id == "4W6").unwrap();
    let specs: Vec<ThreadSpec> = w
        .benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| ThreadSpec::for_benchmark(b, 40 + i as u64))
        .collect();
    let profile = MissProfile::build();
    let cfg = SimConfig::paper_defaults(arch.clone(), insts);

    let heur = hdsmt_core::heuristic_mapping(&arch, w.benchmarks, &profile);
    let rr = hdsmt_core::mapping::round_robin_mapping(&arch, w.threads());
    let rnd = hdsmt_core::mapping::random_mapping(&arch, w.threads(), 99);
    let mut rows = Vec::new();
    for (name, m) in [("heuristic", &heur), ("round-robin", &rr), ("random", &rnd)] {
        let ipc = run_sim(&cfg, &specs, m).ipc();
        println!("{name:<12} {m:?}: IPC {ipc:.3}");
        rows.push(serde_json::json!({"policy": name, "mapping": m, "ipc": ipc}));
    }
    // Oracle for reference.
    let mappings = hdsmt_core::enumerate_mappings(&arch, w.threads());
    let best = mappings.iter().map(|m| run_sim(&cfg, &specs, m).ipc()).fold(f64::MIN, f64::max);
    println!("{:<12} (over {} mappings): IPC {best:.3}", "oracle", mappings.len());
    rows.push(serde_json::json!({"policy": "oracle", "ipc": best}));
    fs::write("results/ablate_mapping.json", serde_json::to_string_pretty(&rows).unwrap()).ok();
    println!();
}

fn ablate_bpred(quick: bool) {
    println!("== ablation: direction predictor (gzip+twolf on M8) ==");
    let insts = if quick { 20_000 } else { 60_000 };
    let specs = two_thread_specs();
    let mut rows = Vec::new();
    for kind in [hdsmt_bpred::DirPredictorKind::Perceptron, hdsmt_bpred::DirPredictorKind::Gshare] {
        let mut cfg = SimConfig::paper_defaults(MicroArch::baseline(), insts);
        cfg.predictor = kind;
        let r = run_sim(&cfg, &specs, &[0, 0]);
        let misp: f64 = r.stats.threads.iter().map(|t| t.mispredict_rate()).sum::<f64>()
            / r.stats.threads.len() as f64;
        println!("{kind:?}: IPC {:.3}, mean mispredict {:.1}%", r.ipc(), misp * 100.0);
        rows.push(serde_json::json!({"predictor": format!("{kind:?}"), "ipc": r.ipc(), "mispredict": misp}));
    }
    fs::write("results/ablate_bpred.json", serde_json::to_string_pretty(&rows).unwrap()).ok();
    println!();
}

fn ablate_dynmap(quick: bool) {
    println!("== extension: dynamic re-mapping (§7 future work; 4W6 on 2M4+2M2) ==");
    let insts = if quick { 15_000 } else { 50_000 };
    let arch = MicroArch::parse("2M4+2M2").unwrap();
    let w = all_workloads().iter().find(|w| w.id == "4W6").unwrap();
    let specs: Vec<ThreadSpec> = w
        .benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| ThreadSpec::for_benchmark(b, 70 + i as u64))
        .collect();
    let cfg = SimConfig::paper_defaults(arch.clone(), insts);

    let profile = MissProfile::build();
    let heur = hdsmt_core::heuristic_mapping(&arch, w.benchmarks, &profile);
    let naive = hdsmt_core::mapping::round_robin_mapping(&arch, w.threads());

    let static_heur = run_sim(&cfg, &specs, &heur).ipc();
    let static_naive = run_sim(&cfg, &specs, &naive).ipc();
    let mut rows = Vec::new();
    println!("static heuristic (profile-guided):        IPC {static_heur:.3}");
    println!("static round-robin (no profile):          IPC {static_naive:.3}");
    rows.push(serde_json::json!({"policy": "static-heuristic", "ipc": static_heur}));
    rows.push(serde_json::json!({"policy": "static-round-robin", "ipc": static_naive}));
    for interval in [2_000u64, 8_000, 32_000] {
        let d = hdsmt_core::run_dynamic(&cfg, &specs, &naive, interval);
        println!(
            "dynamic from round-robin, interval {interval:>6}: IPC {:.3} ({} migrations)",
            d.result.ipc(),
            d.migrations
        );
        rows.push(serde_json::json!({
            "policy": format!("dynamic-{interval}"), "ipc": d.result.ipc(),
            "migrations": d.migrations
        }));
    }
    fs::write("results/ablate_dynmap.json", serde_json::to_string_pretty(&rows).unwrap()).ok();
    println!();
}

fn ablate_buffers(quick: bool) {
    println!("== ablation: decoupling-buffer depth (2M4+2M2, gzip+twolf) ==");
    let insts = if quick { 20_000 } else { 60_000 };
    let specs = two_thread_specs();
    let mut rows = Vec::new();
    for depth in [4u16, 8, 16, 32, 64] {
        let mut arch = MicroArch::parse("2M4+2M2").unwrap();
        for p in &mut arch.pipes {
            p.buffer = depth;
        }
        let cfg = SimConfig::paper_defaults(arch, insts);
        let ipc = run_sim(&cfg, &specs, &[0, 2]).ipc();
        println!("buffer depth {depth:>2}: IPC {ipc:.3}");
        rows.push(serde_json::json!({"depth": depth, "ipc": ipc}));
    }
    fs::write("results/ablate_buffers.json", serde_json::to_string_pretty(&rows).unwrap()).ok();
    println!();
}
