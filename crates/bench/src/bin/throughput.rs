//! Host-side throughput harness for the simulator's per-cycle hot path.
//!
//! Measures simulated KIPS (thousands of committed instructions per host
//! second) on a named *cell* — a fixed (arch × workload) configuration —
//! and records the result per cell in a JSON report. These are the
//! numbers the scheduler/warp/front-end optimisation work is measured
//! by, and the ones future PRs must not silently regress.
//!
//! ```text
//! cargo run --release -p hdsmt-bench --bin throughput -- \
//!     [--cell NAME] [--quick] [--label NAME] [--out PATH] \
//!     [--baseline PATH] [--compare PATH] [--warn-pct N] [--list-cells]
//! ```
//!
//! * `--cell`      which cell to run (default `m8_mix4`; see below).
//! * `--quick`     20 k instructions, 1 rep (CI smoke scale).
//! * `--label`     name recorded for this measurement (default "current").
//! * `--out`       write/merge the JSON report (default `BENCH_hotpath.json`).
//! * `--baseline`  prepend the named report's runs (all cells carried
//!   through; this cell's runs extend) and report the speedup of this run
//!   over the cell's first entry.
//! * `--compare`   check this run's KIPS against the *last* run of the
//!   same cell in a committed report; if it falls more than `--warn-pct`
//!   percent short (default 15), print a GitHub Actions `::warning`
//!   annotation. Never fatal — including when the report is missing,
//!   unparsable or lacks the cell: shared CI runners are slower than the
//!   bench host, so this is a trend alarm, not a gate. Compare full-scale
//!   runs only; `--quick` runs measure a different cell size and would
//!   alarm permanently.
//!
//! # Cells
//!
//! | name | arch | workload | regime |
//! |---|---|---|---|
//! | `m8_mix4` | M8 | gzip+eon+mcf+twolf (FLUSH) | reference ILP+MEM mix |
//! | `m8_mcf4` | M8 | mcf×4 (ICOUNT) | memory-saturated: every thread blocked on L2/memory misses for long stretches — the cycle-warping regime |
//! | `m8_rv4`  | M8 | rv:sum+rv:matmul+rv:fib+rv:prime (FLUSH) | real-program front-end (emulator + chunked generation carry fetch) |
//!
//! The harness always verifies determinism first: the cell is simulated
//! twice at probe scale and the serialized statistics must match exactly,
//! else the process panics (CI fails).

use std::collections::BTreeMap;
use std::time::Instant;

use hdsmt_core::{run_sim, FetchPolicy, SimConfig, ThreadSpec};
use hdsmt_pipeline::MicroArch;

const FULL_INSTS: u64 = 200_000;
const QUICK_INSTS: u64 = 20_000;

struct CellDef {
    name: &'static str,
    arch: &'static str,
    benchmarks: &'static [&'static str],
    /// Fetch-policy override (`None` = the architecture's paper default).
    policy: Option<FetchPolicy>,
    regime: &'static str,
}

/// The measured cells. Warm-up is disabled so every commit is timed;
/// each cell uses the architecture's paper-default fetch policy unless
/// it overrides one.
const CELLS: &[CellDef] = &[
    CellDef {
        name: "m8_mix4",
        arch: "M8",
        benchmarks: &["gzip", "eon", "mcf", "twolf"],
        policy: None, // M8 default: FLUSH
        regime: "reference 2xILP+2xMEM mix",
    },
    CellDef {
        // Four miss-bound threads under ICOUNT: the machine spends most
        // of its cycles with every thread blocked on an L2/memory miss —
        // the stalled-machine regime the quiescence-warping engine
        // targets. (FLUSH would convert those stalls into refetch churn
        // instead; that regime is covered by m8_mix4's default policy and
        // pinned by the m8_memsat4_flush golden cell.)
        name: "m8_mcf4",
        arch: "M8",
        benchmarks: &["mcf", "mcf", "mcf", "mcf"],
        policy: Some(FetchPolicy::Icount),
        regime: "memory-saturated (all threads miss-bound, ICOUNT)",
    },
    CellDef {
        name: "m8_rv4",
        arch: "M8",
        benchmarks: &["rv:sum", "rv:matmul", "rv:fib", "rv:prime"],
        policy: None,
        regime: "real-program RV64I front-end",
    },
];

#[derive(Clone, serde::Serialize, serde::Deserialize)]
struct Measurement {
    label: String,
    arch: String,
    threads: usize,
    insts_per_thread: u64,
    /// Committed instructions in the timed run (warm-up disabled, so this
    /// is every commit).
    retired: u64,
    cycles: u64,
    wall_ms: f64,
    /// Simulated KIPS: committed instructions / host second / 1000.
    kips: f64,
    reps: u32,
}

#[derive(Clone, serde::Serialize, serde::Deserialize)]
struct CellReport {
    reference: String,
    quick: bool,
    runs: Vec<Measurement>,
    /// kips of the last run over kips of the first run (after merging the
    /// baseline), i.e. the recorded before → after improvement.
    speedup_last_over_first: Option<f64>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Report {
    /// Free-form provenance text (hand-authored in the committed report);
    /// carried through `--baseline` merges untouched.
    methodology: Option<String>,
    /// Free-form commentary, carried through like `methodology`.
    notes: Option<String>,
    /// Per-cell measurement histories, keyed by cell name.
    cells: BTreeMap<String, CellReport>,
}

fn cell_by_name(name: &str) -> &'static CellDef {
    CELLS.iter().find(|c| c.name == name).unwrap_or_else(|| {
        eprintln!("unknown cell `{name}`; available:");
        for c in CELLS {
            eprintln!("  {} — {} on {}: {}", c.name, c.benchmarks.join("+"), c.arch, c.regime);
        }
        std::process::exit(2);
    })
}

fn cell_config(cell: &CellDef, insts: u64) -> (SimConfig, Vec<ThreadSpec>, Vec<u8>) {
    let arch = MicroArch::parse(cell.arch).expect("cell arch parses");
    let mut cfg = SimConfig::paper_defaults(arch, insts);
    // Measure every committed instruction: no warm-up blackout.
    cfg.warmup_insts = 0;
    if let Some(p) = cell.policy {
        cfg.fetch_policy = p;
    }
    let specs: Vec<ThreadSpec> = cell
        .benchmarks
        .iter()
        .enumerate()
        .map(|(i, n)| ThreadSpec::for_benchmark(n, 42 + i as u64))
        .collect();
    let mapping = vec![0u8; specs.len()];
    (cfg, specs, mapping)
}

fn check_determinism(cell: &CellDef) {
    let (cfg, specs, mapping) = cell_config(cell, 5_000);
    let a = serde_json::to_string(&run_sim(&cfg, &specs, &mapping).stats).unwrap();
    let b = serde_json::to_string(&run_sim(&cfg, &specs, &mapping).stats).unwrap();
    assert_eq!(a, b, "cell {} is non-deterministic; refusing to benchmark", cell.name);
    eprintln!("determinism check ({}): ok", cell.name);
}

fn measure(cell: &CellDef, label: &str, insts: u64, reps: u32) -> Measurement {
    let (cfg, specs, mapping) = cell_config(cell, insts);
    let mut best: Option<(f64, u64, u64)> = None; // (wall_ms, retired, cycles)
    for rep in 0..reps {
        let t0 = Instant::now();
        let r = run_sim(&cfg, &specs, &mapping);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "{} rep {}/{}: {} insts, {} cycles in {:.1} ms ({:.1} KIPS)",
            cell.name,
            rep + 1,
            reps,
            r.stats.retired,
            r.stats.cycles,
            wall_ms,
            r.stats.retired as f64 / wall_ms
        );
        if best.is_none_or(|(b, _, _)| wall_ms < b) {
            best = Some((wall_ms, r.stats.retired, r.stats.cycles));
        }
    }
    let (wall_ms, retired, cycles) = best.unwrap();
    Measurement {
        label: label.to_string(),
        arch: cell.arch.to_string(),
        threads: cell.benchmarks.len(),
        insts_per_thread: insts,
        retired,
        cycles,
        wall_ms,
        kips: retired as f64 / wall_ms,
        reps,
    }
}

/// Compare a fresh measurement against the last same-cell run of a
/// committed report and emit a non-fatal GitHub `::warning` annotation
/// when it regresses by more than `warn_pct` percent.
fn compare_against(cell: &CellDef, m: &Measurement, path: &str, warn_pct: f64) {
    // Never fatal, including on a missing/corrupt report: the comparison
    // is a trend alarm, not a gate.
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("--compare report {path} unreadable ({e}); skipping the check");
            return;
        }
    };
    let prev: Report = match serde_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("--compare report {path} unparsable ({e}); skipping the check");
            return;
        }
    };
    let Some(base) = prev.cells.get(cell.name).and_then(|c| c.runs.last()) else {
        eprintln!("--compare report {path} has no {} runs; skipping the check", cell.name);
        return;
    };
    let floor = base.kips * (1.0 - warn_pct / 100.0);
    let pct = 100.0 * (m.kips / base.kips - 1.0);
    eprintln!(
        "compare[{}]: {:.1} KIPS vs committed '{}' at {:.1} KIPS ({pct:+.1}%, warn floor \
         {floor:.1})",
        cell.name, m.kips, base.label, base.kips
    );
    if m.kips < floor {
        // GitHub Actions annotation syntax; harmless noise anywhere else.
        println!(
            "::warning title=throughput regression ({})::measured {:.1} simulated KIPS is \
             {:.1}% below the committed '{}' baseline ({:.1} KIPS, floor {:.1}). If this \
             slowdown is real and intended, re-measure and update BENCH_hotpath.json.",
            cell.name, m.kips, -pct, base.label, base.kips, floor
        );
    }
}

fn main() {
    let mut cell_name = "m8_mix4".to_string();
    let mut quick = false;
    let mut label = "current".to_string();
    let mut out = "BENCH_hotpath.json".to_string();
    let mut baseline: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut warn_pct = 15.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cell" => cell_name = args.next().expect("--cell NAME"),
            "--quick" => quick = true,
            "--label" => label = args.next().expect("--label NAME"),
            "--out" => out = args.next().expect("--out PATH"),
            "--baseline" => baseline = Some(args.next().expect("--baseline PATH")),
            "--compare" => compare = Some(args.next().expect("--compare PATH")),
            "--warn-pct" => {
                warn_pct =
                    args.next().expect("--warn-pct N").parse().expect("--warn-pct takes a number")
            }
            "--list-cells" => {
                for c in CELLS {
                    println!("{} — {} on {}: {}", c.name, c.benchmarks.join("+"), c.arch, c.regime);
                }
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let cell = cell_by_name(&cell_name);

    check_determinism(cell);

    let (insts, reps) = if quick { (QUICK_INSTS, 1) } else { (FULL_INSTS, 3) };
    let m = measure(cell, &label, insts, reps);
    println!(
        "{}[{}]: {:.1} simulated KIPS ({} insts in {:.1} ms)",
        m.label, cell.name, m.kips, m.retired, m.wall_ms
    );
    if let Some(path) = &compare {
        compare_against(cell, &m, path, warn_pct);
    }

    let mut cells: BTreeMap<String, CellReport> = BTreeMap::new();
    let mut methodology = None;
    let mut notes = None;
    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path).expect("readable --baseline report");
        let prev: Report = serde_json::from_str(&text).expect("parsable --baseline report");
        cells = prev.cells;
        methodology = prev.methodology;
        notes = prev.notes;
    }
    let entry = cells.entry(cell.name.to_string()).or_insert_with(|| CellReport {
        reference: String::new(),
        quick,
        runs: Vec::new(),
        speedup_last_over_first: None,
    });
    entry.reference = format!(
        "{}, {} ({}), {} insts/thread — {}",
        cell.arch,
        cell.benchmarks.len(),
        cell.benchmarks.join("+"),
        insts,
        cell.regime
    );
    entry.quick = quick;
    entry.runs.push(m);
    entry.speedup_last_over_first = match (entry.runs.first(), entry.runs.last()) {
        (Some(f), Some(l)) if entry.runs.len() > 1 && f.kips > 0.0 => Some(l.kips / f.kips),
        _ => None,
    };
    if let Some(s) = entry.speedup_last_over_first {
        println!("speedup over '{}': {:.2}x", entry.runs[0].label, s);
    }
    let report = Report { methodology, notes, cells };
    let mut json = serde_json::to_string_pretty(&report).unwrap();
    json.push('\n');
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("report written to {out}");
}
