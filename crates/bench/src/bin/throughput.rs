//! Host-side throughput harness for the simulator's per-cycle hot path.
//!
//! Runs the fixed reference cell — M8, four threads (2×ILP + 2×MEM:
//! gzip, eon, mcf, twolf), 200 k instructions per thread — and reports
//! simulated KIPS (thousands of committed instructions per host second).
//! This is the number the event-driven scheduler work is measured by, and
//! the one future PRs must not silently regress.
//!
//! ```text
//! cargo run --release -p hdsmt-bench --bin throughput -- \
//!     [--quick] [--label NAME] [--out PATH] [--baseline PATH] \
//!     [--compare PATH] [--warn-pct N]
//! ```
//!
//! * `--quick`     20 k instructions, 1 rep (CI smoke scale).
//! * `--label`     name recorded for this measurement (default "current").
//! * `--out`       write a JSON report (default `BENCH_hotpath.json`).
//! * `--baseline`  prepend the runs of a previous report and report the
//!   speedup of this run over its first entry.
//! * `--compare`   check this run's KIPS against the *last* run of a
//!   committed report (the repo's `BENCH_hotpath.json`); if it falls more
//!   than `--warn-pct` percent short (default 15), print a GitHub Actions
//!   `::warning` annotation. Never fatal — including when the report is
//!   missing or unparsable: shared CI runners are slower than the bench
//!   host, so this is a trend alarm, not a gate. Compare full-scale runs
//!   against the committed full-scale baseline; `--quick` runs measure a
//!   different cell size and would alarm permanently.
//!
//! The harness always verifies determinism first: the verification cell is
//! simulated twice and the serialized statistics must match exactly, else
//! the process panics (CI fails).

use std::time::Instant;

use hdsmt_core::{run_sim, SimConfig, ThreadSpec};
use hdsmt_pipeline::MicroArch;

const REFERENCE_BENCHMARKS: [&str; 4] = ["gzip", "eon", "mcf", "twolf"];
const FULL_INSTS: u64 = 200_000;
const QUICK_INSTS: u64 = 20_000;

#[derive(Clone, serde::Serialize, serde::Deserialize)]
struct Measurement {
    label: String,
    arch: String,
    threads: usize,
    insts_per_thread: u64,
    /// Committed instructions in the timed run (warm-up disabled, so this
    /// is every commit).
    retired: u64,
    cycles: u64,
    wall_ms: f64,
    /// Simulated KIPS: committed instructions / host second / 1000.
    kips: f64,
    reps: u32,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Report {
    reference: String,
    quick: bool,
    /// Free-form provenance text (hand-authored in the committed report);
    /// carried through `--baseline` merges untouched.
    methodology: Option<String>,
    runs: Vec<Measurement>,
    /// kips of the last run over kips of the first run (after merging the
    /// baseline), i.e. the recorded before → after improvement.
    speedup_last_over_first: Option<f64>,
    /// Free-form commentary, carried through like `methodology`.
    notes: Option<String>,
}

fn reference_config(insts: u64) -> (SimConfig, Vec<ThreadSpec>, Vec<u8>) {
    let mut cfg = SimConfig::paper_defaults(MicroArch::baseline(), insts);
    // Measure every committed instruction: no warm-up blackout.
    cfg.warmup_insts = 0;
    let specs: Vec<ThreadSpec> = REFERENCE_BENCHMARKS
        .iter()
        .enumerate()
        .map(|(i, n)| ThreadSpec::for_benchmark(n, 42 + i as u64))
        .collect();
    let mapping = vec![0u8; specs.len()];
    (cfg, specs, mapping)
}

fn check_determinism() {
    let (cfg, specs, mapping) = reference_config(5_000);
    let a = serde_json::to_string(&run_sim(&cfg, &specs, &mapping).stats).unwrap();
    let b = serde_json::to_string(&run_sim(&cfg, &specs, &mapping).stats).unwrap();
    assert_eq!(a, b, "reference cell is non-deterministic; refusing to benchmark");
    eprintln!("determinism check: ok");
}

fn measure(label: &str, insts: u64, reps: u32) -> Measurement {
    let (cfg, specs, mapping) = reference_config(insts);
    let mut best: Option<(f64, u64, u64)> = None; // (wall_ms, retired, cycles)
    for rep in 0..reps {
        let t0 = Instant::now();
        let r = run_sim(&cfg, &specs, &mapping);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "rep {}/{}: {} insts, {} cycles in {:.1} ms ({:.1} KIPS)",
            rep + 1,
            reps,
            r.stats.retired,
            r.stats.cycles,
            wall_ms,
            r.stats.retired as f64 / wall_ms
        );
        if best.is_none_or(|(b, _, _)| wall_ms < b) {
            best = Some((wall_ms, r.stats.retired, r.stats.cycles));
        }
    }
    let (wall_ms, retired, cycles) = best.unwrap();
    Measurement {
        label: label.to_string(),
        arch: "M8".to_string(),
        threads: REFERENCE_BENCHMARKS.len(),
        insts_per_thread: insts,
        retired,
        cycles,
        wall_ms,
        kips: retired as f64 / wall_ms,
        reps,
    }
}

/// Compare a fresh measurement against the last run of a committed report
/// and emit a non-fatal GitHub `::warning` annotation when it regresses by
/// more than `warn_pct` percent.
fn compare_against(m: &Measurement, path: &str, warn_pct: f64) {
    // Never fatal, including on a missing/corrupt report: the comparison
    // is a trend alarm, not a gate.
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("--compare report {path} unreadable ({e}); skipping the check");
            return;
        }
    };
    let prev: Report = match serde_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("--compare report {path} unparsable ({e}); skipping the check");
            return;
        }
    };
    let Some(base) = prev.runs.last() else {
        eprintln!("--compare report {path} has no runs; skipping the check");
        return;
    };
    let floor = base.kips * (1.0 - warn_pct / 100.0);
    let pct = 100.0 * (m.kips / base.kips - 1.0);
    eprintln!(
        "compare: {:.1} KIPS vs committed '{}' at {:.1} KIPS ({pct:+.1}%, warn floor {floor:.1})",
        m.kips, base.label, base.kips
    );
    if m.kips < floor {
        // GitHub Actions annotation syntax; harmless noise anywhere else.
        println!(
            "::warning title=throughput regression::measured {:.1} simulated KIPS is \
             {:.1}% below the committed '{}' baseline ({:.1} KIPS, floor {:.1}). If this \
             slowdown is real and intended, re-measure and update BENCH_hotpath.json.",
            m.kips, -pct, base.label, base.kips, floor
        );
    }
}

fn main() {
    let mut quick = false;
    let mut label = "current".to_string();
    let mut out = "BENCH_hotpath.json".to_string();
    let mut baseline: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut warn_pct = 15.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--label" => label = args.next().expect("--label NAME"),
            "--out" => out = args.next().expect("--out PATH"),
            "--baseline" => baseline = Some(args.next().expect("--baseline PATH")),
            "--compare" => compare = Some(args.next().expect("--compare PATH")),
            "--warn-pct" => {
                warn_pct =
                    args.next().expect("--warn-pct N").parse().expect("--warn-pct takes a number")
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    check_determinism();

    let (insts, reps) = if quick { (QUICK_INSTS, 1) } else { (FULL_INSTS, 3) };
    let m = measure(&label, insts, reps);
    println!(
        "{}: {:.1} simulated KIPS ({} insts in {:.1} ms)",
        m.label, m.kips, m.retired, m.wall_ms
    );
    if let Some(path) = &compare {
        compare_against(&m, path, warn_pct);
    }

    let mut runs = Vec::new();
    let mut methodology = None;
    let mut notes = None;
    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path).expect("readable --baseline report");
        let prev: Report = serde_json::from_str(&text).expect("parsable --baseline report");
        runs.extend(prev.runs);
        methodology = prev.methodology;
        notes = prev.notes;
    }
    runs.push(m);
    let speedup = match (runs.first(), runs.last()) {
        (Some(f), Some(l)) if runs.len() > 1 && f.kips > 0.0 => Some(l.kips / f.kips),
        _ => None,
    };
    if let Some(s) = speedup {
        println!("speedup over '{}': {:.2}x", runs[0].label, s);
    }
    let report = Report {
        reference: format!(
            "M8, 4-thread ILP+MEM mix ({}), {} insts/thread",
            REFERENCE_BENCHMARKS.join("+"),
            insts
        ),
        quick,
        methodology,
        runs,
        speedup_last_over_first: speedup,
        notes,
    };
    let mut json = serde_json::to_string_pretty(&report).unwrap();
    json.push('\n');
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("report written to {out}");
}
