//! Throughput harness for the `hdsmt-campaign serve` daemon.
//!
//! Boots an in-process daemon on an ephemeral port, warms its cache with
//! one small campaign, then measures requests per second against the hot
//! endpoints — every request a fresh TCP connection (the daemon speaks
//! `Connection: close` HTTP/1.1), so the numbers include connect, parse,
//! route, and serialize:
//!
//! * `healthz`   — router floor (no state touched).
//! * `campaign`  — `GET /campaigns/:id` progress snapshot.
//! * `cell`      — `GET /cells/:hash`: a content-addressed cache-hit read
//!   straight off disk; the headline "cache-hit requests/sec" number.
//! * `results`   — `GET /campaigns/:id/results` full JSON export.
//! * `resubmit`  — whole submit→poll→done cycles of the already-cached
//!   campaign (100% hits), in campaigns/sec.
//!
//! ```text
//! cargo run --release -p hdsmt-bench --bin serve_bench -- \
//!     [--quick] [--label NAME] [--threads N] [--out PATH] [--baseline PATH]
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdsmt_campaign::serve::http::{http_get, http_request_retry, RetryPolicy};
use hdsmt_campaign::serve::{Server, ServerConfig};
use hdsmt_campaign::{engine, expand, CampaignSpec, MicroArch};

const SPEC: &str = r#"
name = "serve-bench"
archs = ["M8", "2M4+2M2"]
workloads = ["2W1", "2W7"]
policies = ["rr"]
seed = 17
[budget]
measure_insts = 1500
warmup_insts = 600
search_insts = 500
"#;

#[derive(Clone, serde::Serialize, serde::Deserialize)]
struct Measurement {
    label: String,
    threads: usize,
    requests: u64,
    wall_ms: f64,
    /// Requests (or campaigns, for `resubmit`) per host second.
    rps: f64,
}

#[derive(Clone, serde::Serialize, serde::Deserialize)]
struct EndpointReport {
    reference: String,
    quick: bool,
    runs: Vec<Measurement>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Report {
    methodology: Option<String>,
    notes: Option<String>,
    endpoints: BTreeMap<String, EndpointReport>,
}

fn wait_done(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) = http_get(addr, &format!("/campaigns/{id}")).expect("daemon reachable");
        assert_eq!(status, 200, "{body}");
        let snap = serde_json::from_str_value(&body).expect("snapshot JSON");
        match snap.get("status").and_then(|s| s.as_str()) {
            Some("done") => return,
            Some("failed") | Some("cancelled") => panic!("warm-up campaign died: {body}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "warm-up campaign stuck");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn submit(addr: &str) -> String {
    // Ride out 503 backpressure from the bounded queue: the daemon sends
    // Retry-After, and the retrying client honors it.
    let resp = http_request_retry(addr, "POST", "/campaigns", Some(SPEC), &RetryPolicy::default())
        .expect("daemon reachable");
    assert_eq!(resp.status, 202, "{}", resp.body);
    serde_json::from_str_value(&resp.body)
        .expect("submit JSON")
        .get("id")
        .and_then(|i| i.as_str())
        .expect("id")
        .to_string()
}

/// `threads` clients hammer `path` with `per_thread` sequential GETs.
fn measure_gets(addr: &str, path: &str, threads: usize, per_thread: u64) -> (f64, u64) {
    let failed = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let addr = addr.to_string();
            let path = path.to_string();
            let failed = failed.clone();
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    match http_get(&addr, &path) {
                        Ok((200, _)) => {}
                        _ => {
                            failed.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(!failed.load(Ordering::Relaxed), "a request to {path} failed");
    (t0.elapsed().as_secs_f64() * 1e3, threads as u64 * per_thread)
}

fn main() {
    let mut quick = false;
    let mut label = "current".to_string();
    let mut threads = 4usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--label" => label = args.next().expect("--label NAME"),
            "--threads" => threads = args.next().expect("--threads N").parse().expect("a number"),
            "--out" => out = args.next().expect("--out PATH"),
            "--baseline" => baseline = Some(args.next().expect("--baseline PATH")),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let cache_dir = std::env::temp_dir().join(format!("hdsmt-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: cache_dir.to_string_lossy().into_owned(),
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr().to_string();

    // Warm the cache: one full campaign, then one fully cached resubmit
    // to verify the 100%-hit steady state the benchmark measures.
    let id = submit(&addr);
    wait_done(&addr, &id);
    let id2 = submit(&addr);
    wait_done(&addr, &id2);

    // A content key for the cache-hit read path, computed client-side.
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let catalog = engine::catalog_for(&spec);
    let cell = &expand(&spec, &catalog).unwrap()[0];
    let arch = MicroArch::parse(&cell.arch).unwrap();
    let mapping = hdsmt_core::mapping::round_robin_mapping(&arch, cell.workload.threads());
    let key = cell.job(mapping, &spec.budget()).key();

    let per_thread: u64 = if quick { 50 } else { 500 };
    let endpoints: Vec<(&str, String)> = vec![
        ("healthz", "/healthz".into()),
        ("campaign", format!("/campaigns/{id}")),
        ("cell", format!("/cells/{key}")),
        ("results", format!("/campaigns/{id}/results")),
    ];

    let mut measured: Vec<(String, String, Measurement)> = Vec::new();
    for (name, path) in &endpoints {
        let (wall_ms, requests) = measure_gets(&addr, path, threads, per_thread);
        let m = Measurement {
            label: label.clone(),
            threads,
            requests,
            wall_ms,
            rps: requests as f64 / (wall_ms / 1e3),
        };
        println!("{name:>9}: {:8.0} req/s  ({requests} requests in {wall_ms:.0} ms)", m.rps);
        measured.push((name.to_string(), format!("GET {path}"), m));
    }

    // Whole cached campaigns per second: submit → poll → done, serially.
    let resubmits: u64 = if quick { 3 } else { 10 };
    let t0 = Instant::now();
    for _ in 0..resubmits {
        let rid = submit(&addr);
        wait_done(&addr, &rid);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let m = Measurement {
        label: label.clone(),
        threads: 1,
        requests: resubmits,
        wall_ms,
        rps: resubmits as f64 / (wall_ms / 1e3),
    };
    println!("{:>9}: {:8.1} campaigns/s (fully cached, {resubmits} cycles)", "resubmit", m.rps);
    measured.push(("resubmit".into(), "POST /campaigns + poll to done, 100% cache hits".into(), m));

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut endpoints_out: BTreeMap<String, EndpointReport> = BTreeMap::new();
    let mut methodology = Some(
        "In-process daemon on 127.0.0.1 (ephemeral port), release build. Every request \
         is a fresh TCP connection (HTTP/1.1 Connection: close): numbers include \
         connect/parse/route/serialize. Cache warmed by one campaign + one fully \
         cached resubmit before measuring."
            .to_string(),
    );
    let mut notes = None;
    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path).expect("readable --baseline report");
        let prev: Report = serde_json::from_str(&text).expect("parsable --baseline report");
        endpoints_out = prev.endpoints;
        methodology = prev.methodology.or(methodology);
        notes = prev.notes;
    }
    for (name, reference, m) in measured {
        let entry = endpoints_out.entry(name).or_insert_with(|| EndpointReport {
            reference: String::new(),
            quick,
            runs: Vec::new(),
        });
        entry.reference = reference;
        entry.quick = quick;
        entry.runs.push(m);
    }
    let report = Report { methodology, notes, endpoints: endpoints_out };
    let mut json = serde_json::to_string_pretty(&report).unwrap();
    json.push('\n');
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("report written to {out}");
}
